"""Section 4.9: strictness-ordered issue for non-pipelined functional
units (IntDiv/FloatDiv/FloatSqrt).

Paper headline: no non-negligible slowdown on any workload (max 0.08%),
and a slight geomean speedup from favouring older operations.
"""

from conftest import BENCH_SCALE, ENGINE_KWARGS, emit

from repro.analysis.figures import section49_fu_order
from repro.defenses.ghostminion import ghostminion
from repro.sim.runner import run_workload


def test_section49(benchmark):
    result = section49_fu_order(scale=BENCH_SCALE, **ENGINE_KWARGS)
    emit(result)
    for name, ratio in result.data["ratios"].items():
        assert ratio < 1.1, (name, ratio)
    benchmark.pedantic(
        lambda: run_workload("povray", ghostminion(strict_fu_order=True),
                             scale=0.05),
        rounds=3, iterations=1)
