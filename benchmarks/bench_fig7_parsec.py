"""Figure 7: 4-thread Parsec normalised execution time.

Paper headline: ~0% geomean overhead for GhostMinion on Parsec;
InvisiSpec's validation costs dominate multithreaded runs.
"""

from conftest import BENCH_SCALE, ENGINE_KWARGS, emit

from repro.analysis.figures import figure7
from repro.sim.runner import run_workload


def test_figure7(benchmark):
    result = figure7(scale=BENCH_SCALE, **ENGINE_KWARGS)
    emit(result)
    geo = result.data["geomean"]
    # paper: GhostMinion is ~free on Parsec; speculation-restricting
    # STT-Future pays heavily on the gather-style kernels
    assert geo["GhostMinion"] < 1.05
    assert geo["STT-Future"] > geo["GhostMinion"]
    benchmark.pedantic(
        lambda: run_workload("blackscholes", "GhostMinion", scale=0.05),
        rounds=3, iterations=1)
