"""Perf smoke bench: event-driven scheduler vs the dense reference loop.

Times one memory-bound sweep point (the fig. 6 ``mcf`` pointer chase,
whose wall-clock is dominated by DRAM-latency stall cycles) under both
schedulers at tiny scale, checks they agree byte-for-byte, and writes
``BENCH_perf.json`` — the first entry of the repo's perf trajectory, so
future PRs can compare scheduler wall-clock numbers against it.

Run directly (CI does, as a non-gating step):

    PYTHONPATH=src python -m pytest -q benchmarks/bench_perf_smoke.py

Knobs: ``REPRO_BENCH_PERF_SCALE`` (workload scale, default 0.25),
``REPRO_BENCH_PERF_OUT`` (output path, default ``BENCH_perf.json`` in
the repo root).
"""

import json
import os
import time

from repro.defenses import registry
from repro.sim.simulator import Simulator
from repro.workloads.spec import get_workload

PERF_SCALE = float(os.environ.get("REPRO_BENCH_PERF_SCALE", "0.25"))
DEFAULT_OUT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           os.pardir, "BENCH_perf.json")
OUT_PATH = os.environ.get("REPRO_BENCH_PERF_OUT", DEFAULT_OUT)

WORKLOAD = "mcf"
DEFENSE = "GhostMinion"
ROUNDS = 3


def _time_run(programs, dense):
    """Best-of-ROUNDS wall-clock for one scheduler; returns (seconds,
    RunResult of the last round)."""
    best = float("inf")
    result = None
    for _ in range(ROUNDS):
        sim = Simulator(list(programs), registry[DEFENSE]())
        started = time.perf_counter()
        result = sim.run(dense=dense)
        best = min(best, time.perf_counter() - started)
    return best, result


def test_perf_smoke():
    programs = get_workload(WORKLOAD).build(PERF_SCALE)
    dense_s, dense_res = _time_run(programs, dense=True)
    event_s, event_res = _time_run(programs, dense=False)

    # The speedup claim is only meaningful if both schedulers agree.
    assert dense_res.cycles == event_res.cycles
    assert dense_res.stats.as_dict() == event_res.stats.as_dict()
    assert dense_res.arch_regs() == event_res.arch_regs()

    speedup = dense_s / event_s if event_s > 0 else float("inf")
    payload = {
        "bench": "perf_smoke",
        "workload": WORKLOAD,
        "defense": DEFENSE,
        "scale": PERF_SCALE,
        "cycles": event_res.cycles,
        "insts": event_res.insts,
        "skipped_cycles": event_res.skipped_cycles,
        "skipped_fraction": round(
            event_res.skipped_cycles / max(1, event_res.cycles), 4),
        "dense_seconds": round(dense_s, 6),
        "event_seconds": round(event_s, 6),
        "speedup": round(speedup, 3),
        "rounds": ROUNDS,
    }
    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print()
    print("perf smoke: %s/%s scale=%s: dense %.3fs, event %.3fs "
          "(%.2fx, %d/%d cycles skipped) -> %s"
          % (WORKLOAD, DEFENSE, PERF_SCALE, dense_s, event_s, speedup,
             event_res.skipped_cycles, event_res.cycles, OUT_PATH))

    # Acceptance bar: the event-driven scheduler must be >= 1.5x faster
    # than the dense loop on this memory-bound point.
    assert speedup >= 1.5, (
        "event-driven scheduler only %.2fx faster than the dense loop"
        % speedup)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    test_perf_smoke()
