"""Perf smoke bench: scheduler speedup + store-backed replay speedup.

Two timed comparisons, both written to ``BENCH_perf.json`` (the repo's
perf trajectory, compared across PRs):

1. the event-driven scheduler vs the dense reference loop on one
   memory-bound sweep point (the fig. 6 ``mcf`` pointer chase, whose
   wall-clock is dominated by DRAM-latency stall cycles), checked
   byte-identical;
2. regenerating a small compare sweep from the sqlite result store
   (``repro report``'s path: query + table shaping, zero simulation)
   vs re-simulating it — the reason the store exists.

Run directly (CI does, as a non-gating step):

    PYTHONPATH=src python -m pytest -q benchmarks/bench_perf_smoke.py

Knobs: ``REPRO_BENCH_PERF_SCALE`` (workload scale, default 0.25),
``REPRO_BENCH_PERF_OUT`` (output path, default ``BENCH_perf.json`` in
the repo root).
"""

import json
import os
import tempfile
import time

from repro.defenses import registry
from repro.sim.simulator import Simulator
from repro.workloads.spec import get_workload

PERF_SCALE = float(os.environ.get("REPRO_BENCH_PERF_SCALE", "0.25"))
DEFAULT_OUT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           os.pardir, "BENCH_perf.json")
OUT_PATH = os.environ.get("REPRO_BENCH_PERF_OUT", DEFAULT_OUT)

WORKLOAD = "mcf"
DEFENSE = "GhostMinion"
ROUNDS = 3


def _time_run(programs, dense):
    """Best-of-ROUNDS wall-clock for one scheduler; returns (seconds,
    RunResult of the last round)."""
    best = float("inf")
    result = None
    for _ in range(ROUNDS):
        sim = Simulator(list(programs), registry[DEFENSE]())
        started = time.perf_counter()
        result = sim.run(dense=dense)
        best = min(best, time.perf_counter() - started)
    return best, result


def _update_payload(section, payload):
    """Merge one bench section into BENCH_perf.json (tests in this file
    can run in any subset/order)."""
    merged = {}
    try:
        with open(OUT_PATH, "r", encoding="utf-8") as handle:
            merged = json.load(handle)
    except (OSError, ValueError):
        pass
    if not isinstance(merged, dict):
        merged = {}
    # Legacy layout: the scheduler numbers lived at top level; keep
    # them there so trajectory diffs stay comparable, and nest new
    # sections under their own key.
    if section is None:
        merged.update(payload)
    else:
        merged[section] = payload
    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_perf_smoke():
    programs = get_workload(WORKLOAD).build(PERF_SCALE)
    dense_s, dense_res = _time_run(programs, dense=True)
    event_s, event_res = _time_run(programs, dense=False)

    # The speedup claim is only meaningful if both schedulers agree.
    assert dense_res.cycles == event_res.cycles
    assert dense_res.stats.as_dict() == event_res.stats.as_dict()
    assert dense_res.arch_regs() == event_res.arch_regs()

    speedup = dense_s / event_s if event_s > 0 else float("inf")
    payload = {
        "bench": "perf_smoke",
        "workload": WORKLOAD,
        "defense": DEFENSE,
        "scale": PERF_SCALE,
        "cycles": event_res.cycles,
        "insts": event_res.insts,
        "skipped_cycles": event_res.skipped_cycles,
        "skipped_fraction": round(
            event_res.skipped_cycles / max(1, event_res.cycles), 4),
        "dense_seconds": round(dense_s, 6),
        "event_seconds": round(event_s, 6),
        "speedup": round(speedup, 3),
        "rounds": ROUNDS,
    }
    _update_payload(None, payload)
    print()
    print("perf smoke: %s/%s scale=%s: dense %.3fs, event %.3fs "
          "(%.2fx, %d/%d cycles skipped) -> %s"
          % (WORKLOAD, DEFENSE, PERF_SCALE, dense_s, event_s, speedup,
             event_res.skipped_cycles, event_res.cycles, OUT_PATH))

    # Acceptance bar: the event-driven scheduler must be >= 1.5x faster
    # than the dense loop on this memory-bound point.
    assert speedup >= 1.5, (
        "event-driven scheduler only %.2fx faster than the dense loop"
        % speedup)


def test_store_replay_smoke():
    """Store-backed replay (query + report regeneration) vs
    re-simulation of the same compare sweep."""
    from repro.exp import Sweep, run_sweep
    from repro.store import ResultStore, RunMeta, StoreCache

    sweep = Sweep(name="bench-replay", workloads=[WORKLOAD],
                  defenses=["Unsafe", DEFENSE], scale=PERF_SCALE)

    resim_s = float("inf")
    direct = None
    for _ in range(ROUNDS):
        started = time.perf_counter()
        direct = run_sweep(sweep)
        resim_s = min(resim_s, time.perf_counter() - started)

    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(os.path.join(tmp, "bench.sqlite"),
                            run_meta=RunMeta.capture())
        store.insert_many(direct.results, sweep=sweep.name,
                          source="bench")
        best = float("inf")
        replay = None
        for _ in range(ROUNDS):
            started = time.perf_counter()
            replay = run_sweep(sweep, cache=StoreCache(store, "strict"))
            table = replay.results.as_run_results()
            best = min(best, time.perf_counter() - started)
        store.close()

    # The replay claim is only meaningful if the store reproduces the
    # engine run exactly.
    assert replay.executed == 0
    assert replay.results.to_json() == direct.results.to_json()
    assert set(table) == {WORKLOAD}

    speedup = resim_s / best if best > 0 else float("inf")
    _update_payload("store_replay", {
        "bench": "store_replay",
        "workload": WORKLOAD,
        "defenses": ["Unsafe", DEFENSE],
        "scale": PERF_SCALE,
        "points": len(direct.results),
        "resim_seconds": round(resim_s, 6),
        "replay_seconds": round(best, 6),
        "speedup": round(speedup, 3),
        "rounds": ROUNDS,
    })
    print()
    print("store replay: %d points scale=%s: resim %.3fs, replay "
          "%.4fs (%.1fx) -> %s"
          % (len(direct.results), PERF_SCALE, resim_s, best, speedup,
             OUT_PATH))

    # Acceptance bar: regenerating from accumulated history must
    # comfortably beat re-simulation even on a tiny sweep.
    assert speedup >= 3.0, (
        "store-backed replay only %.2fx faster than re-simulation"
        % speedup)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    test_perf_smoke()
    test_store_replay_smoke()
