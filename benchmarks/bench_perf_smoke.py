"""Perf smoke bench: scheduler speedups + store-backed replay speedup.

Three timed comparisons, all written to ``BENCH_perf.json`` (the repo's
perf trajectory, compared across PRs):

1. the event-driven scheduler vs the dense reference loop on one
   memory-bound sweep point (the fig. 6 ``mcf`` pointer chase, whose
   wall-clock is dominated by DRAM-latency stall cycles), checked
   byte-identical;
2. the same comparison on an MSHR-starved ``mcf`` point under a
   prefetcher-training hierarchy (MuonTrap) — the configuration the
   issue-side stall skips (STT taint, LSQ store-address waits,
   MSHR-backpressure retries; docs/performance.md) were built for:
   before them, backpressure retry cycles vetoed the skip and the
   speedup here sat near 1.5x;
3. regenerating a small compare sweep from the sqlite result store
   (``repro report``'s path: query + table shaping, zero simulation)
   vs re-simulating it — the reason the store exists.

Run directly (CI does, as a non-gating step):

    PYTHONPATH=src python -m pytest -q benchmarks/bench_perf_smoke.py

Knobs: ``REPRO_BENCH_PERF_SCALE`` (workload scale, default 0.25),
``REPRO_BENCH_PERF_OUT`` (output path, default ``BENCH_perf.json`` in
the repo root).
"""

import json
import os
import tempfile
import time

from repro.config import default_config
from repro.defenses import registry
from repro.sim.simulator import Simulator
from repro.workloads.spec import get_workload

PERF_SCALE = float(os.environ.get("REPRO_BENCH_PERF_SCALE", "0.25"))
DEFAULT_OUT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           os.pardir, "BENCH_perf.json")
OUT_PATH = os.environ.get("REPRO_BENCH_PERF_OUT", DEFAULT_OUT)

WORKLOAD = "mcf"
DEFENSE = "GhostMinion"
ROUNDS = 3


def _time_run(programs, dense, defense=None, cfg=None):
    """Best-of-ROUNDS wall-clock for one scheduler; returns (seconds,
    RunResult of the last round)."""
    defense = DEFENSE if defense is None else defense
    best = float("inf")
    result = None
    for _ in range(ROUNDS):
        sim = Simulator(list(programs), registry[defense](),
                        cfg=None if cfg is None else cfg.copy())
        started = time.perf_counter()
        result = sim.run(dense=dense)
        best = min(best, time.perf_counter() - started)
    return best, result


def _update_payload(section, payload):
    """Merge one bench section into BENCH_perf.json (tests in this file
    can run in any subset/order)."""
    merged = {}
    try:
        with open(OUT_PATH, "r", encoding="utf-8") as handle:
            merged = json.load(handle)
    except (OSError, ValueError):
        pass
    if not isinstance(merged, dict):
        merged = {}
    # Legacy layout: the scheduler numbers lived at top level; keep
    # them there so trajectory diffs stay comparable, and nest new
    # sections under their own key.
    if section is None:
        merged.update(payload)
    else:
        merged[section] = payload
    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _scheduler_smoke(section, label, defense, cfg=None,
                     extra_payload=None, floor=2.0):
    """One dense-vs-event scheduler comparison: assert byte-identity,
    merge a payload section into BENCH_perf.json, gate the speedup.
    Returns the event-scheduler RunResult."""
    programs = get_workload(WORKLOAD).build(PERF_SCALE)
    dense_s, dense_res = _time_run(programs, True, defense, cfg)
    event_s, event_res = _time_run(programs, False, defense, cfg)

    # The speedup claim is only meaningful if both schedulers agree.
    assert dense_res.cycles == event_res.cycles
    assert dense_res.stats.as_dict() == event_res.stats.as_dict()
    assert dense_res.arch_regs() == event_res.arch_regs()

    speedup = dense_s / event_s if event_s > 0 else float("inf")
    by_class = {cls: event_res.skipped_by_class[cls]
                for cls in sorted(event_res.skipped_by_class)}
    payload = {
        "bench": section if section is not None else "perf_smoke",
        "workload": WORKLOAD,
        "defense": defense,
        "scale": PERF_SCALE,
        "cycles": event_res.cycles,
        "insts": event_res.insts,
        "skipped_cycles": event_res.skipped_cycles,
        "skipped_fraction": round(
            event_res.skipped_cycles / max(1, event_res.cycles), 4),
        "skipped_by_class": by_class,
        "dense_seconds": round(dense_s, 6),
        "event_seconds": round(event_s, 6),
        "speedup": round(speedup, 3),
        "rounds": ROUNDS,
    }
    payload.update(extra_payload or {})
    _update_payload(section, payload)
    print()
    print("%s: %s/%s scale=%s: dense %.3fs, event %.3fs "
          "(%.2fx, %d/%d cycles skipped) -> %s"
          % (label, WORKLOAD, defense, PERF_SCALE, dense_s, event_s,
             speedup, event_res.skipped_cycles, event_res.cycles,
             OUT_PATH))
    print("skipped by class: %s" % by_class)
    assert speedup >= floor, (
        "%s only %.2fx faster than the dense loop (floor %.1fx)"
        % (label, speedup, floor))
    return event_res


def test_perf_smoke():
    # Acceptance bar >= 2x (was 1.5x before the issue-side stall skips
    # widened the windows).
    _scheduler_smoke(None, "perf smoke", DEFENSE)


def test_perf_smoke_issue_stalls():
    """Scheduler speedup where issue-side stalls dominate: an
    MSHR-starved ``mcf`` under MuonTrap, whose speculatively trained
    prefetcher makes every backpressure retry cycle side-effectful.
    Skippable only since the issue-side stall classes (STT taint, LSQ
    store-address waits, MSHR-backpressure retries; before them this
    point sat near 1.5x) learned to prove and bulk-apply those
    effects."""
    programs = get_workload(WORKLOAD).build(PERF_SCALE)
    cfg = default_config(cores=len(programs))
    cfg.l1d.mshrs = 2
    cfg.l1i.mshrs = 2
    cfg.l2.mshrs = 4
    event_res = _scheduler_smoke(
        "issue_stall_skip", "issue-stall smoke", "MuonTrap", cfg,
        extra_payload={"mshrs": {"l1d": cfg.l1d.mshrs,
                                 "l1i": cfg.l1i.mshrs,
                                 "l2": cfg.l2.mshrs}})
    # Non-vacuous: the new stall class must carry real weight here.
    assert event_res.skipped_by_class.get("mshr-backpressure", 0) > 0


def test_store_replay_smoke():
    """Store-backed replay (query + report regeneration) vs
    re-simulation of the same compare sweep."""
    from repro.exp import Sweep, run_sweep
    from repro.store import ResultStore, RunMeta, StoreCache

    sweep = Sweep(name="bench-replay", workloads=[WORKLOAD],
                  defenses=["Unsafe", DEFENSE], scale=PERF_SCALE)

    resim_s = float("inf")
    direct = None
    for _ in range(ROUNDS):
        started = time.perf_counter()
        direct = run_sweep(sweep)
        resim_s = min(resim_s, time.perf_counter() - started)

    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(os.path.join(tmp, "bench.sqlite"),
                            run_meta=RunMeta.capture())
        store.insert_many(direct.results, sweep=sweep.name,
                          source="bench")
        best = float("inf")
        replay = None
        for _ in range(ROUNDS):
            started = time.perf_counter()
            replay = run_sweep(sweep, cache=StoreCache(store, "strict"))
            table = replay.results.as_run_results()
            best = min(best, time.perf_counter() - started)
        store.close()

    # The replay claim is only meaningful if the store reproduces the
    # engine run exactly.
    assert replay.executed == 0
    assert replay.results.to_json() == direct.results.to_json()
    assert set(table) == {WORKLOAD}

    speedup = resim_s / best if best > 0 else float("inf")
    _update_payload("store_replay", {
        "bench": "store_replay",
        "workload": WORKLOAD,
        "defenses": ["Unsafe", DEFENSE],
        "scale": PERF_SCALE,
        "points": len(direct.results),
        "resim_seconds": round(resim_s, 6),
        "replay_seconds": round(best, 6),
        "speedup": round(speedup, 3),
        "rounds": ROUNDS,
    })
    print()
    print("store replay: %d points scale=%s: resim %.3fs, replay "
          "%.4fs (%.1fx) -> %s"
          % (len(direct.results), PERF_SCALE, resim_s, best, speedup,
             OUT_PATH))

    # Acceptance bar: regenerating from accumulated history must
    # comfortably beat re-simulation even on a tiny sweep.
    assert speedup >= 3.0, (
        "store-backed replay only %.2fx faster than re-simulation"
        % speedup)


def test_warm_start_smoke():
    """Checkpointed warm-start vs cold simulation of the same point.

    A two-point sweep sharing a 90% warm-up prefix: the lead point
    simulates the prefix once and snapshots it, the measured point
    restores the snapshot and only simulates its tail — byte-identical
    to the cold run, gated >= 3x faster (it skips ~90% of the work)."""
    from repro.exp import ConfigVariant, SweepPoint, run_points
    from repro.exp.spec import resolve_defense, resolve_workload
    from repro.store import ResultStore

    workload = resolve_workload(WORKLOAD)

    def point(label, max_insts, warmup=None):
        return SweepPoint(workload=workload,
                          defense=resolve_defense(DEFENSE),
                          variant=ConfigVariant.make(label, {}),
                          scale=PERF_SCALE, max_insts=max_insts,
                          warmup_insts=warmup)

    # Size the horizon from the workload itself so scale knobs cannot
    # push the warm-up boundary past the program's end.
    probe = run_points([point("probe", None)], cache=False)
    total = next(iter(probe.results)).insts
    horizon = int(total * 0.95)
    warmup = int(horizon * 0.9)
    lead = point("lead", warmup + max(1, (horizon - warmup) // 10),
                 warmup)
    measured = point("measured", horizon, warmup)

    cold_s = float("inf")
    cold = None
    for _ in range(ROUNDS):
        started = time.perf_counter()
        cold = run_points([point("measured", horizon)], cache=False)
        cold_s = min(cold_s, time.perf_counter() - started)
    cold_res = next(iter(cold.results))

    with tempfile.TemporaryDirectory() as tmp:
        ck = os.path.join(tmp, "ck.sqlite")
        seed = run_points([lead, measured], cache=False,
                          checkpoints=ck)
        seeded = {r.key: r for r in seed.results}
        assert seeded[lead.key].warm_insts == 0
        assert seeded[measured.key].warm_insts >= warmup
        warm_s = float("inf")
        warm = None
        for _ in range(ROUNDS):
            started = time.perf_counter()
            warm = run_points([measured], cache=False, checkpoints=ck)
            warm_s = min(warm_s, time.perf_counter() - started)
        stored = ResultStore(ck).checkpoint_stats()
    warm_res = next(iter(warm.results))

    # The speedup claim is only meaningful if warm == cold exactly.
    assert warm_res.cycles == cold_res.cycles
    assert warm_res.insts == cold_res.insts
    assert warm_res.stats == cold_res.stats
    assert warm.warm_insts() >= warmup

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    _update_payload("warm_start", {
        "bench": "warm_start",
        "workload": WORKLOAD,
        "defense": DEFENSE,
        "scale": PERF_SCALE,
        "total_insts": total,
        "horizon_insts": horizon,
        "warmup_insts": warmup,
        "checkpoints": stored["checkpoints"],
        "checkpoint_bytes": stored["checkpoint_bytes"],
        "cold_seconds": round(cold_s, 6),
        "warm_seconds": round(warm_s, 6),
        "speedup": round(speedup, 3),
        "rounds": ROUNDS,
    })
    print()
    print("warm start: %s/%s scale=%s warmup=%d/%d: cold %.3fs, warm "
          "%.3fs (%.1fx) -> %s"
          % (WORKLOAD, DEFENSE, PERF_SCALE, warmup, horizon, cold_s,
             warm_s, speedup, OUT_PATH))

    # Acceptance bar: restoring a 90% prefix must comfortably beat
    # re-simulating it.
    assert speedup >= 3.0, (
        "warm start only %.2fx faster than cold simulation" % speedup)


def test_accel_smoke():
    """Compiled hot core vs the pure-Python build, byte-identical.

    Runs ``python -m repro.accel --digest`` in two subprocesses —
    ``REPRO_ACCEL=0`` (pure differential oracle) and ``REPRO_ACCEL=1``
    (compiled when installed) — and asserts their cycles/stats/regs
    digests match.  The >= 1.5x speedup gate only applies when the
    mypyc extension is actually importable (``REPRO_BUILD_ACCEL=1 pip
    install -e '.[accel]'``); on a pure-Python checkout both runs use
    the same build and the section just records parity.
    """
    import subprocess
    import sys

    def probe(accel):
        env = dict(os.environ, REPRO_ACCEL=accel)
        env.setdefault("PYTHONPATH", "src")
        out = subprocess.run(
            [sys.executable, "-m", "repro.accel", "--digest",
             "--scale", str(PERF_SCALE)],
            capture_output=True, text=True, env=env, check=True)
        return json.loads(out.stdout)

    pure = probe("0")
    accel = probe("1")

    # Parity contract: byte-identical cycles, full stats and registers
    # (the digest covers all three), whichever build is active.
    assert pure["digest"] == accel["digest"], (
        "compiled hot core diverged from the pure-Python oracle")
    assert pure["cycles"] == accel["cycles"]
    assert pure["active"] == "pure"

    compiled = accel["compiled_available"] and accel["active"] == "compiled"
    speedup = (pure["seconds"] / accel["seconds"]
               if accel["seconds"] > 0 else float("inf"))
    _update_payload("accel", {
        "bench": "accel",
        "workload": WORKLOAD,
        "defense": DEFENSE,
        "scale": PERF_SCALE,
        "cycles": accel["cycles"],
        "compiled_available": accel["compiled_available"],
        "active_build": accel["active"],
        "digest_match": pure["digest"] == accel["digest"],
        "pure_seconds": round(pure["seconds"], 6),
        "accel_seconds": round(accel["seconds"], 6),
        "speedup": round(speedup, 3),
    })
    print()
    print("accel: %s/%s scale=%s: pure %.3fs, %s %.3fs (%.2fx) -> %s"
          % (WORKLOAD, DEFENSE, PERF_SCALE, pure["seconds"],
             accel["active"], accel["seconds"], speedup, OUT_PATH))

    if compiled:
        # Target 2x; gate at 1.5x to absorb shared-runner noise.
        assert speedup >= 1.5, (
            "compiled hot core only %.2fx faster than pure Python"
            % speedup)
    else:
        print("accel: extension not installed; parity recorded, "
              "speedup gate skipped")


if __name__ == "__main__":  # pragma: no cover - manual invocation
    test_perf_smoke()
    test_perf_smoke_issue_stalls()
    test_store_replay_smoke()
    test_warm_start_smoke()
    test_accel_smoke()
