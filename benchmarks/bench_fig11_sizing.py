"""Figure 11: GhostMinion size sweep (4 KiB ... 128 B) plus the
asynchronous-reload variant.

Paper headline: 2 KiB is the sweet spot (4 KiB negligibly faster, 1 KiB
negligibly slower); spikes appear below 512 B as lines leave the Minion
before commit; async reload removes the spikes.
"""

from conftest import BENCH_SCALE, ENGINE_KWARGS, emit

from repro.analysis.figures import figure11

# A representative subset keeps the 12-config sweep affordable.
SWEEP_WORKLOADS = ["mcf", "libquantum", "xalancbmk", "leslie3d", "hmmer",
                   "povray", "milc", "soplex"]


def test_figure11(benchmark):
    result = figure11(scale=BENCH_SCALE, workloads=SWEEP_WORKLOADS,
                      **ENGINE_KWARGS)
    emit(result)
    geo = result.data["geomean"]
    async_geo = result.data["async_geomean"]
    # 4K vs 2K: negligible difference
    assert abs(geo["4096B"] - geo["2048B"]) < 0.1
    # tiny Minions hurt; async reload caps the damage
    assert geo["128B"] >= geo["2048B"] - 0.02
    assert async_geo["128B async"] <= geo["128B"] + 0.05
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
