"""Extension ablation (§4.9 DRAM): only non-speculative accesses may
leave DRAM pages open.

The paper proposes this as the likely-feasible fix for the open-page
implicit cache but does not evaluate it; this bench measures the cost on
streaming and pointer-chasing workloads.
"""

from conftest import BENCH_SCALE, ENGINE_KWARGS, emit

from repro.analysis.figures import dram_policy_ablation
from repro.config import default_config
from repro.sim.runner import run_workload


def test_dram_policy(benchmark):
    result = dram_policy_ablation(scale=BENCH_SCALE,
                                  **ENGINE_KWARGS)
    emit(result)
    benchmark.pedantic(
        lambda: run_workload("lbm", "GhostMinion", scale=0.05,
                             cfg=default_config()),
        rounds=3, iterations=1)
