"""Figure 9: overhead breakdown of GhostMinion's components
(DMinion-Timeless / DMinion / IMinion / Coherence / Prefetcher / All).

Paper headline: most overhead comes from the data-side Minion and the
coherence extension; the instruction side contributes none; TimeGuarding
itself costs ~0.2% over the Timeless strawman.
"""

from conftest import BENCH_SCALE, ENGINE_KWARGS, emit

from repro.analysis.figures import figure9
from repro.defenses.ghostminion import ghostminion_breakdown
from repro.sim.runner import run_workload


def test_figure9(benchmark):
    result = figure9(scale=BENCH_SCALE, **ENGINE_KWARGS)
    emit(result)
    table = result.data["normalised"]
    # the IMinion alone is essentially free (paper: none of the
    # overhead comes from the instruction side)
    iminion = [row["GhostMinion[IMinion]"] for row in table.values()]
    assert sum(iminion) / len(iminion) < 1.05
    benchmark.pedantic(
        lambda: run_workload("gcc", ghostminion_breakdown("DMinion"),
                             scale=0.05),
        rounds=3, iterations=1)
