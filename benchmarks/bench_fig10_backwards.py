"""Figure 10: proportion of loads that trigger backwards-in-time
prevention (TimeGuards, timeleaps, leapfrogs) under GhostMinion.

Paper headline: all three are rare (< ~7% of loads; programs that send
data backwards in time are unusual), with soplex-like workloads showing
timeleaps and mcf/libquantum/omnetpp-like workloads leapfrogs.
"""

from conftest import BENCH_SCALE, ENGINE_KWARGS, emit

from repro.analysis.figures import figure10
from repro.defenses.ghostminion import ghostminion
from repro.sim.runner import run_workload


def test_figure10(benchmark):
    result = figure10(scale=BENCH_SCALE, **ENGINE_KWARGS)
    emit(result)
    for name, proportions in result.data.items():
        for event, value in proportions.items():
            assert value < 0.5, (name, event)
    # backwards-in-time flow is rare but present: timeleaps (mcf-like
    # MSHR hits from logically earlier loads) and leapfrogs (resource
    # steals) both occur.  TimeGuard *read blocks* essentially never
    # trigger in these kernels (see EXPERIMENTS.md); the mechanism is
    # covered by unit and security tests.
    assert any(p["timeleaps"] > 0 for p in result.data.values())
    assert any(p["leapfrogs"] > 0 for p in result.data.values())
    benchmark.pedantic(
        lambda: run_workload("soplex", ghostminion(), scale=0.05),
        rounds=3, iterations=1)
