"""Section 6.5: power analysis.

Paper anchors (22 nm CACTI): 0.47 mW static per 2 KiB Minion vs 12.8 mW
for the 64 KiB L1D; 1.5 pJ vs 8.6 pJ per read; dynamic power of the
Minions in the microwatt range against ~1 W per core.
"""

import pytest
from conftest import BENCH_SCALE, ENGINE_KWARGS, emit

from repro.analysis.figures import section65_power
from repro.analysis.power import SRAMModel


def test_section65(benchmark):
    result = section65_power(scale=BENCH_SCALE, **ENGINE_KWARGS)
    emit(result)
    model = SRAMModel(2048)
    assert model.leakage_mw == pytest.approx(0.47, abs=0.01)
    assert model.read_energy_pj == pytest.approx(1.5, abs=0.05)
    for report in result.data.values():
        # negligible vs ~1 W per core (section 6.5's conclusion)
        assert report.dminion_dynamic_uw < 1e5
    benchmark.pedantic(lambda: SRAMModel(2048).leakage_mw,
                       rounds=5, iterations=100)
