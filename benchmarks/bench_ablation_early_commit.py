"""Extension ablation (§4.10): the Early Commit variant of GhostMinion.

The paper proposes treating instructions as non-speculative once their
branches resolve (as InvisiSpec-Spectre/STT-Spectre do) instead of at
commit; this bench measures what that buys on branchy, memory-bound
workloads.
"""

from conftest import BENCH_SCALE, emit

from repro.analysis.figures import FigureResult
from repro.analysis.report import format_table, geomean
from repro.defenses.ghostminion import ghostminion
from repro.sim.runner import run_workload

WORKLOADS = ["mcf", "xalancbmk", "soplex", "gcc", "libquantum", "hmmer"]


def test_early_commit_ablation(benchmark):
    rows = []
    ratios = []
    for name in WORKLOADS:
        base = run_workload(name, ghostminion(), scale=BENCH_SCALE)
        early = run_workload(name, ghostminion(early_commit=True),
                             scale=BENCH_SCALE)
        ratio = early.cycles / base.cycles
        ratios.append(ratio)
        rows.append((name, base.cycles, early.cycles, ratio,
                     int(early.stats.get("gm.early_commits"))))
    rows.append(("geomean", "-", "-", geomean(ratios), "-"))
    result = FigureResult(
        name="Section 4.10 ablation: Early Commit",
        data={"ratios": dict(zip(WORKLOADS, ratios))},
        text=format_table(
            ["workload", "GhostMinion", "GhostMinion-EC", "ratio",
             "promotions"], rows))
    emit(result)
    assert geomean(ratios) < 1.1
    benchmark.pedantic(
        lambda: run_workload("gcc", ghostminion(early_commit=True),
                             scale=0.05),
        rounds=3, iterations=1)
