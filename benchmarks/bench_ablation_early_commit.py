"""Extension ablation (§4.10): the Early Commit variant of GhostMinion.

The paper proposes treating instructions as non-speculative once their
branches resolve (as InvisiSpec-Spectre/STT-Spectre do) instead of at
commit; this bench measures what that buys on branchy, memory-bound
workloads.  The whole comparison is one engine invocation (a workloads
x {GhostMinion, GhostMinion-EC} sweep) rather than a hand-rolled loop.
"""

from conftest import BENCH_SCALE, ENGINE_KWARGS, emit

from repro.analysis.figures import FigureResult
from repro.analysis.report import format_table, geomean
from repro.defenses.ghostminion import ghostminion
from repro.exp import Sweep, run_sweep
from repro.sim.runner import run_workload

WORKLOADS = ["mcf", "xalancbmk", "soplex", "gcc", "libquantum", "hmmer"]


def test_early_commit_ablation(benchmark):
    report = run_sweep(
        Sweep(name="early-commit",
              workloads=WORKLOADS,
              defenses=[ghostminion(), ghostminion(early_commit=True)],
              scale=BENCH_SCALE),
        **ENGINE_KWARGS)
    rows = []
    ratios = []
    for name in WORKLOADS:
        base = report.results.get("%s::GhostMinion::base" % name)
        early = report.results.get("%s::GhostMinion-EC::base" % name)
        ratio = early.cycles / base.cycles
        ratios.append(ratio)
        rows.append((name, base.cycles, early.cycles, ratio,
                     int(early.stats.get("gm.early_commits", 0))))
    rows.append(("geomean", "-", "-", geomean(ratios), "-"))
    result = FigureResult(
        name="Section 4.10 ablation: Early Commit",
        data={"ratios": dict(zip(WORKLOADS, ratios))},
        text=format_table(
            ["workload", "GhostMinion", "GhostMinion-EC", "ratio",
             "promotions"], rows),
        meta={"points": report.total, "cache_hits": report.cache_hits,
              "executed": report.executed, "jobs": report.jobs})
    emit(result)
    assert geomean(ratios) < 1.1
    benchmark.pedantic(
        lambda: run_workload("gcc", ghostminion(early_commit=True),
                             scale=0.05),
        rounds=3, iterations=1)
