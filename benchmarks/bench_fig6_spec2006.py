"""Figure 6: SPEC CPU2006 normalised execution time, GhostMinion vs the
literature (MuonTrap, InvisiSpec, STT variants).

Paper headline: 2.5% geomean overhead for GhostMinion; mcf worst case
~30%; STT spikes on pointer-indirect workloads; InvisiSpec-Future the
most expensive hiding scheme.
"""

from conftest import BENCH_SCALE, ENGINE_KWARGS, emit

from repro.analysis.figures import figure6
from repro.sim.runner import run_workload


def test_figure6(benchmark):
    result = figure6(scale=BENCH_SCALE, **ENGINE_KWARGS)
    emit(result)
    geo = result.data["geomean"]
    # shape assertions: who wins, roughly by how much
    assert geo["GhostMinion"] < 1.15
    assert geo["GhostMinion"] < geo["InvisiSpec-Future"]
    assert geo["GhostMinion"] < geo["STT-Future"]
    mcf = result.data["normalised"]["mcf"]
    assert mcf["GhostMinion"] > 1.1          # misspeculated prefetching
    assert mcf["MuonTrap"] < mcf["GhostMinion"]
    benchmark.pedantic(
        lambda: run_workload("mcf", "GhostMinion", scale=0.05),
        rounds=3, iterations=1)
