"""Security matrix: which defenses stop which transient-execution
attacks — the paper's qualitative claims, measured.

Expected (see §2.2, §6 and tests/attacks/test_security_matrix.py):
GhostMinion+strictFU blocks everything; MuonTrap-Flush and InvisiSpec
fall to backwards-in-time attacks; base MuonTrap does not stop
same-address-space Spectre.
"""

from conftest import emit

from repro.analysis.figures import FigureResult
from repro.analysis.report import format_table
from repro.attacks import interference, spectre, spectre_rewind
from repro.defenses.ghostminion import ghostminion

LINEUP = ["Unsafe", "GhostMinion", "MuonTrap", "MuonTrap-Flush",
          "InvisiSpec-Spectre", "InvisiSpec-Future", "STT-Spectre",
          "STT-Future"]


def build_matrix():
    gm_strict = ghostminion(strict_fu_order=True)
    gm_strict.name = "GhostMinion+strictFU"
    rows = []
    data = {}
    for defense in LINEUP + [gm_strict]:
        name = defense if isinstance(defense, str) else defense.name
        verdicts = {
            "spectre": spectre.leaks(defense),
            "rewind": spectre_rewind.leaks(defense),
            "interference": interference.leaks(defense),
        }
        data[name] = verdicts
        rows.append((name,) + tuple(
            "LEAK" if verdicts[a] else "safe"
            for a in ("spectre", "rewind", "interference")))
    text = format_table(
        ["defense", "Spectre v1", "SpectreRewind", "Interference"], rows)
    return FigureResult(name="Security matrix", data=data, text=text)


def test_security_matrix(benchmark):
    result = build_matrix()
    emit(result)
    data = result.data
    assert data["Unsafe"] == {"spectre": True, "rewind": True,
                              "interference": True}
    assert data["GhostMinion+strictFU"] == {
        "spectre": False, "rewind": False, "interference": False}
    assert data["GhostMinion"]["spectre"] is False
    assert data["GhostMinion"]["interference"] is False
    assert data["MuonTrap"]["spectre"] is True
    assert data["MuonTrap-Flush"]["rewind"] is True
    assert data["InvisiSpec-Future"]["interference"] is True
    assert data["STT-Future"]["rewind"] is False
    benchmark.pedantic(lambda: spectre.run("Unsafe", 3),
                       rounds=2, iterations=1)
