"""Table 1: the simulated system configuration."""

from conftest import emit

from repro.analysis.figures import table1
from repro.config import default_config


def test_table1(benchmark):
    emit(table1())
    benchmark.pedantic(default_config, rounds=5, iterations=10)
