"""Figure 8: SPECspeed 2017 normalised execution time.

Paper headline: 0.6% geomean overhead for GhostMinion.
"""

from conftest import BENCH_SCALE, ENGINE_KWARGS, emit

from repro.analysis.figures import figure8
from repro.sim.runner import run_workload


def test_figure8(benchmark):
    result = figure8(scale=BENCH_SCALE, **ENGINE_KWARGS)
    emit(result)
    geo = result.data["geomean"]
    assert geo["GhostMinion"] < 1.15
    assert geo["GhostMinion"] < geo["InvisiSpec-Future"]
    mcf17 = result.data["normalised"]["mcf17"]
    assert mcf17["MuonTrap"] < mcf17["GhostMinion"]
    benchmark.pedantic(
        lambda: run_workload("xz", "GhostMinion", scale=0.05),
        rounds=3, iterations=1)
