"""Shared bench configuration.

``REPRO_BENCH_SCALE`` scales the workload iteration counts used by the
figure benches (default 0.25: every figure regenerates in minutes on a
laptop; raise it for tighter numbers).
"""

import os

import pytest

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE


def emit(result):
    """Print a regenerated figure under a clear banner."""
    print()
    print("=" * 72)
    print(result.name)
    print("=" * 72)
    print(result.text)
