"""Shared bench configuration.

``REPRO_BENCH_SCALE`` scales the workload iteration counts used by the
figure benches (default 0.25: every figure regenerates in minutes on a
laptop; raise it for tighter numbers).

``REPRO_BENCH_JOBS`` sets how many worker processes the experiment
engine fans sweep points out over (default 0 = all cores; the
simulations are embarrassingly parallel).  ``REPRO_BENCH_CACHE``
enables the on-disk result cache for figure regeneration (``1`` for the
default directory, or a path); it is off by default so bench timings
stay honest.
"""

import os

import pytest

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "0"))


def _bench_cache():
    raw = os.environ.get("REPRO_BENCH_CACHE", "")
    if raw in ("", "0"):
        return None
    if raw == "1":
        return True
    return raw


#: Engine kwargs every figure bench forwards, so the whole suite shares
#: one parallel/cached engine configuration.
ENGINE_KWARGS = {"jobs": BENCH_JOBS, "cache": _bench_cache()}


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE


def emit(result):
    """Print a regenerated figure under a clear banner."""
    print()
    print("=" * 72)
    print(result.name)
    print("=" * 72)
    print(result.text)
    if getattr(result, "meta", None):
        from repro.exp import format_engine_summary
        print(format_engine_summary(result.meta))
