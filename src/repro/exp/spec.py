"""Declarative experiment specifications.

An :class:`Experiment` (alias :class:`Sweep`) is the cross product of
workloads x defenses x config variants at one workload scale.  Calling
:meth:`Experiment.points` expands it into a flat, deterministically
ordered list of :class:`SweepPoint`\\ s — the unit of work the engine
executes, caches and keys results by.

Config variants are expressed as dotted-path overrides on top of the
base :class:`~repro.config.SystemConfig` (e.g. the fig. 11 size sweep is
``{"minion_d.size_bytes": 512, "minion_i.size_bytes": 512}``), so a
sweep axis is data, not code.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.config import SystemConfig, default_config
from repro.defenses import DEFENSES
from repro.defenses.base import Defense
from repro.workloads.spec import WORKLOADS, WorkloadSpec

#: Bump when the result summary format (or simulation semantics relevant
#: to cached summaries) changes incompatibly; invalidates every cache
#: entry.
CACHE_SCHEMA_VERSION = 1

_CODE_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """Digest of the ``repro`` package sources (memoized per process).

    Folded into every point digest so editing simulator code invalidates
    cached results automatically — the rest of the digest covers only
    *inputs*, and a reproduction toolkit must never silently mix numbers
    from two versions of the simulator.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        import repro
        root = os.path.dirname(os.path.abspath(repro.__file__))
        sources = []
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            sources.extend(
                os.path.relpath(os.path.join(dirpath, name), root)
                for name in filenames if name.endswith(".py"))
        digest = hashlib.sha256()
        for relpath in sorted(sources):
            digest.update(relpath.encode())
            with open(os.path.join(root, relpath), "rb") as handle:
                digest.update(handle.read())
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


def resolve_defense(defense: Union[str, Defense]) -> Defense:
    """Construct a defense from a registry name or spec string
    (``"MuonTrap(flush=True)"``), or pass a :class:`Defense` through.

    This is the single defense-resolution path: the CLI, the engine and
    :mod:`repro.sim.runner` all funnel here.  Unknown names raise
    :class:`repro.registry.UnknownComponentError` (a ``KeyError``) with
    did-you-mean suggestions.
    """
    if isinstance(defense, Defense):
        return defense
    return DEFENSES.create(defense)


def resolve_workload(workload: Union[str, WorkloadSpec]) -> WorkloadSpec:
    """Construct a workload from a name or spec string
    (``"pointer_chase(stride=128)"``), or pass a spec through."""
    if isinstance(workload, WorkloadSpec):
        return workload
    return WORKLOADS.create(workload)


def apply_overrides(cfg: SystemConfig,
                    overrides: Dict[str, object]) -> SystemConfig:
    """Return a copy of ``cfg`` with dotted-path ``overrides`` applied.

    Paths name existing config attributes (``"minion_d.size_bytes"``,
    ``"dram.open_page"``, ``"cores"``); unknown paths raise
    ``AttributeError`` so typos cannot silently no-op a sweep axis.
    """
    new = cfg.copy()
    for path, value in overrides.items():
        target = new
        parts = path.split(".")
        for part in parts[:-1]:
            target = getattr(target, part)
        if not hasattr(target, parts[-1]):
            raise AttributeError("unknown config field %r" % path)
        setattr(target, parts[-1], value)
    return new


@dataclass(frozen=True)
class ConfigVariant:
    """One labelled point on a config axis (dotted-path overrides)."""

    label: str = "base"
    overrides: Tuple[Tuple[str, object], ...] = ()

    @staticmethod
    def make(label: str = "base",
             overrides: Optional[Dict[str, object]] = None
             ) -> "ConfigVariant":
        return ConfigVariant(
            label=label,
            overrides=tuple(sorted((overrides or {}).items())))

    def as_dict(self) -> Dict[str, object]:
        return dict(self.overrides)


BASE_VARIANT = ConfigVariant.make()


@dataclass(frozen=True)
class RegionSampling:
    """SimPoint-style region-sampling policy for one sweep point.

    The instruction horizon ``[0, max_insts)`` is split into
    ``regions`` equal regions; from the start of each, a window of
    ``window_insts`` committed instructions is simulated (clamped to
    the region, so an over-long window degenerates to exact full
    simulation) and the per-window stat deltas are combined weighted by
    ``region length / window length``.  Sampling changes the numbers (a
    sampled result is an *estimate*), so the policy is part of the
    point's cache token — sampled and full runs never share digests.
    See ``docs/checkpoints.md`` for the sampling math.
    """

    regions: int
    window_insts: int

    def __post_init__(self) -> None:
        if self.regions < 1:
            raise ValueError("sampling needs at least one region")
        if self.window_insts < 1:
            raise ValueError("sampling window must be >= 1 insts")

    def as_dict(self) -> Dict[str, object]:
        return {"regions": self.regions,
                "window_insts": self.window_insts}


def _defense_descriptor(defense: Defense) -> Dict[str, object]:
    """A JSON-able, digest-stable description of a defense's config.

    The normalized spec string of a *parameterized* construction is
    folded in; plain-name constructions carry no ``spec`` key, so their
    descriptors — and hence the input half of their digests — are
    byte-identical to the pre-registry engine.  (Digests also fold
    :func:`code_fingerprint`, which *any* source edit changes by
    design; token stability is about never forking point identities
    beyond that deliberate invalidation.)
    """
    cls = defense.hierarchy_cls
    descriptor = {
        "name": defense.name,
        "hierarchy": "%s.%s" % (cls.__module__, cls.__qualname__),
        "hierarchy_kwargs": dict(sorted(defense.hierarchy_kwargs.items())),
        "taint_mode": defense.taint_mode,
        "validation_mode": defense.validation_mode,
        "strict_fu_order": defense.strict_fu_order,
        "train_predictor_at_commit": defense.train_predictor_at_commit,
        "early_commit": defense.early_commit,
        "epoch_timestamps": defense.epoch_timestamps,
    }
    if defense.spec is not None:
        descriptor["spec"] = defense.spec
    return descriptor


#: Token fields introduced after ``CACHE_SCHEMA_VERSION`` was frozen,
#: as (dotted path into the cache token, default).
#: :func:`_strip_post_v1_defaults` drops them while they hold their
#: default, so points not using the new knob keep the exact input token
#: they had before the field existed.  Paths starting with ``config.``
#: reach into the config sub-dict (the original, config-only form of
#: this mechanism); top-level paths cover engine policy fields added to
#: the token itself (``warmup_insts``, ``sampling``).  (The full digest
#: still turns over whenever sources change, via
#: :func:`code_fingerprint` — this list keeps tokens from *also*
#: drifting structurally, so digests stay stable across future
#: non-source changes and never fork identities per knob added.)
_POST_V1_CONFIG_DEFAULTS: Tuple[Tuple[str, object], ...] = (
    ("config.core.predictor.kind", "tournament"),
    ("warmup_insts", None),
    ("sampling", None),
)


def _strip_post_v1_defaults(token: Dict[str, object]
                            ) -> Dict[str, object]:
    """Drop post-v1 token fields that hold their defaults (in place)."""
    for path, default in _POST_V1_CONFIG_DEFAULTS:
        parts = path.split(".")
        node = token
        for part in parts[:-1]:
            node = node.get(part)
            if not isinstance(node, dict):
                node = None
                break
        if node is not None and parts[-1] in node \
                and node[parts[-1]] == default:
            del node[parts[-1]]
    return token


@dataclass
class SweepPoint:
    """One (workload, defense, variant, scale) simulation to run."""

    workload: WorkloadSpec
    defense: Defense
    variant: ConfigVariant = BASE_VARIANT
    scale: float = 1.0
    max_cycles: int = 5_000_000
    #: Early-stop policy: stop once this many instructions have
    #: committed (``None`` = run to completion).  Declarative, so sweeps
    #: can cap simulation length without touching simulator call sites.
    max_insts: Optional[int] = None
    #: Warm-start policy: treat the first this-many committed
    #: instructions as warm-up.  With a checkpoint store available, the
    #: engine restores a stored snapshot at this boundary (or creates
    #: one on first encounter) instead of re-simulating the prefix; the
    #: result is byte-identical to a cold run either way.
    warmup_insts: Optional[int] = None
    #: Region-sampling policy (estimates — see :class:`RegionSampling`).
    sampling: Optional[RegionSampling] = None
    base_cfg: Optional[SystemConfig] = None

    @property
    def key(self) -> str:
        """Stable human-readable result key."""
        return "%s::%s::%s" % (self.workload.name, self.defense.name,
                               self.variant.label)

    def config(self) -> SystemConfig:
        """The fully resolved config this point simulates under."""
        cfg = (self.base_cfg.copy() if self.base_cfg is not None
               else default_config())
        cfg = apply_overrides(cfg, self.variant.as_dict())
        cfg.cores = self.workload.threads
        cfg.validate()
        return cfg

    def cache_token(self) -> Dict[str, object]:
        """Everything the simulation result is a pure function of."""
        return _strip_post_v1_defaults({
            "version": CACHE_SCHEMA_VERSION,
            "code": code_fingerprint(),
            "workload": dataclasses.asdict(self.workload),
            "defense": _defense_descriptor(self.defense),
            "config": dataclasses.asdict(self.config()),
            "scale": self.scale,
            "max_cycles": self.max_cycles,
            "max_insts": self.max_insts,
            "warmup_insts": self.warmup_insts,
            "sampling": (self.sampling.as_dict()
                         if self.sampling is not None else None),
        })

    def digest(self) -> str:
        """Content address of this point (sha256 of the cache token)."""
        token = json.dumps(self.cache_token(), sort_keys=True,
                           separators=(",", ":"), default=str)
        return hashlib.sha256(token.encode("utf-8")).hexdigest()

    def prefix_token(self) -> Dict[str, object]:
        """The subset of :meth:`cache_token` that determines execution
        *up to* an instruction boundary — horizon fields (cycle cap,
        instruction cap) and policy fields (warm-up, sampling) cannot
        influence state below the boundary they stop at, so they are
        dropped.  Two points agreeing on this token walk the same
        machine states and can share warm-up checkpoints.  The
        checkpoint blob format version is folded in so a format bump
        orphans stored blobs instead of misreading them.
        """
        from repro.sim.checkpoint import CHECKPOINT_FORMAT
        token = self.cache_token()
        for name in ("max_cycles", "max_insts", "warmup_insts",
                     "sampling"):
            token.pop(name, None)
        token["checkpoint_format"] = CHECKPOINT_FORMAT
        return token

    def prefix_digest(self) -> str:
        """Content address of this point's warm-up prefix (the
        ``checkpoints`` table key; see ``docs/checkpoints.md``)."""
        token = json.dumps(self.prefix_token(), sort_keys=True,
                           separators=(",", ":"), default=str)
        return hashlib.sha256(token.encode("utf-8")).hexdigest()


@dataclass
class Experiment:
    """A declarative sweep: workloads x defenses x variants at a scale.

    ``scale=None`` resolves ``REPRO_SCALE`` lazily at expansion time (see
    :func:`repro.sim.runner.default_scale`).  ``base_cfg`` seeds every
    point's config before variant overrides; per-point ``cores`` always
    follows the workload's thread count.
    """

    name: str = "sweep"
    workloads: Sequence[Union[str, WorkloadSpec]] = ()
    defenses: Sequence[Union[str, Defense]] = ()
    variants: Sequence[ConfigVariant] = (BASE_VARIANT,)
    scale: Optional[float] = None
    max_cycles: int = 5_000_000
    #: Engine-level early-stop: cap every point at this many committed
    #: instructions (``None`` = no cap).  Folded into point digests, so
    #: capped and uncapped runs never share cache entries.
    max_insts: Optional[int] = None
    #: Warm-start policy applied to every point (see
    #: :attr:`SweepPoint.warmup_insts`).
    warmup_insts: Optional[int] = None
    #: Region-sampling policy applied to every point (see
    #: :class:`RegionSampling`; requires ``max_insts``).
    sampling: Optional[RegionSampling] = None
    base_cfg: Optional[SystemConfig] = None

    def shard(self, index: int, count: int) -> List[SweepPoint]:
        """Deterministic partition of :meth:`points` for distribution.

        See :func:`shard_points`; shard ``index`` of ``count`` is what
        one machine runs (``repro sweep --shard i/n``).
        """
        return shard_points(self.points(), index, count)

    def points(self) -> List[SweepPoint]:
        """Expand to a flat point list (workload-major, then defense,
        then variant — the iteration order results are reported in)."""
        from repro.sim.runner import default_scale
        scale = self.scale if self.scale is not None else default_scale()
        specs = [resolve_workload(w) for w in self.workloads]
        defenses = [resolve_defense(d) for d in self.defenses]
        points = [
            SweepPoint(workload=spec, defense=defense, variant=variant,
                       scale=scale, max_cycles=self.max_cycles,
                       max_insts=self.max_insts,
                       warmup_insts=self.warmup_insts,
                       sampling=self.sampling,
                       base_cfg=self.base_cfg)
            for spec in specs
            for defense in defenses
            for variant in self.variants
        ]
        seen: Dict[str, SweepPoint] = {}
        for point in points:
            if point.key in seen:
                raise ValueError(
                    "duplicate sweep point %r: give colliding defenses "
                    "or variants distinct names/labels" % point.key)
            seen[point.key] = point
        return points


#: ``Sweep`` is the short name used throughout the engine and CLI.
Sweep = Experiment


def shard_points(points: Sequence[SweepPoint], index: int,
                 count: int) -> List[SweepPoint]:
    """Shard ``index`` (0-based) of ``count`` over ``points``.

    Points are ordered by content digest — a machine-independent, total
    order over work units — and dealt round-robin, so every shard of
    the same sweep is disjoint, their union is the full point list, and
    the partition is identical on every machine running the same source
    tree (the digest folds in :func:`code_fingerprint`, so mismatched
    checkouts produce disjoint *digest sets* rather than silently
    overlapping work).
    """
    if count < 1:
        raise ValueError("shard count must be >= 1 (got %d)" % count)
    if not 0 <= index < count:
        raise ValueError(
            "shard index must be in [0, %d) (got %d)" % (count, index))
    ordered = sorted(points, key=lambda point: point.digest())
    return ordered[index::count]


def variants_for_axis(path_values: Dict[str, Iterable[object]]
                      ) -> List[ConfigVariant]:
    """Cross one or more config axes into labelled variants.

    ``variants_for_axis({"minion_d.size_bytes": [2048, 512]})`` gives
    variants labelled ``minion_d.size_bytes=2048`` etc.; multiple axes
    produce their cross product with ``,``-joined labels.
    """
    variants = [BASE_VARIANT]
    for path, values in path_values.items():
        expanded: List[ConfigVariant] = []
        for variant in variants:
            for value in values:
                overrides = variant.as_dict()
                overrides[path] = value
                label = "%s=%s" % (path, value)
                if variant.label != "base":
                    label = "%s,%s" % (variant.label, label)
                expanded.append(ConfigVariant.make(label, overrides))
        variants = expanded
    return variants
