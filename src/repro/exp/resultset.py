"""Result containers for the experiment engine.

A :class:`PointResult` is the JSON-able summary of one simulation — the
cycles/stats payload every figure and table is computed from, minus the
(unpicklable, multi-megabyte) live ``Core`` objects.  A
:class:`ResultSet` is an ordered key -> PointResult map with canonical
JSON (de)serialization: the same sweep always serializes to the same
bytes, which is what the determinism tests and the on-disk cache rely
on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.analysis.stats import Stats
from repro.sim.simulator import RunResult

#: Serialization format version (bumped with the PointResult schema).
RESULT_FORMAT = 1


@dataclass
class PointResult:
    """Summary of one executed sweep point."""

    key: str
    workload: str
    defense: str
    variant: str
    scale: float
    digest: str
    cycles: int
    insts: int
    finished: bool
    stats: Dict[str, float] = field(default_factory=dict)
    #: True when this result came from the on-disk cache (runtime
    #: metadata: excluded from the canonical JSON form).
    cached: bool = False
    #: Wall-clock seconds this point's simulation took in this process
    #: (0.0 for cache hits).  Runtime metadata, like ``cached``: never
    #: serialized, so canonical JSON stays machine-independent.
    wall_seconds: float = 0.0
    #: Cycles the event-driven scheduler fast-forwarded for this point.
    #: Runtime metadata (scheduler telemetry), excluded from JSON so
    #: dense-loop and event-driven runs stay byte-identical.
    skipped_cycles: int = 0
    #: Skipped cycles per stall class (see
    #: :data:`repro.pipeline.core.SKIP_CLASSES`; a window counts toward
    #: every class active in it, so values can sum past
    #: ``skipped_cycles``).  Runtime metadata, like ``skipped_cycles``.
    skipped_by_class: Dict[str, int] = field(default_factory=dict)
    #: Warm-up instructions this run did *not* simulate because it
    #: restored a checkpoint (0 for cold runs and checkpoint-creating
    #: runs).  Runtime metadata, like ``skipped_cycles``: warm-started
    #: results are byte-identical to cold ones, so this never enters
    #: the canonical JSON.
    warm_insts: int = 0
    #: Cycle-domain metrics series sampled during a traced run (the
    #: ``series()`` dict of :class:`repro.obs.metrics.MetricsSampler`),
    #: or None when the point ran untraced.  Runtime metadata: tracing
    #: must never change the canonical JSON, so this is excluded from
    #: :meth:`to_json_dict` like the other telemetry fields.
    metrics: Optional[Dict[str, object]] = None
    #: Trace files written for this point (``export_traces`` output),
    #: empty when untraced.  Runtime metadata, like ``metrics``.
    trace_paths: List[str] = field(default_factory=list)
    #: SHA-256 over the final architectural registers of every core
    #: (None for cache hits and sampled runs, which carry no live
    #: cores).  Runtime metadata consumed by the differential fuzz
    #: oracles (``repro fuzz``); excluded from the canonical JSON so
    #: the v1 result schema and cache payloads are untouched.
    regs_digest: Optional[str] = None

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.insts / self.cycles

    def to_json_dict(self) -> Dict[str, object]:
        """Canonical JSON form (no runtime metadata)."""
        return {
            "key": self.key,
            "workload": self.workload,
            "defense": self.defense,
            "variant": self.variant,
            "scale": self.scale,
            "digest": self.digest,
            "cycles": self.cycles,
            "insts": self.insts,
            "finished": self.finished,
            "stats": {name: self.stats[name]
                      for name in sorted(self.stats)},
        }

    @classmethod
    def from_json_dict(cls, payload: Dict[str, object],
                       cached: bool = False) -> "PointResult":
        return cls(
            key=payload["key"],
            workload=payload["workload"],
            defense=payload["defense"],
            variant=payload["variant"],
            scale=payload["scale"],
            digest=payload["digest"],
            cycles=payload["cycles"],
            insts=payload["insts"],
            finished=payload["finished"],
            stats=dict(payload["stats"]),
            cached=cached,
        )

    def as_run_result(self) -> RunResult:
        """Rehydrate the :class:`RunResult` shape consumers expect.

        ``cores`` is empty: summaries do not carry live pipeline state
        (use :func:`repro.sim.runner.run_program` directly when you need
        architectural registers).
        """
        stats = Stats()
        for name, value in self.stats.items():
            stats.set(name, value)
        return RunResult(cycles=self.cycles, stats=stats,
                         finished=self.finished, cores=[])


@dataclass
class ResultSet:
    """Ordered collection of point results with stable keys."""

    points: Dict[str, PointResult] = field(default_factory=dict)

    def add(self, result: PointResult) -> None:
        if result.key in self.points:
            raise KeyError("duplicate result key %r" % result.key)
        self.points[result.key] = result

    def get(self, key: str) -> PointResult:
        return self.points[key]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[PointResult]:
        return iter(self.points.values())

    def __contains__(self, key: str) -> bool:
        return key in self.points

    def keys(self) -> List[str]:
        return list(self.points)

    def cache_hits(self) -> int:
        return sum(1 for result in self if result.cached)

    # -- shape adapters ----------------------------------------------------

    def by_workload(self) -> Dict[str, Dict[str, PointResult]]:
        """``{workload: {defense or defense/variant: PointResult}}``.

        Points at the base variant key by defense name alone (the
        pre-engine ``compare_defenses`` shape); non-base variants key by
        ``defense@variant``.
        """
        table: Dict[str, Dict[str, PointResult]] = {}
        for result in self:
            row = table.setdefault(result.workload, {})
            name = (result.defense if result.variant == "base"
                    else "%s@%s" % (result.defense, result.variant))
            row[name] = result
        return table

    def as_run_results(self) -> Dict[str, Dict[str, RunResult]]:
        """The legacy ``compare_defenses`` return shape."""
        return {
            workload: {name: point.as_run_result()
                       for name, point in row.items()}
            for workload, row in self.by_workload().items()
        }

    # -- serialization -----------------------------------------------------

    def to_json(self, indent: Optional[int] = None) -> str:
        """Canonical JSON: same sweep -> byte-identical output."""
        payload = {
            "format": RESULT_FORMAT,
            "points": [result.to_json_dict() for result in self],
        }
        return json.dumps(payload, sort_keys=True, indent=indent,
                          separators=None if indent else (",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ResultSet":
        payload = json.loads(text)
        if payload.get("format") != RESULT_FORMAT:
            raise ValueError("unsupported result format %r"
                             % payload.get("format"))
        rs = cls()
        for entry in payload["points"]:
            rs.add(PointResult.from_json_dict(entry))
        return rs
