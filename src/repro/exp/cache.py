"""Content-addressed on-disk result cache.

Each sweep point's summary is stored at ``<dir>/<digest[:2]>/<digest>.json``
where the digest hashes everything the simulation is a pure function of
(workload spec, defense descriptor, resolved config, scale, cycle cap —
see :meth:`repro.exp.spec.SweepPoint.cache_token`).  Re-running a figure
therefore only simulates points whose inputs changed; anything else is a
constant-time file read.

The cache directory resolves, in order: an explicit argument, the
``REPRO_CACHE_DIR`` environment variable, then
``~/.cache/repro-ghostminion``.  Entries carry the schema version from
``repro.exp.spec.CACHE_SCHEMA_VERSION``; note the digest covers *inputs*
only — if you change simulator code in a way that alters results, bump
that version (or wipe the directory) to invalidate stale entries.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Optional, Union

from repro.exp.resultset import PointResult
from repro.exp.spec import CACHE_SCHEMA_VERSION

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = os.path.join("~", ".cache", "repro-ghostminion")


def default_cache_dir() -> str:
    """Resolve the cache directory from the environment (lazily)."""
    return os.path.expanduser(
        os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR)


class ResultCache:
    """Filesystem-backed map from point digest to :class:`PointResult`."""

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = (os.path.expanduser(str(directory))
                          if directory is not None else default_cache_dir())
        self.hits = 0
        self.misses = 0

    def path_for(self, digest: str) -> str:
        return os.path.join(self.directory, digest[:2],
                            "%s.json" % digest)

    def lookup(self, digest: str) -> Optional[PointResult]:
        """Return the cached summary for ``digest`` or ``None``.

        Unreadable/corrupt/version-mismatched entries count as misses
        (and will be overwritten by the next :meth:`store`).
        """
        path = self.path_for(digest)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if payload.get("cache_version") != CACHE_SCHEMA_VERSION:
            self.misses += 1
            return None
        try:
            result = PointResult.from_json_dict(payload["result"],
                                                cached=True)
        except (KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, result: PointResult) -> None:
        """Atomically persist one summary (tmp file + rename)."""
        path = self.path_for(result.digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {
            "cache_version": CACHE_SCHEMA_VERSION,
            "result": result.to_json_dict(),
        }
        fd, tmp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise


def resolve_cache(cache: Union[None, bool, str, ResultCache]
                  ) -> Optional[ResultCache]:
    """Normalise the ``cache`` argument accepted across the API.

    ``None``/``False`` -> disabled; ``True`` -> default directory; a
    string/path -> that directory; a :class:`ResultCache` passes through.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache()
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)
