"""Content-addressed on-disk result cache.

Each sweep point's summary is stored at ``<dir>/<digest[:2]>/<digest>.json``
where the digest hashes everything the simulation is a pure function of
(workload spec, defense descriptor, resolved config, scale, cycle cap —
see :meth:`repro.exp.spec.SweepPoint.cache_token`).  Re-running a figure
therefore only simulates points whose inputs changed; anything else is a
constant-time file read.

The cache directory resolves, in order: an explicit argument, the
``REPRO_CACHE_DIR`` environment variable, then
``~/.cache/repro-ghostminion``.  Entries carry the schema version from
``repro.exp.spec.CACHE_SCHEMA_VERSION``; note the digest covers *inputs*
only — if you change simulator code in a way that alters results, bump
that version (or wipe the directory) to invalidate stale entries.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from typing import Dict, Iterator, Optional, Tuple

from repro.exp.resultset import PointResult
from repro.exp.spec import CACHE_SCHEMA_VERSION

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = os.path.join("~", ".cache", "repro-ghostminion")


def default_cache_dir() -> str:
    """Resolve the cache directory from the environment (lazily)."""
    return os.path.expanduser(
        os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR)


class ResultCache:
    """Filesystem-backed map from point digest to :class:`PointResult`."""

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = (os.path.expanduser(str(directory))
                          if directory is not None else default_cache_dir())
        self.hits = 0
        self.misses = 0

    def path_for(self, digest: str) -> str:
        return os.path.join(self.directory, digest[:2],
                            "%s.json" % digest)

    def lookup(self, digest: str) -> Optional[PointResult]:
        """Return the cached summary for ``digest`` or ``None``.

        Unreadable or version-mismatched entries count as misses (and
        will be overwritten by the next :meth:`store`).  Corrupt or
        partial entries — invalid JSON, missing fields — are
        additionally *quarantined*: renamed to ``<entry>.corrupt`` with
        a warning on stderr, so a damaged file can neither crash a
        sweep mid-run nor keep shadowing the digest it sits on.
        """
        path = self.path_for(digest)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError:
            # Missing (the common miss) or unreadable; nothing to do.
            self.misses += 1
            return None
        except ValueError:
            self._quarantine(path, "invalid JSON")
            self.misses += 1
            return None
        if not isinstance(payload, dict):
            self._quarantine(path, "not a cache entry")
            self.misses += 1
            return None
        if payload.get("cache_version") != CACHE_SCHEMA_VERSION:
            # Stale but well-formed: a miss, not corruption.
            self.misses += 1
            return None
        try:
            result = PointResult.from_json_dict(payload["result"],
                                                cached=True)
        except (KeyError, TypeError):
            self._quarantine(path, "missing/invalid result fields")
            self.misses += 1
            return None
        self.hits += 1
        return result

    def _quarantine(self, path: str, reason: str) -> None:
        """Rename a damaged entry aside so it stops masking its slot."""
        aside = path + ".corrupt"
        try:
            os.replace(path, aside)
        except OSError:
            return
        print("warning: quarantined corrupt result-cache entry (%s): "
              "%s -> %s" % (reason, path, aside), file=sys.stderr)

    # -- maintenance (repro cache stats/prune, store backfill) ----------

    def _walk(self, suffix: str) -> Iterator[Tuple[str, str]]:
        """Yield ``(name-minus-suffix, path)`` under the two-hex shard
        directories for files ending in ``suffix``."""
        if not os.path.isdir(self.directory):
            return
        for shard in sorted(os.listdir(self.directory)):
            subdir = os.path.join(self.directory, shard)
            if len(shard) != 2 or not os.path.isdir(subdir):
                continue
            for name in sorted(os.listdir(subdir)):
                if name.endswith(suffix):
                    yield (name[:-len(suffix)],
                           os.path.join(subdir, name))

    def entries(self) -> Iterator[Tuple[str, str]]:
        """Yield ``(digest, path)`` for every entry on disk."""
        for digest, path in self._walk(".json"):
            if digest[:2] == os.path.basename(os.path.dirname(path)):
                yield digest, path

    def _quarantined(self) -> Iterator[str]:
        """Paths of entries :meth:`lookup` has renamed aside."""
        for _stem, path in self._walk(".json.corrupt"):
            yield path

    def stats(self) -> Dict[str, object]:
        """Entry count and total size of the cache directory (plus how
        many quarantined ``*.corrupt`` files are lying around)."""
        count = 0
        size = 0
        for _digest, path in self.entries():
            try:
                size += os.path.getsize(path)
            except OSError:
                continue
            count += 1
        return {"directory": self.directory, "entries": count,
                "bytes": size,
                "corrupt": sum(1 for _ in self._quarantined())}

    def prune(self, older_than: Optional[float] = None,
              now: Optional[float] = None) -> Dict[str, object]:
        """Delete entries (all, or only those whose mtime is more than
        ``older_than`` seconds before ``now``); returns removal counts.

        Quarantined ``*.corrupt`` files are pruned under the same age
        filter, and empty two-hex subdirectories are removed
        afterwards, so a full prune leaves the directory as ``store``
        would recreate it.
        """
        now = time.time() if now is None else now
        removed = 0
        freed = 0
        victims = [path for _digest, path in self.entries()]
        victims.extend(self._quarantined())
        for path in victims:
            try:
                if older_than is not None:
                    age = now - os.path.getmtime(path)
                    if age < older_than:
                        continue
                size = os.path.getsize(path)
                os.unlink(path)
            except OSError:
                continue
            # count only after the unlink actually succeeded
            freed += size
            removed += 1
        if os.path.isdir(self.directory):
            for shard in os.listdir(self.directory):
                subdir = os.path.join(self.directory, shard)
                if len(shard) == 2 and os.path.isdir(subdir):
                    try:
                        os.rmdir(subdir)
                    except OSError:
                        pass  # not empty
        return {"directory": self.directory, "removed": removed,
                "bytes": freed}

    def store(self, result: PointResult) -> None:
        """Atomically persist one summary (tmp file + rename)."""
        path = self.path_for(result.digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {
            "cache_version": CACHE_SCHEMA_VERSION,
            "result": result.to_json_dict(),
        }
        fd, tmp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise


def resolve_cache(cache):
    """Normalise the ``cache`` argument accepted across the API.

    ``None``/``False`` -> disabled; ``True`` -> default directory; a
    string/path -> that directory; a :class:`ResultCache` — or anything
    else answering the ``lookup(digest)``/``store(result)`` protocol,
    such as a :class:`repro.store.ResultStore` or
    :class:`repro.store.StoreCache` (write-through recording into the
    sqlite result store) — passes through.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache()
    if callable(getattr(cache, "lookup", None)) and callable(
            getattr(cache, "store", None)):
        return cache
    return ResultCache(cache)
