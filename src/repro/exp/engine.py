"""Sweep executor: cache lookups, then fan-out over worker processes.

Simulations are pure CPU-bound functions of (programs, defense, config,
cycle cap), so a sweep is embarrassingly parallel: points missing from
the cache are shipped to a ``multiprocessing`` pool (``jobs > 1``) or
run inline (``jobs == 1``), and both paths produce identical
:class:`~repro.exp.resultset.PointResult` summaries — the determinism
test in ``tests/test_exp.py`` asserts byte-identical JSON.

Workload programs are built once per (workload, scale) per process and
shared by every defense/variant point, instead of being rebuilt per
pair; payloads ship the (small) workload spec, not the program list.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.config import SystemConfig
from repro.defenses.base import Defense
from repro.exp.cache import ResultCache, resolve_cache
from repro.exp.resultset import PointResult, ResultSet
from repro.exp.spec import Sweep, SweepPoint
from repro.pipeline.program import Program
from repro.sim.simulator import Simulator
from repro.workloads.spec import WorkloadSpec

ENV_JOBS = "REPRO_JOBS"

#: ``progress(done, total, result)`` — invoked once per finished point.
ProgressFn = Callable[[int, int, PointResult], None]


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker-count policy: argument > ``REPRO_JOBS`` env > 1.

    ``0`` (or any non-positive value) means "all cores".
    """
    if jobs is None:
        jobs = int(os.environ.get(ENV_JOBS, "1"))
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def format_engine_summary(meta: Dict) -> str:
    """The one-line engine summary shown by the CLI and the benches."""
    return ("engine: %(points)d points, %(cache_hits)d cache hits, "
            "%(executed)d simulated, jobs=%(jobs)d" % meta)


@dataclass
class SweepReport:
    """Outcome of one engine invocation."""

    results: ResultSet
    cache_hits: int = 0
    executed: int = 0
    jobs: int = 1

    @property
    def total(self) -> int:
        return len(self.results)

    def meta(self) -> Dict:
        return {"points": self.total, "cache_hits": self.cache_hits,
                "executed": self.executed, "jobs": self.jobs}

    def summary(self) -> str:
        return format_engine_summary(self.meta())


# One payload per cache miss; a plain tuple so it pickles cheaply:
# (index, key, digest, meta(workload, defense, variant, scale),
#  workload_spec, defense, cfg, max_cycles)
_Payload = Tuple[int, str, str, Tuple[str, str, str, float],
                 WorkloadSpec, Defense, SystemConfig, int]

#: Per-process (workload-content, scale) -> programs memo.  In serial
#: runs this is the only copy; each pool worker grows its own.  Safe
#: because the Simulator never mutates Program state (regression-tested
#: in tests/test_simulator.py).
_PROGRAMS_MEMO: Dict[Tuple[str, float], List[Program]] = {}


def _build_programs(spec: WorkloadSpec, scale: float) -> List[Program]:
    # Key by the spec's full content, not its display name: distinct
    # specs that share a name must not alias each other's programs.
    memo_key = (json.dumps(dataclasses.asdict(spec), sort_keys=True,
                           default=str), scale)
    if memo_key not in _PROGRAMS_MEMO:
        _PROGRAMS_MEMO[memo_key] = spec.build(scale)
    return _PROGRAMS_MEMO[memo_key]


def _simulate_payload(payload: _Payload) -> Tuple[int, PointResult]:
    """Run one point (executed inline or inside a worker process)."""
    (index, key, digest, meta, spec, defense, cfg,
     max_cycles) = payload
    workload, defense_name, variant, scale = meta
    programs = _build_programs(spec, scale)
    outcome = Simulator(programs, defense, cfg=cfg).run(
        max_cycles=max_cycles)
    return index, PointResult(
        key=key,
        workload=workload,
        defense=defense_name,
        variant=variant,
        scale=scale,
        digest=digest,
        cycles=outcome.cycles,
        insts=outcome.insts,
        finished=outcome.finished,
        stats=outcome.stats.as_dict(),
    )


def run_points(points: Sequence[SweepPoint],
               jobs: Optional[int] = None,
               cache: Union[None, bool, str, ResultCache] = None,
               progress: Optional[ProgressFn] = None) -> SweepReport:
    """Execute ``points``, consulting/filling the cache, and return a
    report whose :class:`ResultSet` preserves the input point order."""
    jobs = resolve_jobs(jobs)
    store = resolve_cache(cache)
    total = len(points)
    # Scope program reuse to this invocation (workers get their own
    # per-process memo for the lifetime of the pool).
    _PROGRAMS_MEMO.clear()
    # Fail fast on composed point lists with colliding keys, before any
    # simulation time is spent (Sweep.points() already checks within
    # one sweep).
    seen_keys = set()
    for point in points:
        if point.key in seen_keys:
            raise ValueError(
                "duplicate sweep point %r in composed point list; give "
                "colliding defenses or variants distinct names/labels"
                % point.key)
        seen_keys.add(point.key)
    slots: List[Optional[PointResult]] = [None] * total
    done = 0

    def finish(index: int, result: PointResult) -> None:
        nonlocal done
        slots[index] = result
        done += 1
        if progress is not None:
            progress(done, total, result)

    pending: List[_Payload] = []
    hits = 0
    for index, point in enumerate(points):
        digest = point.digest()
        if store is not None:
            hit = store.lookup(digest)
            if hit is not None:
                hits += 1
                # Re-key: the digest identifies the simulation, but the
                # caller's key/labels name this sweep's view of it.
                hit.key = point.key
                hit.variant = point.variant.label
                finish(index, hit)
                continue
        pending.append((
            index, point.key, digest,
            (point.workload.name, point.defense.name,
             point.variant.label, point.scale),
            point.workload, point.defense, point.config(),
            point.max_cycles))

    if pending:
        if jobs > 1 and len(pending) > 1:
            with multiprocessing.Pool(processes=min(jobs, len(pending))
                                      ) as pool:
                for index, result in pool.imap_unordered(
                        _simulate_payload, pending, chunksize=1):
                    if store is not None:
                        store.store(result)
                    finish(index, result)
        else:
            for payload in pending:
                index, result = _simulate_payload(payload)
                if store is not None:
                    store.store(result)
                finish(index, result)

    results = ResultSet()
    for slot in slots:
        assert slot is not None
        results.add(slot)
    return SweepReport(results=results, cache_hits=hits,
                       executed=len(pending), jobs=jobs)


def run_sweep(sweep: Sweep,
              jobs: Optional[int] = None,
              cache: Union[None, bool, str, ResultCache] = None,
              progress: Optional[ProgressFn] = None) -> SweepReport:
    """Expand ``sweep`` and execute every point."""
    return run_points(sweep.points(), jobs=jobs, cache=cache,
                      progress=progress)
