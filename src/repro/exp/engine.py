"""Sweep executor: cache lookups, then fan-out over worker processes.

Simulations are pure CPU-bound functions of (programs, defense, config,
cycle cap), so a sweep is embarrassingly parallel: points missing from
the cache are shipped to a ``multiprocessing`` pool (``jobs > 1``) or
run inline (``jobs == 1``), and both paths produce identical
:class:`~repro.exp.resultset.PointResult` summaries — the determinism
test in ``tests/test_exp.py`` asserts byte-identical JSON.

Workload programs are built once per (workload, scale) per process and
shared by every defense/variant point, instead of being rebuilt per
pair; payloads ship the (small) workload spec, not the program list.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.config import SystemConfig
from repro.defenses.base import Defense
from repro.exp.cache import ResultCache, resolve_cache
from repro.exp.resultset import PointResult, ResultSet
from repro.exp.spec import Sweep, SweepPoint
from repro.pipeline.program import Program
from repro.sim.simulator import Simulator
from repro.workloads.spec import WorkloadSpec

ENV_JOBS = "REPRO_JOBS"

#: ``progress(done, total, result)`` — invoked once per finished point.
ProgressFn = Callable[[int, int, PointResult], None]


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker-count policy: argument > ``REPRO_JOBS`` env > 1.

    ``0`` (or any non-positive value) means "all cores".
    """
    if jobs is None:
        jobs = int(os.environ.get(ENV_JOBS, "1"))
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def format_engine_summary(meta: Dict) -> str:
    """The one-line engine summary shown by the CLI and the benches."""
    return ("engine: %(points)d points, %(cache_hits)d cache hits, "
            "%(executed)d simulated, jobs=%(jobs)d" % meta)


@dataclass
class SweepReport:
    """Outcome of one engine invocation."""

    results: ResultSet
    cache_hits: int = 0
    executed: int = 0
    jobs: int = 1
    #: Wall-clock seconds for the whole engine invocation (cache
    #: lookups + simulation + gather), measured by :func:`run_points`.
    wall_seconds: float = 0.0

    @property
    def total(self) -> int:
        return len(self.results)

    def meta(self) -> Dict:
        return {"points": self.total, "cache_hits": self.cache_hits,
                "executed": self.executed, "jobs": self.jobs}

    def summary(self) -> str:
        return format_engine_summary(self.meta())

    # -- per-point timing telemetry (scheduler tuning) ------------------

    def point_timings(self) -> List[Dict]:
        """Per-point timing rows: seconds + simulated cycles, executed
        points only (cache hits cost no simulation time), slowest
        first."""
        rows = [
            {"key": point.key, "seconds": point.wall_seconds,
             "cycles": point.cycles,
             "skipped_cycles": point.skipped_cycles,
             "skipped_by_class": dict(point.skipped_by_class)}
            for point in self.results if not point.cached]
        rows.sort(key=lambda row: -row["seconds"])
        return rows

    def skipped_by_class(self) -> Dict[str, int]:
        """Aggregate skipped-cycles-per-stall-class telemetry over the
        executed points (cache hits carry none).  A skip window counts
        toward every class active in it, so the values can sum to more
        than the total skipped cycles."""
        totals: Dict[str, int] = {}
        for point in self.results:
            if point.cached:
                continue
            for cls, cycles in point.skipped_by_class.items():
                totals[cls] = totals.get(cls, 0) + cycles
        return totals

    def sim_seconds(self) -> float:
        """Total seconds spent simulating (sums worker time, so it can
        exceed ``wall_seconds`` for parallel runs)."""
        return sum(point.wall_seconds for point in self.results
                   if not point.cached)

    def timing_meta(self) -> Dict:
        """The timing block surfaced by ``--json`` consumers."""
        return {"wall_seconds": round(self.wall_seconds, 6),
                "sim_seconds": round(self.sim_seconds(), 6),
                "skipped_by_class": self.skipped_by_class(),
                "points": self.point_timings()}

    def timing_summary(self, slowest: int = 3) -> str:
        """One-line timing summary for stderr, e.g.
        ``timing: 1.24s wall, 3.90s simulating; slowest: k1 (2.1s), ...``
        """
        parts = ["timing: %.2fs wall, %.2fs simulating"
                 % (self.wall_seconds, self.sim_seconds())]
        rows = self.point_timings()[:max(0, slowest)]
        if rows:
            parts.append("slowest: " + ", ".join(
                "%s (%.2fs, %d cycles)"
                % (row["key"], row["seconds"], row["cycles"])
                for row in rows))
        return "; ".join(parts)


# One payload per cache miss; a plain tuple so it pickles cheaply:
# (index, key, digest, meta(workload, defense, variant, scale),
#  workload_spec, defense, cfg, max_cycles, max_insts)
_Payload = Tuple[int, str, str, Tuple[str, str, str, float],
                 WorkloadSpec, Defense, SystemConfig, int, Optional[int]]

#: Per-process (workload-content, scale) -> programs memo.  In serial
#: runs this is the only copy; each pool worker grows its own.  Safe
#: because the Simulator never mutates Program state (regression-tested
#: in tests/test_simulator.py).
_PROGRAMS_MEMO: Dict[Tuple[str, float], List[Program]] = {}


def _build_programs(spec: WorkloadSpec, scale: float) -> List[Program]:
    # Key by the spec's full content, not its display name: distinct
    # specs that share a name must not alias each other's programs.
    memo_key = (json.dumps(dataclasses.asdict(spec), sort_keys=True,
                           default=str), scale)
    if memo_key not in _PROGRAMS_MEMO:
        _PROGRAMS_MEMO[memo_key] = spec.build(scale)
    return _PROGRAMS_MEMO[memo_key]


def _worker_init() -> None:
    """Pool-worker initializer: re-load registry plugins.

    Plugin-defined classes (hierarchies, defenses) pickle by module
    reference; under the ``spawn`` start method a fresh worker has
    never executed the plugin files, so the payloads would fail to
    unpickle.  Loading is memoized, so under ``fork`` (where the
    parent's modules are inherited) this is a no-op.
    """
    from repro.registry.plugins import load_plugins
    load_plugins()


def _simulate_payload(payload: _Payload) -> Tuple[int, PointResult]:
    """Run one point (executed inline or inside a worker process)."""
    (index, key, digest, meta, spec, defense, cfg,
     max_cycles, max_insts) = payload
    workload, defense_name, variant, scale = meta
    started = time.perf_counter()
    programs = _build_programs(spec, scale)
    outcome = Simulator(programs, defense, cfg=cfg).run(
        max_cycles=max_cycles, max_insts=max_insts)
    elapsed = time.perf_counter() - started
    return index, PointResult(
        key=key,
        workload=workload,
        defense=defense_name,
        variant=variant,
        scale=scale,
        digest=digest,
        cycles=outcome.cycles,
        insts=outcome.insts,
        finished=outcome.finished,
        stats=outcome.stats.as_dict(),
        wall_seconds=elapsed,
        skipped_cycles=outcome.skipped_cycles,
        skipped_by_class=dict(outcome.skipped_by_class),
    )


def run_points(points: Sequence[SweepPoint],
               jobs: Optional[int] = None,
               cache: Union[None, bool, str, ResultCache,
                            object] = None,
               progress: Optional[ProgressFn] = None) -> SweepReport:
    """Execute ``points``, consulting/filling the cache, and return a
    report whose :class:`ResultSet` preserves the input point order.

    ``cache`` accepts anything :func:`repro.exp.cache.resolve_cache`
    does — including a :class:`repro.store.ResultStore` (or
    :class:`repro.store.StoreCache`), which records executed points
    into the sqlite result store write-through as they complete."""
    jobs = resolve_jobs(jobs)
    store = resolve_cache(cache)
    total = len(points)
    started = time.perf_counter()
    # Scope program reuse to this invocation (workers get their own
    # per-process memo for the lifetime of the pool).
    _PROGRAMS_MEMO.clear()
    # Fail fast on composed point lists with colliding keys, before any
    # simulation time is spent (Sweep.points() already checks within
    # one sweep).
    seen_keys = set()
    for point in points:
        if point.key in seen_keys:
            raise ValueError(
                "duplicate sweep point %r in composed point list; give "
                "colliding defenses or variants distinct names/labels"
                % point.key)
        seen_keys.add(point.key)
    slots: List[Optional[PointResult]] = [None] * total
    done = 0

    def finish(index: int, result: PointResult) -> None:
        nonlocal done
        slots[index] = result
        done += 1
        if progress is not None:
            progress(done, total, result)

    pending: List[_Payload] = []
    hits = 0
    for index, point in enumerate(points):
        digest = point.digest()
        if store is not None:
            hit = store.lookup(digest)
            if hit is not None:
                hits += 1
                # Re-key: the digest identifies the simulation, but the
                # caller's key/labels name this sweep's view of it.
                hit.key = point.key
                hit.variant = point.variant.label
                finish(index, hit)
                continue
        pending.append((
            index, point.key, digest,
            (point.workload.name, point.defense.name,
             point.variant.label, point.scale),
            point.workload, point.defense, point.config(),
            point.max_cycles, point.max_insts))

    if pending:
        if jobs > 1 and len(pending) > 1:
            with multiprocessing.Pool(processes=min(jobs, len(pending)),
                                      initializer=_worker_init) as pool:
                for index, result in pool.imap_unordered(
                        _simulate_payload, pending, chunksize=1):
                    if store is not None:
                        store.store(result)
                    finish(index, result)
        else:
            for payload in pending:
                index, result = _simulate_payload(payload)
                if store is not None:
                    store.store(result)
                finish(index, result)

    results = ResultSet()
    for slot in slots:
        assert slot is not None
        results.add(slot)
    return SweepReport(results=results, cache_hits=hits,
                       executed=len(pending), jobs=jobs,
                       wall_seconds=time.perf_counter() - started)


def run_sweep(sweep: Sweep,
              jobs: Optional[int] = None,
              cache: Union[None, bool, str, ResultCache,
                           object] = None,
              progress: Optional[ProgressFn] = None) -> SweepReport:
    """Expand ``sweep`` and execute every point."""
    return run_points(sweep.points(), jobs=jobs, cache=cache,
                      progress=progress)
