"""Sweep executor: cache lookups, then fan-out over worker processes.

Simulations are pure CPU-bound functions of (programs, defense, config,
cycle cap), so a sweep is embarrassingly parallel: points missing from
the cache are shipped to a ``multiprocessing`` pool (``jobs > 1``) or
run inline (``jobs == 1``), and both paths produce identical
:class:`~repro.exp.resultset.PointResult` summaries — the determinism
test in ``tests/test_exp.py`` asserts byte-identical JSON.

Workload programs are built once per (workload, scale) per process and
shared by every defense/variant point, instead of being rebuilt per
pair; payloads ship the (small) workload spec, not the program list.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import re
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.stats import Stats
from repro.config import SystemConfig
from repro.defenses.base import Defense
from repro.exp.cache import ResultCache, resolve_cache
from repro.exp.resultset import PointResult, ResultSet
from repro.exp.spec import RegionSampling, Sweep, SweepPoint
from repro.obs import ObsConfig, Tracer, build_tracer
from repro.pipeline.program import Program
from repro.sim.simulator import RunResult, Simulator
from repro.workloads.spec import WorkloadSpec

ENV_JOBS = "REPRO_JOBS"

#: Default checkpoint database for warm-start/sampling policies when
#: the engine is not handed one explicitly (and cannot derive one from
#: a store-backed ``cache=``).
ENV_CHECKPOINT_DB = "REPRO_CHECKPOINT_DB"

#: ``progress(done, total, result)`` — invoked once per finished point.
ProgressFn = Callable[[int, int, PointResult], None]


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker-count policy: argument > ``REPRO_JOBS`` env > 1.

    ``0`` (or any non-positive value) means "all cores".
    """
    if jobs is None:
        jobs = int(os.environ.get(ENV_JOBS, "1"))
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def format_engine_summary(meta: Dict) -> str:
    """The one-line engine summary shown by the CLI and the benches."""
    return ("engine: %(points)d points, %(cache_hits)d cache hits, "
            "%(executed)d simulated, jobs=%(jobs)d" % meta)


@dataclass
class SweepReport:
    """Outcome of one engine invocation."""

    results: ResultSet
    cache_hits: int = 0
    executed: int = 0
    jobs: int = 1
    #: Wall-clock seconds for the whole engine invocation (cache
    #: lookups + simulation + gather), measured by :func:`run_points`.
    wall_seconds: float = 0.0

    @property
    def total(self) -> int:
        return len(self.results)

    def meta(self) -> Dict:
        return {"points": self.total, "cache_hits": self.cache_hits,
                "executed": self.executed, "jobs": self.jobs}

    def summary(self) -> str:
        return format_engine_summary(self.meta())

    # -- per-point timing telemetry (scheduler tuning) ------------------

    def point_timings(self) -> List[Dict]:
        """Per-point timing rows: seconds + simulated cycles for every
        point, slowest first.  Store-replayed (cached) points appear
        with ``seconds`` 0.0 and ``cached`` True — one row per point,
        so timing tables keep a fixed column count across mixed
        cached/fresh sweeps."""
        rows = [
            {"key": point.key,
             "seconds": 0.0 if point.cached else point.wall_seconds,
             "cycles": point.cycles,
             "cached": point.cached,
             "warm_insts": point.warm_insts,
             "skipped_cycles": point.skipped_cycles,
             "skipped_by_class": dict(point.skipped_by_class)}
            for point in self.results]
        rows.sort(key=lambda row: -row["seconds"])
        return rows

    def warm_insts(self) -> int:
        """Total warm-up instructions avoided by checkpoint restores
        across the executed points (0 when warm-start never fired)."""
        return sum(point.warm_insts for point in self.results
                   if not point.cached)

    def skipped_by_class(self) -> Dict[str, int]:
        """Aggregate skipped-cycles-per-stall-class telemetry over the
        executed points (cache hits carry none).  A skip window counts
        toward every class active in it, so the values can sum to more
        than the total skipped cycles."""
        totals: Dict[str, int] = {}
        for point in self.results:
            if point.cached:
                continue
            for cls, cycles in point.skipped_by_class.items():
                totals[cls] = totals.get(cls, 0) + cycles
        return totals

    def sim_seconds(self) -> float:
        """Total seconds spent simulating (sums worker time, so it can
        exceed ``wall_seconds`` for parallel runs)."""
        return sum(point.wall_seconds for point in self.results
                   if not point.cached)

    def timing_meta(self) -> Dict:
        """The timing block surfaced by ``--json`` consumers."""
        return {"wall_seconds": round(self.wall_seconds, 6),
                "sim_seconds": round(self.sim_seconds(), 6),
                "warm_insts": self.warm_insts(),
                "skipped_by_class": self.skipped_by_class(),
                "points": self.point_timings()}

    def trace_paths(self) -> List[str]:
        """Every trace file the points of this run exported (empty for
        untraced runs)."""
        paths: List[str] = []
        for point in self.results:
            paths.extend(point.trace_paths)
        return paths

    def runlog_records(self, slowest: int = 3) -> List[Dict]:
        """The structured run-log records for this invocation.

        ``--json`` consumers get these as schema-versioned JSONL on
        stderr (via :class:`repro.obs.runlog.RunLog`) instead of the
        free-form ``summary()``/``timing_summary()`` text, so the
        engine telemetry is machine-readable without polluting the
        stdout payload."""
        records: List[Dict] = [
            dict(self.meta(), event="engine-summary"),
            dict(self.timing_meta(), event="engine-timing",
                 points=None),
        ]
        # timing_meta embeds every per-point row; the runlog keeps the
        # aggregate record slim and emits only the slowest points as
        # their own records.
        records[1].pop("points")
        for row in self.point_timings()[:max(0, slowest)]:
            if not row["cached"]:
                records.append(dict(row, event="point-timing"))
        traces = self.trace_paths()
        if traces:
            records.append({"event": "trace-export", "paths": traces})
        return records

    def timing_summary(self, slowest: int = 3) -> str:
        """One-line timing summary for stderr, e.g.
        ``timing: 1.24s wall, 3.90s simulating; slowest: k1 (2.1s), ...``
        """
        parts = ["timing: %.2fs wall, %.2fs simulating"
                 % (self.wall_seconds, self.sim_seconds())]
        warm = self.warm_insts()
        if warm:
            parts.append("warm-start avoided %d warm-up insts" % warm)
        rows = [row for row in self.point_timings()[:max(0, slowest)]
                if not row["cached"]]
        if rows:
            parts.append("slowest: " + ", ".join(
                "%s (%.2fs, %d cycles)"
                % (row["key"], row["seconds"], row["cycles"])
                for row in rows))
        return "; ".join(parts)


# One payload per cache miss; a plain tuple so it pickles cheaply:
# (index, key, digest, meta(workload, defense, variant, scale),
#  workload_spec, defense, cfg, max_cycles, max_insts,
#  warmup_insts, sampling, prefix_digest, checkpoint_db_path,
#  obs_config-with-per-point-out-or-None)
_Payload = Tuple[int, str, str, Tuple[str, str, str, float],
                 WorkloadSpec, Defense, SystemConfig, int, Optional[int],
                 Optional[int], Optional[RegionSampling], Optional[str],
                 Optional[str], Optional[ObsConfig]]

#: Per-process (workload-content, scale) -> programs memo.  In serial
#: runs this is the only copy; each pool worker grows its own.  Safe
#: because the Simulator never mutates Program state (regression-tested
#: in tests/test_simulator.py).
_PROGRAMS_MEMO: Dict[Tuple[str, float], List[Program]] = {}


def _build_programs(spec: WorkloadSpec, scale: float) -> List[Program]:
    # Key by the spec's full content, not its display name: distinct
    # specs that share a name must not alias each other's programs.
    memo_key = (json.dumps(dataclasses.asdict(spec), sort_keys=True,
                           default=str), scale)
    if memo_key not in _PROGRAMS_MEMO:
        _PROGRAMS_MEMO[memo_key] = spec.build(scale)
    return _PROGRAMS_MEMO[memo_key]


#: Per-process checkpoint-store memo.  Payloads carry the database
#: *path*, not a live store: sqlite connections cannot cross process
#: boundaries, so each worker opens (and keeps) its own.
_CKPT_STORES: Dict[str, object] = {}


def _checkpoint_store(path: Optional[str]):
    if path is None:
        return None
    store = _CKPT_STORES.get(path)
    if store is None:
        from repro.store.db import ResultStore, RunMeta
        # Real timestamps, so `store prune --older-than` can age
        # checkpoints out.
        store = ResultStore(path, run_meta=RunMeta.capture())
        _CKPT_STORES[path] = store
    return store


def _worker_init() -> None:
    """Pool-worker initializer: re-load registry plugins.

    Plugin-defined classes (hierarchies, defenses) pickle by module
    reference; under the ``spawn`` start method a fresh worker has
    never executed the plugin files, so the payloads would fail to
    unpickle.  Loading is memoized, so under ``fork`` (where the
    parent's modules are inherited) this is a no-op.
    """
    from repro.registry.plugins import load_plugins
    load_plugins()
    # Under ``fork`` the parent's open sqlite connections are inherited
    # but must never be used from the child: drop the memo so each
    # worker opens its own.
    _CKPT_STORES.clear()


def _halted(sim: Simulator) -> bool:
    return all(core.halted for core in sim.cores)


def _result_of(sim: Simulator) -> RunResult:
    """The :class:`RunResult` ``sim.run()`` would return *without*
    stepping — for targets a previous ``run`` leg already reached
    (calling ``run`` again would step one spurious cycle)."""
    sim.stats.set("sim.cycles", sim.cycle)
    return RunResult(cycles=sim.cycle, stats=sim.stats,
                     finished=_halted(sim), cores=sim.cores,
                     skipped_cycles=sim.skipped_cycles,
                     skipped_by_class=dict(sim.skipped_by_class),
                     veto_counts=dict(sim.veto_counts))


def _save_checkpoint(store, prefix_digest: str, inst_count: int,
                     sim: Simulator, max_cycles: int,
                     workload: str, defense: str) -> None:
    """Persist ``sim`` at the ``inst_count`` boundary — but only when
    the boundary was genuinely reached: a run that halted or hit the
    cycle cap before committing ``inst_count`` instructions is a
    complete result, not a warm-up prefix, and restoring it as one
    would diverge from a cold run with a longer horizon."""
    from repro.sim.checkpoint import CHECKPOINT_FORMAT
    if _halted(sim) or sim.cycle >= max_cycles:
        return
    if sim.committed_insts() < inst_count:
        return
    store.checkpoint_save(
        prefix_digest, inst_count, sim.snapshot(),
        fmt=CHECKPOINT_FORMAT, insts=sim.committed_insts(),
        cycles=sim.cycle, workload=workload, defense=defense)


def _run_cold(spec: WorkloadSpec, defense: Defense, cfg: SystemConfig,
              scale: float, max_cycles: int, max_insts: Optional[int],
              tracer: Optional[Tracer] = None) -> Tuple[RunResult, int]:
    programs = _build_programs(spec, scale)
    sim = Simulator(programs, defense, cfg=cfg)
    if tracer is not None:
        sim.attach_obs(tracer)
    outcome = sim.run(max_cycles=max_cycles, max_insts=max_insts)
    return outcome, 0


def _run_warm(spec: WorkloadSpec, defense: Defense, cfg: SystemConfig,
              scale: float, max_cycles: int, max_insts: Optional[int],
              warmup: int, prefix_digest: str, ckpt_path: Optional[str],
              workload: str, defense_name: str,
              tracer: Optional[Tracer] = None
              ) -> Tuple[RunResult, int]:
    """Warm-start policy: restore the warm-up prefix from a checkpoint
    when one exists, create it (once) when it does not.

    Both paths are byte-identical to a cold run of the same point:
    ``Simulator.run`` may be split at any committed-instruction
    boundary, and the snapshot blob round-trips exactly (regression:
    the checkpoint-equivalence matrix in
    ``tests/test_scheduler_equivalence.py``).
    """
    store = _checkpoint_store(ckpt_path)
    if store is None or \
            (max_insts is not None and warmup >= max_insts):
        # No checkpoint database, or the warm-up prefix covers the
        # whole measured horizon — nothing to warm-start.
        return _run_cold(spec, defense, cfg, scale, max_cycles,
                         max_insts, tracer=tracer)
    record = store.checkpoint_lookup(prefix_digest, warmup)
    if record is not None:
        sim = Simulator.restore(record.blob)
        if tracer is not None:
            sim.attach_obs(tracer)
            tracer.emit_marker("checkpoint-restore", sim.cycle,
                               {"insts": record.insts})
        if _halted(sim) or sim.cycle >= max_cycles or (
                max_insts is not None
                and sim.committed_insts() >= max_insts):
            return _result_of(sim), record.insts
        return sim.run(max_cycles=max_cycles,
                       max_insts=max_insts), record.insts
    # Miss: warm up cold, snapshot the boundary for every later run
    # that shares this prefix, then finish the measured region.
    programs = _build_programs(spec, scale)
    sim = Simulator(programs, defense, cfg=cfg)
    if tracer is not None:
        sim.attach_obs(tracer)
    leg = sim.run(max_cycles=max_cycles, max_insts=warmup)
    _save_checkpoint(store, prefix_digest, warmup, sim, max_cycles,
                     workload, defense_name)
    if leg.finished or sim.cycle >= max_cycles or (
            max_insts is not None
            and sim.committed_insts() >= max_insts):
        return leg, 0
    return sim.run(max_cycles=max_cycles, max_insts=max_insts), 0


def _run_window(sim: Simulator, end: int, max_cycles: int
                ) -> Tuple[int, Dict[str, float], int]:
    """Simulate ``sim`` up to the ``end`` instruction boundary and
    return ``(cycle_delta, stats_delta, inst_delta)`` for the window.
    ``sim.cycles`` is excluded from the stats delta (it is a snapshot,
    not a counter); the cycle delta carries that information."""
    before_cycle = sim.cycle
    before_insts = sim.committed_insts()
    before = sim.stats.as_dict()
    if not _halted(sim) and sim.cycle < max_cycles and \
            sim.committed_insts() < end:
        sim.run(max_cycles=max_cycles, max_insts=end)
    after = sim.stats.as_dict()
    delta: Dict[str, float] = {}
    for name in sorted(after):
        if name == "sim.cycles":
            continue
        change = after[name] - before.get(name, 0.0)
        if change:
            delta[name] = change
    return (sim.cycle - before_cycle, delta,
            sim.committed_insts() - before_insts)


def _run_sampled(spec: WorkloadSpec, defense: Defense,
                 cfg: SystemConfig, scale: float, max_cycles: int,
                 max_insts: int, sampling: RegionSampling,
                 prefix_digest: Optional[str],
                 ckpt_path: Optional[str], workload: str,
                 defense_name: str,
                 tracer: Optional[Tracer] = None
                 ) -> Tuple[RunResult, int]:
    """SimPoint-style region sampling over the ``max_insts`` horizon.

    The horizon is cut into ``sampling.regions`` equal regions; only a
    ``sampling.window_insts``-instruction window at the head of each is
    simulated, and each window's stat deltas are scaled by
    ``region_insts / window_insts`` before summing into one synthetic
    result.  A window larger than its region is clamped (weight 1.0),
    so a huge window degenerates to the exact, unsampled run.

    Two execution paths produce *identical* window deltas: a generator
    pass (one simulator runs the whole horizon, snapshotting each
    region boundary into the checkpoint store) and a restore pass
    (each window starts from its boundary checkpoint, paying nothing
    for the instructions before it).  The restore pass is used when
    every boundary checkpoint is already present.
    """
    count = sampling.regions
    window = sampling.window_insts
    starts = [(i * max_insts) // count for i in range(count)]
    region_ends = starts[1:] + [max_insts]
    ends = [min(start + window, region_end)
            for start, region_end in zip(starts, region_ends)]
    store = _checkpoint_store(ckpt_path)

    records = None
    if store is not None and count > 1:
        found = [store.checkpoint_lookup(prefix_digest, start)
                 for start in starts[1:]]
        if all(record is not None for record in found):
            records = found

    windows: List[Tuple[int, Dict[str, float], int]] = []
    warm_insts = 0
    if records is not None:
        # Restore pass: region 0 starts cold, every later window from
        # its boundary checkpoint.
        for i in range(count):
            if i == 0:
                programs = _build_programs(spec, scale)
                sim = Simulator(programs, defense, cfg=cfg)
                if tracer is not None:
                    sim.attach_obs(tracer)
            else:
                record = records[i - 1]
                sim = Simulator.restore(record.blob)
                warm_insts += record.insts
                if tracer is not None:
                    sim.attach_obs(tracer)
                    tracer.emit_marker("checkpoint-restore", sim.cycle,
                                       {"insts": record.insts})
            windows.append(_run_window(sim, ends[i], max_cycles))
    else:
        # Generator pass: one simulator sweeps the horizon; the gaps
        # between windows are simulated (and their boundaries
        # snapshotted) but excluded from every measurement.
        programs = _build_programs(spec, scale)
        sim = Simulator(programs, defense, cfg=cfg)
        if tracer is not None:
            sim.attach_obs(tracer)
        for i in range(count):
            if not _halted(sim) and sim.cycle < max_cycles and \
                    sim.committed_insts() < starts[i]:
                sim.run(max_cycles=max_cycles, max_insts=starts[i])
            if i > 0 and store is not None:
                _save_checkpoint(store, prefix_digest, starts[i], sim,
                                 max_cycles, workload, defense_name)
            windows.append(_run_window(sim, ends[i], max_cycles))

    # Weighted combine: each window stands in for its whole region.
    stats = Stats()
    totals: Dict[str, float] = {}
    est_cycles = 0.0
    measured_insts = 0
    measured_cycles = 0
    for i in range(count):
        cycle_delta, delta, inst_delta = windows[i]
        span = ends[i] - starts[i]
        weight = ((region_ends[i] - starts[i]) / span if span > 0
                  else 0.0)
        est_cycles += weight * cycle_delta
        measured_cycles += cycle_delta
        measured_insts += inst_delta
        for name in delta:
            totals[name] = totals.get(name, 0.0) + weight * delta[name]
    for name in sorted(totals):
        stats.set(name, totals[name])
    cycles = int(round(est_cycles))
    stats.set("sim.cycles", cycles)
    # Marker stats: a sampled result is an *estimate* — consumers can
    # tell (and the measured-vs-estimated ratio is the speedup).
    stats.set("sampled.regions", float(count))
    stats.set("sampled.window_insts", float(window))
    stats.set("sampled.measured_insts", float(measured_insts))
    stats.set("sampled.measured_cycles", float(measured_cycles))
    outcome = RunResult(cycles=cycles, stats=stats, finished=False,
                        cores=[])
    return outcome, warm_insts


def _simulate_payload(payload: _Payload) -> Tuple[int, PointResult]:
    """Run one point (executed inline or inside a worker process)."""
    (index, key, digest, meta, spec, defense, cfg,
     max_cycles, max_insts, warmup, sampling, prefix_digest,
     ckpt_path, obs) = payload
    workload, defense_name, variant, scale = meta
    tracer = build_tracer(obs) if obs is not None else None
    started = time.perf_counter()
    if sampling is not None:
        outcome, warm = _run_sampled(
            spec, defense, cfg, scale, max_cycles, max_insts, sampling,
            prefix_digest, ckpt_path, workload, defense_name,
            tracer=tracer)
    elif warmup is not None:
        outcome, warm = _run_warm(
            spec, defense, cfg, scale, max_cycles, max_insts, warmup,
            prefix_digest, ckpt_path, workload, defense_name,
            tracer=tracer)
    else:
        outcome, warm = _run_cold(spec, defense, cfg, scale,
                                  max_cycles, max_insts, tracer=tracer)
    elapsed = time.perf_counter() - started
    metrics = None
    trace_paths: List[str] = []
    if tracer is not None:
        from repro.obs.sinks import export_traces
        trace_paths = export_traces(
            tracer, obs.sinks, obs.out,
            meta={"key": key, "workload": workload,
                  "defense": defense_name, "variant": variant,
                  "scale": scale, "digest": digest})
        if tracer.sampler is not None:
            metrics = tracer.sampler.series()
    # Architectural-register digest for the differential fuzz oracles
    # (docs/fuzzing.md).  Sampled runs carry no live cores -> None.
    regs_digest = None
    if outcome.cores:
        regs_blob = json.dumps(
            [list(core.arch_regs()) for core in outcome.cores])
        regs_digest = hashlib.sha256(
            regs_blob.encode("utf-8")).hexdigest()
    return index, PointResult(
        key=key,
        workload=workload,
        defense=defense_name,
        variant=variant,
        scale=scale,
        digest=digest,
        cycles=outcome.cycles,
        insts=outcome.insts,
        finished=outcome.finished,
        stats=outcome.stats.as_dict(),
        wall_seconds=elapsed,
        skipped_cycles=outcome.skipped_cycles,
        skipped_by_class=dict(outcome.skipped_by_class),
        warm_insts=warm,
        metrics=metrics,
        trace_paths=trace_paths,
        regs_digest=regs_digest,
    )


def resolve_checkpoints(checkpoints: Union[None, bool, str] = None,
                        cache: object = None) -> Optional[str]:
    """Checkpoint-database policy: explicit path > ``False`` (off) >
    ``REPRO_CHECKPOINT_DB`` env > the sqlite file behind a
    store-backed ``cache``.

    Returns the database path, or ``None`` when warm-start/sampling
    should run without persistence.  ``checkpoints=True`` demands a
    database and raises :class:`ValueError` when none can be derived.
    """
    if checkpoints is False:
        return None
    if isinstance(checkpoints, str):
        return checkpoints
    path = os.environ.get(ENV_CHECKPOINT_DB) or None
    if path is None and cache is not None:
        # Duck-typed: ResultStore carries checkpoint_save/.path
        # directly; StoreCache wraps one as .db.
        if hasattr(cache, "checkpoint_save"):
            path = cache.path
        elif hasattr(cache, "db") and \
                hasattr(cache.db, "checkpoint_save"):
            path = cache.db.path
    if checkpoints is True and path is None:
        raise ValueError(
            "checkpoints=True, but no checkpoint database: pass a "
            "path, set %s, or use a store-backed cache"
            % ENV_CHECKPOINT_DB)
    return path


def _obs_for_point(obs: ObsConfig, key: str,
                   multi: bool) -> ObsConfig:
    """Per-point obs config: a single traced point writes exactly to
    ``obs.out``; multi-point sweeps insert a sanitized point key before
    the extension so every point gets its own trace file."""
    if not multi:
        return obs
    stem, suffix = obs.out, ""
    for known in (".timeline.json", ".jsonl", ".json"):
        if stem.endswith(known):
            stem, suffix = stem[:-len(known)], known
            break
    safe = re.sub(r"[^A-Za-z0-9._@-]+", "_", key)
    return dataclasses.replace(obs, out=stem + "-" + safe + suffix)


def _store_metrics(store: object, result: PointResult) -> None:
    """Write-through a traced point's metrics series when the cache is
    backed by a :class:`repro.store.ResultStore` (duck-typed like
    :func:`resolve_checkpoints`)."""
    if result.metrics is None:
        return
    db = store
    if not hasattr(db, "metrics_save"):
        db = getattr(store, "db", None)
    if db is not None and hasattr(db, "metrics_save"):
        db.metrics_save(result.digest, result.metrics)


def run_points(points: Sequence[SweepPoint],
               jobs: Optional[int] = None,
               cache: Union[None, bool, str, ResultCache,
                            object] = None,
               progress: Optional[ProgressFn] = None,
               checkpoints: Union[None, bool, str] = None,
               obs: Optional[ObsConfig] = None
               ) -> SweepReport:
    """Execute ``points``, consulting/filling the cache, and return a
    report whose :class:`ResultSet` preserves the input point order.

    ``cache`` accepts anything :func:`repro.exp.cache.resolve_cache`
    does — including a :class:`repro.store.ResultStore` (or
    :class:`repro.store.StoreCache`), which records executed points
    into the sqlite result store write-through as they complete.

    ``checkpoints`` names the warm-start checkpoint database (see
    :func:`resolve_checkpoints`); points with ``warmup_insts`` or
    ``sampling`` set use it to skip re-simulating shared prefixes.

    ``obs`` arms run-scoped tracing (see ``docs/observability.md``):
    every point simulates with an attached tracer and exports through
    the configured sinks.  Tracing forces ``jobs=1`` and bypasses
    cache *reads* (a cache hit produces no trace) but still writes
    results — traced and untraced runs are byte-identical, pinned by
    ``tests/test_scheduler_equivalence.py``."""
    jobs = resolve_jobs(jobs)
    if obs is not None:
        jobs = 1
    store = resolve_cache(cache)
    ckpt_path = resolve_checkpoints(checkpoints, cache=store)
    total = len(points)
    started = time.perf_counter()
    # Scope program reuse to this invocation (workers get their own
    # per-process memo for the lifetime of the pool).
    _PROGRAMS_MEMO.clear()
    # Fail fast on composed point lists with colliding keys, before any
    # simulation time is spent (Sweep.points() already checks within
    # one sweep).
    seen_keys = set()
    for point in points:
        if point.key in seen_keys:
            raise ValueError(
                "duplicate sweep point %r in composed point list; give "
                "colliding defenses or variants distinct names/labels"
                % point.key)
        seen_keys.add(point.key)
        if point.sampling is not None:
            if point.max_insts is None:
                raise ValueError(
                    "point %r: region sampling requires max_insts "
                    "(the sampled horizon)" % point.key)
            if point.warmup_insts is not None:
                raise ValueError(
                    "point %r: warmup_insts and sampling are mutually "
                    "exclusive policies" % point.key)
    slots: List[Optional[PointResult]] = [None] * total
    done = 0

    def finish(index: int, result: PointResult) -> None:
        nonlocal done
        slots[index] = result
        done += 1
        if progress is not None:
            progress(done, total, result)

    pending: List[_Payload] = []
    hits = 0
    multi = len(points) > 1
    for index, point in enumerate(points):
        digest = point.digest()
        if store is not None and obs is None:
            hit = store.lookup(digest)
            if hit is not None:
                hits += 1
                # Re-key: the digest identifies the simulation, but the
                # caller's key/labels name this sweep's view of it.
                hit.key = point.key
                hit.variant = point.variant.label
                finish(index, hit)
                continue
        needs_prefix = (point.warmup_insts is not None
                        or point.sampling is not None)
        pending.append((
            index, point.key, digest,
            (point.workload.name, point.defense.name,
             point.variant.label, point.scale),
            point.workload, point.defense, point.config(),
            point.max_cycles, point.max_insts,
            point.warmup_insts, point.sampling,
            point.prefix_digest() if needs_prefix else None,
            ckpt_path if needs_prefix else None,
            _obs_for_point(obs, point.key, multi)
            if obs is not None else None))

    if pending:
        if jobs > 1 and len(pending) > 1:
            with multiprocessing.Pool(processes=min(jobs, len(pending)),
                                      initializer=_worker_init) as pool:
                for index, result in pool.imap_unordered(
                        _simulate_payload, pending, chunksize=1):
                    if store is not None:
                        store.store(result)
                    finish(index, result)
        else:
            for payload in pending:
                index, result = _simulate_payload(payload)
                if store is not None:
                    store.store(result)
                    _store_metrics(store, result)
                finish(index, result)

    results = ResultSet()
    for slot in slots:
        assert slot is not None
        results.add(slot)
    return SweepReport(results=results, cache_hits=hits,
                       executed=len(pending), jobs=jobs,
                       wall_seconds=time.perf_counter() - started)


def run_sweep(sweep: Sweep,
              jobs: Optional[int] = None,
              cache: Union[None, bool, str, ResultCache,
                           object] = None,
              progress: Optional[ProgressFn] = None,
              checkpoints: Union[None, bool, str] = None,
              obs: Optional[ObsConfig] = None
              ) -> SweepReport:
    """Expand ``sweep`` and execute every point."""
    return run_points(sweep.points(), jobs=jobs, cache=cache,
                      progress=progress, checkpoints=checkpoints,
                      obs=obs)
