"""The experiment engine: declarative sweeps, parallel execution and an
on-disk result cache.

Every figure, CLI command and bench funnels through this package::

    from repro.exp import Sweep, run_sweep
    report = run_sweep(
        Sweep(name="size", workloads=["mcf"], defenses=["GhostMinion"],
              scale=0.1),
        jobs=4, cache=True)
    for point in report.results:
        print(point.key, point.cycles)

See ``docs/experiments.md`` for the spec format, cache layout and the
``REPRO_CACHE_DIR`` / ``REPRO_JOBS`` / ``REPRO_SCALE`` environment
variables.
"""

from repro.exp.cache import ResultCache, default_cache_dir, resolve_cache
from repro.exp.engine import (
    SweepReport,
    format_engine_summary,
    resolve_checkpoints,
    resolve_jobs,
    run_points,
    run_sweep,
)
from repro.exp.resultset import PointResult, ResultSet
from repro.exp.spec import (
    BASE_VARIANT,
    CACHE_SCHEMA_VERSION,
    ConfigVariant,
    Experiment,
    RegionSampling,
    Sweep,
    SweepPoint,
    apply_overrides,
    code_fingerprint,
    shard_points,
    variants_for_axis,
)

__all__ = [
    "BASE_VARIANT",
    "CACHE_SCHEMA_VERSION",
    "ConfigVariant",
    "Experiment",
    "PointResult",
    "RegionSampling",
    "ResultCache",
    "ResultSet",
    "Sweep",
    "SweepPoint",
    "SweepReport",
    "apply_overrides",
    "code_fingerprint",
    "default_cache_dir",
    "format_engine_summary",
    "resolve_cache",
    "resolve_checkpoints",
    "resolve_jobs",
    "run_points",
    "run_sweep",
    "shard_points",
    "variants_for_axis",
]
