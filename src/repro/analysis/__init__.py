"""Statistics, power modelling, figures, tracing and reports.

``repro.analysis.figures`` and ``repro.analysis.trace`` are imported
lazily by callers (not re-exported here) because they depend on the
defense/pipeline layers, which in turn depend on the base stats in this
package.
"""

from repro.analysis.stats import Stats
from repro.analysis.power import SRAMModel, PowerReport, power_report
from repro.analysis.report import (
    geomean,
    format_table,
    normalised_series,
    render_bars,
)

__all__ = [
    "Stats",
    "SRAMModel",
    "PowerReport",
    "power_report",
    "geomean",
    "format_table",
    "normalised_series",
    "render_bars",
]
