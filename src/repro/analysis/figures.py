"""Regeneration of every table and figure in the paper's evaluation.

Each ``figure*``/``table*``/``section*`` function declares its sweep and
routes it through the experiment engine (:mod:`repro.exp`), then shapes
the results into a :class:`FigureResult` whose ``text`` matches the
paper's artefact (workloads x defenses normalised execution time, event
proportions, size sweeps, ...).  The benches in ``benchmarks/`` call
these and print the text; EXPERIMENTS.md records paper-vs-measured
values.

Every function accepts ``jobs`` (worker processes), ``cache`` (on-disk
result cache: ``True``, a directory, or a ``ResultCache``) and
``progress`` (per-point callback) and forwards them to the engine; a
figure is a single engine invocation, so cached/parallel execution is
uniform across artefacts.  ``scale`` scales workload iteration counts
(1.0 = the suite defaults, already ~5 orders of magnitude below the real
SPEC runs; see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.power import power_report
from repro.analysis.report import format_table, geomean, normalised_series
from repro.config import default_config, table1_rows
from repro.defenses import FIGURE_ORDER
from repro.defenses.ghostminion import ghostminion, ghostminion_breakdown
from repro.exp import (
    ConfigVariant,
    Sweep,
    SweepReport,
    run_points,
    run_sweep,
)
from repro.sim.runner import normalised_times
from repro.workloads.spec import PARSEC, SPEC2006, SPEC2017


@dataclass
class FigureResult:
    """One regenerated artefact: machine-readable data plus its text."""

    name: str
    data: Dict = field(default_factory=dict)
    text: str = ""
    #: Engine bookkeeping (cache hits, executed points, jobs) — not part
    #: of the artefact itself.
    meta: Dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return "%s\n%s" % (self.name, self.text)


def _engine_meta(report: SweepReport) -> Dict:
    return report.meta()


def _suite_figure(name: str, workloads, scale: float,
                  defenses: Optional[Sequence[str]] = None,
                  jobs: Optional[int] = None, cache=None,
                  progress=None) -> FigureResult:
    defenses = list(defenses) if defenses else list(FIGURE_ORDER)
    report = run_sweep(
        Sweep(name=name, workloads=list(workloads),
              defenses=["Unsafe"] + defenses, scale=scale),
        jobs=jobs, cache=cache, progress=progress)
    results = report.results.as_run_results()
    table = normalised_times(results)
    names = [d if isinstance(d, str) else d.name for d in defenses]
    rows = normalised_series(table, names)
    text = format_table(["workload"] + names, rows)
    geo = dict(zip(names, rows[-1][1:]))
    return FigureResult(name=name,
                        data={"normalised": table, "geomean": geo},
                        text=text, meta=_engine_meta(report))


def table1() -> FigureResult:
    """Table 1: the simulated system configuration."""
    rows = table1_rows()
    return FigureResult(name="Table 1: system setup",
                        data={"rows": rows},
                        text=format_table(["component", "configuration"],
                                          rows))


def figure6(scale: float = 1.0,
            workloads: Optional[Sequence[str]] = None,
            jobs: Optional[int] = None, cache=None,
            progress=None) -> FigureResult:
    """Fig. 6: SPEC CPU2006 normalised execution time, all defenses."""
    selected = (SPEC2006 if workloads is None
                else [s for s in SPEC2006 if s.name in set(workloads)])
    return _suite_figure("Figure 6: SPEC CPU2006", selected, scale,
                         jobs=jobs, cache=cache, progress=progress)


def figure7(scale: float = 1.0,
            jobs: Optional[int] = None, cache=None,
            progress=None) -> FigureResult:
    """Fig. 7: 4-thread Parsec normalised execution time."""
    return _suite_figure("Figure 7: Parsec (4 threads)", PARSEC, scale,
                         jobs=jobs, cache=cache, progress=progress)


def figure8(scale: float = 1.0,
            jobs: Optional[int] = None, cache=None,
            progress=None) -> FigureResult:
    """Fig. 8: SPECspeed 2017 normalised execution time."""
    return _suite_figure("Figure 8: SPECspeed 2017", SPEC2017, scale,
                         jobs=jobs, cache=cache, progress=progress)


BREAKDOWN_ORDER = ["DMinion-Timeless", "DMinion", "IMinion", "Coherence",
                   "Prefetcher", "All"]


def figure9(scale: float = 1.0,
            workloads: Optional[Sequence[str]] = None,
            jobs: Optional[int] = None, cache=None,
            progress=None) -> FigureResult:
    """Fig. 9: overhead breakdown of GhostMinion's parts."""
    selected = (SPEC2006 if workloads is None
                else [s for s in SPEC2006 if s.name in set(workloads)])
    defenses = [ghostminion_breakdown(which) for which in BREAKDOWN_ORDER]
    report = run_sweep(
        Sweep(name="figure9", workloads=list(selected),
              defenses=["Unsafe"] + defenses, scale=scale),
        jobs=jobs, cache=cache, progress=progress)
    table = normalised_times(report.results.as_run_results())
    names = [d.name for d in defenses]
    rows = normalised_series(table, names)
    short = [n.replace("GhostMinion[", "").rstrip("]") for n in names]
    text = format_table(["workload"] + short, rows)
    return FigureResult(name="Figure 9: overhead breakdown",
                        data={"normalised": table},
                        text=text, meta=_engine_meta(report))


def figure10(scale: float = 1.0,
             workloads: Optional[Sequence[str]] = None,
             jobs: Optional[int] = None, cache=None,
             progress=None) -> FigureResult:
    """Fig. 10: proportion of loads hitting TimeGuards, timeleaps and
    leapfrogs under the full GhostMinion."""
    selected = (SPEC2006 if workloads is None
                else [s for s in SPEC2006 if s.name in set(workloads)])
    report = run_sweep(
        Sweep(name="figure10", workloads=list(selected),
              defenses=[ghostminion()], scale=scale),
        jobs=jobs, cache=cache, progress=progress)
    rows = []
    data = {}
    for spec in selected:
        stats = report.results.get(
            "%s::GhostMinion::base" % spec.name).stats
        loads = max(1.0, stats.get("mem.loads_issued", 0.0))
        proportions = {
            "timeguards": stats.get("gm.timeguard_loads", 0.0) / loads,
            "timeleaps": stats.get("gm.timeleap_loads", 0.0) / loads,
            "leapfrogs": stats.get("gm.leapfrog_loads", 0.0) / loads,
        }
        data[spec.name] = proportions
        rows.append((spec.name, proportions["timeguards"],
                     proportions["timeleaps"], proportions["leapfrogs"]))
    text = format_table(
        ["workload", "timeguards", "timeleaps", "leapfrogs"], rows,
        float_fmt="%.4f")
    result = FigureResult(name="Figure 10: backwards-in-time prevention",
                          data=data, text=text)
    result.meta = _engine_meta(report)
    return result


SIZE_SWEEP = [4096, 2048, 1024, 512, 256, 128]


def _size_variants() -> List[ConfigVariant]:
    return [ConfigVariant.make("%dB" % size,
                               {"minion_d.size_bytes": size,
                                "minion_i.size_bytes": size})
            for size in SIZE_SWEEP]


def figure11(scale: float = 1.0,
             workloads: Optional[Sequence[str]] = None,
             jobs: Optional[int] = None, cache=None,
             progress=None) -> FigureResult:
    """Fig. 11: GhostMinion size sensitivity (plus async reload)."""
    selected = (SPEC2006 if workloads is None
                else [s for s in SPEC2006 if s.name in set(workloads)])
    gm_async = ghostminion(async_reload=True)
    gm_async.name = "GhostMinion-async"
    # One engine invocation covers the baseline, the size sweep and the
    # async-reload sweep (the paper's 'geo. async.' series).
    points = (
        Sweep(name="fig11-base", workloads=list(selected),
              defenses=["Unsafe"], scale=scale).points()
        + Sweep(name="fig11-size", workloads=list(selected),
                defenses=[ghostminion()], variants=_size_variants(),
                scale=scale).points()
        + Sweep(name="fig11-async", workloads=list(selected),
                defenses=[gm_async], variants=_size_variants(),
                scale=scale).points())
    report = run_points(points, jobs=jobs, cache=cache, progress=progress)
    results = report.results
    base = {spec.name: results.get("%s::Unsafe::base" % spec.name).cycles
            for spec in selected}
    per_size: Dict[str, Dict[str, float]] = {s.name: {} for s in selected}
    geo_rows: List[tuple] = []
    for size in SIZE_SWEEP:
        key = "%dB" % size
        ratios = []
        for spec in selected:
            gm = results.get("%s::GhostMinion::%s" % (spec.name, key))
            ratio = gm.cycles / base[spec.name]
            per_size[spec.name][key] = ratio
            ratios.append(ratio)
        geo_rows.append((key, geomean(ratios)))
    async_geo = []
    for size in SIZE_SWEEP:
        key = "%dB" % size
        ratios = []
        for spec in selected:
            gm = results.get(
                "%s::GhostMinion-async::%s" % (spec.name, key))
            ratios.append(gm.cycles / base[spec.name])
        async_geo.append(("%dB async" % size, geomean(ratios)))
    headers = ["size"] + [spec.name for spec in selected] + ["geomean"]
    rows = []
    for idx, size in enumerate(SIZE_SWEEP):
        key = "%dB" % size
        rows.append([key] + [per_size[s.name][key] for s in selected]
                    + [geo_rows[idx][1]])
    for key, value in async_geo:
        rows.append([key] + ["-"] * len(selected) + [value])
    text = format_table(headers, rows)
    return FigureResult(name="Figure 11: Minion size sensitivity",
                        data={"per_size": per_size,
                              "geomean": dict(geo_rows),
                              "async_geomean": dict(async_geo)},
                        text=text, meta=_engine_meta(report))


def section49_fu_order(scale: float = 1.0,
                       workloads: Optional[Sequence[str]] = None,
                       jobs: Optional[int] = None, cache=None,
                       progress=None) -> FigureResult:
    """§4.9: strictness-ordered non-pipelined FU issue vs baseline.

    The paper reports no non-negligible slowdown (max 0.08%) and a small
    geomean speedup.
    """
    names = workloads or ["calculix", "povray", "tonto", "namd",
                          "gamess", "mcf", "hmmer"]
    selected = [s for s in SPEC2006 if s.name in set(names)]
    strict = ghostminion(strict_fu_order=True)
    strict.name = "GhostMinion+strictFU"
    report = run_sweep(
        Sweep(name="sec49", workloads=list(selected),
              defenses=[ghostminion(), strict], scale=scale),
        jobs=jobs, cache=cache, progress=progress)
    rows = []
    ratios = []
    for spec in selected:
        base = report.results.get("%s::GhostMinion::base" % spec.name)
        strict_run = report.results.get(
            "%s::GhostMinion+strictFU::base" % spec.name)
        ratio = strict_run.cycles / base.cycles
        ratios.append(ratio)
        rows.append((spec.name, base.cycles, strict_run.cycles, ratio))
    rows.append(("geomean", "-", "-", geomean(ratios)))
    text = format_table(
        ["workload", "GhostMinion", "+strict FU order", "ratio"], rows)
    return FigureResult(name="Section 4.9: strict FU issue order",
                        data={"ratios": dict(zip(
                            [s.name for s in selected], ratios))},
                        text=text, meta=_engine_meta(report))


def section65_power(scale: float = 1.0,
                    workloads: Optional[Sequence[str]] = None,
                    jobs: Optional[int] = None, cache=None,
                    progress=None) -> FigureResult:
    """§6.5: static power / read energy anchors plus measured dynamic
    power of the Minions."""
    names = workloads or ["mcf", "libquantum", "gamess", "hmmer"]
    selected = [s for s in SPEC2006 if s.name in set(names)]
    engine_report = run_sweep(
        Sweep(name="sec65", workloads=list(selected),
              defenses=[ghostminion()], scale=scale),
        jobs=jobs, cache=cache, progress=progress)
    rows = []
    data = {}
    for spec in selected:
        point = engine_report.results.get(
            "%s::GhostMinion::base" % spec.name)
        report = power_report(point.as_run_result().stats,
                              default_config())
        data[spec.name] = report
        rows.append((spec.name,
                     report.minion_static_mw,
                     report.minion_read_pj,
                     report.dminion_dynamic_uw,
                     report.iminion_dynamic_uw))
    text = format_table(
        ["workload", "static mW", "read pJ", "DMinion uW", "IMinion uW"],
        rows)
    return FigureResult(name="Section 6.5: power analysis", data=data,
                        text=text, meta=_engine_meta(engine_report))


DRAM_VARIANTS = [
    ConfigVariant.make("open-page"),
    ConfigVariant.make("nonspec-open-only",
                       {"dram.nonspec_open_only": True}),
    ConfigVariant.make("closed-page", {"dram.open_page": False}),
]


def dram_policy_ablation(scale: float = 1.0,
                         workloads: Optional[Sequence[str]] = None,
                         jobs: Optional[int] = None, cache=None,
                         progress=None) -> FigureResult:
    """§4.9 DRAM: cost of only letting non-speculative accesses keep
    pages open (an extension experiment the paper proposes but does not
    evaluate)."""
    names = workloads or ["libquantum", "lbm", "milc", "mcf"]
    selected = [s for s in SPEC2006 if s.name in set(names)]
    report = run_sweep(
        Sweep(name="dram", workloads=list(selected),
              defenses=[ghostminion()], variants=DRAM_VARIANTS,
              scale=scale),
        jobs=jobs, cache=cache, progress=progress)
    rows = []
    for spec in selected:
        base = report.results.get(
            "%s::GhostMinion::open-page" % spec.name)
        nonspec = report.results.get(
            "%s::GhostMinion::nonspec-open-only" % spec.name)
        closed = report.results.get(
            "%s::GhostMinion::closed-page" % spec.name)
        rows.append((spec.name, 1.0, nonspec.cycles / base.cycles,
                     closed.cycles / base.cycles))
    text = format_table(
        ["workload", "open-page", "nonspec-open-only", "closed-page"],
        rows)
    return FigureResult(name="DRAM open-page policy ablation",
                        data={}, text=text, meta=_engine_meta(report))
