"""Regeneration of every table and figure in the paper's evaluation.

Each ``figure*``/``table*``/``section*`` function runs the relevant
simulations and returns a :class:`FigureResult` whose ``text`` matches
the shape of the paper's artefact (workloads x defenses normalised
execution time, event proportions, size sweeps, ...).  The benches in
``benchmarks/`` call these and print the text; EXPERIMENTS.md records
paper-vs-measured values.

``scale`` scales workload iteration counts (1.0 = the suite defaults,
already ~5 orders of magnitude below the real SPEC runs; see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.power import power_report
from repro.analysis.report import format_table, geomean, normalised_series
from repro.config import default_config, table1_rows
from repro.defenses import FIGURE_ORDER, registry
from repro.defenses.ghostminion import ghostminion, ghostminion_breakdown
from repro.sim.runner import compare_defenses, normalised_times, run_workload
from repro.workloads.spec import PARSEC, SPEC2006, SPEC2017


@dataclass
class FigureResult:
    """One regenerated artefact: machine-readable data plus its text."""

    name: str
    data: Dict = field(default_factory=dict)
    text: str = ""

    def __str__(self) -> str:  # pragma: no cover - convenience
        return "%s\n%s" % (self.name, self.text)


def _suite_figure(name: str, workloads, scale: float,
                  defenses: Optional[Sequence[str]] = None
                  ) -> FigureResult:
    defenses = list(defenses) if defenses else list(FIGURE_ORDER)
    results = compare_defenses(workloads, ["Unsafe"] + defenses,
                               scale=scale)
    table = normalised_times(results)
    rows = normalised_series(table, defenses)
    text = format_table(["workload"] + defenses, rows)
    geo = dict(zip(defenses, rows[-1][1:]))
    return FigureResult(name=name,
                        data={"normalised": table, "geomean": geo},
                        text=text)


def table1() -> FigureResult:
    """Table 1: the simulated system configuration."""
    rows = table1_rows()
    return FigureResult(name="Table 1: system setup",
                        data={"rows": rows},
                        text=format_table(["component", "configuration"],
                                          rows))


def figure6(scale: float = 1.0,
            workloads: Optional[Sequence[str]] = None) -> FigureResult:
    """Fig. 6: SPEC CPU2006 normalised execution time, all defenses."""
    selected = (SPEC2006 if workloads is None
                else [s for s in SPEC2006 if s.name in set(workloads)])
    return _suite_figure("Figure 6: SPEC CPU2006", selected, scale)


def figure7(scale: float = 1.0) -> FigureResult:
    """Fig. 7: 4-thread Parsec normalised execution time."""
    return _suite_figure("Figure 7: Parsec (4 threads)", PARSEC, scale)


def figure8(scale: float = 1.0) -> FigureResult:
    """Fig. 8: SPECspeed 2017 normalised execution time."""
    return _suite_figure("Figure 8: SPECspeed 2017", SPEC2017, scale)


BREAKDOWN_ORDER = ["DMinion-Timeless", "DMinion", "IMinion", "Coherence",
                   "Prefetcher", "All"]


def figure9(scale: float = 1.0,
            workloads: Optional[Sequence[str]] = None) -> FigureResult:
    """Fig. 9: overhead breakdown of GhostMinion's parts."""
    selected = (SPEC2006 if workloads is None
                else [s for s in SPEC2006 if s.name in set(workloads)])
    defenses = [ghostminion_breakdown(which) for which in BREAKDOWN_ORDER]
    results = compare_defenses(selected, ["Unsafe"] + defenses,
                               scale=scale)
    table = normalised_times(results)
    names = [d.name for d in defenses]
    rows = normalised_series(table, names)
    short = [n.replace("GhostMinion[", "").rstrip("]") for n in names]
    text = format_table(["workload"] + short, rows)
    return FigureResult(name="Figure 9: overhead breakdown",
                        data={"normalised": table},
                        text=text)


def figure10(scale: float = 1.0,
             workloads: Optional[Sequence[str]] = None) -> FigureResult:
    """Fig. 10: proportion of loads hitting TimeGuards, timeleaps and
    leapfrogs under the full GhostMinion."""
    selected = (SPEC2006 if workloads is None
                else [s for s in SPEC2006 if s.name in set(workloads)])
    rows = []
    data = {}
    for spec in selected:
        result = run_workload(spec, ghostminion(), scale=scale)
        loads = max(1.0, result.stats.get("mem.loads_issued"))
        proportions = {
            "timeguards": result.stats.get("gm.timeguard_loads") / loads,
            "timeleaps": result.stats.get("gm.timeleap_loads") / loads,
            "leapfrogs": result.stats.get("gm.leapfrog_loads") / loads,
        }
        data[spec.name] = proportions
        rows.append((spec.name, proportions["timeguards"],
                     proportions["timeleaps"], proportions["leapfrogs"]))
    text = format_table(
        ["workload", "timeguards", "timeleaps", "leapfrogs"], rows,
        float_fmt="%.4f")
    return FigureResult(name="Figure 10: backwards-in-time prevention",
                        data=data, text=text)


SIZE_SWEEP = [4096, 2048, 1024, 512, 256, 128]


def figure11(scale: float = 1.0,
             workloads: Optional[Sequence[str]] = None) -> FigureResult:
    """Fig. 11: GhostMinion size sensitivity (plus async reload)."""
    selected = (SPEC2006 if workloads is None
                else [s for s in SPEC2006 if s.name in set(workloads)])
    per_size: Dict[str, Dict[str, float]] = {s.name: {} for s in selected}
    geo_rows: List[tuple] = []
    for size in SIZE_SWEEP:
        cfg = default_config()
        cfg.minion_d.size_bytes = size
        cfg.minion_i.size_bytes = size
        ratios = []
        for spec in selected:
            base = run_workload(spec, registry["Unsafe"](), scale=scale)
            gm = run_workload(spec, ghostminion(), scale=scale, cfg=(
                _with_cores(cfg, spec.threads)))
            ratio = gm.cycles / base.cycles
            per_size[spec.name]["%dB" % size] = ratio
            ratios.append(ratio)
        geo_rows.append(("%dB" % size, geomean(ratios)))
    # async-reload geomean at the smallest sizes (the paper's 'geo.
    # async.' series)
    async_geo = []
    for size in SIZE_SWEEP:
        cfg = default_config()
        cfg.minion_d.size_bytes = size
        cfg.minion_i.size_bytes = size
        ratios = []
        for spec in selected:
            base = run_workload(spec, registry["Unsafe"](), scale=scale)
            gm = run_workload(spec, ghostminion(async_reload=True),
                              scale=scale,
                              cfg=_with_cores(cfg, spec.threads))
            ratios.append(gm.cycles / base.cycles)
        async_geo.append(("%dB async" % size, geomean(ratios)))
    headers = ["size"] + [spec.name for spec in selected] + ["geomean"]
    rows = []
    for idx, size in enumerate(SIZE_SWEEP):
        key = "%dB" % size
        rows.append([key] + [per_size[s.name][key] for s in selected]
                    + [geo_rows[idx][1]])
    for key, value in async_geo:
        rows.append([key] + ["-"] * len(selected) + [value])
    text = format_table(headers, rows)
    return FigureResult(name="Figure 11: Minion size sensitivity",
                        data={"per_size": per_size,
                              "geomean": dict(geo_rows),
                              "async_geomean": dict(async_geo)},
                        text=text)


def _with_cores(cfg, threads):
    new = cfg.copy()
    new.cores = threads
    return new


def section49_fu_order(scale: float = 1.0,
                       workloads: Optional[Sequence[str]] = None
                       ) -> FigureResult:
    """§4.9: strictness-ordered non-pipelined FU issue vs baseline.

    The paper reports no non-negligible slowdown (max 0.08%) and a small
    geomean speedup.
    """
    names = workloads or ["calculix", "povray", "tonto", "namd",
                          "gamess", "mcf", "hmmer"]
    selected = [s for s in SPEC2006 if s.name in set(names)]
    rows = []
    ratios = []
    for spec in selected:
        base = run_workload(spec, ghostminion(strict_fu_order=False),
                            scale=scale)
        strict = run_workload(spec, ghostminion(strict_fu_order=True),
                              scale=scale)
        ratio = strict.cycles / base.cycles
        ratios.append(ratio)
        rows.append((spec.name, base.cycles, strict.cycles, ratio))
    rows.append(("geomean", "-", "-", geomean(ratios)))
    text = format_table(
        ["workload", "GhostMinion", "+strict FU order", "ratio"], rows)
    return FigureResult(name="Section 4.9: strict FU issue order",
                        data={"ratios": dict(zip(
                            [s.name for s in selected], ratios))},
                        text=text)


def section65_power(scale: float = 1.0,
                    workloads: Optional[Sequence[str]] = None
                    ) -> FigureResult:
    """§6.5: static power / read energy anchors plus measured dynamic
    power of the Minions."""
    names = workloads or ["mcf", "libquantum", "gamess", "hmmer"]
    selected = [s for s in SPEC2006 if s.name in set(names)]
    rows = []
    data = {}
    for spec in selected:
        result = run_workload(spec, ghostminion(), scale=scale)
        report = power_report(result.stats, default_config())
        data[spec.name] = report
        rows.append((spec.name,
                     report.minion_static_mw,
                     report.minion_read_pj,
                     report.dminion_dynamic_uw,
                     report.iminion_dynamic_uw))
    text = format_table(
        ["workload", "static mW", "read pJ", "DMinion uW", "IMinion uW"],
        rows)
    return FigureResult(name="Section 6.5: power analysis", data=data,
                        text=text)


def dram_policy_ablation(scale: float = 1.0,
                         workloads: Optional[Sequence[str]] = None
                         ) -> FigureResult:
    """§4.9 DRAM: cost of only letting non-speculative accesses keep
    pages open (an extension experiment the paper proposes but does not
    evaluate)."""
    names = workloads or ["libquantum", "lbm", "milc", "mcf"]
    selected = [s for s in SPEC2006 if s.name in set(names)]
    rows = []
    for spec in selected:
        cfg_open = default_config()
        cfg_nonspec = default_config()
        cfg_nonspec.dram.nonspec_open_only = True
        cfg_closed = default_config()
        cfg_closed.dram.open_page = False
        base = run_workload(spec, ghostminion(), scale=scale,
                            cfg=cfg_open)
        nonspec = run_workload(spec, ghostminion(), scale=scale,
                               cfg=cfg_nonspec)
        closed = run_workload(spec, ghostminion(), scale=scale,
                              cfg=cfg_closed)
        rows.append((spec.name, 1.0, nonspec.cycles / base.cycles,
                     closed.cycles / base.cycles))
    text = format_table(
        ["workload", "open-page", "nonspec-open-only", "closed-page"],
        rows)
    return FigureResult(name="DRAM open-page policy ablation",
                        data={}, text=text)
