"""Analytical SRAM power model calibrated to the paper's CACTI numbers
(section 6.5, 22 nm):

* static (leakage) power: 0.47 mW per 2 KiB GhostMinion, 12.8 mW for the
  64 KiB L1 — very close to linear in capacity;
* read energy: 1.5 pJ per 2 KiB Minion access, 8.6 pJ for the 64 KiB L1 —
  close to proportional to sqrt(capacity) (wordline/bitline scaling).

The model reproduces those anchor points exactly and interpolates for
other sizes (the fig. 11 sweep).  Dynamic power multiplies per-access
energy by simulated access counts over simulated wall-clock time at the
paper's 2 GHz clock.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.analysis.stats import Stats
from repro.config import SystemConfig

CLOCK_HZ = 2.0e9

# Calibration anchors (section 6.5).
_MINION_BYTES = 2048
_MINION_LEAK_MW = 0.47
_MINION_READ_PJ = 1.5
_L1_BYTES = 64 * 1024
_L1_LEAK_MW = 12.8
_L1_READ_PJ = 8.6

# leakage: linear fit through the two anchors.
_LEAK_SLOPE = (_L1_LEAK_MW - _MINION_LEAK_MW) / (_L1_BYTES - _MINION_BYTES)
_LEAK_OFFSET = _MINION_LEAK_MW - _LEAK_SLOPE * _MINION_BYTES
# read energy: a * sqrt(bytes) + b through the two anchors.
_READ_SLOPE = (_L1_READ_PJ - _MINION_READ_PJ) / (
    math.sqrt(_L1_BYTES) - math.sqrt(_MINION_BYTES))
_READ_OFFSET = _MINION_READ_PJ - _READ_SLOPE * math.sqrt(_MINION_BYTES)


@dataclass
class SRAMModel:
    """Leakage power and per-access energy for one SRAM structure."""

    size_bytes: int

    @property
    def leakage_mw(self) -> float:
        return _LEAK_SLOPE * self.size_bytes + _LEAK_OFFSET

    @property
    def read_energy_pj(self) -> float:
        return _READ_SLOPE * math.sqrt(self.size_bytes) + _READ_OFFSET

    @property
    def write_energy_pj(self) -> float:
        # CACTI-style: writes cost marginally more than reads.
        return 1.2 * self.read_energy_pj


@dataclass
class PowerReport:
    """Per-structure static power plus GhostMinion dynamic power."""

    minion_static_mw: float
    l1d_static_mw: float
    minion_read_pj: float
    l1d_read_pj: float
    dminion_dynamic_uw: float
    iminion_dynamic_uw: float
    minion_events: Dict[str, float]
    sim_seconds: float

    def rows(self):
        return [
            ("GhostMinion static power", "%.3f mW" % self.minion_static_mw),
            ("L1D static power", "%.2f mW" % self.l1d_static_mw),
            ("GhostMinion read energy", "%.2f pJ" % self.minion_read_pj),
            ("L1D read energy", "%.2f pJ" % self.l1d_read_pj),
            ("DMinion dynamic power", "%.3f uW" % self.dminion_dynamic_uw),
            ("IMinion dynamic power", "%.3f uW" % self.iminion_dynamic_uw),
        ]


def _structure_events(stats: Stats, name: str) -> Dict[str, float]:
    """Access events for one Minion: a read per L1-side access, a write
    per fill, and a read-out per commit move (section 6.5)."""
    return {
        "reads": stats.get(name + ".read_hits")
        + stats.get(name + ".misses")
        + stats.get(name + ".timeguard_blocks"),
        "writes": stats.get(name + ".fills"),
        "commit_reads": stats.get(name + ".commit_moves"),
    }


def power_report(stats: Stats, cfg: SystemConfig) -> PowerReport:
    """Build the section 6.5 power analysis from a finished run."""
    minion = SRAMModel(cfg.minion_d.size_bytes)
    l1d = SRAMModel(cfg.l1d.size_bytes)
    cycles = max(1.0, stats.get("sim.cycles"))
    seconds = cycles / CLOCK_HZ

    def dynamic_uw(events: Dict[str, float]) -> float:
        energy_pj = (events["reads"] * minion.read_energy_pj
                     + events["writes"] * minion.write_energy_pj
                     + events["commit_reads"] * minion.read_energy_pj)
        return energy_pj * 1e-12 / seconds * 1e6

    d_events = _structure_events(stats, "dminion")
    i_events = _structure_events(stats, "iminion")
    return PowerReport(
        minion_static_mw=minion.leakage_mw,
        l1d_static_mw=l1d.leakage_mw,
        minion_read_pj=minion.read_energy_pj,
        l1d_read_pj=l1d.read_energy_pj,
        dminion_dynamic_uw=dynamic_uw(d_events),
        iminion_dynamic_uw=dynamic_uw(i_events),
        minion_events=d_events,
        sim_seconds=seconds,
    )
