"""Report formatting: geomean, tables and ASCII bar charts.

Every bench regenerates its paper table/figure through these helpers so
the printed output has a consistent, diffable shape.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; 0 for an empty sequence."""
    values = [v for v in values]
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalised_series(table: Dict[str, Dict[str, float]],
                      defenses: Sequence[str]) -> List[List]:
    """Flat table rows ``[workload, v1, v2, ...]`` plus a geomean row —
    directly consumable by :func:`format_table`."""
    rows: List[List] = []
    for workload in table:
        rows.append([workload] + [table[workload].get(d, float("nan"))
                                  for d in defenses])
    means = []
    for idx, _defense in enumerate(defenses):
        column = [row[1 + idx] for row in rows
                  if not math.isnan(row[1 + idx])]
        means.append(geomean(column) if column else float("nan"))
    rows.append(["geomean"] + means)
    return rows


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 float_fmt: str = "%.3f") -> str:
    """Plain-text table with aligned columns."""
    rendered: List[List[str]] = [list(map(str, headers))]
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(float_fmt % cell)
            else:
                cells.append(str(cell))
        rendered.append(cells)
    widths = [max(len(r[col]) for r in rendered)
              for col in range(len(rendered[0]))]
    lines = []
    for idx, row in enumerate(rendered):
        line = "  ".join(cell.ljust(width)
                         for cell, width in zip(row, widths))
        lines.append(line.rstrip())
        if idx == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def render_bars(values: Dict[str, float], width: int = 40,
                baseline: float = 1.0) -> str:
    """ASCII bar chart of normalised values (1.0 = baseline)."""
    if not values:
        return "(no data)"
    peak = max(max(values.values()), baseline)
    lines = []
    label_width = max(len(name) for name in values)
    for name, value in values.items():
        bar = "#" * max(1, int(round(value / peak * width)))
        lines.append("%s  %s %.3f" % (name.ljust(label_width), bar, value))
    return "\n".join(lines)
