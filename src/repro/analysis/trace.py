"""Pipeline tracing: per-instruction timelines for debugging and
teaching.

Attach a :class:`PipelineTracer` to a core before running and it records
(fetch, issue, complete, commit) cycles per dynamic instruction, plus
squash events.  ``render()`` draws a gem5-``O3PipeView``-style ASCII
timeline; ``summary()`` aggregates stage latencies.

Example::

    sim = Simulator(program, ghostminion())
    tracer = PipelineTracer(sim.cores[0], limit=200)
    sim.run()
    print(tracer.render(width=70))

Since the observability layer landed (``docs/observability.md``) this
class is a thin adapter over :class:`repro.obs.trace.Tracer`: it arms
the core's dormant ``_obs`` hook and folds the resulting stage/squash
events into :class:`InstRecord` rows.  That makes it correct under the
event-driven cycle-skipping scheduler *and* the compiled hot core —
the old method-wrapping implementation recorded stage cycles only on
densely stepped cycles and could not instrument compiled cores at all.
For whole-machine traces (memory events, skip windows, metrics,
Perfetto export) attach a tracer via ``Simulator.attach_obs`` instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs.trace import Tracer
from repro.pipeline.core import Core


@dataclass
class InstRecord:
    """Observed lifetime of one dynamic instruction."""

    seq: int
    pc: int
    op: str
    fetch_cycle: int
    issue_cycle: Optional[int] = None
    complete_cycle: Optional[int] = None
    commit_cycle: Optional[int] = None
    squashed: bool = False
    replays: int = 0

    def stage_char_at(self, cycle: int) -> str:
        if cycle < self.fetch_cycle:
            return " "
        if self.commit_cycle is not None and cycle > self.commit_cycle:
            return " "
        if self.commit_cycle == cycle:
            return "C"
        if self.complete_cycle is not None and cycle >= self.complete_cycle:
            return "="
        if self.issue_cycle is not None and cycle >= self.issue_cycle:
            return "x"
        return "."


class PipelineTracer:
    """Per-core instruction timeline over the obs event stream.

    Arms ``core._obs`` with a private :class:`Tracer` (taking over any
    previously attached one for that core) and derives
    :class:`InstRecord` rows on demand.  ``limit`` caps the number of
    distinct instructions recorded, as before.
    """

    def __init__(self, core: Core, limit: int = 500) -> None:
        self.core = core
        self.limit = limit
        self._records: Dict[int, InstRecord] = {}
        self._squashes: List[int] = []
        self._tracer = Tracer()
        self._cursor = 0
        core._obs = self._tracer

    # -- event folding ----------------------------------------------------

    def _sync(self) -> None:
        """Fold any events emitted since the last call into records."""
        events = self._tracer.events
        records = self._records
        for event in events[self._cursor:]:
            if event.kind == "stage":
                record = records.get(event.seq)
                if record is None:
                    if event.name != "fetch" or \
                            len(records) >= self.limit:
                        continue
                    op = event.args["op"] if event.args else ""
                    records[event.seq] = InstRecord(
                        event.seq, event.pc, op, event.cycle)
                    continue
                if event.name == "issue":
                    if record.issue_cycle is None:
                        record.issue_cycle = event.cycle
                elif event.name == "replay":
                    record.replays += 1
                elif event.name == "writeback":
                    record.complete_cycle = event.cycle
                elif event.name == "commit":
                    record.commit_cycle = event.cycle
                    if record.complete_cycle is None:
                        record.complete_cycle = event.cycle
            elif event.kind == "squash":
                self._squashes.append(event.cycle)
                for seq, record in records.items():
                    if seq > event.seq and record.commit_cycle is None:
                        record.squashed = True
        self._cursor = len(events)

    @property
    def records(self) -> Dict[int, InstRecord]:
        self._sync()
        return self._records

    @property
    def squashes(self) -> List[int]:
        self._sync()
        return self._squashes

    # -- reporting ----------------------------------------------------------

    def committed(self) -> List[InstRecord]:
        return [r for r in self.records.values()
                if r.commit_cycle is not None]

    def transient(self) -> List[InstRecord]:
        return [r for r in self.records.values() if r.squashed]

    def render(self, width: int = 64, start: int = 0,
               count: int = 40) -> str:
        """ASCII timeline: ``.`` waiting, ``x`` executing, ``=`` done,
        ``C`` commit; squashed instructions are marked ``~``."""
        records = sorted(self.records.values(),
                         key=lambda r: r.seq)[start:start + count]
        if not records:
            return "(no instructions traced)"
        base = records[0].fetch_cycle
        lines = []
        for record in records:
            row = []
            for offset in range(width):
                row.append(record.stage_char_at(base + offset))
            marker = "~" if record.squashed else " "
            lines.append("%5d %-6s %s|%s|" % (
                record.seq, record.op[:6], marker, "".join(row)))
        header = "cycles %d..%d  (. wait, x exec, = done, C commit," \
                 " ~ squashed)" % (base, base + width)
        return header + "\n" + "\n".join(lines)

    def summary(self) -> Dict[str, float]:
        """Mean stage latencies over committed instructions."""
        committed = [r for r in self.committed()
                     if r.issue_cycle is not None]
        if not committed:
            return {"committed": 0}
        fetch_to_issue = [r.issue_cycle - r.fetch_cycle for r in committed]
        issue_to_commit = [r.commit_cycle - r.issue_cycle
                           for r in committed]
        return {
            "committed": len(committed),
            "squashed": len(self.transient()),
            "mean_fetch_to_issue": sum(fetch_to_issue) / len(committed),
            "mean_issue_to_commit": sum(issue_to_commit) / len(committed),
            "squash_events": len(self._squashes),
        }
