"""Pipeline tracing: per-instruction timelines for debugging and
teaching.

Attach a :class:`PipelineTracer` to a core before running and it records
(fetch, issue, complete, commit) cycles per dynamic instruction, plus
squash events.  ``render()`` draws a gem5-``O3PipeView``-style ASCII
timeline; ``summary()`` aggregates stage latencies.

Example::

    sim = Simulator(program, ghostminion())
    tracer = PipelineTracer(sim.cores[0], limit=200)
    sim.run()
    print(tracer.render(width=70))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.pipeline.core import Core, DynInst


@dataclass
class InstRecord:
    """Observed lifetime of one dynamic instruction."""

    seq: int
    pc: int
    op: str
    fetch_cycle: int
    issue_cycle: Optional[int] = None
    complete_cycle: Optional[int] = None
    commit_cycle: Optional[int] = None
    squashed: bool = False
    replays: int = 0

    def stage_char_at(self, cycle: int) -> str:
        if cycle < self.fetch_cycle:
            return " "
        if self.commit_cycle is not None and cycle > self.commit_cycle:
            return " "
        if self.commit_cycle == cycle:
            return "C"
        if self.complete_cycle is not None and cycle >= self.complete_cycle:
            return "="
        if self.issue_cycle is not None and cycle >= self.issue_cycle:
            return "x"
        return "."


class PipelineTracer:
    """Non-invasive tracer: wraps a core's stage methods."""

    def __init__(self, core: Core, limit: int = 500) -> None:
        self.core = core
        self.limit = limit
        self.records: Dict[int, InstRecord] = {}
        self.squashes: List[int] = []
        self._wrap(core)

    # -- instrumentation -------------------------------------------------

    def _wrap(self, core: Core) -> None:
        orig_fetch = core._fetch
        orig_try_issue = core._try_issue_one
        orig_commit = core._commit
        orig_squash = core._squash_after
        tracer = self

        def fetch(cycle):
            before = core.seq_counter
            orig_fetch(cycle)
            for di in core.fetch_queue:
                if di.seq >= before and len(tracer.records) < tracer.limit:
                    tracer.records.setdefault(di.seq, InstRecord(
                        di.seq, di.pc, di.instr.op.value, cycle))

        def try_issue(di, cycle):
            issued = orig_try_issue(di, cycle)
            record = tracer.records.get(di.seq)
            if record is not None and issued and di.state != 0:
                if record.issue_cycle is None:
                    record.issue_cycle = cycle
                record.replays = di.replays
            return issued

        def commit(cycle):
            head_before = core.rob[0].seq if core.rob else None
            orig_commit(cycle)
            if head_before is None:
                return
            for seq, record in tracer.records.items():
                di_done = seq >= head_before and (
                    not core.rob or core.rob[0].seq > seq)
                if di_done and record.commit_cycle is None \
                        and not record.squashed:
                    record.commit_cycle = cycle
                    if record.complete_cycle is None:
                        record.complete_cycle = cycle

        def squash(br, cycle):
            tracer.squashes.append(cycle)
            orig_squash(br, cycle)
            for seq, record in tracer.records.items():
                if seq > br.seq and record.commit_cycle is None:
                    record.squashed = True
            return None

        core._fetch = fetch
        core._try_issue_one = try_issue
        core._commit = commit
        core._squash_after = squash

    # -- reporting ----------------------------------------------------------

    def committed(self) -> List[InstRecord]:
        return [r for r in self.records.values()
                if r.commit_cycle is not None]

    def transient(self) -> List[InstRecord]:
        return [r for r in self.records.values() if r.squashed]

    def render(self, width: int = 64, start: int = 0,
               count: int = 40) -> str:
        """ASCII timeline: ``.`` waiting, ``x`` executing, ``=`` done,
        ``C`` commit; squashed instructions are marked ``~``."""
        records = sorted(self.records.values(),
                         key=lambda r: r.seq)[start:start + count]
        if not records:
            return "(no instructions traced)"
        base = records[0].fetch_cycle
        lines = []
        for record in records:
            row = []
            for offset in range(width):
                row.append(record.stage_char_at(base + offset))
            marker = "~" if record.squashed else " "
            lines.append("%5d %-6s %s|%s|" % (
                record.seq, record.op[:6], marker, "".join(row)))
        header = "cycles %d..%d  (. wait, x exec, = done, C commit," \
                 " ~ squashed)" % (base, base + width)
        return header + "\n" + "\n".join(lines)

    def summary(self) -> Dict[str, float]:
        """Mean stage latencies over committed instructions."""
        committed = [r for r in self.committed()
                     if r.issue_cycle is not None]
        if not committed:
            return {"committed": 0}
        fetch_to_issue = [r.issue_cycle - r.fetch_cycle for r in committed]
        issue_to_commit = [r.commit_cycle - r.issue_cycle
                           for r in committed]
        return {
            "committed": len(committed),
            "squashed": len(self.transient()),
            "mean_fetch_to_issue": sum(fetch_to_issue) / len(committed),
            "mean_issue_to_commit": sum(issue_to_commit) / len(committed),
            "squash_events": len(self.squashes),
        }
