"""Counter registry shared by every simulated component.

A :class:`Stats` object is a flat ``name -> value`` counter map with
helpers for incrementing, merging (multi-core runs) and computing derived
ratios.  Components bump well-known counter names; the full list in use is
discoverable via :meth:`Stats.as_dict`.

Hot paths do not pay for string keys: a counter name can be *interned*
once (at component construction) into an integer slot **handle** via
:meth:`Stats.handle`, and then bumped with :meth:`Stats.add` — a plain
list indexing operation.  The string-keyed API (:meth:`bump`,
:meth:`get`, ...) remains as a thin view for reports, figures and tests.

Interning a handle does **not** make the counter visible: a name only
appears in :meth:`as_dict`/:meth:`names` once it has actually been
bumped or set, exactly as with the original dict-backed implementation,
so pre-resolving handles for counters that never fire leaves result
payloads unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.snapshot import SnapshotMixin


class Stats(SnapshotMixin):
    """Flat counter map with interned integer-slot handles.

    The whole object is mutable state (interning table plus values), so
    the :class:`~repro.snapshot.SnapshotMixin` contract captures it with
    no exclusions — a restore brings back both the counter values *and*
    the slot numbering, keeping previously handed-out handles valid.
    """

    __slots__ = ("_index", "_values", "_touched")

    def __init__(self) -> None:
        self._index: Dict[str, int] = {}
        self._values: List[float] = []
        self._touched: List[bool] = []

    # -- interned hot path ----------------------------------------------

    def handle(self, name: str) -> int:
        """Intern ``name`` and return its integer slot handle.

        Resolve once (at construction time) and use :meth:`add` on the
        hot path; the counter stays invisible until first bumped.
        """
        slot = self._index.get(name)
        if slot is None:
            slot = len(self._values)
            self._index[name] = slot
            self._values.append(0.0)
            self._touched.append(False)
        return slot

    def add(self, slot: int, amount: float = 1) -> None:
        """Increment the counter behind ``slot`` (from :meth:`handle`)."""
        self._values[slot] += amount
        self._touched[slot] = True

    def value(self, slot: int) -> float:
        """Current value behind ``slot`` (0.0 when never bumped)."""
        return self._values[slot]

    # -- string-keyed view ----------------------------------------------

    def bump(self, name: str, amount: float = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        slot = self.handle(name)
        self._values[slot] += amount
        self._touched[slot] = True

    def set(self, name: str, value: float) -> None:
        slot = self.handle(name)
        self._values[slot] = value
        self._touched[slot] = True

    def get(self, name: str, default: float = 0.0) -> float:
        slot = self._index.get(name)
        if slot is None or not self._touched[slot]:
            return default
        return self._values[slot]

    def __getitem__(self, name: str) -> float:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        slot = self._index.get(name)
        return slot is not None and self._touched[slot]

    def merge(self, other: "Stats") -> None:
        """Accumulate another Stats object into this one."""
        for name, slot in other._index.items():
            if other._touched[slot]:
                self.bump(name, other._values[slot])

    def as_dict(self) -> Dict[str, float]:
        return {name: self._values[slot]
                for name, slot in self._index.items()
                if self._touched[slot]}

    def names(self) -> Iterable[str]:
        return [name for name, slot in self._index.items()
                if self._touched[slot]]

    def ratio(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator`` with a 0 fallback for empty runs."""
        denom = self.get(denominator)
        if denom == 0:
            return 0.0
        return self.get(numerator) / denom

    def ipc(self) -> float:
        return self.ratio("commit.insts", "sim.cycles")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        interesting = sorted(self.as_dict().items())
        return "Stats(%s)" % ", ".join(
            "%s=%g" % item for item in interesting[:12])
