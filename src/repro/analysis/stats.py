"""Counter registry shared by every simulated component.

A :class:`Stats` object is a flat ``name -> value`` counter map with
helpers for incrementing, merging (multi-core runs) and computing derived
ratios.  Components bump well-known counter names; the full list in use is
discoverable via :meth:`Stats.as_dict`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable


class Stats:
    """Flat counter map with convenience arithmetic."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = defaultdict(float)

    def bump(self, name: str, amount: float = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self._counters[name] += amount

    def set(self, name: str, value: float) -> None:
        self._counters[name] = value

    def get(self, name: str, default: float = 0.0) -> float:
        return self._counters.get(name, default)

    def __getitem__(self, name: str) -> float:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def merge(self, other: "Stats") -> None:
        """Accumulate another Stats object into this one."""
        for name, value in other._counters.items():
            self._counters[name] += value

    def as_dict(self) -> Dict[str, float]:
        return dict(self._counters)

    def names(self) -> Iterable[str]:
        return self._counters.keys()

    def ratio(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator`` with a 0 fallback for empty runs."""
        denom = self.get(denominator)
        if denom == 0:
            return 0.0
        return self.get(numerator) / denom

    def ipc(self) -> float:
        return self.ratio("commit.insts", "sim.cycles")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        interesting = sorted(self._counters.items())
        return "Stats(%s)" % ", ".join(
            "%s=%g" % item for item in interesting[:12])
