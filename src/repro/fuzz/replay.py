"""Single-leg replay: run one fuzz point under the ambient env.

``python -m repro.fuzz.replay`` reads a :class:`FuzzPoint` payload
(JSON) on stdin, runs it once through the experiment engine with the
cache disabled, and prints the comparable projection (cycles, insts,
finished, stats, regs_digest) as JSON on stdout.

This is the subprocess half of the ``accel`` oracle: ``REPRO_ACCEL``
is read at ``repro.sim`` import time, so pure and compiled legs must
live in separate interpreters.  It is also handy for manual triage::

    echo '{"seed": 42, "index": 0, ...}' | \
        REPRO_DENSE_LOOP=1 python -m repro.fuzz.replay
"""

from __future__ import annotations

import json
import sys


def main() -> int:
    # Imports stay inside main(): REPRO_ACCEL must be read from the
    # environment this process was launched with, after -m startup.
    from repro.exp.engine import run_points
    from repro.fuzz.grammar import FuzzPoint
    from repro.fuzz.oracles import comparable

    payload = json.load(sys.stdin)
    point = FuzzPoint.from_dict(payload)
    sweep_point = point.build()
    report = run_points([sweep_point], jobs=1, cache=False)
    result = report.results.get(sweep_point.key)
    json.dump(comparable(result), sys.stdout, sort_keys=True)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
