"""Differential oracles: pluggable equivalence checks for fuzz points.

Each oracle runs the same generated points down two (or more) of the
repo's independently-proven execution paths and compares the full
observable outcome — cycles, committed instructions, the complete
interned stats dict, and the architectural-register digest.  The
oracles are registered as ``oracle`` components, so ``repro list
oracles`` / ``repro describe dense-event`` work and plugins can add
their own checks via ``ORACLES.register``.

All legs run through :func:`repro.exp.engine.run_points` with the
cache disabled — fuzz legs must never observe each other (or a prior
campaign) through the result cache.  Points are rebuilt from their
spec strings *inside* each leg, so component construction happens
under that leg's environment (a defense whose behaviour depends on
``REPRO_DENSE_LOOP`` diverges only if legs construct independently).
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exp.engine import run_points
from repro.exp.resultset import PointResult
from repro.fuzz.grammar import FuzzPoint
from repro.registry.core import Registry
from repro.sim.simulator import ENV_DENSE_LOOP

#: The ``oracle`` component registry (auto-listed in ``REGISTRIES``).
ORACLES: Registry = Registry("oracle")

#: Fields compared between legs.  ``digest`` is deliberately absent:
#: warm-start legs carry a different cache token by design, and the
#: oracle's claim is about *simulated outcomes*, not cache identity.
COMPARED_FIELDS = ("cycles", "insts", "finished", "stats",
                   "regs_digest")


def comparable(result: PointResult) -> Dict[str, object]:
    """The equivalence-relevant projection of one point result."""
    return {
        "cycles": result.cycles,
        "insts": result.insts,
        "finished": result.finished,
        "stats": dict(sorted(result.stats.items())),
        "regs_digest": result.regs_digest,
    }


@dataclass
class Verdict:
    """Outcome of one oracle on one fuzz point."""

    point: FuzzPoint
    oracle: str
    ok: bool
    detail: str = ""
    #: field -> (leg A value, leg B value) for each differing field.
    mismatch: Dict[str, Tuple[object, object]] = field(
        default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "point": self.point.as_dict(),
            "oracle": self.oracle,
            "ok": self.ok,
            "detail": self.detail,
            "mismatch": {name: list(pair)
                         for name, pair in self.mismatch.items()},
        }


def diff_comparables(a: Dict[str, object], b: Dict[str, object]
                     ) -> Dict[str, Tuple[object, object]]:
    return {name: (a[name], b[name])
            for name in COMPARED_FIELDS if a[name] != b[name]}


@contextmanager
def scoped_env(**pairs: Optional[str]) -> Iterator[None]:
    """Set/unset environment variables for the duration of a leg.

    Values are installed in ``os.environ`` *before* the engine spawns
    any worker pool, so they propagate to multiprocessing workers
    under both fork and spawn start methods.  ``None`` unsets."""
    saved = {key: os.environ.get(key) for key in pairs}
    try:
        for key, value in pairs.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        yield
    finally:
        for key, previous in saved.items():
            if previous is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = previous


def run_leg(points: Sequence[FuzzPoint], jobs: Optional[int] = None,
            warmup: Optional[int] = None,
            checkpoints: Optional[str] = None) -> List[PointResult]:
    """One engine pass over freshly-rebuilt points, cache disabled."""
    sweep_points = [fp.build() for fp in points]
    if warmup is not None:
        sweep_points = [dataclasses.replace(sp, warmup_insts=warmup)
                        for sp in sweep_points]
    report = run_points(sweep_points, jobs=jobs, cache=False,
                        checkpoints=checkpoints)
    return [report.results.get(sp.key) for sp in sweep_points]


class Oracle:
    """Base class: subclasses set ``name``/``summary`` and implement
    :meth:`check`."""

    name = ""
    summary = ""
    legs = ""

    def __init__(self, jobs: Optional[int] = None):
        self.jobs = jobs

    def check(self, points: Sequence[FuzzPoint]) -> List[Verdict]:
        raise NotImplementedError

    def _verdicts(self, points: Sequence[FuzzPoint],
                  legs: Dict[str, List[PointResult]]) -> List[Verdict]:
        """Pairwise-compare every leg against the first one."""
        names = list(legs)
        base_name, base = names[0], legs[names[0]]
        verdicts = []
        for i, point in enumerate(points):
            reference = comparable(base[i])
            mismatch: Dict[str, Tuple[object, object]] = {}
            against = ""
            for other_name in names[1:]:
                mismatch = diff_comparables(
                    reference, comparable(legs[other_name][i]))
                if mismatch:
                    against = other_name
                    break
            if mismatch:
                detail = "%s vs %s differ on %s" % (
                    base_name, against, ", ".join(sorted(mismatch)))
                verdicts.append(Verdict(point, self.name, False,
                                        detail, mismatch))
            else:
                verdicts.append(Verdict(point, self.name, True))
        return verdicts


@ORACLES.register("dense-event", tags=("builtin",),
                  summary="dense per-cycle loop vs event-driven "
                          "scheduler")
class DenseEventOracle(Oracle):
    """The two pure-Python schedulers must agree byte-for-byte.

    Leg A forces ``REPRO_DENSE_LOOP=1`` (the reference per-cycle
    loop), leg B forces ``=0`` (the event-driven skip scheduler)."""

    name = "dense-event"
    summary = "dense per-cycle loop vs event-driven scheduler"
    legs = "REPRO_DENSE_LOOP=1 vs REPRO_DENSE_LOOP=0"

    def check(self, points: Sequence[FuzzPoint]) -> List[Verdict]:
        with scoped_env(**{ENV_DENSE_LOOP: "1"}):
            dense = run_leg(points, jobs=self.jobs)
        with scoped_env(**{ENV_DENSE_LOOP: "0"}):
            event = run_leg(points, jobs=self.jobs)
        return self._verdicts(points, {"dense": dense,
                                       "event": event})


@ORACLES.register("checkpoint", tags=("builtin",),
                  summary="checkpoint warm-start vs cold run")
class CheckpointOracle(Oracle):
    """Warm-starting from a stored prefix checkpoint must be
    byte-identical to never having checkpointed.

    Three legs against a throwaway checkpoint database: a cold run,
    a warm run that *creates* the checkpoints, and a warm run that
    *restores* them — all three must agree."""

    name = "checkpoint"
    summary = "checkpoint warm-start vs cold run"
    legs = "cold vs warm(create) vs warm(restore)"

    def check(self, points: Sequence[FuzzPoint]) -> List[Verdict]:
        usable = [fp for fp in points if fp.budget]
        skipped = [fp for fp in points if not fp.budget]
        verdicts = []
        if usable:
            warmup = max(1, min(fp.budget for fp in usable) // 2)
            cold = run_leg(usable, jobs=self.jobs)
            with tempfile.TemporaryDirectory(
                    prefix="repro-fuzz-ck-") as tmp:
                db = os.path.join(tmp, "ck.sqlite")
                create = run_leg(usable, jobs=self.jobs,
                                 warmup=warmup, checkpoints=db)
                restore = run_leg(usable, jobs=self.jobs,
                                  warmup=warmup, checkpoints=db)
            verdicts = self._verdicts(usable,
                                      {"cold": cold,
                                       "warm-create": create,
                                       "warm-restore": restore})
        for fp in skipped:
            verdicts.append(Verdict(
                fp, self.name, True,
                "skipped: checkpoint oracle needs a --budget"))
        return verdicts


@ORACLES.register("accel", tags=("builtin",),
                  summary="pure-Python hot core vs compiled "
                          "(REPRO_ACCEL) hot core")
class AccelOracle(Oracle):
    """The mypyc-compiled hot core must match the pure interpreter.

    ``REPRO_ACCEL`` is read at ``repro.sim`` import time, so the two
    legs cannot share this process: each runs ``repro.fuzz.replay``
    in a fresh subprocess with the flag pinned to 0 / 1.  On a
    checkout without the compiled extension both legs run pure
    Python and the oracle passes vacuously (still a valid
    harness-integrity check)."""

    name = "accel"
    summary = "pure-Python hot core vs compiled (REPRO_ACCEL) hot core"
    legs = "REPRO_ACCEL=0 vs REPRO_ACCEL=1 (subprocess pairs)"

    def _replay(self, point: FuzzPoint, accel: str
                ) -> Dict[str, object]:
        import repro
        src_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["REPRO_ACCEL"] = accel
        env["PYTHONPATH"] = os.pathsep.join(
            [src_root] + ([env["PYTHONPATH"]]
                          if env.get("PYTHONPATH") else []))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.fuzz.replay"],
            input=json.dumps(point.as_dict()),
            capture_output=True, text=True, env=env, check=False)
        if proc.returncode != 0:
            raise RuntimeError(
                "replay leg (REPRO_ACCEL=%s) failed for %s:\n%s"
                % (accel, point.label, proc.stderr.strip()))
        return json.loads(proc.stdout)

    def check(self, points: Sequence[FuzzPoint]) -> List[Verdict]:
        verdicts = []
        for point in points:
            pure = self._replay(point, "0")
            compiled = self._replay(point, "1")
            mismatch = diff_comparables(pure, compiled)
            if mismatch:
                detail = "pure vs compiled differ on %s" % \
                    ", ".join(sorted(mismatch))
                verdicts.append(Verdict(point, self.name, False,
                                        detail, mismatch))
            else:
                verdicts.append(Verdict(point, self.name, True))
        return verdicts


def resolve_oracle(name: str, jobs: Optional[int] = None) -> Oracle:
    """Instantiate a registered oracle by name (raises
    :class:`repro.registry.core.UnknownComponentError` with
    did-you-mean suggestions on a miss)."""
    return ORACLES.entry(name).factory(jobs=jobs)
