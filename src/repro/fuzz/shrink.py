"""Shrinking and reproducer files for failing fuzz points.

A failing point is minimized by walking it back toward defaults: drop
config overrides one at a time, then spec-string keyword arguments on
the workload and defense, keeping a candidate only when the oracle
still fails on it.  The loop repeats until a full pass removes
nothing (a greedy fixed point), so the reproducer carries only the
ingredients that matter.

Reproducer files are small JSON documents (seed + specs + minimal
overrides) written to the corpus directory; ``repro fuzz --repro
<file>`` replays one through the same oracle and exits nonzero iff
the divergence still reproduces.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Dict, List, Optional, Tuple

from repro.fuzz.grammar import FuzzPoint
from repro.fuzz.oracles import Oracle, Verdict
from repro.registry import format_spec, parse_spec

#: Reproducer file schema version.
REPRODUCER_FORMAT = 1


def _still_fails(oracle: Oracle, candidate: FuzzPoint) -> bool:
    """True iff the oracle still rejects ``candidate``.  Candidates
    that error (shrinking can make a point invalid) don't count."""
    try:
        verdicts = oracle.check([candidate])
    except Exception:
        return False
    return bool(verdicts) and not verdicts[0].ok


def _without_override(point: FuzzPoint, path: str) -> FuzzPoint:
    kept = tuple((p, v) for p, v in point.overrides if p != path)
    return dataclasses.replace(point, overrides=kept)


def _without_spec_kwarg(point: FuzzPoint, which: str,
                        key: str) -> Optional[FuzzPoint]:
    spec = getattr(point, which)
    name, kwargs = parse_spec(spec)
    if key not in kwargs:
        return None
    kwargs.pop(key)
    slim = format_spec(name, kwargs) if kwargs else name
    return dataclasses.replace(point, **{which: slim})


def shrink(point: FuzzPoint, oracle: Oracle) -> FuzzPoint:
    """Greedy minimization of a failing point.

    Precondition: ``oracle`` fails on ``point``.  Each pass tries to
    drop every override and every workload/defense spec keyword;
    passes repeat until nothing more can be removed.  Worst case is
    O(ingredients^2) oracle runs, but fuzz points carry at most ~10
    ingredients and each run is budget-capped."""
    current = point
    changed = True
    while changed:
        changed = False
        for path, _value in list(current.overrides):
            candidate = _without_override(current, path)
            if _still_fails(oracle, candidate):
                current = candidate
                changed = True
        for which in ("workload", "defense"):
            _name, kwargs = parse_spec(getattr(current, which))
            for key in sorted(kwargs):
                candidate = _without_spec_kwarg(current, which, key)
                if candidate is not None and \
                        _still_fails(oracle, candidate):
                    current = candidate
                    changed = True
    return current


def reproducer_payload(point: FuzzPoint, oracle_name: str,
                       detail: str = "") -> Dict[str, object]:
    return {
        "format": REPRODUCER_FORMAT,
        "oracle": oracle_name,
        "detail": detail,
        "point": point.as_dict(),
    }


def reproducer_name(point: FuzzPoint, oracle_name: str) -> str:
    blob = json.dumps(
        {"oracle": oracle_name, "point": point.as_dict()},
        sort_keys=True)
    digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]
    return "repro-%s-%s.json" % (oracle_name, digest)


def write_reproducer(point: FuzzPoint, oracle_name: str,
                     corpus_dir: str, detail: str = "") -> str:
    """Persist a minimized failure; returns the file path (stable for
    a given point+oracle, so re-runs overwrite rather than pile up)."""
    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(corpus_dir,
                        reproducer_name(point, oracle_name))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(reproducer_payload(point, oracle_name, detail),
                  handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_reproducer(path: str) -> Tuple[FuzzPoint, str]:
    """Read a reproducer file back as ``(point, oracle_name)``."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != REPRODUCER_FORMAT:
        raise ValueError(
            "unsupported reproducer format %r in %s (expected %d)"
            % (payload.get("format"), path, REPRODUCER_FORMAT))
    return (FuzzPoint.from_dict(payload["point"]),
            str(payload["oracle"]))
