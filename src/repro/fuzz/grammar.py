"""Seeded generation of valid fuzz points from the registry grammar.

The generator draws *spec strings* and config overrides straight from
the typed registries: defense and workload parameters come from each
entry's :meth:`repro.registry.core.Entry.params` metadata, predictor
kinds from the ``predictor`` registry, and numeric config leaves from
the :data:`BOUNDS` table below.  Anything registered — including
plugins loaded via ``REPRO_PLUGINS`` — is therefore fuzzable for free.

Determinism contract: :func:`generate` is a pure function of
``(seed, count, budget)`` plus the set of registered components.  Every
draw seeds its own ``random.Random`` from a string key (hashed with
SHA-512 internally, so the sequence is identical across processes and
platforms), and invalid candidates are discarded by deterministic
rejection sampling — the same seed always yields the same points.

The ``fuzz-bounds`` lint checker (``repro lint``) statically asserts
that every post-v1 config leaf has a :data:`BOUNDS` entry, so new
config knobs become fuzzable the moment they are added.
"""

from __future__ import annotations

import ast
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exp.spec import ConfigVariant, SweepPoint, apply_overrides, \
    resolve_defense, resolve_workload
from repro.config import default_config
from repro.registry import component_registry, format_spec, load_plugins

#: Workload scale every fuzz point runs at (points must stay cheap —
#: the oracles simulate each one at least twice).
FUZZ_SCALE = 0.05

#: Cycle-cap backstop; the real horizon is the --budget max_insts cap.
FUZZ_MAX_CYCLES = 2_000_000

#: Default committed-instruction budget per fuzz point.
DEFAULT_BUDGET = 4_000

#: Rejection-sampling cap per point before falling back to the bare
#: family name with no parameters or overrides (always valid).
_MAX_ATTEMPTS = 50


@dataclass(frozen=True)
class RegistryChoice:
    """A bounds entry whose values are the names of a registry kind."""

    kind: str

    def values(self) -> List[str]:
        return sorted(component_registry(self.kind).names())


#: Dotted config-leaf path -> menu of candidate override values.  Menus
#: are deliberately conservative: every value must pass
#: ``SystemConfig.validate`` against the default config (pinned by
#: tests/test_fuzz.py), so rejection sampling almost never rejects on
#: geometry.  The ``fuzz-bounds`` lint checker requires an entry here
#: for every config leaf added after the v1 digest freeze.
BOUNDS = {
    "core.predictor.kind": RegistryChoice("predictor"),
    "core.fetch_width": (2, 4, 8),
    "core.issue_width": (2, 4, 8),
    "core.commit_width": (2, 4, 8),
    "core.rob_entries": (48, 96, 192, 320),
    "core.iq_entries": (16, 32, 64),
    "core.lq_entries": (8, 16, 32),
    "core.sq_entries": (8, 16, 32),
    "core.int_alus": (2, 4, 6),
    "core.fp_alus": (1, 2, 4),
    "core.muldiv_units": (1, 2),
    "core.mispredict_penalty": (4, 8, 16),
    "core.strict_fu_order": (True, False),
    "l1i.size_bytes": (16 * 1024, 32 * 1024),
    "l1i.assoc": (1, 2, 4),
    "l1i.latency": (1, 2, 3),
    "l1i.mshrs": (1, 2, 4, 8),
    "l1d.size_bytes": (16 * 1024, 64 * 1024),
    "l1d.assoc": (1, 2, 4),
    "l1d.latency": (1, 2, 4),
    "l1d.mshrs": (1, 2, 4, 8),
    "l2.size_bytes": (256 * 1024, 2 * 1024 * 1024),
    "l2.assoc": (4, 8),
    "l2.latency": (10, 20, 30),
    "l2.mshrs": (4, 10, 20),
    "dram.base_latency": (40, 80, 160),
    "dram.row_hit_latency": (20, 40),
    "dram.banks": (4, 8, 16),
    "dram.open_page": (True, False),
    "dram.nonspec_open_only": (True, False),
    "minion_d.size_bytes": (512, 1024, 2048),
    "minion_d.assoc": (1, 2, 4),
    "minion_d.async_reload": (True, False),
    "minion_d.timeless": (True, False),
    "minion_i.size_bytes": (512, 1024, 2048),
    "minion_i.assoc": (1, 2, 4),
    "minion_i.async_reload": (True, False),
    "l2_prefetcher": (True, False),
    "prefetcher_rpt_entries": (16, 64, 128),
    "model_tlb": (True, False),
    "iprefetch_into_minion": (True, False),
    "l2_mshr_partitioning": (True, False),
}

#: Synthetic-workload iteration menus: points must finish in well under
#: a second each, so iteration counts stay tiny.
_ITER_MENU = (60, 90, 120, 160)

#: Spec-string parameters the generator never draws: they control run
#: *cost*, not machine behaviour, and are pinned by the budget policy.
_SKIP_PARAMS = {"iters", "threads"}


@dataclass(frozen=True)
class FuzzPoint:
    """One generated scenario: specs + overrides, all data.

    A fuzz point is deliberately *strings and literals* — exactly what
    a reproducer file stores — and is rebuilt into a live
    :class:`~repro.exp.spec.SweepPoint` per oracle leg, so component
    construction happens under each leg's environment.
    """

    seed: int
    index: int
    workload: str
    defense: str
    overrides: Tuple[Tuple[str, object], ...] = ()
    scale: float = FUZZ_SCALE
    budget: Optional[int] = DEFAULT_BUDGET

    @property
    def label(self) -> str:
        return "fuzz-%d-%d" % (self.seed, self.index)

    def build(self) -> SweepPoint:
        """Resolve into the engine's unit of work (validates specs,
        overrides and config geometry — raises on invalid points)."""
        point = SweepPoint(
            workload=resolve_workload(self.workload),
            defense=resolve_defense(self.defense),
            variant=ConfigVariant.make(self.label,
                                       dict(self.overrides)),
            scale=self.scale,
            max_cycles=FUZZ_MAX_CYCLES,
            max_insts=self.budget)
        point.config()  # apply overrides + SystemConfig.validate()
        return point

    def as_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "index": self.index,
            "workload": self.workload,
            "defense": self.defense,
            "overrides": dict(self.overrides),
            "scale": self.scale,
            "budget": self.budget,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FuzzPoint":
        return cls(
            seed=int(payload["seed"]),
            index=int(payload["index"]),
            workload=payload["workload"],
            defense=payload["defense"],
            overrides=tuple(sorted(
                dict(payload.get("overrides") or {}).items())),
            scale=float(payload.get("scale", FUZZ_SCALE)),
            budget=payload.get("budget", DEFAULT_BUDGET),
        )


def defense_families() -> List[str]:
    """Every registered defense name, sorted — the strata the generator
    round-robins over so each family appears within one cycle."""
    load_plugins()
    return sorted(component_registry("defense").names())


def _literal_default(row: Dict[str, object]) -> object:
    """A param row's default as a literal (None when not resolvable)."""
    if row.get("required") or row.get("default") is None:
        return None
    try:
        return ast.literal_eval(row["default"])
    except (ValueError, SyntaxError):
        return None


def _draw_param_kwargs(rng: random.Random, kind: str, name: str,
                       probability: float = 0.25
                       ) -> Dict[str, object]:
    """Draw keyword arguments for one registry entry from its own
    ``params()`` metadata.  Only parameters whose defaults are bool/int
    literals are perturbed — their neighbourhoods are type-safe for any
    factory — and each is included with ``probability``."""
    entry = component_registry(kind).entry(name)
    kwargs: Dict[str, object] = {}
    for row in entry.params():
        pname = row["name"]
        if pname.startswith("**") or pname in _SKIP_PARAMS:
            continue
        default = _literal_default(row)
        if isinstance(default, bool):
            menu = (True, False)
        elif isinstance(default, int):
            menu = (default, max(1, default // 2), default * 2)
        else:
            continue
        if rng.random() < probability:
            kwargs[pname] = rng.choice(menu)
    return kwargs


def _draw_overrides(rng: random.Random
                    ) -> Tuple[Tuple[str, object], ...]:
    count = rng.randint(0, 3)
    paths = rng.sample(sorted(BOUNDS), count)
    drawn = {}
    for path in paths:
        menu = BOUNDS[path]
        values = menu.values() if isinstance(menu, RegistryChoice) \
            else list(menu)
        drawn[path] = rng.choice(values)
    return tuple(sorted(drawn.items()))


def _draw_candidate(rng: random.Random, seed: int, index: int,
                    family: str, budget: Optional[int]) -> FuzzPoint:
    synth = component_registry("workload").names(tag="synthetic")
    kernel = rng.choice(sorted(synth))
    wkwargs = {"iters": rng.choice(_ITER_MENU)}
    wkwargs.update(_draw_param_kwargs(rng, "workload", kernel))
    dkwargs = _draw_param_kwargs(rng, "defense", family)
    return FuzzPoint(
        seed=seed, index=index,
        workload=format_spec(kernel, wkwargs),
        defense=format_spec(family, dkwargs) if dkwargs else family,
        overrides=_draw_overrides(rng),
        budget=budget)


def generate(seed: int, count: int,
             budget: Optional[int] = DEFAULT_BUDGET
             ) -> List[FuzzPoint]:
    """``count`` deterministic, valid fuzz points for ``seed``.

    Draw ``i`` takes its defense family round-robin from
    :func:`defense_families`, so every registered family is covered
    within one cycle (``len(families)`` draws).  Candidates that fail
    to resolve — unknown params, invalid cache geometry, kernel
    argument errors — are rejected and redrawn deterministically; after
    :data:`_MAX_ATTEMPTS` rejections the point degrades to the bare
    family with a default synthetic workload, which is always valid.
    """
    families = defense_families()
    points: List[FuzzPoint] = []
    for index in range(count):
        family = families[index % len(families)]
        chosen: Optional[FuzzPoint] = None
        for attempt in range(_MAX_ATTEMPTS):
            rng = random.Random("%d:%d:%d" % (seed, index, attempt))
            candidate = _draw_candidate(rng, seed, index, family,
                                        budget)
            try:
                candidate.build()
            except Exception:
                continue
            chosen = candidate
            break
        if chosen is None:
            chosen = FuzzPoint(seed=seed, index=index,
                               workload="stream(iters=60)",
                               defense=family, budget=budget)
        points.append(chosen)
    return points


def check_bounds_table() -> None:
    """Every BOUNDS path must name a real config leaf and every menu
    value must validate against the default config (one override at a
    time).  Raises on violations; pinned by tests/test_fuzz.py."""
    for path in sorted(BOUNDS):
        menu = BOUNDS[path]
        values = menu.values() if isinstance(menu, RegistryChoice) \
            else list(menu)
        if not values:
            raise ValueError("empty bounds menu for %r" % path)
        for value in values:
            cfg = apply_overrides(default_config(), {path: value})
            cfg.validate()
