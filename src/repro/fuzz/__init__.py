"""Differential config fuzzer: seeded generative equivalence testing.

The fuzzer closes the loop between the registry grammar and the
repo's differential oracles: :mod:`repro.fuzz.grammar` draws valid
workload/defense spec strings and config overrides from the typed
registries, :mod:`repro.fuzz.oracles` runs each generated point down
two independently-proven execution paths and compares the complete
outcome, and :mod:`repro.fuzz.shrink` minimizes failures into small
JSON reproducer files.  ``repro fuzz`` is the CLI entry point;
``docs/fuzzing.md`` is the user guide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.fuzz.grammar import (BOUNDS, DEFAULT_BUDGET, FuzzPoint,
                                RegistryChoice, check_bounds_table,
                                defense_families, generate)
from repro.fuzz.oracles import (ORACLES, Oracle, Verdict, comparable,
                                resolve_oracle)
from repro.fuzz.shrink import (load_reproducer, shrink,
                               write_reproducer)

ProgressFn = Callable[[str], None]


@dataclass
class CampaignReport:
    """Everything one fuzz campaign learned, JSON-able."""

    seed: int
    count: int
    oracles: List[str]
    verdicts: List[Verdict] = field(default_factory=list)
    reproducers: List[str] = field(default_factory=list)

    @property
    def failures(self) -> List[Verdict]:
        return [v for v in self.verdicts if not v.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "count": self.count,
            "oracles": list(self.oracles),
            "ok": self.ok,
            "passed": sum(1 for v in self.verdicts if v.ok),
            "failed": len(self.failures),
            "verdicts": [v.as_dict() for v in self.verdicts],
            "reproducers": list(self.reproducers),
        }


def run_campaign(seed: int, count: int,
                 oracle_names: Sequence[str] = ("dense-event",),
                 budget: Optional[int] = DEFAULT_BUDGET,
                 jobs: Optional[int] = None,
                 corpus_dir: str = "fuzz-corpus",
                 progress: Optional[ProgressFn] = None
                 ) -> CampaignReport:
    """Generate ``count`` points from ``seed`` and run every oracle.

    Failures are shrunk to minimal reproducers and written to
    ``corpus_dir``.  Deterministic end to end: the same seed, count,
    budget and registry population produce the same points and the
    same verdicts."""
    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    points = generate(seed, count, budget=budget)
    say("generated %d points from seed %d" % (len(points), seed))
    report = CampaignReport(seed=seed, count=count,
                            oracles=list(oracle_names))
    for oracle_name in oracle_names:
        oracle = resolve_oracle(oracle_name, jobs=jobs)
        say("oracle %s: checking %d points"
            % (oracle_name, len(points)))
        verdicts = oracle.check(points)
        report.verdicts.extend(verdicts)
        for verdict in verdicts:
            if verdict.ok:
                continue
            say("FAIL %s [%s]: %s — shrinking"
                % (verdict.point.label, oracle_name, verdict.detail))
            minimal = shrink(verdict.point, oracle)
            path = write_reproducer(minimal, oracle_name, corpus_dir,
                                    detail=verdict.detail)
            report.reproducers.append(path)
            say("reproducer written: %s" % path)
    return report


def replay_reproducer(path: str, jobs: Optional[int] = None
                      ) -> Verdict:
    """Re-run one reproducer file through its recorded oracle."""
    point, oracle_name = load_reproducer(path)
    oracle = resolve_oracle(oracle_name, jobs=jobs)
    return oracle.check([point])[0]


__all__ = [
    "BOUNDS",
    "CampaignReport",
    "DEFAULT_BUDGET",
    "FuzzPoint",
    "ORACLES",
    "Oracle",
    "RegistryChoice",
    "Verdict",
    "check_bounds_table",
    "comparable",
    "defense_families",
    "generate",
    "load_reproducer",
    "replay_reproducer",
    "resolve_oracle",
    "run_campaign",
    "shrink",
    "write_reproducer",
]
