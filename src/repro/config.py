"""System configuration, mirroring Table 1 of the paper.

Every structure in the simulated machine is sized by a dataclass here, so
experiments (e.g. the fig. 11 GhostMinion size sweep) are expressed as
config edits rather than code edits.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

LINE_BYTES = 64
WORD_BYTES = 8
WORDS_PER_LINE = LINE_BYTES // WORD_BYTES
INST_BYTES = 4
INSTS_PER_LINE = LINE_BYTES // INST_BYTES


def line_of(addr: int) -> int:
    """Cache-line number containing byte address ``addr``."""
    return addr >> 6


@dataclass
class CacheConfig:
    """Geometry and timing of one cache level."""

    size_bytes: int
    assoc: int
    latency: int
    mshrs: int
    line_bytes: int = LINE_BYTES

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return max(1, self.num_lines // self.assoc)

    def validate(self) -> None:
        if self.size_bytes % self.line_bytes:
            raise ValueError("cache size must be a line multiple")
        if self.num_lines < self.assoc:
            raise ValueError("cache smaller than one set")
        if self.latency < 1:
            raise ValueError("latency must be at least one cycle")
        if self.mshrs < 1:
            raise ValueError("need at least one MSHR")


@dataclass
class MinionConfig:
    """GhostMinion compartment configuration (one per L1, section 4.2)."""

    size_bytes: int = 2048
    assoc: int = 2
    async_reload: bool = False
    # Feature flags for the fig. 9 breakdown.
    timeless: bool = False  # DMinion-Timeless: wipe-on-squash only.
    line_bytes: int = LINE_BYTES

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return max(1, self.num_lines // self.assoc)

    def validate(self) -> None:
        if self.size_bytes % self.line_bytes:
            raise ValueError("minion size must be a line multiple")
        if self.num_lines < 1:
            raise ValueError("minion must hold at least one line")


@dataclass
class PredictorConfig:
    """Branch predictor selection + sizing (Table 1).

    ``kind`` names an entry of the ``predictor`` component registry
    (:mod:`repro.pipeline.branch_predictor`), so a config variant can
    swap the implementation (``core.predictor.kind=bimodal``) without
    code edits.  The default is part of cache-digest stability: points
    using it digest as if the field did not exist (see
    ``repro.exp.spec``).
    """

    kind: str = "tournament"
    local_entries: int = 2048
    global_entries: int = 8192
    choice_entries: int = 8192
    btb_entries: int = 4096
    ras_entries: int = 16


@dataclass
class CoreConfig:
    """Out-of-order core sizing (Table 1)."""

    fetch_width: int = 8
    issue_width: int = 8
    commit_width: int = 8
    rob_entries: int = 192
    iq_entries: int = 64
    lq_entries: int = 32
    sq_entries: int = 32
    int_alus: int = 6
    fp_alus: int = 4
    muldiv_units: int = 2
    mispredict_penalty: int = 8
    predictor: PredictorConfig = field(default_factory=PredictorConfig)
    # Section 4.9: issue non-pipelined FU ops in timestamp order.
    strict_fu_order: bool = False


@dataclass
class DRAMConfig:
    """Simple DRAM timing with an open-page row buffer."""

    base_latency: int = 80
    row_hit_latency: int = 40
    row_bits: int = 12  # lines per row = 2**row_bits / line (see dram.py)
    banks: int = 8
    open_page: bool = True
    # Section 4.9 DRAM mitigation: only non-speculative accesses may leave
    # a row open.
    nonspec_open_only: bool = False


@dataclass
class TLBConfig:
    """Two-level TLB + page-walk timing (§4.9 address translation)."""

    l1_entries: int = 64
    l1_assoc: int = 4
    l2_entries: int = 1024
    l2_assoc: int = 8
    l2_latency: int = 8
    walk_latency: int = 40
    page_bits: int = 12
    minion_entries: int = 16
    minion_assoc: int = 2


@dataclass
class SystemConfig:
    """Whole-machine configuration (Table 1 defaults)."""

    cores: int = 1
    core: CoreConfig = field(default_factory=CoreConfig)
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 2, 2, 4))
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 2, 2, 4))
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(2 * 1024 * 1024, 8, 20, 20))
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    minion_d: MinionConfig = field(default_factory=MinionConfig)
    minion_i: MinionConfig = field(default_factory=MinionConfig)
    l2_prefetcher: bool = True
    prefetcher_rpt_entries: int = 64
    #: model address translation (off by default: the paper's figures do
    #: not include TLB effects; the TLB ablation bench enables it).
    model_tlb: bool = False
    tlb: TLBConfig = field(default_factory=TLBConfig)
    #: §4.7: fetch-directed instruction prefetching into the I-Minion.
    iprefetch_into_minion: bool = False
    #: §4.9: partition shared-L2 MSHRs per core (cross-thread transient
    #: contention mitigation via macro-level allocation).
    l2_mshr_partitioning: bool = False

    def validate(self) -> None:
        if self.cores < 1:
            raise ValueError("need at least one core")
        for cache in (self.l1i, self.l1d, self.l2):
            cache.validate()
        self.minion_d.validate()
        self.minion_i.validate()

    def copy(self) -> "SystemConfig":
        """Deep copy, for experiments that mutate the config."""
        return dataclasses.replace(
            self,
            core=dataclasses.replace(
                self.core,
                predictor=dataclasses.replace(self.core.predictor)),
            l1i=dataclasses.replace(self.l1i),
            l1d=dataclasses.replace(self.l1d),
            l2=dataclasses.replace(self.l2),
            dram=dataclasses.replace(self.dram),
            minion_d=dataclasses.replace(self.minion_d),
            minion_i=dataclasses.replace(self.minion_i),
            tlb=dataclasses.replace(self.tlb),
        )


def default_config(cores: int = 1) -> SystemConfig:
    """The paper's Table 1 machine with ``cores`` cores."""
    cfg = SystemConfig(cores=cores)
    cfg.validate()
    return cfg


def table1_rows() -> "list[tuple[str, str]]":
    """Human-readable rows of Table 1, regenerated from the live config."""
    cfg = default_config()
    pred = cfg.core.predictor
    return [
        ("Core", "%d-Core, %d-Wide, Out-of-order" %
         (cfg.cores, cfg.core.fetch_width)),
        ("Pipeline",
         "%d-Entry ROB, %d-entry IQ, %d-entry LQ, %d-entry SQ, "
         "%d Int ALUs, %d FP ALUs, %d Mult/Div ALU" %
         (cfg.core.rob_entries, cfg.core.iq_entries, cfg.core.lq_entries,
          cfg.core.sq_entries, cfg.core.int_alus, cfg.core.fp_alus,
          cfg.core.muldiv_units)),
        ("Tournament Predictor",
         "2-bit, %d-entry local, %d global, %d choice, %d BTB, %d RAS" %
         (pred.local_entries, pred.global_entries, pred.choice_entries,
          pred.btb_entries, pred.ras_entries)),
        ("L1 ICache", "%dKiB, %d-way, %d-cycle latency, %d MSHRs" %
         (cfg.l1i.size_bytes // 1024, cfg.l1i.assoc, cfg.l1i.latency,
          cfg.l1i.mshrs)),
        ("L1 DCache", "%dKiB, %d-way, %d-cycle latency, %d MSHRs" %
         (cfg.l1d.size_bytes // 1024, cfg.l1d.assoc, cfg.l1d.latency,
          cfg.l1d.mshrs)),
        ("D/I GhostMinions", "%dKiB, %d-way, accessed with I/D cache" %
         (cfg.minion_d.size_bytes // 1024, cfg.minion_d.assoc)),
        ("L2 Cache",
         "%dMiB, shared, %d-way, %d-cycle latency, %d MSHRs, "
         "stride prefetcher (%d-entry RPT)" %
         (cfg.l2.size_bytes // (1024 * 1024), cfg.l2.assoc, cfg.l2.latency,
          cfg.l2.mshrs, cfg.prefetcher_rpt_entries)),
        ("Memory", "DDR3-1600-like, %d-cycle row miss / %d-cycle row hit" %
         (cfg.dram.base_latency, cfg.dram.row_hit_latency)),
    ]
