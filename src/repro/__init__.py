"""GhostMinion reproduction: a strictness-ordered cache system for
Spectre mitigation (Ainsworth, MICRO 2021), on a pure-Python
out-of-order timing simulator.

Quickstart::

    from repro import run_workload
    result = run_workload("mcf", "GhostMinion")
    print(result.cycles, result.ipc)

Public surface:

* ``repro.core`` -- Strictness/Temporal Order + the TimeGuarded Minion;
* ``repro.pipeline`` -- the out-of-order core substrate and mini-ISA;
* ``repro.memory`` -- caches, MSHRs, DRAM, prefetcher, coherence;
* ``repro.defenses`` -- GhostMinion and all baselines of figs. 6-8;
* ``repro.workloads`` -- synthetic SPEC2006/SPEC2017/Parsec suites;
* ``repro.attacks`` -- Spectre / SpectreRewind / Speculative-Interference
  gadgets run on the simulator;
* ``repro.sim`` / ``repro.analysis`` -- drivers, stats, power, reports;
* ``repro.exp`` -- the experiment engine: declarative sweeps, parallel
  execution and an on-disk result cache (see docs/experiments.md);
* ``repro.store`` -- the sqlite result store: run metadata, queries,
  distributed sweep shards (``--shard``/``repro merge``) and
  re-simulation-free ``repro report`` (see docs/results-store.md);
* ``repro.registry`` -- the component registry: spec strings
  (``"MuonTrap(flush=True)"``), plugins and introspection over
  defenses, workloads, predictors and hierarchies (see
  docs/components.md).

docs/architecture.md maps these subsystems on one page (with the flow
of a sweep point through the stack); docs/performance.md documents the
event-driven scheduler and its stall taxonomy.
"""

from repro.config import SystemConfig, default_config
from repro.defenses import registry as defenses, FIGURE_ORDER
from repro.exp import ResultSet, Sweep, run_sweep
from repro.exp.spec import resolve_defense, resolve_workload
from repro.registry import component_registry
from repro.sim.runner import (
    compare_defenses,
    default_scale,
    normalised_times,
    run_program,
    run_workload,
)
from repro.sim.simulator import RunResult, Simulator

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "default_config",
    "default_scale",
    "defenses",
    "FIGURE_ORDER",
    "ResultSet",
    "Sweep",
    "run_sweep",
    "run_workload",
    "run_program",
    "resolve_defense",
    "resolve_workload",
    "component_registry",
    "compare_defenses",
    "normalised_times",
    "Simulator",
    "RunResult",
    "__version__",
]
