"""Shard files: the unit of distributed-sweep gathering.

A shard file is what one machine exports after running its slice of a
sweep (``repro sweep ... --shard i/n --export shard.json``): the
canonical :class:`~repro.exp.resultset.ResultSet` JSON — so any
``ResultSet.from_json`` consumer can read it directly — plus two
non-canonical sections:

- ``"shard"``: which slice of which sweep this is (index, count, the
  sweep name, and the full sweep's point total for sanity checks);
- ``"run_meta"``: per-digest provenance (wall seconds, cache-hit flag,
  host, repro version, timestamp) carried into the store on merge.

``repro merge shard*.json --db results.sqlite`` gathers shards through
:func:`merge_shards`, which delegates conflict detection to
:meth:`repro.store.db.ResultStore.insert` — same digest with a
different simulation payload is a hard error, duplicates (overlapping
shards, re-merges) are counted and skipped.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.exp.resultset import RESULT_FORMAT, ResultSet
from repro.store.db import ResultStore, RunMeta, StoreError

#: Version of the shard-file envelope (the canonical ``points`` part is
#: separately versioned by ``repro.exp.resultset.RESULT_FORMAT``).
SHARD_FORMAT = 1


@dataclass
class ShardFile:
    """One parsed shard file."""

    path: str
    results: ResultSet
    sweep: str = "sweep"
    index: Optional[int] = None
    count: Optional[int] = None
    total_points: Optional[int] = None
    run_meta: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def label(self) -> str:
        if self.index is None or self.count is None:
            return os.path.basename(self.path)
        return "%s [shard %d/%d]" % (os.path.basename(self.path),
                                     self.index, self.count)


def write_shard(path: str, results: ResultSet, *,
                sweep: str = "sweep",
                index: Optional[int] = None,
                count: Optional[int] = None,
                total_points: Optional[int] = None,
                run_meta: Optional[RunMeta] = None) -> None:
    """Write one shard file (canonical points + provenance)."""
    meta = run_meta or RunMeta()
    payload = json.loads(results.to_json())
    payload["shard"] = {
        "format": SHARD_FORMAT,
        "sweep": sweep,
        "index": index,
        "count": count,
        "total_points": total_points,
    }
    payload["run_meta"] = {
        point.digest: {
            "wall_seconds": round(point.wall_seconds, 6),
            "cached": point.cached,
            "host": meta.host,
            "repro_version": meta.repro_version,
            "recorded_at": meta.recorded_at,
        }
        for point in results
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, indent=2)
        handle.write("\n")


def load_shard(path: str) -> ShardFile:
    """Parse one shard (or plain ``ResultSet.to_json``) file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise StoreError("cannot read shard %s: %s" % (path, exc))
    if not isinstance(payload, dict):
        raise StoreError("%s is not a shard file (expected a JSON "
                         "object)" % path)
    if payload.get("format") != RESULT_FORMAT:
        raise StoreError("unsupported result format %r in %s"
                         % (payload.get("format"), path))
    envelope = payload.get("shard") or {}
    if envelope and envelope.get("format") != SHARD_FORMAT:
        raise StoreError("unsupported shard format %r in %s"
                         % (envelope.get("format"), path))
    try:
        results = ResultSet.from_json(json.dumps(
            {"format": payload["format"], "points": payload["points"]}))
        run_meta = dict(payload.get("run_meta") or {})
        shard = ShardFile(
            path=path,
            results=results,
            sweep=str(envelope.get("sweep", "sweep")),
            index=envelope.get("index"),
            count=envelope.get("count"),
            total_points=envelope.get("total_points"),
            run_meta=run_meta,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise StoreError("malformed shard file %s: %r" % (path, exc))
    return shard


@dataclass
class MergeReport:
    """Outcome of one gather: how many rows were new vs already held."""

    inserted: int = 0
    duplicates: int = 0
    shards: int = 0
    #: Human-readable anomalies worth surfacing (incomplete shard
    #: families, short shards) — never fatal, since gathering a sweep
    #: incrementally across several merge invocations is legitimate.
    warnings: List[str] = field(default_factory=list)

    def summary(self) -> str:
        return ("merge: %d points inserted, %d duplicates skipped, "
                "%d shard file(s)" % (self.inserted, self.duplicates,
                                      self.shards))


def _coverage_warnings(shards: Sequence[ShardFile]) -> List[str]:
    """Flag shard families this merge leaves visibly incomplete."""
    families: Dict[tuple, set] = {}
    warnings = []
    for shard in shards:
        if shard.index is None or shard.count is None:
            continue
        if not 0 <= shard.index < shard.count:
            warnings.append("%s: shard index %d out of range for "
                            "count %d" % (shard.path, shard.index,
                                          shard.count))
            continue
        families.setdefault((shard.sweep, shard.count),
                            set()).add(shard.index)
    for (sweep, count), indices in sorted(families.items()):
        missing = sorted(set(range(count)) - indices)
        if missing:
            warnings.append(
                "sweep %r: merged %d of %d shards (missing indices: "
                "%s) — the store does not yet cover the full sweep"
                % (sweep, len(indices), count,
                   ", ".join(map(str, missing))))
    return warnings


def merge_shards(store: ResultStore,
                 paths: Sequence[str]) -> MergeReport:
    """Gather shard files into ``store`` with conflict detection.

    Raises :class:`~repro.store.db.StoreConflictError` (before any row
    of the offending shard is committed) when a shard disagrees with
    the store — or with an earlier shard — about a digest's simulation
    outcome.
    """
    report = MergeReport()
    loaded = []
    for path in paths:
        shard = load_shard(path)
        loaded.append(shard)
        inserted = 0
        try:
            for point in shard.results:
                meta = shard.run_meta.get(point.digest) or {}
                try:
                    run_meta = RunMeta(
                        host=str(meta.get("host", "")),
                        repro_version=str(meta.get("repro_version",
                                                   "")),
                        recorded_at=float(meta.get("recorded_at", 0.0)
                                          or 0.0))
                    point.wall_seconds = float(
                        meta.get("wall_seconds", 0.0) or 0.0)
                except (AttributeError, TypeError, ValueError) as exc:
                    raise StoreError("malformed run_meta for digest %s "
                                     "in %s: %r"
                                     % (point.digest, path, exc))
                if store.insert(point, sweep=shard.sweep,
                                source=shard.label(), run_meta=run_meta,
                                commit=False):
                    inserted += 1
        except BaseException:
            store.rollback()
            raise
        store.commit()
        report.inserted += inserted
        report.duplicates += len(shard.results) - inserted
        report.shards += 1
    report.warnings = _coverage_warnings(loaded)
    return report
