"""The sqlite-backed result store.

A :class:`ResultStore` promotes the flat per-point JSON cache
(:class:`repro.exp.cache.ResultCache`) to a durable, queryable database:
one row per simulated point, keyed by the engine's content digest, with
the canonical result payload plus run metadata (wall seconds, host,
repro version, timestamp) that the JSON cache never records.  Figures
and EXPERIMENTS tables regenerate from accumulated history instead of
re-simulation (``repro report``), and distributed sweep shards gather
into one store with conflict detection (``repro merge``).

Identity and conflicts
----------------------
Rows are keyed by :meth:`repro.exp.spec.SweepPoint.digest` — the sha256
of everything the simulation is a pure function of.  Two records with
the same digest must therefore agree on the *simulation outcome*
(cycles, insts, finished, stats); a mismatch means non-deterministic
simulators or a tampered shard and is a hard
:class:`StoreConflictError`.  Display fields (``key``, ``variant``
label) are a sweep's *view* of a point and may legitimately differ
between producers — first write wins, and the engine re-keys lookups
per sweep, exactly as the JSON cache does.

Write-through
-------------
A :class:`ResultStore` (or a :class:`StoreCache` wrapper) quacks like
the engine's cache — ``lookup(digest)`` / ``store(result)`` — so
passing one as ``cache=`` to :func:`repro.exp.engine.run_sweep` records
points into the database as they complete.
"""

from __future__ import annotations

import json
import os
import socket
import sqlite3
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.exp.resultset import PointResult, ResultSet

#: Bump on incompatible changes to the table layout below.  Opening a
#: store written by a different schema version is a hard error: result
#: databases are long-lived artefacts and must never be reinterpreted
#: silently.
STORE_SCHEMA_VERSION = 1

#: Version of the ``checkpoints`` table layout, tracked separately from
#: :data:`STORE_SCHEMA_VERSION`: adding the table to an existing v1
#: store is backward- and forward-compatible (old builds ignore it), so
#: the results schema version — and with it every stored result — is
#: left untouched.  Checkpoints are a *cache* (warm-up state is always
#: regenerable), so an incompatible bump here merely orphans blobs.
CHECKPOINT_SCHEMA_VERSION = 1

#: Version of the ``metrics`` table layout (cycle-domain metrics series
#: recorded by traced runs — see ``docs/observability.md``), tracked
#: separately for the same reason as the checkpoint table: adding it to
#: an existing store is additive, and metrics are regenerable telemetry
#: (re-run the point with ``--metrics-interval``), so an incompatible
#: bump merely orphans old series.
METRICS_SCHEMA_VERSION = 1

_TABLES = """
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS checkpoints (
    prefix_digest TEXT NOT NULL,
    inst_count    INTEGER NOT NULL,
    format        INTEGER NOT NULL,
    insts         INTEGER NOT NULL,
    cycles        INTEGER NOT NULL,
    nbytes        INTEGER NOT NULL,
    blob          BLOB NOT NULL,
    workload      TEXT,
    defense       TEXT,
    host          TEXT,
    repro_version TEXT,
    recorded_at   REAL,
    PRIMARY KEY (prefix_digest, inst_count)
);
CREATE TABLE IF NOT EXISTS results (
    digest        TEXT PRIMARY KEY,
    key           TEXT NOT NULL,
    workload      TEXT NOT NULL,
    defense       TEXT NOT NULL,
    variant       TEXT NOT NULL,
    scale         REAL NOT NULL,
    cycles        INTEGER NOT NULL,
    insts         INTEGER NOT NULL,
    finished      INTEGER NOT NULL,
    stats         TEXT NOT NULL,
    payload       TEXT NOT NULL,
    sweep         TEXT,
    source        TEXT,
    wall_seconds  REAL,
    host          TEXT,
    repro_version TEXT,
    recorded_at   REAL
);
CREATE INDEX IF NOT EXISTS idx_results_workload ON results (workload);
CREATE INDEX IF NOT EXISTS idx_results_defense  ON results (defense);
CREATE INDEX IF NOT EXISTS idx_results_sweep    ON results (sweep);
CREATE TABLE IF NOT EXISTS metrics (
    digest        TEXT PRIMARY KEY,
    interval      INTEGER NOT NULL,
    columns       TEXT NOT NULL,
    samples       TEXT NOT NULL,
    host          TEXT,
    repro_version TEXT,
    recorded_at   REAL
);
"""

#: Columns surfaced by :meth:`ResultStore.rows`, in schema order.
ROW_COLUMNS = ("digest", "key", "workload", "defense", "variant",
               "scale", "cycles", "insts", "finished", "sweep",
               "source", "wall_seconds", "host", "repro_version",
               "recorded_at")


class StoreError(RuntimeError):
    """Generic result-store failure (bad schema, unusable file)."""


class StoreConflictError(StoreError):
    """Same digest, different simulation payload: refusing to merge.

    This is always a hard error — it means two producers disagree about
    the outcome of the *same* simulation, so one of them is wrong
    (non-deterministic build, tampered shard, hand-edited store).
    """

    def __init__(self, digest: str, existing_source: Optional[str],
                 new_source: Optional[str]) -> None:
        self.digest = digest
        super().__init__(
            "conflicting results for digest %s: existing record (from "
            "%s) disagrees with new record (from %s) on the simulation "
            "outcome" % (digest, existing_source or "unknown",
                         new_source or "unknown"))


class MissingStoreResultError(StoreError):
    """Strict replay asked the store for a point it does not hold."""

    def __init__(self, digest: str) -> None:
        self.digest = digest
        super().__init__(
            "result store holds no record for digest %s — run the "
            "sweep with --db first (or pass --allow-sim to simulate "
            "missing points)" % digest)


@dataclass(frozen=True)
class CheckpointRecord:
    """One stored warm-up checkpoint (see ``docs/checkpoints.md``).

    ``inst_count`` is the requested snapshot boundary (the key);
    ``insts``/``cycles`` are the machine's actual committed-instruction
    and cycle counts at the snapshot (commit width can overshoot the
    requested boundary within the final cycle).
    """

    prefix_digest: str
    inst_count: int
    format: int
    insts: int
    cycles: int
    blob: bytes


@dataclass(frozen=True)
class RunMeta:
    """Provenance recorded alongside each stored result.

    The caller supplies the values (the store never calls the clock
    itself) so ingest is reproducible;  :meth:`capture` is the
    convenience constructor the CLI uses.
    """

    host: str = ""
    repro_version: str = ""
    recorded_at: float = 0.0

    @classmethod
    def capture(cls) -> "RunMeta":
        import repro
        return cls(host=socket.gethostname(),
                   repro_version=repro.__version__,
                   recorded_at=time.time())


def sim_payload(payload: Dict[str, object]) -> str:
    """The digest-covered half of a canonical result payload.

    ``key``/``variant`` (and through them nothing else) are a sweep's
    display view of a point; everything the digest pins — workload,
    defense, scale and the simulation outcome — must agree between any
    two records sharing a digest.  Conflict detection compares this
    canonical string.
    """
    body = {name: payload[name] for name in payload
            if name not in ("key", "variant")}
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


class ResultStore:
    """One sqlite file of point results, keyed by engine digest."""

    def __init__(self, path: str,
                 run_meta: Optional[RunMeta] = None) -> None:
        self.path = os.path.expanduser(str(path))
        self.run_meta = run_meta or RunMeta()
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._conn = sqlite3.connect(self.path)
        self._conn.row_factory = sqlite3.Row
        self._ensure_schema()

    # -- lifecycle ------------------------------------------------------

    def _ensure_schema(self) -> None:
        try:
            self._conn.executescript(_TABLES)
            row = self._conn.execute(
                "SELECT value FROM store_meta WHERE key='schema_version'"
            ).fetchone()
        except sqlite3.DatabaseError as exc:
            raise StoreError("%s is not a result store: %s"
                             % (self.path, exc)) from exc
        if row is None:
            self._conn.execute(
                "INSERT INTO store_meta (key, value) VALUES "
                "('schema_version', ?)", (str(STORE_SCHEMA_VERSION),))
            self._conn.commit()
        elif row["value"] != str(STORE_SCHEMA_VERSION):
            raise StoreError(
                "%s uses store schema version %s; this build speaks %d"
                % (self.path, row["value"], STORE_SCHEMA_VERSION))
        # The checkpoint table carries its own version key (absent from
        # stores written before the table existed; executescript above
        # just added the empty table to those, at the current layout).
        ck = self._conn.execute(
            "SELECT value FROM store_meta WHERE "
            "key='checkpoint_schema_version'").fetchone()
        if ck is None:
            self._conn.execute(
                "INSERT OR IGNORE INTO store_meta (key, value) VALUES "
                "('checkpoint_schema_version', ?)",
                (str(CHECKPOINT_SCHEMA_VERSION),))
            self._conn.commit()
        elif ck["value"] != str(CHECKPOINT_SCHEMA_VERSION):
            raise StoreError(
                "%s uses checkpoint schema version %s; this build "
                "speaks %d (prune the checkpoints with a matching "
                "build, then reopen)"
                % (self.path, ck["value"], CHECKPOINT_SCHEMA_VERSION))
        # Same additive pattern for the metrics table.
        mk = self._conn.execute(
            "SELECT value FROM store_meta WHERE "
            "key='metrics_schema_version'").fetchone()
        if mk is None:
            self._conn.execute(
                "INSERT OR IGNORE INTO store_meta (key, value) VALUES "
                "('metrics_schema_version', ?)",
                (str(METRICS_SCHEMA_VERSION),))
            self._conn.commit()
        elif mk["value"] != str(METRICS_SCHEMA_VERSION):
            raise StoreError(
                "%s uses metrics schema version %s; this build speaks "
                "%d (re-record traced runs with a matching build)"
                % (self.path, mk["value"], METRICS_SCHEMA_VERSION))

    def close(self) -> None:
        self._conn.close()

    def commit(self) -> None:
        self._conn.commit()

    def rollback(self) -> None:
        self._conn.rollback()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- writes ---------------------------------------------------------

    def insert(self, result: PointResult, *,
               sweep: Optional[str] = None,
               source: Optional[str] = None,
               run_meta: Optional[RunMeta] = None,
               commit: bool = True) -> bool:
        """Record one result; returns True if a new row was written.

        An existing row with the same digest and the same simulation
        outcome is a no-op duplicate (first write wins, including its
        run metadata); a disagreeing row raises
        :class:`StoreConflictError`.
        """
        payload = result.to_json_dict()
        meta = run_meta or self.run_meta
        # A single conflict-tolerant INSERT (rather than check-then-
        # insert) so two processes writing through to the same store
        # file cannot race into an IntegrityError: the loser simply
        # falls through to the agreement check below.
        cursor = self._conn.execute(
            "INSERT INTO results (digest, key, workload, defense, "
            "variant, scale, cycles, insts, finished, stats, payload, "
            "sweep, source, wall_seconds, host, repro_version, "
            "recorded_at) VALUES (?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?) "
            "ON CONFLICT (digest) DO NOTHING",
            (result.digest, result.key, result.workload, result.defense,
             result.variant, result.scale, result.cycles, result.insts,
             int(result.finished),
             json.dumps(payload["stats"], sort_keys=True,
                        separators=(",", ":")),
             json.dumps(payload, sort_keys=True, separators=(",", ":")),
             sweep, source, result.wall_seconds, meta.host,
             meta.repro_version, meta.recorded_at))
        if cursor.rowcount == 0:
            existing = self._conn.execute(
                "SELECT payload, source FROM results WHERE digest=?",
                (result.digest,)).fetchone()
            if (existing is not None
                    and sim_payload(json.loads(existing["payload"]))
                    == sim_payload(payload)):
                return False
            raise StoreConflictError(
                result.digest,
                existing["source"] if existing is not None else None,
                source)
        if commit:
            self._conn.commit()
        return True

    def insert_many(self, results: Iterable[PointResult], *,
                    sweep: Optional[str] = None,
                    source: Optional[str] = None,
                    run_meta: Optional[RunMeta] = None) -> int:
        """Insert a batch in one transaction; returns new-row count."""
        inserted = 0
        try:
            for result in results:
                if self.insert(result, sweep=sweep, source=source,
                               run_meta=run_meta, commit=False):
                    inserted += 1
        except BaseException:
            self._conn.rollback()
            raise
        self._conn.commit()
        return inserted

    # -- engine-cache protocol (write-through mode) ---------------------

    def lookup(self, digest: str) -> Optional[PointResult]:
        """Engine-cache hit path: rehydrate the canonical payload."""
        row = self._conn.execute(
            "SELECT payload FROM results WHERE digest=?",
            (digest,)).fetchone()
        if row is None:
            return None
        return PointResult.from_json_dict(json.loads(row["payload"]),
                                          cached=True)

    def store(self, result: PointResult) -> None:
        """Engine-cache fill path: record an executed point."""
        self.insert(result, source="engine")

    # -- queries --------------------------------------------------------

    def __len__(self) -> int:
        return self._conn.execute(
            "SELECT COUNT(*) FROM results").fetchone()[0]

    def has(self, digest: str) -> bool:
        return self._conn.execute(
            "SELECT 1 FROM results WHERE digest=?",
            (digest,)).fetchone() is not None

    def digests(self) -> List[str]:
        return [row[0] for row in self._conn.execute(
            "SELECT digest FROM results ORDER BY rowid")]

    def _where(self, filters: Dict[str, object]) -> tuple:
        clauses, params = [], []
        for column, value in filters.items():
            if value is None:
                continue
            clauses.append("%s=?" % column)
            params.append(value)
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        return where, params

    def rows(self, workload: Optional[str] = None,
             defense: Optional[str] = None,
             variant: Optional[str] = None,
             sweep: Optional[str] = None,
             scale: Optional[float] = None) -> List[Dict[str, object]]:
        """Raw result rows (insertion order) including run metadata."""
        where, params = self._where({
            "workload": workload, "defense": defense,
            "variant": variant, "sweep": sweep, "scale": scale})
        cursor = self._conn.execute(
            "SELECT %s FROM results%s ORDER BY rowid"
            % (", ".join(ROW_COLUMNS), where), params)
        return [dict(row) for row in cursor]

    def select(self, workload: Optional[str] = None,
               defense: Optional[str] = None,
               variant: Optional[str] = None,
               sweep: Optional[str] = None,
               scale: Optional[float] = None) -> ResultSet:
        """Query matching points into a :class:`ResultSet`.

        Points come back in insertion order under their stored keys;
        two stored views of distinct simulations can share a key (e.g.
        the same sweep at two scales), in which case ``ResultSet.add``
        raises — narrow the filters (``scale=``, ``sweep=``) to
        disambiguate.
        """
        where, params = self._where({
            "workload": workload, "defense": defense,
            "variant": variant, "sweep": sweep, "scale": scale})
        results = ResultSet()
        for row in self._conn.execute(
                "SELECT payload FROM results%s ORDER BY rowid" % where,
                params):
            results.add(PointResult.from_json_dict(
                json.loads(row["payload"]), cached=True))
        return results

    def stats(self) -> Dict[str, object]:
        """Store-level summary: row counts and file size."""
        count = len(self)
        distinct = {}
        for column in ("workload", "defense", "sweep"):
            distinct[column + "s"] = self._conn.execute(
                "SELECT COUNT(DISTINCT %s) FROM results WHERE %s IS "
                "NOT NULL" % (column, column)).fetchone()[0]
        try:
            size = os.path.getsize(self.path)
        except OSError:
            size = 0
        return {"path": self.path, "schema_version": STORE_SCHEMA_VERSION,
                "points": count, "bytes": size, **distinct,
                **self.checkpoint_stats(), **self.metrics_stats()}

    # -- cycle-domain metrics -------------------------------------------
    #
    # One series per result digest: the ``series()`` dict of
    # repro.obs.metrics.MetricsSampler, recorded by traced runs and
    # queried back by ``repro report timeline``.  Last write wins:
    # unlike results, a re-traced point may legitimately carry a
    # different sampling interval, and the series is regenerable
    # telemetry, not part of the canonical result payload.

    def metrics_save(self, digest: str, series: Dict[str, object], *,
                     run_meta: Optional[RunMeta] = None,
                     commit: bool = True) -> None:
        """Store (or replace) the metrics series for ``digest``."""
        meta = run_meta or self.run_meta
        self._conn.execute(
            "INSERT INTO metrics (digest, interval, columns, samples, "
            "host, repro_version, recorded_at) VALUES (?,?,?,?,?,?,?) "
            "ON CONFLICT (digest) DO UPDATE SET interval=excluded."
            "interval, columns=excluded.columns, samples=excluded."
            "samples, host=excluded.host, repro_version=excluded."
            "repro_version, recorded_at=excluded.recorded_at",
            (digest, int(series.get("interval", 0)),
             json.dumps(series.get("columns", []),
                        separators=(",", ":")),
             json.dumps(series.get("samples", []),
                        separators=(",", ":")),
             meta.host, meta.repro_version, meta.recorded_at))
        if commit:
            self._conn.commit()

    def metrics_lookup(self, digest: str) -> Optional[Dict[str, object]]:
        """The stored series for ``digest`` (the ``series()`` shape),
        or None."""
        row = self._conn.execute(
            "SELECT interval, columns, samples FROM metrics WHERE "
            "digest=?", (digest,)).fetchone()
        if row is None:
            return None
        return {"interval": row["interval"],
                "columns": json.loads(row["columns"]),
                "samples": json.loads(row["samples"])}

    def metrics_digests(self) -> List[str]:
        """Digests with a stored metrics series, insertion order."""
        return [row[0] for row in self._conn.execute(
            "SELECT digest FROM metrics ORDER BY rowid")]

    def metrics_stats(self) -> Dict[str, object]:
        """Metrics-table summary, folded into :meth:`stats`."""
        count = self._conn.execute(
            "SELECT COUNT(*) FROM metrics").fetchone()[0]
        return {"metrics_series": count,
                "metrics_schema_version": METRICS_SCHEMA_VERSION}

    # -- checkpoints ----------------------------------------------------
    #
    # Warm-up simulator snapshots, keyed by (prefix_digest, inst_count):
    # the prefix digest (see SweepPoint.prefix_digest) covers exactly
    # the inputs that determine execution up to the snapshot boundary,
    # so any two points agreeing on it share one warm-up run.  Blobs are
    # first-write-wins with no agreement check: unlike result payloads,
    # pickle bytes are not canonical (two producers of the *same* state
    # may serialize it differently), and semantic agreement is already
    # guaranteed by the digest keying plus the restore-equivalence
    # matrix in tests/test_scheduler_equivalence.py.

    def checkpoint_save(self, prefix_digest: str, inst_count: int,
                        blob: bytes, *, fmt: int, insts: int,
                        cycles: int, workload: Optional[str] = None,
                        defense: Optional[str] = None,
                        run_meta: Optional[RunMeta] = None,
                        commit: bool = True) -> bool:
        """Store one checkpoint; returns True if a new row was written
        (an existing row for the same key wins and is kept)."""
        meta = run_meta or self.run_meta
        cursor = self._conn.execute(
            "INSERT INTO checkpoints (prefix_digest, inst_count, "
            "format, insts, cycles, nbytes, blob, workload, defense, "
            "host, repro_version, recorded_at) VALUES "
            "(?,?,?,?,?,?,?,?,?,?,?,?) "
            "ON CONFLICT (prefix_digest, inst_count) DO NOTHING",
            (prefix_digest, inst_count, fmt, insts, cycles, len(blob),
             sqlite3.Binary(blob), workload, defense, meta.host,
             meta.repro_version, meta.recorded_at))
        if commit:
            self._conn.commit()
        return cursor.rowcount > 0

    def checkpoint_lookup(self, prefix_digest: str, inst_count: int
                          ) -> Optional[CheckpointRecord]:
        row = self._conn.execute(
            "SELECT format, insts, cycles, blob FROM checkpoints "
            "WHERE prefix_digest=? AND inst_count=?",
            (prefix_digest, inst_count)).fetchone()
        if row is None:
            return None
        return CheckpointRecord(
            prefix_digest=prefix_digest, inst_count=inst_count,
            format=row["format"], insts=row["insts"],
            cycles=row["cycles"], blob=bytes(row["blob"]))

    def checkpoint_counts(self, prefix_digest: str) -> List[int]:
        """Snapshot boundaries stored for one prefix, ascending."""
        return [row[0] for row in self._conn.execute(
            "SELECT inst_count FROM checkpoints WHERE prefix_digest=? "
            "ORDER BY inst_count", (prefix_digest,))]

    def checkpoint_stats(self) -> Dict[str, object]:
        """Checkpoint-table summary, folded into :meth:`stats`."""
        row = self._conn.execute(
            "SELECT COUNT(*), COALESCE(SUM(nbytes), 0), "
            "COUNT(DISTINCT prefix_digest) FROM checkpoints").fetchone()
        return {"checkpoints": row[0], "checkpoint_bytes": row[1],
                "checkpoint_prefixes": row[2],
                "checkpoint_schema_version": CHECKPOINT_SCHEMA_VERSION}

    def checkpoint_prune(self, older_than: Optional[float] = None,
                         prefix: Optional[str] = None,
                         all_rows: bool = False) -> int:
        """Delete checkpoints; returns rows removed.

        ``older_than`` is an absolute ``recorded_at`` cutoff (rows
        recorded strictly before it go); ``prefix`` matches
        ``prefix_digest`` by string prefix, so a truncated digest from
        ``store stats`` output works.  Filters compose (AND);
        ``all_rows=True`` drops the table's contents.  The file is
        VACUUMed whenever rows were removed — checkpoint blobs dominate
        store size, and a prune that does not shrink the file would
        defeat its purpose.
        """
        if not all_rows and older_than is None and prefix is None:
            raise ValueError(
                "checkpoint_prune needs a filter (older_than/prefix) "
                "or all_rows=True")
        clauses, params = [], []
        if older_than is not None:
            clauses.append("recorded_at < ?")
            params.append(older_than)
        if prefix is not None:
            # Escape LIKE wildcards: a pasted "%" must match a literal
            # "%" (i.e. nothing, for hex digests), not every row.
            escaped = (prefix.replace("\\", "\\\\")
                       .replace("%", "\\%").replace("_", "\\_"))
            clauses.append("prefix_digest LIKE ? ESCAPE '\\'")
            params.append(escaped + "%")
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        cursor = self._conn.execute(
            "DELETE FROM checkpoints%s" % where, params)
        removed = cursor.rowcount
        self._conn.commit()
        if removed:
            self._conn.execute("VACUUM")
        return removed


class StoreCache:
    """Engine-cache adapter over a :class:`ResultStore` with a policy.

    ``mode`` is one of:

    - ``"rw"``: hits come from the store, executed points are recorded
      (write-through — the default for ``--db``);
    - ``"ro"``: hits come from the store, executed points are *not*
      recorded;
    - ``"strict"``: replay only — a miss raises
      :class:`MissingStoreResultError` before any simulation runs
      (``repro report`` without ``--allow-sim``).
    """

    MODES = ("rw", "ro", "strict")

    def __init__(self, db: ResultStore, mode: str = "rw") -> None:
        if mode not in self.MODES:
            raise ValueError("mode must be one of %r" % (self.MODES,))
        self.db = db
        self.mode = mode

    def lookup(self, digest: str) -> Optional[PointResult]:
        hit = self.db.lookup(digest)
        if hit is None and self.mode == "strict":
            raise MissingStoreResultError(digest)
        return hit

    def store(self, result: PointResult) -> None:
        if self.mode == "rw":
            self.db.insert(result, source="engine")

    def metrics_save(self, digest: str,
                     series: Dict[str, object]) -> None:
        """Traced-run metrics write-through (respects the policy)."""
        if self.mode == "rw":
            self.db.metrics_save(digest, series)
