"""The result store: sqlite-backed results + distributed sweep shards.

This package promotes the engine's flat JSON cache to campaign
infrastructure (see ``docs/results-store.md``):

- :class:`ResultStore` (``db.py``) — one sqlite file of point results
  keyed by engine digest, with run metadata and a small query API;
  quacks like the engine cache, so ``cache=ResultStore(...)`` gives
  write-through recording.
- :class:`StoreCache` — the same store behind an access policy
  (``rw`` write-through / ``ro`` / ``strict`` replay-only).
- ``shard.py`` — export one machine's slice of a sweep
  (``repro sweep --shard i/n --export``) and gather shards with
  conflict detection (``repro merge``).
- ``backfill.py`` — ingest a pre-existing JSON cache directory.

Typical distributed campaign::

    # machine A                       # machine B
    repro sweep ... --shard 0/2 \\     repro sweep ... --shard 1/2 \\
        --export shard0.json              --export shard1.json

    # gather + regenerate, no re-simulation
    repro merge shard0.json shard1.json --db results.sqlite
    repro report compare mcf hmmer --db results.sqlite
"""

from repro.store.backfill import BackfillReport, backfill_from_cache
from repro.store.db import (
    CHECKPOINT_SCHEMA_VERSION,
    METRICS_SCHEMA_VERSION,
    STORE_SCHEMA_VERSION,
    CheckpointRecord,
    MissingStoreResultError,
    ResultStore,
    RunMeta,
    StoreCache,
    StoreConflictError,
    StoreError,
)
from repro.store.shard import (
    SHARD_FORMAT,
    MergeReport,
    ShardFile,
    load_shard,
    merge_shards,
    write_shard,
)

__all__ = [
    "BackfillReport",
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointRecord",
    "METRICS_SCHEMA_VERSION",
    "MergeReport",
    "MissingStoreResultError",
    "ResultStore",
    "RunMeta",
    "SHARD_FORMAT",
    "STORE_SCHEMA_VERSION",
    "ShardFile",
    "StoreCache",
    "StoreConflictError",
    "StoreError",
    "backfill_from_cache",
    "load_shard",
    "merge_shards",
    "write_shard",
]
