"""Backfill: ingest an existing JSON result cache into a store.

Every entry the flat content-addressed cache
(:class:`repro.exp.cache.ResultCache`) accumulated before the store
existed is one ``<dir>/<digest[:2]>/<digest>.json`` file.  This walks
them, validates each against the cache schema version, and inserts the
survivors with ``source="backfill"`` — so years of per-point JSON
become queryable history in one ``repro store backfill`` invocation.

The JSON cache records no run metadata, so backfilled rows carry the
caller's :class:`~repro.store.db.RunMeta` (the ingest provenance) and a
zero wall-seconds.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from repro.exp.cache import ResultCache
from repro.exp.resultset import PointResult
from repro.exp.spec import CACHE_SCHEMA_VERSION
from repro.store.db import ResultStore, RunMeta


@dataclass
class BackfillReport:
    """Outcome of one cache ingest."""

    scanned: int = 0
    inserted: int = 0
    duplicates: int = 0
    skipped: int = 0

    def summary(self) -> str:
        return ("backfill: %d cache entries scanned, %d inserted, "
                "%d duplicates, %d skipped (corrupt or stale)"
                % (self.scanned, self.inserted, self.duplicates,
                   self.skipped))


def backfill_from_cache(store: ResultStore, cache: ResultCache, *,
                        run_meta: Optional[RunMeta] = None
                        ) -> BackfillReport:
    """Ingest every valid entry of ``cache`` into ``store``.

    Corrupt, stale (cache-schema-mismatched) or misnamed entries are
    counted as skipped, never fatal: a backfill must survive whatever a
    long-lived cache directory has accumulated.  Digest conflicts with
    rows already in the store are still hard errors, exactly as for
    shard merges.
    """
    report = BackfillReport()
    meta = run_meta or store.run_meta
    try:
        for digest, path in sorted(cache.entries()):
            report.scanned += 1
            result = _load_entry(path, digest)
            if result is None:
                report.skipped += 1
                continue
            if store.insert(result, source="backfill", run_meta=meta,
                            commit=False):
                report.inserted += 1
            else:
                report.duplicates += 1
    except BaseException:
        store.rollback()
        raise
    store.commit()
    return report


def _load_entry(path: str, digest: str) -> Optional[PointResult]:
    """One cache file -> PointResult, or None when unusable."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    if payload.get("cache_version") != CACHE_SCHEMA_VERSION:
        return None
    try:
        result = PointResult.from_json_dict(payload["result"],
                                            cached=True)
    except (KeyError, TypeError):
        return None
    # A file whose name disagrees with its recorded digest has been
    # moved or hand-edited; trusting either identity would poison the
    # store.
    if result.digest != digest:
        return None
    return result
