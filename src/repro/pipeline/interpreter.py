"""Functional reference interpreter for the mini-ISA.

The out-of-order core must produce the same architectural state as this
interpreter for every program and every defense — differential testing
relies on it (tests/pipeline/test_differential.py).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.pipeline.isa import (
    LINK_REG,
    NUM_REGS,
    Instr,
    Op,
    evaluate,
)
from repro.pipeline.program import Program


@dataclass
class ArchState:
    """Final architectural state of a run."""

    regs: List[int]
    memory: Dict[int, int]
    committed: int
    halted: bool
    trace: Optional[List[Tuple[int, Op]]] = None

    def reg(self, index: int) -> int:
        return self.regs[index]


@dataclass
class Interpreter:
    """Straight-line functional execution, one instruction per step."""

    program: Program
    trace: bool = False
    regs: List[int] = field(default_factory=lambda: [0] * NUM_REGS)
    pc: int = 0
    committed: int = 0
    halted: bool = False

    def __post_init__(self) -> None:
        self.memory: Dict[int, int] = dict(self.program.memory)
        self._trace: List[Tuple[int, Op]] = []

    def _src(self, instr: Instr) -> Tuple[int, int]:
        a = self.regs[instr.rs1] if instr.rs1 is not None else 0
        b = (self.regs[instr.rs2] if instr.rs2 is not None
             else instr.imm)
        return a, b

    def step(self) -> None:
        """Execute one instruction; no-op once halted."""
        if self.halted or self.pc >= len(self.program.instrs):
            self.halted = True
            return
        instr = self.program.instrs[self.pc]
        if self.trace:
            self._trace.append((self.pc, instr.op))
        next_pc = self.pc + 1
        op = instr.op
        if instr.is_alu:
            # precomputed in Instr.__post_init__; replaces three
            # frozenset membership probes per executed instruction
            a, b = self._src(instr)
            self.regs[instr.rd] = evaluate(op, a, b, instr.imm)
        elif op is Op.LOAD:
            addr = (self.regs[instr.rs1] + instr.imm) if instr.rs1 is not None else instr.imm
            self.regs[instr.rd] = self.memory.get(addr, 0)
        elif op is Op.STORE:
            addr = (self.regs[instr.rs1] + instr.imm) if instr.rs1 is not None else instr.imm
            self.memory[addr] = self.regs[instr.rs2]
        elif op is Op.BEQZ:
            if self.regs[instr.rs1] == 0:
                next_pc = instr.target
        elif op is Op.BNEZ:
            if self.regs[instr.rs1] != 0:
                next_pc = instr.target
        elif op is Op.JMP:
            next_pc = instr.target
        elif op is Op.CALL:
            self.regs[LINK_REG] = self.pc + 1
            next_pc = instr.target
        elif op is Op.RET:
            next_pc = self.regs[LINK_REG]
        elif op is Op.HALT:
            self.halted = True
        elif op is Op.RDCYC:
            # Timing-dependent by construction; the functional reference
            # returns the committed-instruction count as a deterministic
            # stand-in (differential tests avoid RDCYC programs).
            self.regs[instr.rd] = self.committed
        elif op is Op.NOP:
            pass
        else:  # pragma: no cover - exhaustive over Op
            raise ValueError("unknown op %s" % op)
        self.committed += 1
        self.pc = next_pc

    def run(self, max_steps: int = 1_000_000) -> ArchState:
        steps = 0
        while not self.halted and steps < max_steps:
            self.step()
            steps += 1
        return ArchState(
            regs=list(self.regs),
            memory=dict(self.memory),
            committed=self.committed,
            halted=self.halted,
            trace=self._trace if self.trace else None,
        )


def run_program(program: Program, max_steps: int = 1_000_000,
                trace: bool = False) -> ArchState:
    """One-call functional execution of ``program``."""
    return Interpreter(program, trace=trace).run(max_steps)
