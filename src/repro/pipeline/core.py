"""Cycle-driven out-of-order core with genuine transient execution.

The core fetches along the *predicted* path, renames and executes
speculatively, and squashes back to the last correct instruction on a
branch misprediction — so misspeculated ("wrong-path") instructions
really fetch, execute, issue memory accesses and contend for functional
units, exactly the behaviour Spectre-family attacks (and GhostMinion's
mechanisms) depend on.

Stage order within a cycle: commit -> writeback (incl. branch
resolution/squash) -> issue -> dispatch/rename -> fetch.  Values flow by
dataflow: each dynamic instruction points at its producers and reads
their results when it executes, so squashed instructions simply never
write anything architectural (stores update memory only at commit).

Defense hooks (see :mod:`repro.defenses.base`):

* taint tracking (STT) blocks tainted-address loads/stores in issue;
* validation (InvisiSpec) re-fetches invisible loads at their
  visibility point and blocks commit until done;
* GhostMinion's commit move / coherence replay runs through
  ``hierarchy.commit_load``; squashes call ``hierarchy.squash``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.analysis.stats import Stats
from repro.config import SystemConfig
from repro.defenses.base import Defense
from repro.memory.hierarchy import BaseHierarchy
from repro.memory.request import MemRequest, ReqState
from repro.pipeline.branch_predictor import (
    BranchTargetBuffer,
    ReturnAddressStack,
    make_predictor,
)
from repro.pipeline.functional_units import FUPool
from repro.pipeline.isa import (
    INST_BYTES,
    LINK_REG,
    MASK64,
    NUM_REGS,
    Instr,
    Op,
    evaluate,
)
from repro.pipeline.program import Program
from repro.snapshot import SnapshotMixin

ADDR_MASK = (1 << 48) - 1

ST_WAITING = 0
ST_EXECUTING = 1
ST_DONE = 2

# ======================================================================
# stall taxonomy (event-driven scheduler)
#
# Every outcome of Core.next_event_cycle is named here, and the names
# are load-bearing: docs/performance.md documents the same table, the
# simulator's per-class skipped-cycles telemetry keys off SKIP_*, and
# tests/test_stall_taxonomy.py fails if code and docs drift apart.
# ======================================================================

#: Skippable stall classes: conditions whose per-cycle effect is a
#: provable, fixed set of counter bumps (applied in bulk over a window).
SKIP_COMMIT_STALL = "commit-stall"
SKIP_VALIDATION_WAIT = "validation-wait"
SKIP_MEM_WAIT = "mem-wait"
SKIP_STT_TAINT = "stt-taint"
SKIP_LSQ_STORE_ADDR = "lsq-store-addr"
SKIP_MSHR_BACKPRESSURE = "mshr-backpressure"
SKIP_STRICT_FU = "strict-fu-order"
SKIP_DISPATCH_FULL = "dispatch-full"
SKIP_FETCH_STALL = "fetch-stall"
SKIP_IDLE = "idle"

SKIP_CLASSES = frozenset({
    SKIP_COMMIT_STALL, SKIP_VALIDATION_WAIT, SKIP_MEM_WAIT,
    SKIP_STT_TAINT, SKIP_LSQ_STORE_ADDR, SKIP_MSHR_BACKPRESSURE,
    SKIP_STRICT_FU, SKIP_DISPATCH_FULL, SKIP_FETCH_STALL, SKIP_IDLE,
})

#: Veto reasons: conditions under which stepping this cycle might make
#: progress or have unproven side effects, so the scheduler must step
#: densely.  Vetoing is always safe — it costs speed, never correctness.
VETO_MEM_EVENT_DUE = "mem-event-due"
VETO_COMMIT_READY = "commit-ready"
VETO_WRITEBACK_DUE = "writeback-due"
VETO_VALIDATION_START = "validation-start"
VETO_EARLY_COMMIT_READY = "early-commit-ready"
VETO_ISSUE_READY = "issue-ready"
VETO_DISPATCH_READY = "dispatch-ready"
VETO_FETCH_READY = "fetch-ready"

VETO_REASONS = frozenset({
    VETO_MEM_EVENT_DUE, VETO_COMMIT_READY, VETO_WRITEBACK_DUE,
    VETO_VALIDATION_START, VETO_EARLY_COMMIT_READY, VETO_ISSUE_READY,
    VETO_DISPATCH_READY, VETO_FETCH_READY,
})


class StallVeto:
    """``next_event_cycle`` outcome: step densely, for ``reason``."""

    __slots__ = ("reason",)

    def __init__(self, reason: str) -> None:
        self.reason = reason

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "StallVeto(%s)" % self.reason


class StallProof:
    """``next_event_cycle`` outcome: a provable stall window.

    For every cycle in ``[cycle, wake)``, stepping this core changes
    nothing except bumping each stats handle in ``bumps`` once per
    cycle and the effects reproduced by the ``replays`` callables
    (``fn(cycle, k)``, invoked once per committed window).  ``classes``
    is the subset of :data:`SKIP_CLASSES` active in the window, for the
    per-class skipped-cycles telemetry.
    """

    __slots__ = ("wake", "bumps", "replays", "classes")

    def __init__(self, wake, bumps, replays, classes) -> None:
        self.wake = wake
        self.bumps = bumps
        self.replays = replays
        self.classes = classes


class DynInst:
    """One dynamic (possibly transient) instruction."""

    __slots__ = (
        "seq", "ts", "pc", "instr", "state", "operands", "operand_taints",
        "taint_srcs", "result", "addr", "store_value", "memreq",
        "done_cycle", "squashed", "committed", "forwarded",
        # branch bookkeeping
        "pred_next", "actual_taken", "actual_next", "resolved",
        "ghr_ckpt", "ras_ckpt", "rename_ckpt", "mispredicted",
        # defense bookkeeping
        "validated", "validation_done_cycle", "commit_stall_until",
        "replays", "promoted",
    )

    def __init__(self, seq: int, pc: int, instr: Instr,
                 ts: Optional[int] = None) -> None:
        self.seq = seq
        # Temporal-Order timestamp (§4.4): allocation order by default;
        # under §4.10's Full Strictness Order, the speculation epoch.
        self.ts = seq if ts is None else ts
        self.pc = pc
        self.instr = instr
        self.state = ST_WAITING
        self.operands: List[Tuple[Optional["DynInst"], int]] = []
        self.operand_taints: List[Set["DynInst"]] = []
        self.taint_srcs: Set["DynInst"] = set()
        self.result = 0
        self.addr: Optional[int] = None
        self.store_value = 0
        self.memreq: Optional[MemRequest] = None
        self.done_cycle = -1
        self.squashed = False
        self.committed = False
        self.forwarded = False
        self.pred_next = pc + 1
        self.actual_taken = False
        self.actual_next = pc + 1
        self.resolved = False
        self.ghr_ckpt = 0
        self.ras_ckpt: Optional[List[int]] = None
        self.rename_ckpt: Optional[Dict[int, Optional["DynInst"]]] = None
        self.mispredicted = False
        self.validated = False
        self.validation_done_cycle: Optional[int] = None
        self.commit_stall_until = -1
        self.replays = 0
        self.promoted = False  # §4.10 early commit performed

    def operand_values(self) -> List[int]:
        values = []
        for producer, value in self.operands:
            values.append(producer.result if producer is not None else value)
        return values

    def operands_ready(self) -> bool:
        for producer, _value in self.operands:
            if producer is not None and producer.state != ST_DONE:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "DynInst(#%d pc=%d %s)" % (self.seq, self.pc,
                                          self.instr.op.value)


class Core(SnapshotMixin):
    """One hardware thread: fetch -> ... -> commit over a Program."""

    #: Snapshot contract: registers, rename state and the pipeline
    #: queues are the state; the predictor/BTB/RAS/FU pool restore in
    #: place as nested components.  The program, config, defense,
    #: hierarchy, functional memory and stats registry are wiring owned
    #: elsewhere.  In-flight instructions reference memory requests
    #: queued in MSHRs, so component-level snapshots are meaningful on a
    #: *quiesced* core (empty pipeline); whole-machine checkpoints
    #: (:mod:`repro.sim.checkpoint`) capture in-flight state with
    #: cross-component identity intact.
    _SNAPSHOT_EXCLUDE = ("program", "cfg", "defense", "hierarchy",
                         "memory", "stats")

    def __init__(self, core_id: int, program: Program, cfg: SystemConfig,
                 defense: Defense, hierarchy: BaseHierarchy,
                 memory: Dict[int, int], stats: Stats,
                 init_regs: Optional[Dict[int, int]] = None) -> None:
        self.core_id = core_id
        self.program = program
        self.cfg = cfg.core
        self.defense = defense
        self.hierarchy = hierarchy
        self.memory = memory
        self.stats = stats
        self.regs = [0] * NUM_REGS
        for reg, value in (init_regs or {}).items():
            self.regs[reg] = value & MASK64
        self.predictor = make_predictor(self.cfg.predictor, stats)
        self.btb = BranchTargetBuffer(self.cfg.predictor.btb_entries, stats)
        self.ras = ReturnAddressStack(self.cfg.predictor.ras_entries)
        self.fu_pool = FUPool(self.cfg, stats,
                              strict_order=defense.strict_fu_order)
        # frontend
        self.fetch_pc = 0
        self.fetch_stall_until = 0
        self.fetch_halted = False
        self.pending_ifetch: Optional[MemRequest] = None
        self.fetch_queue: Deque[DynInst] = deque()
        # backend
        self.rob: Deque[DynInst] = deque()
        self.iq: List[DynInst] = []
        self.lq: List[DynInst] = []
        self.sq: List[DynInst] = []
        self.executing: List[DynInst] = []
        self.rename_map: Dict[int, Optional[DynInst]] = {
            reg: None for reg in range(NUM_REGS)}
        self.unresolved_branches: Set[DynInst] = set()
        self.seq_counter = 0
        # §4.10 Full Strictness Order: timestamp epoch, bumped per
        # mispredictable branch; shared monotone space with seq so the
        # two modes use identical comparison logic.
        self.epoch_timestamps = defense.epoch_timestamps
        self.epoch = 0
        self.halted = False
        #: Plain integer mirror of the ``commit.insts`` counter, so the
        #: simulator's per-cycle ``max_insts`` cap costs an attribute
        #: read instead of a string-keyed stats lookup.
        self.committed_insts = 0
        self._oldest_unresolved = float("inf")
        self._taint_on = defense.taint_mode != "none"
        self._validation_on = defense.validation_mode != "none"
        # Hot-path counters interned once; see repro.analysis.stats.
        self._h_fetch_insts = stats.handle("fetch.insts")
        self._h_fetch_off_end = stats.handle("fetch.off_end")
        self._h_rob_full = stats.handle("dispatch.rob_full")
        self._h_iq_full = stats.handle("dispatch.iq_full")
        self._h_lq_full = stats.handle("dispatch.lq_full")
        self._h_sq_full = stats.handle("dispatch.sq_full")
        self._h_commit_insts = stats.handle("commit.insts")
        self._h_commit_loads = stats.handle("commit.loads")
        self._h_commit_stores = stats.handle("commit.stores")
        self._h_commit_stall = stats.handle("commit.stall_cycles")
        self._h_ivs_stall = stats.handle("ivs.validation_stall_cycles")
        self._h_lsq_load_waits = stats.handle("lsq.load_waits")
        self._h_lsq_forwards = stats.handle("lsq.forwards")
        self._h_load_retries = stats.handle("mem.load_retries")
        self._h_load_replays = stats.handle("mem.load_replays")
        self._h_cond_branches = stats.handle("bp.cond_branches")
        self._h_mispredicts = stats.handle("bp.mispredicts")
        self._h_strict_blocked = {
            cls: stats.handle("fu.%s.strict_blocked" % cls)
            for cls in FUPool.CLASSES}
        self._h_stt_load_blocked = stats.handle("stt.load_blocked_cycles")
        self._h_stt_store_blocked = stats.handle(
            "stt.store_blocked_cycles")
        self._h_stt_branch_blocked = stats.handle(
            "stt.branch_blocked_cycles")
        self._h_stt_fu_blocked = stats.handle("stt.fu_blocked_cycles")
        self._h_fu_int_issued = stats.handle("fu.int.issued")

    # ==================================================================
    # cycle step
    # ==================================================================

    def step(self, cycle: int) -> None:
        if self.halted:
            return
        self.hierarchy.drain(cycle)
        self._refresh_oldest_unresolved()
        self._commit(cycle)
        if self.halted:
            return
        self._writeback(cycle)
        if self._validation_on:
            self._issue_ready_validations(cycle)
        if self.defense.early_commit:
            self._early_commit_promotions(cycle)
        self._issue(cycle)
        self._dispatch(cycle)
        self._fetch(cycle)

    def done(self) -> bool:
        return self.halted

    # ==================================================================
    # event-driven scheduling (cycle skipping)
    # ==================================================================

    def next_event_cycle(self, cycle):
        """Stall analysis for the event-driven scheduler.

        Returns a :class:`StallVeto` when ``step(cycle)`` might make
        progress or have side effects the analysis cannot prove and
        bulk-apply — the scheduler must then step densely.  Otherwise
        returns a :class:`StallProof`: for every cycle ``c`` in
        ``[cycle, wake)``, ``step(c)`` is guaranteed to change
        *nothing* except bumping each stats handle in ``bumps`` once
        per cycle, plus the per-cycle side effects reproduced by the
        ``replays`` callables — exactly what the dense loop would do —
        so the scheduler may jump straight to ``wake`` after applying
        them in bulk.

        This mirrors :meth:`step` stage by stage (commit, writeback,
        validation issue, early commit, issue, dispatch, fetch) and must
        be kept in lockstep with it: the ``REPRO_DENSE_LOOP=1``
        differential tests in ``tests/test_scheduler_equivalence.py``
        enforce the equivalence, and every outcome is named in the
        stall taxonomy (:data:`SKIP_CLASSES` / :data:`VETO_REASONS`,
        documented in docs/performance.md and pinned by
        ``tests/test_stall_taxonomy.py``).  When in doubt, veto —
        conservatism costs speed, never correctness.
        """
        if self.halted:
            return StallProof(float("inf"), (), (), ())
        wake = self.hierarchy.next_event_cycle()
        if wake <= cycle:
            # A fill is due: drain has work this cycle.
            return StallVeto(VETO_MEM_EVENT_DUE)
        bumps = []
        replays = []
        classes = set()
        # -- commit: only the ROB head can block the window ------------
        if self.rob:
            head = self.rob[0]
            if head.state == ST_DONE and not head.squashed:
                if head.commit_stall_until > cycle:
                    wake = min(wake, head.commit_stall_until)
                    bumps.append(self._h_commit_stall)
                    classes.add(SKIP_COMMIT_STALL)
                elif (self._validation_on and head.instr.is_load
                        and head.memreq is not None
                        and head.memreq.needs_validation
                        and not head.validated
                        and head.validation_done_cycle is not None
                        and cycle < head.validation_done_cycle):
                    wake = min(wake, head.validation_done_cycle)
                    bumps.append(self._h_ivs_stall)
                    classes.add(SKIP_VALIDATION_WAIT)
                else:
                    # Head would commit (or start commit-point work).
                    return StallVeto(VETO_COMMIT_READY)
        # -- writeback: every in-flight op is a wakeup source ----------
        for di in self.executing:
            if di.squashed:
                return StallVeto(VETO_WRITEBACK_DUE)  # would clean list
            if di.instr.is_load and di.memreq is not None:
                req = di.memreq
                if req.state is not ReqState.READY:
                    # Replay (or backpressure) to service.
                    return StallVeto(VETO_WRITEBACK_DUE)
                ready = req.ready_cycle
            else:
                ready = di.done_cycle
            if ready <= cycle:
                return StallVeto(VETO_WRITEBACK_DUE)  # completes now
            wake = min(wake, ready)
            classes.add(SKIP_MEM_WAIT)
        # -- InvisiSpec: a load at its visibility point starts work ----
        if self._validation_on:
            spectre_mode = self.defense.validation_mode == "spectre"
            window = None
            if not spectre_mode:
                window = {di.seq for di in list(self.rob)
                          [:2 * self.cfg.commit_width]}
            for di in self.lq:
                req = di.memreq
                if (req is None or not req.needs_validation or di.validated
                        or di.validation_done_cycle is not None):
                    continue
                if di.state != ST_DONE:
                    continue
                if spectre_mode:
                    if di.seq < self._oldest_unresolved:
                        return StallVeto(VETO_VALIDATION_START)
                elif di.seq in window:
                    return StallVeto(VETO_VALIDATION_START)
        # -- GhostMinion §4.10: a promotable load starts work ----------
        if self.defense.early_commit:
            for di in self.lq:
                if (di.promoted or di.squashed or di.state != ST_DONE
                        or di.forwarded or di.memreq is None):
                    continue
                if di.seq < self._oldest_unresolved:
                    return StallVeto(VETO_EARLY_COMMIT_READY)
        # -- issue: walk candidates in seq order, as _issue does -------
        # Ops with ready operands no longer veto unconditionally: the
        # three issue-side stall classes (STT taint blocking, LSQ
        # store-address waits, MSHR-backpressure retries) are provable
        # per-cycle no-ops-plus-bumps, because nothing that could
        # unblock them (commit, squash, branch resolution, address
        # generation, an MSHR drain) can happen before `wake` — every
        # such event is itself a veto or a wakeup source above.
        # Retrying loads do consume issue slots and int-FU ports each
        # cycle, so slot accounting mirrors _issue exactly.
        strict_fu = self.defense.strict_fu_order
        taint_on = self._taint_on
        blocked_classes = set()
        issued = 0
        int_used = 0
        issue_width = self.cfg.issue_width
        int_ports = self.fu_pool.ports("int")
        for di in sorted(self.iq, key=lambda d: d.seq):
            if di.squashed or di.state != ST_WAITING:
                # Issue would prune the queue.
                return StallVeto(VETO_ISSUE_READY)
            instr = di.instr
            nonpipelined = not instr.pipelined
            if issued >= issue_width:
                # Width exhausted by retrying loads: younger ops wait
                # silently (dense: still_waiting, no bumps).
                if strict_fu and nonpipelined:
                    blocked_classes.add(instr.fu_class)
                continue
            if strict_fu and nonpipelined \
                    and instr.fu_class in blocked_classes:
                bumps.append(self._h_strict_blocked[instr.fu_class])
                classes.add(SKIP_STRICT_FU)
                continue
            if not di.operands_ready():
                if strict_fu and nonpipelined:
                    blocked_classes.add(instr.fu_class)
                continue
            # Operands ready: mirror _try_issue_one's blocking checks.
            if instr.is_load:
                values = di.operand_values()
                base = values[0] if instr.rs1 is not None else 0
                addr = (base + instr.imm) & ADDR_MASK
                conflict = self._older_store_conflict(di, addr)
                if conflict == "wait":
                    # The blocking store cannot generate its address
                    # before `wake`: it is either mid-execution (its
                    # completion bounds the window via the writeback
                    # scan) or blocked on producers that are.
                    bumps.append(self._h_lsq_load_waits)
                    classes.add(SKIP_LSQ_STORE_ADDR)
                    continue
                if taint_on and not self._address_operands_safe(di):
                    # Untainting needs a commit, squash or branch
                    # resolution; none can happen before `wake`.
                    bumps.append(self._h_stt_load_blocked)
                    classes.add(SKIP_STT_TAINT)
                    continue
                if int_used >= int_ports:
                    continue  # try_issue would fail silently
                if conflict is not None:
                    # Would forward from the store and complete.
                    return StallVeto(VETO_ISSUE_READY)
                proof = self.hierarchy.load_block_proof(
                    addr, di.ts, di.pc, cycle)
                if proof is None:
                    return StallVeto(VETO_ISSUE_READY)
                # MSHR backpressure: the dense loop re-issues this load
                # every cycle — consuming an issue slot and an int FU
                # port, probing the L1 side, training the prefetcher
                # (replayed in bulk) and bumping the retry counters.
                issued += 1
                int_used += 1
                wake = min(wake, proof.wake)
                bumps.append(self._h_fu_int_issued)
                bumps.append(self._h_load_retries)
                for name in proof.bumps:
                    bumps.append(self.stats.handle(name))
                replays.extend(proof.replays)
                classes.add(SKIP_MSHR_BACKPRESSURE)
                continue
            if instr.is_store:
                if taint_on and di.operand_taints and any(
                        not self._taint_source_safe(s)
                        for s in di.operand_taints[0]):
                    bumps.append(self._h_stt_store_blocked)
                    classes.add(SKIP_STT_TAINT)
                    continue
                if int_used >= int_ports:
                    continue  # try_issue would fail silently
                return StallVeto(VETO_ISSUE_READY)
            if taint_on and di.operand_taints:
                if instr.is_branch:
                    if any(not self._taint_source_safe(s)
                           for s in di.operand_taints[0]):
                        bumps.append(self._h_stt_branch_blocked)
                        classes.add(SKIP_STT_TAINT)
                        continue
                elif nonpipelined:
                    if any(not self._taint_source_safe(s)
                           for taint in di.operand_taints
                           for s in taint):
                        bumps.append(self._h_stt_fu_blocked)
                        classes.add(SKIP_STT_TAINT)
                        if strict_fu:
                            blocked_classes.add(instr.fu_class)
                        continue
            if instr.fu_class == "int" and int_used >= int_ports:
                if strict_fu and nonpipelined:
                    blocked_classes.add(instr.fu_class)
                continue  # try_issue would fail silently
            return StallVeto(VETO_ISSUE_READY)
        # -- dispatch: blocked head bumps one full-counter per cycle ---
        if self.fetch_queue:
            di = self.fetch_queue[0]
            instr = di.instr
            if len(self.rob) >= self.cfg.rob_entries:
                bumps.append(self._h_rob_full)
                classes.add(SKIP_DISPATCH_FULL)
            else:
                needs_iq = instr.op not in (Op.NOP, Op.HALT) and not (
                    instr.op in (Op.JMP, Op.CALL))
                if needs_iq and len(self.iq) >= self.cfg.iq_entries:
                    bumps.append(self._h_iq_full)
                    classes.add(SKIP_DISPATCH_FULL)
                elif instr.is_load and len(self.lq) >= self.cfg.lq_entries:
                    bumps.append(self._h_lq_full)
                    classes.add(SKIP_DISPATCH_FULL)
                elif instr.is_store \
                        and len(self.sq) >= self.cfg.sq_entries:
                    bumps.append(self._h_sq_full)
                    classes.add(SKIP_DISPATCH_FULL)
                else:
                    # Head would dispatch.
                    return StallVeto(VETO_DISPATCH_READY)
        # -- fetch ------------------------------------------------------
        if not self.fetch_halted:
            if cycle < self.fetch_stall_until:
                wake = min(wake, self.fetch_stall_until)
                classes.add(SKIP_FETCH_STALL)
            elif len(self.fetch_queue) < 2 * self.cfg.fetch_width:
                pc = self.fetch_pc
                if pc < 0 or pc >= len(self.program.instrs):
                    bumps.append(self._h_fetch_off_end)
                    classes.add(SKIP_FETCH_STALL)
                else:
                    addr = pc * INST_BYTES
                    if self.hierarchy.ifetch_would_hit(
                            addr, self._fetch_ts()):
                        # Would fetch this cycle.
                        return StallVeto(VETO_FETCH_READY)
                    req = self.pending_ifetch
                    if req is None:
                        # Dense would re-issue the ifetch each cycle;
                        # skippable iff that is a provable MSHR-
                        # backpressure retry.
                        proof = self.hierarchy.ifetch_block_proof(
                            addr, self._fetch_ts(), cycle)
                        if proof is None:
                            return StallVeto(VETO_FETCH_READY)
                        wake = min(wake, proof.wake)
                        for name in proof.bumps:
                            bumps.append(self.stats.handle(name))
                        replays.extend(proof.replays)
                        classes.add(SKIP_MSHR_BACKPRESSURE)
                    elif req.line != (addr >> 6):
                        # Would issue a fresh ifetch (and drop the old
                        # pending request): step densely.
                        return StallVeto(VETO_FETCH_READY)
                    elif req.state is not ReqState.READY:
                        # Replayed: would reissue.
                        return StallVeto(VETO_FETCH_READY)
                    elif req.ready_cycle <= cycle:
                        # Fill dropped: would reissue.
                        return StallVeto(VETO_FETCH_READY)
                    else:
                        wake = min(wake, req.ready_cycle)
                        classes.add(SKIP_FETCH_STALL)
        return StallProof(wake, bumps, replays, classes)

    # ==================================================================
    # fetch
    # ==================================================================

    def _fetch(self, cycle: int) -> None:
        if self.fetch_halted or cycle < self.fetch_stall_until:
            return
        fetched = 0
        max_queue = 2 * self.cfg.fetch_width
        while fetched < self.cfg.fetch_width and \
                len(self.fetch_queue) < max_queue:
            pc = self.fetch_pc
            if pc < 0 or pc >= len(self.program.instrs):
                # Fell off the program (can happen transiently); treat as
                # a stream of NOPs that will be squashed, by stalling.
                self.stats.add(self._h_fetch_off_end)
                return
            addr = pc * INST_BYTES
            if not self._ifetch_line_ready(addr, cycle):
                return
            instr = self.program.instrs[pc]
            ts = None
            if self.epoch_timestamps:
                ts = self.epoch
            di = DynInst(self.seq_counter, pc, instr, ts=ts)
            self.seq_counter += 1
            if self.epoch_timestamps and instr.is_branch \
                    and instr.op not in (Op.JMP, Op.CALL):
                # a new (more speculative) epoch begins after every
                # predicted conditional branch or return
                self.epoch = self.seq_counter
            self._predict(di, cycle)
            self.fetch_queue.append(di)
            self.stats.add(self._h_fetch_insts)
            self.fetch_pc = di.pred_next
            fetched += 1
            if instr.op is Op.HALT:
                self.fetch_halted = True
                return

    def _fetch_ts(self) -> int:
        return self.epoch if self.epoch_timestamps else self.seq_counter

    def _ifetch_line_ready(self, addr: int, cycle: int) -> bool:
        if self.hierarchy.ifetch_probe(addr, self._fetch_ts(), cycle):
            self.pending_ifetch = None
            return True
        req = self.pending_ifetch
        if req is not None and req.line == (addr >> 6):
            if req.state is ReqState.REPLAY or req.done(cycle):
                # Replayed (leapfrogged away), or completed without the
                # line becoming present (its fill was dropped by a
                # squash-time wipe): fetch again.
                self.pending_ifetch = self.hierarchy.ifetch(
                    addr, self._fetch_ts(), cycle)
            return False
        self.pending_ifetch = self.hierarchy.ifetch(
            addr, self._fetch_ts(), cycle)
        return False

    def _predict(self, di: DynInst, cycle: int) -> None:
        instr = di.instr
        pc = di.pc
        if not instr.is_branch:
            di.pred_next = pc + 1
            return
        di.ras_ckpt = self.ras.checkpoint()
        op = instr.op
        if op is Op.JMP:
            di.pred_next = instr.target
            di.resolved = True
            di.actual_next = instr.target
        elif op is Op.CALL:
            self.ras.push(pc + 1)
            di.pred_next = instr.target
            di.resolved = True
            di.actual_next = instr.target
        elif op is Op.RET:
            target = self.ras.pop()
            if target is None:
                btb_target = self.btb.predict(pc)
                target = btb_target if btb_target is not None else pc + 1
            di.pred_next = target
        else:  # conditional
            taken, ckpt = self.predictor.predict(pc)
            di.ghr_ckpt = ckpt
            di.pred_next = instr.target if taken else pc + 1

    # ==================================================================
    # dispatch / rename
    # ==================================================================

    def _dispatch(self, cycle: int) -> None:
        dispatched = 0
        while self.fetch_queue and dispatched < self.cfg.fetch_width:
            di = self.fetch_queue[0]
            instr = di.instr
            if len(self.rob) >= self.cfg.rob_entries:
                self.stats.add(self._h_rob_full)
                return
            needs_iq = instr.op not in (Op.NOP, Op.HALT) and not (
                instr.op in (Op.JMP, Op.CALL))
            if needs_iq and len(self.iq) >= self.cfg.iq_entries:
                self.stats.add(self._h_iq_full)
                return
            if instr.is_load and len(self.lq) >= self.cfg.lq_entries:
                self.stats.add(self._h_lq_full)
                return
            if instr.is_store and len(self.sq) >= self.cfg.sq_entries:
                self.stats.add(self._h_sq_full)
                return
            self.fetch_queue.popleft()
            self._rename(di)
            self.rob.append(di)
            if instr.is_load:
                self.lq.append(di)
            if instr.is_store:
                self.sq.append(di)
            if instr.is_branch and not di.resolved:
                self.unresolved_branches.add(di)
                if di.seq < self._oldest_unresolved:
                    self._oldest_unresolved = di.seq
            if needs_iq:
                self.iq.append(di)
            else:
                self._finish_trivial(di, cycle)
            dispatched += 1

    def _rename(self, di: DynInst) -> None:
        instr = di.instr
        for reg in instr.src_regs():
            producer = self.rename_map[reg]
            if producer is not None and producer.state == ST_DONE \
                    and producer.committed:
                producer = None
            if producer is None:
                di.operands.append((None, self.regs[reg]))
            else:
                di.operands.append((producer, 0))
            if self._taint_on:
                di.operand_taints.append(self._operand_taint(producer))
        if self._taint_on:
            for taint in di.operand_taints:
                di.taint_srcs |= taint
        if instr.is_branch:
            di.rename_ckpt = dict(self.rename_map)
        dest = instr.writes_reg
        if dest is not None:
            self.rename_map[dest] = di

    def _operand_taint(self, producer: Optional[DynInst]
                       ) -> Set[DynInst]:
        if producer is None:
            return set()
        taint = {src for src in producer.taint_srcs
                 if not self._taint_source_safe(src)}
        if producer.instr.is_load and not self._taint_source_safe(producer):
            taint.add(producer)
        return taint

    def _finish_trivial(self, di: DynInst, cycle: int) -> None:
        """NOP/HALT/JMP/CALL complete at dispatch."""
        if di.instr.op is Op.CALL:
            di.result = di.pc + 1
        di.state = ST_DONE
        di.done_cycle = cycle

    # ==================================================================
    # issue
    # ==================================================================

    def _issue(self, cycle: int) -> None:
        self.fu_pool.begin_cycle(cycle)
        strict_fu = self.defense.strict_fu_order
        blocked_classes = set()
        issued = 0
        still_waiting: List[DynInst] = []
        self.iq.sort(key=lambda d: d.seq)
        for di in self.iq:
            if di.squashed or di.state != ST_WAITING:
                continue
            instr = di.instr
            nonpipelined = not instr.pipelined
            if issued >= self.cfg.issue_width:
                still_waiting.append(di)
                if strict_fu and nonpipelined:
                    blocked_classes.add(instr.fu_class)
                continue
            if strict_fu and nonpipelined \
                    and instr.fu_class in blocked_classes:
                # §4.9: a non-pipelined unit may only be issued a
                # speculative operation once all older (timestamp-order)
                # operations that may use the same unit have issued —
                # including ones whose operands are not ready yet.
                self.stats.add(self._h_strict_blocked[instr.fu_class])
                still_waiting.append(di)
                continue
            if not di.operands_ready():
                still_waiting.append(di)
                if strict_fu and nonpipelined:
                    blocked_classes.add(instr.fu_class)
                continue
            if self._try_issue_one(di, cycle):
                issued += 1
                if di.state == ST_WAITING:
                    # loads that hit retry/backpressure stay waiting
                    still_waiting.append(di)
            else:
                still_waiting.append(di)
                if strict_fu and nonpipelined:
                    blocked_classes.add(instr.fu_class)
        self.iq = still_waiting

    def _try_issue_one(self, di: DynInst, cycle: int) -> bool:
        instr = di.instr
        if instr.is_load:
            return self._issue_load(di, cycle)
        if instr.is_store:
            return self._issue_store(di, cycle)
        if self._taint_on and di.operand_taints:
            if instr.is_branch:
                # STT: a branch on tainted data is an (implicit)
                # transmitter and may not execute until the taint clears.
                if any(not self._taint_source_safe(s)
                       for s in di.operand_taints[0]):
                    self.stats.add(self._h_stt_branch_blocked)
                    return False
            elif not instr.pipelined:
                # Non-pipelined FU ops on tainted data transmit through
                # structural-hazard contention (SpectreRewind): STT
                # delays them like any other transmitter.
                if any(not self._taint_source_safe(s)
                       for taint in di.operand_taints for s in taint):
                    self.stats.add(self._h_stt_fu_blocked)
                    return False
        if not self.fu_pool.try_issue(instr.fu_class, cycle, instr.latency,
                                      instr.pipelined):
            return False
        values = di.operand_values()
        if instr.is_branch:
            self._compute_branch(di, values)
        elif instr.op is Op.RDCYC:
            di.result = cycle
        else:
            a = values[0] if values else 0
            b = values[1] if len(values) > 1 else instr.imm
            di.result = evaluate(instr.op, a, b, instr.imm)
        di.state = ST_EXECUTING
        di.done_cycle = cycle + instr.latency
        self.executing.append(di)
        return True

    def _compute_branch(self, di: DynInst, values: List[int]) -> None:
        instr = di.instr
        op = instr.op
        if op is Op.BEQZ:
            di.actual_taken = values[0] == 0
            di.actual_next = instr.target if di.actual_taken else di.pc + 1
        elif op is Op.BNEZ:
            di.actual_taken = values[0] != 0
            di.actual_next = instr.target if di.actual_taken else di.pc + 1
        elif op is Op.RET:
            di.actual_taken = True
            di.actual_next = values[0] & ADDR_MASK

    # -- loads ---------------------------------------------------------------

    def _issue_load(self, di: DynInst, cycle: int) -> bool:
        instr = di.instr
        values = di.operand_values()
        base = values[0] if instr.rs1 is not None else 0
        addr = (base + instr.imm) & ADDR_MASK
        di.addr = addr
        conflict = self._older_store_conflict(di, addr)
        if conflict == "wait":
            self.stats.add(self._h_lsq_load_waits)
            return False
        if self._taint_on and not self._address_operands_safe(di):
            self.stats.add(self._h_stt_load_blocked)
            return False
        if not self.fu_pool.try_issue("int", cycle, 1, True):
            return False
        if conflict is not None:
            # store-to-load forwarding: one-cycle completion
            di.result = conflict.store_value
            di.forwarded = True
            di.state = ST_EXECUTING
            di.done_cycle = cycle + 1
            self.executing.append(di)
            self.stats.add(self._h_lsq_forwards)
            return True
        req = self.hierarchy.load(addr, di.ts, cycle, speculative=True,
                                  pc=di.pc)
        if req is None:
            self.stats.add(self._h_load_retries)
            return True  # consumed an issue slot but stays waiting
        di.memreq = req
        di.result = self._memory_value(addr)
        di.state = ST_EXECUTING
        self.executing.append(di)
        return True

    def _memory_value(self, addr: int) -> int:
        return self.memory.get(addr, 0)

    def _older_store_conflict(self, load: DynInst, addr: int):
        """Return 'wait', a forwarding store, or None (no conflict)."""
        result = None
        for store in self.sq:
            if store.seq >= load.seq:
                break
            if store.squashed:
                continue
            if store.state != ST_DONE and store.addr is None:
                if store.committed:
                    continue
                return "wait"
            if store.addr == addr:
                if store.committed:
                    result = None  # value already in memory
                elif store.state == ST_DONE:
                    result = store
                else:
                    return "wait"
        return result

    def _address_operands_safe(self, di: DynInst) -> bool:
        if not di.operand_taints:
            return True
        for src in di.operand_taints[0]:
            if not self._taint_source_safe(src):
                return False
        return True

    def _taint_source_safe(self, src: DynInst) -> bool:
        if src.squashed or src.committed:
            return True
        if self.defense.taint_mode == "spectre":
            return src.seq < self._oldest_unresolved
        return False  # 'future': safe only once committed

    # -- stores ---------------------------------------------------------------

    def _issue_store(self, di: DynInst, cycle: int) -> bool:
        instr = di.instr
        if self._taint_on:
            # store address is a transmitter too
            if di.operand_taints and any(
                    not self._taint_source_safe(s)
                    for s in di.operand_taints[0]):
                self.stats.add(self._h_stt_store_blocked)
                return False
        if not self.fu_pool.try_issue("int", cycle, 1, True):
            return False
        values = di.operand_values()
        base = values[0] if instr.rs1 is not None else 0
        di.addr = (base + instr.imm) & ADDR_MASK
        di.store_value = values[1] if len(values) > 1 else 0
        di.state = ST_EXECUTING
        di.done_cycle = cycle + 1
        self.executing.append(di)
        return True

    # ==================================================================
    # writeback & branch resolution
    # ==================================================================

    def _writeback(self, cycle: int) -> None:
        remaining: List[DynInst] = []
        # Resolve oldest-first so an older mispredict squashes younger ones.
        self.executing.sort(key=lambda d: d.seq)
        for di in self.executing:
            if di.squashed:
                continue
            if di.instr.is_load and di.memreq is not None:
                req = di.memreq
                if req.state is ReqState.REPLAY:
                    di.state = ST_WAITING
                    di.memreq = None
                    di.replays += 1
                    self.iq.append(di)
                    self.stats.add(self._h_load_replays)
                    continue
                if req.done(cycle):
                    di.result = self._memory_value(di.addr)
                    di.state = ST_DONE
                    di.done_cycle = cycle
                else:
                    remaining.append(di)
                    continue
            elif di.done_cycle <= cycle:
                di.state = ST_DONE
            else:
                remaining.append(di)
                continue
            if di.instr.is_branch and not di.resolved:
                self._resolve_branch(di, cycle)
                if di.mispredicted:
                    # Everything younger was just squashed; stop scanning
                    # (their entries were already filtered/marked).
                    break
        self.executing = [d for d in remaining if not d.squashed]

    def _resolve_branch(self, di: DynInst, cycle: int) -> None:
        di.resolved = True
        self.unresolved_branches.discard(di)
        self._refresh_oldest_unresolved()
        instr = di.instr
        if instr.is_cond_branch:
            self.stats.add(self._h_cond_branches)
            if not self.defense.train_predictor_at_commit:
                self.predictor.update(di.pc, di.actual_taken, di.ghr_ckpt)
        if instr.op is Op.RET and not self.defense.train_predictor_at_commit:
            self.btb.update(di.pc, di.actual_next)
        if di.actual_next != di.pred_next:
            di.mispredicted = True
            self.stats.add(self._h_mispredicts)
            self._squash_after(di, cycle)

    def _squash_after(self, br: DynInst, cycle: int) -> None:
        boundary = br.seq
        squashed = 0
        for di in list(self.rob):
            if di.seq > boundary:
                di.squashed = True
                squashed += 1
        if squashed:
            self.rob = deque(d for d in self.rob if not d.squashed)
            self.iq = [d for d in self.iq if not d.squashed]
            self.lq = [d for d in self.lq if not d.squashed]
            self.sq = [d for d in self.sq if not d.squashed]
            self.executing = [d for d in self.executing if not d.squashed]
            self.unresolved_branches = {
                d for d in self.unresolved_branches if not d.squashed}
        for di in self.fetch_queue:
            di.squashed = True
            squashed += 1
        self.fetch_queue.clear()
        self.pending_ifetch = None
        # restore rename state
        if br.rename_ckpt is not None:
            self.rename_map = dict(br.rename_ckpt)
            dest = br.instr.writes_reg
            if dest is not None:
                self.rename_map[dest] = br
        if br.instr.is_cond_branch:
            self.predictor.restore_ghr(br.ghr_ckpt, br.actual_taken)
        if br.ras_ckpt is not None:
            self.ras.restore(br.ras_ckpt)
            if br.instr.op is Op.RET:
                self.ras.pop()
        # redirect fetch
        self.fetch_halted = False
        self.fetch_pc = br.actual_next
        self.fetch_stall_until = cycle + self.cfg.mispredict_penalty
        self._refresh_oldest_unresolved()
        self.hierarchy.squash(br.ts, cycle)
        self.stats.bump("squash.events")
        self.stats.bump("squash.insts", squashed)

    def _refresh_oldest_unresolved(self) -> None:
        if self.unresolved_branches:
            self._oldest_unresolved = min(
                d.seq for d in self.unresolved_branches)
        else:
            self._oldest_unresolved = float("inf")

    # ==================================================================
    # InvisiSpec visibility
    # ==================================================================

    def _issue_ready_validations(self, cycle: int) -> None:
        """Issue InvisiSpec validations at each load's visibility point.

        * ``spectre`` mode: once all older branches have resolved.
        * ``future`` mode: at the commit point; validations for the
          oldest commit-window's worth of loads overlap (real InvisiSpec
          pipelines validations — fully serialising them at the ROB head
          would overstate the cost).
        """
        spectre_mode = self.defense.validation_mode == "spectre"
        window = None
        if not spectre_mode:
            window = {di.seq for di in list(self.rob)
                      [:2 * self.cfg.commit_width]}
        for di in self.lq:
            req = di.memreq
            if (req is None or not req.needs_validation or di.validated
                    or di.validation_done_cycle is not None):
                continue
            if di.state != ST_DONE:
                continue
            if spectre_mode:
                visible = di.seq < self._oldest_unresolved
            else:
                visible = di.seq in window
            if visible:
                di.validation_done_cycle = self.hierarchy.validate(
                    req, di.ts, cycle)

    def _early_commit_promotions(self, cycle: int) -> None:
        """§4.10 Early Commit: once every older branch has resolved, a
        completed load can no longer be squashed (no exceptions in this
        machine), so its Minion line may move to the L1 immediately."""
        for di in self.lq:
            if (di.promoted or di.squashed or di.state != ST_DONE
                    or di.forwarded or di.memreq is None):
                continue
            if di.seq < self._oldest_unresolved:
                self.hierarchy.commit_load(di.memreq, di.ts, cycle)
                di.promoted = True
                self.stats.bump("gm.early_commits")

    # ==================================================================
    # commit
    # ==================================================================

    def _commit(self, cycle: int) -> None:
        committed = 0
        while self.rob and committed < self.cfg.commit_width:
            di = self.rob[0]
            if di.state != ST_DONE or di.squashed:
                break
            if di.commit_stall_until > cycle:
                self.stats.add(self._h_commit_stall)
                break
            if not self._commit_load_checks(di, cycle):
                break
            instr = di.instr
            if instr.is_store:
                self.memory[di.addr] = di.store_value & MASK64
                self.hierarchy.store_commit(di.addr, di.ts, cycle)
                self.stats.add(self._h_commit_stores)
            dest = instr.writes_reg
            if dest is not None:
                self.regs[dest] = di.result & MASK64
                if self.rename_map.get(dest) is di:
                    self.rename_map[dest] = None
            if instr.is_cond_branch and self.defense.train_predictor_at_commit:
                self.predictor.update(di.pc, di.actual_taken, di.ghr_ckpt)
            if instr.op is Op.RET and self.defense.train_predictor_at_commit:
                self.btb.update(di.pc, di.actual_next)
            di.committed = True
            self.rob.popleft()
            if instr.is_load:
                self.lq.remove(di)
                self.stats.add(self._h_commit_loads)
            if instr.is_store:
                self.sq.remove(di)
            self.hierarchy.commit_ifetch(di.pc * INST_BYTES, di.ts, cycle)
            self.stats.add(self._h_commit_insts)
            self.committed_insts += 1
            committed += 1
            if instr.op is Op.HALT:
                self.halted = True
                return

    def _commit_load_checks(self, di: DynInst, cycle: int) -> bool:
        """Validation + GhostMinion commit actions; False blocks commit."""
        if not di.instr.is_load:
            return True
        req = di.memreq
        if self._validation_on and req is not None \
                and req.needs_validation and not di.validated:
            if di.validation_done_cycle is None:
                # 'future' mode validates at the commit point;
                # 'spectre' mode normally validated earlier but may
                # reach the head first.
                di.validation_done_cycle = self.hierarchy.validate(
                    req, di.ts, cycle)
                self.stats.bump("ivs.commit_validations")
            if cycle < di.validation_done_cycle:
                self.stats.add(self._h_ivs_stall)
                return False
            di.validated = True
        if di.forwarded or di.promoted:
            return True
        extra = self.hierarchy.commit_load(req, di.ts, cycle)
        if extra > 0:
            di.commit_stall_until = cycle + extra
            return False
        return True

    # ==================================================================
    # architectural state (for differential tests)
    # ==================================================================

    def arch_regs(self) -> List[int]:
        return list(self.regs)
