"""Cycle-driven out-of-order core with genuine transient execution.

The core fetches along the *predicted* path, renames and executes
speculatively, and squashes back to the last correct instruction on a
branch misprediction — so misspeculated ("wrong-path") instructions
really fetch, execute, issue memory accesses and contend for functional
units, exactly the behaviour Spectre-family attacks (and GhostMinion's
mechanisms) depend on.

The machinery is split across two modules:

* :mod:`repro.pipeline.hotcore` holds the dense per-cycle step loop and
  its data (:class:`DynInst`, :class:`HotCore` — stage order within a
  cycle: commit -> writeback -> issue -> dispatch/rename -> fetch).
  That module is compile-friendly and optionally ships as a mypyc
  extension (``REPRO_ACCEL``, see :mod:`repro.accel` and
  docs/performance.md).
* This module layers the parts the event-driven scheduler and the
  checkpoint machinery need on top: the stall taxonomy,
  :meth:`Core.next_event_cycle`, and the snapshot contract.  They stay
  pure Python — the taxonomy outcomes are identity-checked by the
  simulator and the analysis only runs once per *skip decision*, not
  once per cycle.

Values flow by dataflow: each dynamic instruction points at its
producers and reads their results when it executes, so squashed
instructions simply never write anything architectural (stores update
memory only at commit).

Defense hooks (see :mod:`repro.defenses.base`):

* taint tracking (STT) blocks tainted-address loads/stores in issue;
* validation (InvisiSpec) re-fetches invisible loads at their
  visibility point and blocks commit until done;
* GhostMinion's commit move / coherence replay runs through
  ``hierarchy.commit_load``; squashes call ``hierarchy.squash``.
"""

from __future__ import annotations

from itertools import islice

from repro.accel import load_hotcore
from repro.memory.request import ReqState
from repro.pipeline.isa import INST_BYTES
from repro.snapshot import SnapshotMixin

_hotcore = load_hotcore()

#: Re-exports: the hot-core module is an implementation detail; the
#: public home of these names stays ``repro.pipeline.core``.
HotCore = _hotcore.HotCore
DynInst = _hotcore.DynInst
ADDR_MASK = _hotcore.ADDR_MASK
ST_WAITING = _hotcore.ST_WAITING
ST_EXECUTING = _hotcore.ST_EXECUTING
ST_DONE = _hotcore.ST_DONE
_seq_key = _hotcore._seq_key

# ======================================================================
# stall taxonomy (event-driven scheduler)
#
# Every outcome of Core.next_event_cycle is named here, and the names
# are load-bearing: docs/performance.md documents the same table, the
# simulator's per-class skipped-cycles telemetry keys off SKIP_*, and
# tests/test_stall_taxonomy.py fails if code and docs drift apart.
# ======================================================================

#: Skippable stall classes: conditions whose per-cycle effect is a
#: provable, fixed set of counter bumps (applied in bulk over a window).
SKIP_COMMIT_STALL = "commit-stall"
SKIP_VALIDATION_WAIT = "validation-wait"
SKIP_MEM_WAIT = "mem-wait"
SKIP_STT_TAINT = "stt-taint"
SKIP_LSQ_STORE_ADDR = "lsq-store-addr"
SKIP_MSHR_BACKPRESSURE = "mshr-backpressure"
SKIP_STRICT_FU = "strict-fu-order"
SKIP_DISPATCH_FULL = "dispatch-full"
SKIP_FETCH_STALL = "fetch-stall"
SKIP_IDLE = "idle"

SKIP_CLASSES = frozenset({
    SKIP_COMMIT_STALL, SKIP_VALIDATION_WAIT, SKIP_MEM_WAIT,
    SKIP_STT_TAINT, SKIP_LSQ_STORE_ADDR, SKIP_MSHR_BACKPRESSURE,
    SKIP_STRICT_FU, SKIP_DISPATCH_FULL, SKIP_FETCH_STALL, SKIP_IDLE,
})

#: Veto reasons: conditions under which stepping this cycle might make
#: progress or have unproven side effects, so the scheduler must step
#: densely.  Vetoing is always safe — it costs speed, never correctness.
VETO_MEM_EVENT_DUE = "mem-event-due"
VETO_COMMIT_READY = "commit-ready"
VETO_WRITEBACK_DUE = "writeback-due"
VETO_VALIDATION_START = "validation-start"
VETO_EARLY_COMMIT_READY = "early-commit-ready"
VETO_ISSUE_READY = "issue-ready"
VETO_DISPATCH_READY = "dispatch-ready"
VETO_FETCH_READY = "fetch-ready"

VETO_REASONS = frozenset({
    VETO_MEM_EVENT_DUE, VETO_COMMIT_READY, VETO_WRITEBACK_DUE,
    VETO_VALIDATION_START, VETO_EARLY_COMMIT_READY, VETO_ISSUE_READY,
    VETO_DISPATCH_READY, VETO_FETCH_READY,
})


class StallVeto:
    """``next_event_cycle`` outcome: step densely, for ``reason``."""

    __slots__ = ("reason",)

    def __init__(self, reason: str) -> None:
        self.reason = reason

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "StallVeto(%s)" % self.reason


class StallProof:
    """``next_event_cycle`` outcome: a provable stall window.

    For every cycle in ``[cycle, wake)``, stepping this core changes
    nothing except bumping each stats handle in ``bumps`` once per
    cycle and the effects reproduced by the ``replays`` callables
    (``fn(cycle, k)``, invoked once per committed window).  ``classes``
    is the subset of :data:`SKIP_CLASSES` active in the window, for the
    per-class skipped-cycles telemetry.
    """

    __slots__ = ("wake", "bumps", "replays", "classes")

    def __init__(self, wake, bumps, replays, classes) -> None:
        self.wake = wake
        self.bumps = bumps
        self.replays = replays
        self.classes = classes


class Core(HotCore, SnapshotMixin):
    """One hardware thread: fetch -> ... -> commit over a Program."""

    #: Snapshot contract: registers, rename state and the pipeline
    #: queues are the state; the predictor/BTB/RAS/FU pool restore in
    #: place as nested components.  The program, config, defense,
    #: hierarchy, functional memory and stats registry are wiring owned
    #: elsewhere.  In-flight instructions reference memory requests
    #: queued in MSHRs, so component-level snapshots are meaningful on a
    #: *quiesced* core (empty pipeline); whole-machine checkpoints
    #: (:mod:`repro.sim.checkpoint`) capture in-flight state with
    #: cross-component identity intact.  HotCore keeps all of its state
    #: in ``__slots__``; the mixin's MRO scan picks those up whichever
    #: build (pure or compiled) is active.  The mode flags read out of
    #: the defense at construction (``epoch_timestamps``,
    #: ``_early_commit``, ``_strict_fu``, ``_train_at_commit``) are
    #: wiring-derived per-run constants: excluded, reconstructed by
    #: ``__init__`` on restore.
    _SNAPSHOT_EXCLUDE = ("program", "cfg", "defense", "hierarchy",
                         "memory", "stats", "epoch_timestamps",
                         "_early_commit", "_strict_fu",
                         "_train_at_commit", "_obs")

    # ==================================================================
    # event-driven scheduling (cycle skipping)
    # ==================================================================

    def next_event_cycle(self, cycle):
        """Stall analysis for the event-driven scheduler.

        Returns a :class:`StallVeto` when ``step(cycle)`` might make
        progress or have side effects the analysis cannot prove and
        bulk-apply — the scheduler must then step densely.  Otherwise
        returns a :class:`StallProof`: for every cycle ``c`` in
        ``[cycle, wake)``, ``step(c)`` is guaranteed to change
        *nothing* except bumping each stats handle in ``bumps`` once
        per cycle, plus the per-cycle side effects reproduced by the
        ``replays`` callables — exactly what the dense loop would do —
        so the scheduler may jump straight to ``wake`` after applying
        them in bulk.

        This mirrors :meth:`HotCore.step` stage by stage (commit,
        writeback, validation issue, early commit, issue, dispatch,
        fetch) and must be kept in lockstep with it: the
        ``REPRO_DENSE_LOOP=1`` differential tests in
        ``tests/test_scheduler_equivalence.py`` enforce the
        equivalence, and every outcome is named in the stall taxonomy
        (:data:`SKIP_CLASSES` / :data:`VETO_REASONS`, documented in
        docs/performance.md and pinned by
        ``tests/test_stall_taxonomy.py``).  When in doubt, veto —
        conservatism costs speed, never correctness.
        """
        if self.halted:
            return StallProof(float("inf"), (), (), ())
        wake = self.hierarchy.next_event_cycle()
        if wake <= cycle:
            # A fill is due: drain has work this cycle.
            return StallVeto(VETO_MEM_EVENT_DUE)
        bumps = []
        replays = []
        classes = set()
        # -- commit: only the ROB head can block the window ------------
        if self.rob:
            head = self.rob[0]
            if head.state == ST_DONE and not head.squashed:
                if head.commit_stall_until > cycle:
                    wake = min(wake, head.commit_stall_until)
                    bumps.append(self._h_commit_stall)
                    classes.add(SKIP_COMMIT_STALL)
                elif (self._validation_on and head.instr.is_load
                        and head.memreq is not None
                        and head.memreq.needs_validation
                        and not head.validated
                        and head.validation_done_cycle is not None
                        and cycle < head.validation_done_cycle):
                    wake = min(wake, head.validation_done_cycle)
                    bumps.append(self._h_ivs_stall)
                    classes.add(SKIP_VALIDATION_WAIT)
                else:
                    # Head would commit (or start commit-point work).
                    return StallVeto(VETO_COMMIT_READY)
        # -- writeback: every in-flight op is a wakeup source ----------
        for di in self.executing:
            if di.squashed:
                return StallVeto(VETO_WRITEBACK_DUE)  # would clean list
            if di.instr.is_load and di.memreq is not None:
                req = di.memreq
                if req.state is not ReqState.READY:
                    # Replay (or backpressure) to service.
                    return StallVeto(VETO_WRITEBACK_DUE)
                ready = req.ready_cycle
            else:
                ready = di.done_cycle
            if ready <= cycle:
                return StallVeto(VETO_WRITEBACK_DUE)  # completes now
            wake = min(wake, ready)
            classes.add(SKIP_MEM_WAIT)
        # -- InvisiSpec: a load at its visibility point starts work ----
        if self._validation_on:
            spectre_mode = self._spectre_validation
            window = None
            if not spectre_mode:
                window = {di.seq for di in islice(
                    self.rob, 2 * self._commit_width)}
            for di in self.lq:
                req = di.memreq
                if (req is None or not req.needs_validation or di.validated
                        or di.validation_done_cycle is not None):
                    continue
                if di.state != ST_DONE:
                    continue
                if spectre_mode:
                    if di.seq < self._oldest_unresolved:
                        return StallVeto(VETO_VALIDATION_START)
                elif di.seq in window:
                    return StallVeto(VETO_VALIDATION_START)
        # -- GhostMinion §4.10: a promotable load starts work ----------
        if self._early_commit:
            for di in self.lq:
                if (di.promoted or di.squashed or di.state != ST_DONE
                        or di.forwarded or di.memreq is None):
                    continue
                if di.seq < self._oldest_unresolved:
                    return StallVeto(VETO_EARLY_COMMIT_READY)
        # -- issue: walk candidates in seq order, as _issue does -------
        # Ops with ready operands no longer veto unconditionally: the
        # three issue-side stall classes (STT taint blocking, LSQ
        # store-address waits, MSHR-backpressure retries) are provable
        # per-cycle no-ops-plus-bumps, because nothing that could
        # unblock them (commit, squash, branch resolution, address
        # generation, an MSHR drain) can happen before `wake` — every
        # such event is itself a veto or a wakeup source above.
        # Retrying loads do consume issue slots and int-FU ports each
        # cycle, so slot accounting mirrors _issue exactly.
        strict_fu = self._strict_fu
        taint_on = self._taint_on
        blocked_classes = set()
        issued = 0
        int_used = 0
        issue_width = self._issue_width
        int_ports = self.fu_pool.ports("int")
        for di in sorted(self.iq, key=_seq_key):
            if di.squashed or di.state != ST_WAITING:
                # Issue would prune the queue.
                return StallVeto(VETO_ISSUE_READY)
            instr = di.instr
            nonpipelined = not instr.pipelined
            if issued >= issue_width:
                # Width exhausted by retrying loads: younger ops wait
                # silently (dense: still_waiting, no bumps).
                if strict_fu and nonpipelined:
                    blocked_classes.add(instr.fu_class)
                continue
            if strict_fu and nonpipelined \
                    and instr.fu_class in blocked_classes:
                bumps.append(self._h_strict_blocked[instr.fu_class])
                classes.add(SKIP_STRICT_FU)
                continue
            if not di.operands_ready():
                if strict_fu and nonpipelined:
                    blocked_classes.add(instr.fu_class)
                continue
            # Operands ready: mirror _try_issue_one's blocking checks.
            if instr.is_load:
                values = di.operand_values()
                base = values[0] if instr.rs1 is not None else 0
                addr = (base + instr.imm) & ADDR_MASK
                conflict = self._older_store_conflict(di, addr)
                if conflict == "wait":
                    # The blocking store cannot generate its address
                    # before `wake`: it is either mid-execution (its
                    # completion bounds the window via the writeback
                    # scan) or blocked on producers that are.
                    bumps.append(self._h_lsq_load_waits)
                    classes.add(SKIP_LSQ_STORE_ADDR)
                    continue
                if taint_on and not self._address_operands_safe(di):
                    # Untainting needs a commit, squash or branch
                    # resolution; none can happen before `wake`.
                    bumps.append(self._h_stt_load_blocked)
                    classes.add(SKIP_STT_TAINT)
                    continue
                if int_used >= int_ports:
                    continue  # try_issue would fail silently
                if conflict is not None:
                    # Would forward from the store and complete.
                    return StallVeto(VETO_ISSUE_READY)
                proof = self.hierarchy.load_block_proof(
                    addr, di.ts, di.pc, cycle)
                if proof is None:
                    return StallVeto(VETO_ISSUE_READY)
                # MSHR backpressure: the dense loop re-issues this load
                # every cycle — consuming an issue slot and an int FU
                # port, probing the L1 side, training the prefetcher
                # (replayed in bulk) and bumping the retry counters.
                issued += 1
                int_used += 1
                wake = min(wake, proof.wake)
                bumps.append(self._h_fu_int_issued)
                bumps.append(self._h_load_retries)
                bumps.extend(proof.bumps)
                replays.extend(proof.replays)
                classes.add(SKIP_MSHR_BACKPRESSURE)
                continue
            if instr.is_store:
                if taint_on and di.operand_taints and any(
                        not self._taint_source_safe(s)
                        for s in di.operand_taints[0]):
                    bumps.append(self._h_stt_store_blocked)
                    classes.add(SKIP_STT_TAINT)
                    continue
                if int_used >= int_ports:
                    continue  # try_issue would fail silently
                return StallVeto(VETO_ISSUE_READY)
            if taint_on and di.operand_taints:
                if instr.is_branch:
                    if any(not self._taint_source_safe(s)
                           for s in di.operand_taints[0]):
                        bumps.append(self._h_stt_branch_blocked)
                        classes.add(SKIP_STT_TAINT)
                        continue
                elif nonpipelined:
                    if any(not self._taint_source_safe(s)
                           for taint in di.operand_taints
                           for s in taint):
                        bumps.append(self._h_stt_fu_blocked)
                        classes.add(SKIP_STT_TAINT)
                        if strict_fu:
                            blocked_classes.add(instr.fu_class)
                        continue
            if instr.fu_class == "int" and int_used >= int_ports:
                if strict_fu and nonpipelined:
                    blocked_classes.add(instr.fu_class)
                continue  # try_issue would fail silently
            return StallVeto(VETO_ISSUE_READY)
        # -- dispatch: blocked head bumps one full-counter per cycle ---
        if self.fetch_queue:
            di = self.fetch_queue[0]
            instr = di.instr
            if len(self.rob) >= self._rob_entries:
                bumps.append(self._h_rob_full)
                classes.add(SKIP_DISPATCH_FULL)
            else:
                needs_iq = instr.needs_iq
                if needs_iq and len(self.iq) >= self._iq_entries:
                    bumps.append(self._h_iq_full)
                    classes.add(SKIP_DISPATCH_FULL)
                elif instr.is_load and len(self.lq) >= self._lq_entries:
                    bumps.append(self._h_lq_full)
                    classes.add(SKIP_DISPATCH_FULL)
                elif instr.is_store \
                        and len(self.sq) >= self._sq_entries:
                    bumps.append(self._h_sq_full)
                    classes.add(SKIP_DISPATCH_FULL)
                else:
                    # Head would dispatch.
                    return StallVeto(VETO_DISPATCH_READY)
        # -- fetch ------------------------------------------------------
        if not self.fetch_halted:
            if cycle < self.fetch_stall_until:
                wake = min(wake, self.fetch_stall_until)
                classes.add(SKIP_FETCH_STALL)
            elif len(self.fetch_queue) < 2 * self._fetch_width:
                pc = self.fetch_pc
                if pc < 0 or pc >= len(self.program.instrs):
                    bumps.append(self._h_fetch_off_end)
                    classes.add(SKIP_FETCH_STALL)
                else:
                    addr = pc * INST_BYTES
                    if self.hierarchy.ifetch_would_hit(
                            addr, self._fetch_ts()):
                        # Would fetch this cycle.
                        return StallVeto(VETO_FETCH_READY)
                    req = self.pending_ifetch
                    if req is None:
                        # Dense would re-issue the ifetch each cycle;
                        # skippable iff that is a provable MSHR-
                        # backpressure retry.
                        proof = self.hierarchy.ifetch_block_proof(
                            addr, self._fetch_ts(), cycle)
                        if proof is None:
                            return StallVeto(VETO_FETCH_READY)
                        wake = min(wake, proof.wake)
                        bumps.extend(proof.bumps)
                        replays.extend(proof.replays)
                        classes.add(SKIP_MSHR_BACKPRESSURE)
                    elif req.line != (addr >> 6):
                        # Would issue a fresh ifetch (and drop the old
                        # pending request): step densely.
                        return StallVeto(VETO_FETCH_READY)
                    elif req.state is not ReqState.READY:
                        # Replayed: would reissue.
                        return StallVeto(VETO_FETCH_READY)
                    elif req.ready_cycle <= cycle:
                        # Fill dropped: would reissue.
                        return StallVeto(VETO_FETCH_READY)
                    else:
                        wake = min(wake, req.ready_cycle)
                        classes.add(SKIP_FETCH_STALL)
        return StallProof(wake, bumps, replays, classes)
