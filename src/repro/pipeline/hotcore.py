"""Compile-friendly hot core: the per-cycle step loop and its data.

This module holds exactly the state and code the dense per-cycle loop
touches — :class:`DynInst` and :class:`HotCore`, whose :meth:`HotCore.step`
is the stage pipeline (commit -> writeback -> validation issue -> early
commit -> issue -> dispatch -> fetch).  It is deliberately kept free of
the event-scheduler stall analysis and the snapshot machinery, which
live on :class:`repro.pipeline.core.Core` (a thin subclass), so that
this file compiles cleanly under mypyc:

* every per-instance attribute is declared in ``__slots__`` and
  assigned in ``__init__`` (fixed layout; the snapshot mixin's
  MRO-slots scan still finds all state);
* every stats counter bumped on a hot path is an integer slot handle
  interned once in ``__init__`` (see :mod:`repro.analysis.stats`) —
  no string-keyed dict lookups per cycle;
* per-cycle constants (defense mode flags, pipeline widths) are read
  out of the config/defense objects once, at construction;
* the rename map is a dense list indexed by register number, not a
  dict.

Never import this module directly: go through
:func:`repro.accel.load_hotcore` (or just import
:mod:`repro.pipeline.core`, which does).  The loader keeps the module's
canonical ``sys.modules`` name stable whether the compiled extension or
the pure-Python source is active, so pickled checkpoints resolve
identically under both builds.  ``REPRO_ACCEL=1|0`` selects the build
at runtime; parity is enforced by ``tests/test_accel.py`` and the
differential matrices in ``tests/test_scheduler_equivalence.py``.
"""

from __future__ import annotations

from collections import deque
from itertools import islice
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.analysis.stats import Stats
from repro.config import SystemConfig
from repro.defenses.base import Defense
from repro.memory.hierarchy import BaseHierarchy
from repro.memory.request import MemRequest, ReqState
from repro.pipeline.branch_predictor import (
    BranchTargetBuffer,
    ReturnAddressStack,
    make_predictor,
)
from repro.pipeline.functional_units import FUPool
from repro.pipeline.isa import (
    INST_BYTES,
    LINK_REG,
    MASK64,
    NUM_REGS,
    Instr,
    Op,
    evaluate,
)
from repro.pipeline.program import Program

ADDR_MASK = (1 << 48) - 1

ST_WAITING = 0
ST_EXECUTING = 1
ST_DONE = 2


def _seq_key(di: "DynInst") -> int:
    """Sort key for program order (hoisted: no per-cycle lambda)."""
    return di.seq


class DynInst:
    """One dynamic (possibly transient) instruction."""

    __slots__ = (
        "seq", "ts", "pc", "instr", "state", "operands", "operand_taints",
        "taint_srcs", "result", "addr", "store_value", "memreq",
        "done_cycle", "squashed", "committed", "forwarded",
        # branch bookkeeping
        "pred_next", "actual_taken", "actual_next", "resolved",
        "ghr_ckpt", "ras_ckpt", "rename_ckpt", "mispredicted",
        # defense bookkeeping
        "validated", "validation_done_cycle", "commit_stall_until",
        "replays", "promoted",
    )

    def __init__(self, seq: int, pc: int, instr: Instr,
                 ts: Optional[int] = None) -> None:
        self.seq = seq
        # Temporal-Order timestamp (§4.4): allocation order by default;
        # under §4.10's Full Strictness Order, the speculation epoch.
        self.ts = seq if ts is None else ts
        self.pc = pc
        self.instr = instr
        self.state = ST_WAITING
        self.operands: List[Tuple[Optional["DynInst"], int]] = []
        self.operand_taints: List[Set["DynInst"]] = []
        self.taint_srcs: Set["DynInst"] = set()
        self.result = 0
        self.addr: Optional[int] = None
        self.store_value = 0
        self.memreq: Optional[MemRequest] = None
        self.done_cycle = -1
        self.squashed = False
        self.committed = False
        self.forwarded = False
        self.pred_next = pc + 1
        self.actual_taken = False
        self.actual_next = pc + 1
        self.resolved = False
        self.ghr_ckpt = 0
        self.ras_ckpt: Optional[List[int]] = None
        self.rename_ckpt: Optional[List[Optional["DynInst"]]] = None
        self.mispredicted = False
        self.validated = False
        self.validation_done_cycle: Optional[int] = None
        self.commit_stall_until = -1
        self.replays = 0
        self.promoted = False  # §4.10 early commit performed

    def operand_values(self) -> List[int]:
        values = []
        for producer, value in self.operands:
            values.append(producer.result if producer is not None else value)
        return values

    def operands_ready(self) -> bool:
        for producer, _value in self.operands:
            if producer is not None and producer.state != ST_DONE:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "DynInst(#%d pc=%d %s)" % (self.seq, self.pc,
                                          self.instr.op.value)


class HotCore:
    """The dense per-cycle step loop over one hardware thread.

    Everything here runs once per simulated cycle in the dense windows
    the event scheduler cannot skip, so this class is the wall-clock
    floor of every sweep.  :class:`repro.pipeline.core.Core` layers the
    event-scheduler stall analysis and the snapshot contract on top.
    """

    __slots__ = (
        # wiring (owned elsewhere; excluded from snapshots by Core)
        "core_id", "program", "cfg", "defense", "hierarchy", "memory",
        "stats", "_obs",
        # architectural + component state
        "regs", "predictor", "btb", "ras", "fu_pool",
        # frontend
        "fetch_pc", "fetch_stall_until", "fetch_halted",
        "pending_ifetch", "fetch_queue",
        # backend
        "rob", "iq", "lq", "sq", "executing", "rename_map",
        "unresolved_branches", "seq_counter",
        "epoch_timestamps", "epoch", "halted", "committed_insts",
        "_oldest_unresolved",
        # per-run constants (defense modes, pipeline widths)
        "_taint_on", "_validation_on", "_taint_spectre",
        "_spectre_validation", "_early_commit", "_strict_fu",
        "_train_at_commit",
        "_fetch_width", "_commit_width", "_issue_width",
        "_rob_entries", "_iq_entries", "_lq_entries", "_sq_entries",
        "_mispredict_penalty",
        # interned stats handles
        "_h_fetch_insts", "_h_fetch_off_end", "_h_rob_full",
        "_h_iq_full", "_h_lq_full", "_h_sq_full", "_h_commit_insts",
        "_h_commit_loads", "_h_commit_stores", "_h_commit_stall",
        "_h_ivs_stall", "_h_lsq_load_waits", "_h_lsq_forwards",
        "_h_load_retries", "_h_load_replays", "_h_cond_branches",
        "_h_mispredicts", "_h_strict_blocked", "_h_stt_load_blocked",
        "_h_stt_store_blocked", "_h_stt_branch_blocked",
        "_h_stt_fu_blocked", "_h_fu_int_issued", "_h_squash_events",
        "_h_squash_insts", "_h_gm_early_commits",
        "_h_ivs_commit_validations",
    )

    def __init__(self, core_id: int, program: Program, cfg: SystemConfig,
                 defense: Defense, hierarchy: BaseHierarchy,
                 memory: Dict[int, int], stats: Stats,
                 init_regs: Optional[Dict[int, int]] = None) -> None:
        self.core_id = core_id
        self.program = program
        self.cfg = cfg.core
        self.defense = defense
        self.hierarchy = hierarchy
        self.memory = memory
        self.stats = stats
        # Dormant tracing hook (``Simulator.attach_obs``); every use
        # sits behind an is-not-None guard — the ``obs-guards`` lint
        # contract — so an untraced step pays one attribute check.
        self._obs: Optional[Any] = None
        self.regs = [0] * NUM_REGS
        for reg, value in (init_regs or {}).items():
            self.regs[reg] = value & MASK64
        self.predictor = make_predictor(self.cfg.predictor, stats)
        self.btb = BranchTargetBuffer(self.cfg.predictor.btb_entries, stats)
        self.ras = ReturnAddressStack(self.cfg.predictor.ras_entries)
        self.fu_pool = FUPool(self.cfg, stats,
                              strict_order=defense.strict_fu_order)
        # frontend
        self.fetch_pc = 0
        self.fetch_stall_until = 0
        self.fetch_halted = False
        self.pending_ifetch: Optional[MemRequest] = None
        self.fetch_queue: Deque[DynInst] = deque()
        # backend
        self.rob: Deque[DynInst] = deque()
        self.iq: List[DynInst] = []
        self.lq: List[DynInst] = []
        self.sq: List[DynInst] = []
        self.executing: List[DynInst] = []
        self.rename_map: List[Optional[DynInst]] = [None] * NUM_REGS
        self.unresolved_branches: Set[DynInst] = set()
        self.seq_counter = 0
        # §4.10 Full Strictness Order: timestamp epoch, bumped per
        # mispredictable branch; shared monotone space with seq so the
        # two modes use identical comparison logic.
        self.epoch_timestamps = defense.epoch_timestamps
        self.epoch = 0
        self.halted = False
        #: Plain integer mirror of the ``commit.insts`` counter, so the
        #: simulator's per-cycle ``max_insts`` cap costs an attribute
        #: read instead of a string-keyed stats lookup.
        self.committed_insts = 0
        self._oldest_unresolved = float("inf")
        # Per-run constants, read out of the defense/config wiring once
        # so the step loop never chases attribute chains per cycle.
        self._taint_on = defense.taint_mode != "none"
        self._validation_on = defense.validation_mode != "none"
        self._taint_spectre = defense.taint_mode == "spectre"
        self._spectre_validation = defense.validation_mode == "spectre"
        self._early_commit = defense.early_commit
        self._strict_fu = defense.strict_fu_order
        self._train_at_commit = defense.train_predictor_at_commit
        self._fetch_width = self.cfg.fetch_width
        self._commit_width = self.cfg.commit_width
        self._issue_width = self.cfg.issue_width
        self._rob_entries = self.cfg.rob_entries
        self._iq_entries = self.cfg.iq_entries
        self._lq_entries = self.cfg.lq_entries
        self._sq_entries = self.cfg.sq_entries
        self._mispredict_penalty = self.cfg.mispredict_penalty
        # Hot-path counters interned once; see repro.analysis.stats.
        self._h_fetch_insts = stats.handle("fetch.insts")
        self._h_fetch_off_end = stats.handle("fetch.off_end")
        self._h_rob_full = stats.handle("dispatch.rob_full")
        self._h_iq_full = stats.handle("dispatch.iq_full")
        self._h_lq_full = stats.handle("dispatch.lq_full")
        self._h_sq_full = stats.handle("dispatch.sq_full")
        self._h_commit_insts = stats.handle("commit.insts")
        self._h_commit_loads = stats.handle("commit.loads")
        self._h_commit_stores = stats.handle("commit.stores")
        self._h_commit_stall = stats.handle("commit.stall_cycles")
        self._h_ivs_stall = stats.handle("ivs.validation_stall_cycles")
        self._h_lsq_load_waits = stats.handle("lsq.load_waits")
        self._h_lsq_forwards = stats.handle("lsq.forwards")
        self._h_load_retries = stats.handle("mem.load_retries")
        self._h_load_replays = stats.handle("mem.load_replays")
        self._h_cond_branches = stats.handle("bp.cond_branches")
        self._h_mispredicts = stats.handle("bp.mispredicts")
        self._h_strict_blocked = {
            cls: stats.handle("fu.%s.strict_blocked" % cls)
            for cls in FUPool.CLASSES}
        self._h_stt_load_blocked = stats.handle("stt.load_blocked_cycles")
        self._h_stt_store_blocked = stats.handle(
            "stt.store_blocked_cycles")
        self._h_stt_branch_blocked = stats.handle(
            "stt.branch_blocked_cycles")
        self._h_stt_fu_blocked = stats.handle("stt.fu_blocked_cycles")
        self._h_fu_int_issued = stats.handle("fu.int.issued")
        self._h_squash_events = stats.handle("squash.events")
        self._h_squash_insts = stats.handle("squash.insts")
        self._h_gm_early_commits = stats.handle("gm.early_commits")
        self._h_ivs_commit_validations = stats.handle(
            "ivs.commit_validations")

    # ==================================================================
    # cycle step
    # ==================================================================

    def step(self, cycle: int) -> None:
        if self.halted:
            return
        self.hierarchy.drain(cycle)
        self._refresh_oldest_unresolved()
        self._commit(cycle)
        if self.halted:
            return
        self._writeback(cycle)
        if self._validation_on:
            self._issue_ready_validations(cycle)
        if self._early_commit:
            self._early_commit_promotions(cycle)
        self._issue(cycle)
        self._dispatch(cycle)
        self._fetch(cycle)

    def done(self) -> bool:
        return self.halted

    # ==================================================================
    # fetch
    # ==================================================================

    def _fetch(self, cycle: int) -> None:
        if self.fetch_halted or cycle < self.fetch_stall_until:
            return
        fetched = 0
        max_queue = 2 * self._fetch_width
        while fetched < self._fetch_width and \
                len(self.fetch_queue) < max_queue:
            pc = self.fetch_pc
            if pc < 0 or pc >= len(self.program.instrs):
                # Fell off the program (can happen transiently); treat as
                # a stream of NOPs that will be squashed, by stalling.
                self.stats.add(self._h_fetch_off_end)
                return
            addr = pc * INST_BYTES
            if not self._ifetch_line_ready(addr, cycle):
                return
            instr = self.program.instrs[pc]
            ts = None
            if self.epoch_timestamps:
                ts = self.epoch
            di = DynInst(self.seq_counter, pc, instr, ts=ts)
            self.seq_counter += 1
            if self.epoch_timestamps and instr.is_branch \
                    and instr.op not in (Op.JMP, Op.CALL):
                # a new (more speculative) epoch begins after every
                # predicted conditional branch or return
                self.epoch = self.seq_counter
            self._predict(di, cycle)
            self.fetch_queue.append(di)
            self.stats.add(self._h_fetch_insts)
            if self._obs is not None:
                self._obs.emit_stage(self.core_id, di.seq, pc,
                                     instr.op.value, "fetch", cycle)
            self.fetch_pc = di.pred_next
            fetched += 1
            if instr.op is Op.HALT:
                self.fetch_halted = True
                return

    def _fetch_ts(self) -> int:
        return self.epoch if self.epoch_timestamps else self.seq_counter

    def _ifetch_line_ready(self, addr: int, cycle: int) -> bool:
        if self.hierarchy.ifetch_probe(addr, self._fetch_ts(), cycle):
            self.pending_ifetch = None
            return True
        req = self.pending_ifetch
        if req is not None and req.line == (addr >> 6):
            if req.state is ReqState.REPLAY or req.done(cycle):
                # Replayed (leapfrogged away), or completed without the
                # line becoming present (its fill was dropped by a
                # squash-time wipe): fetch again.
                self.pending_ifetch = self.hierarchy.ifetch(
                    addr, self._fetch_ts(), cycle)
            return False
        self.pending_ifetch = self.hierarchy.ifetch(
            addr, self._fetch_ts(), cycle)
        return False

    def _predict(self, di: DynInst, cycle: int) -> None:
        instr = di.instr
        pc = di.pc
        if not instr.is_branch:
            di.pred_next = pc + 1
            return
        di.ras_ckpt = self.ras.checkpoint()
        op = instr.op
        if op is Op.JMP:
            di.pred_next = instr.target
            di.resolved = True
            di.actual_next = instr.target
        elif op is Op.CALL:
            self.ras.push(pc + 1)
            di.pred_next = instr.target
            di.resolved = True
            di.actual_next = instr.target
        elif op is Op.RET:
            target = self.ras.pop()
            if target is None:
                btb_target = self.btb.predict(pc)
                target = btb_target if btb_target is not None else pc + 1
            di.pred_next = target
        else:  # conditional
            taken, ckpt = self.predictor.predict(pc)
            di.ghr_ckpt = ckpt
            di.pred_next = instr.target if taken else pc + 1

    # ==================================================================
    # dispatch / rename
    # ==================================================================

    def _dispatch(self, cycle: int) -> None:
        dispatched = 0
        while self.fetch_queue and dispatched < self._fetch_width:
            di = self.fetch_queue[0]
            instr = di.instr
            if len(self.rob) >= self._rob_entries:
                self.stats.add(self._h_rob_full)
                return
            needs_iq = instr.needs_iq
            if needs_iq and len(self.iq) >= self._iq_entries:
                self.stats.add(self._h_iq_full)
                return
            if instr.is_load and len(self.lq) >= self._lq_entries:
                self.stats.add(self._h_lq_full)
                return
            if instr.is_store and len(self.sq) >= self._sq_entries:
                self.stats.add(self._h_sq_full)
                return
            self.fetch_queue.popleft()
            self._rename(di)
            self.rob.append(di)
            if self._obs is not None:
                self._obs.emit_stage(self.core_id, di.seq, di.pc,
                                     instr.op.value, "dispatch", cycle)
            if instr.is_load:
                self.lq.append(di)
            if instr.is_store:
                self.sq.append(di)
            if instr.is_branch and not di.resolved:
                self.unresolved_branches.add(di)
                if di.seq < self._oldest_unresolved:
                    self._oldest_unresolved = di.seq
            if needs_iq:
                self.iq.append(di)
            else:
                self._finish_trivial(di, cycle)
            dispatched += 1

    def _rename(self, di: DynInst) -> None:
        instr = di.instr
        for reg in instr.srcs:
            producer = self.rename_map[reg]
            if producer is not None and producer.state == ST_DONE \
                    and producer.committed:
                producer = None
            if producer is None:
                di.operands.append((None, self.regs[reg]))
            else:
                di.operands.append((producer, 0))
            if self._taint_on:
                di.operand_taints.append(self._operand_taint(producer))
        if self._taint_on:
            for taint in di.operand_taints:
                di.taint_srcs |= taint
        if instr.is_branch:
            di.rename_ckpt = list(self.rename_map)
        dest = instr.writes_reg
        if dest is not None:
            self.rename_map[dest] = di

    def _operand_taint(self, producer: Optional[DynInst]
                       ) -> Set[DynInst]:
        if producer is None:
            return set()
        taint = {src for src in producer.taint_srcs
                 if not self._taint_source_safe(src)}
        if producer.instr.is_load and not self._taint_source_safe(producer):
            taint.add(producer)
        return taint

    def _finish_trivial(self, di: DynInst, cycle: int) -> None:
        """NOP/HALT/JMP/CALL complete at dispatch."""
        if di.instr.op is Op.CALL:
            di.result = di.pc + 1
        di.state = ST_DONE
        di.done_cycle = cycle

    # ==================================================================
    # issue
    # ==================================================================

    def _issue(self, cycle: int) -> None:
        self.fu_pool.begin_cycle(cycle)
        strict_fu = self._strict_fu
        blocked_classes = set()
        issued = 0
        still_waiting: List[DynInst] = []
        self.iq.sort(key=_seq_key)
        for di in self.iq:
            if di.squashed or di.state != ST_WAITING:
                continue
            instr = di.instr
            nonpipelined = not instr.pipelined
            if issued >= self._issue_width:
                still_waiting.append(di)
                if strict_fu and nonpipelined:
                    blocked_classes.add(instr.fu_class)
                continue
            if strict_fu and nonpipelined \
                    and instr.fu_class in blocked_classes:
                # §4.9: a non-pipelined unit may only be issued a
                # speculative operation once all older (timestamp-order)
                # operations that may use the same unit have issued —
                # including ones whose operands are not ready yet.
                self.stats.add(self._h_strict_blocked[instr.fu_class])
                still_waiting.append(di)
                continue
            if not di.operands_ready():
                still_waiting.append(di)
                if strict_fu and nonpipelined:
                    blocked_classes.add(instr.fu_class)
                continue
            if self._try_issue_one(di, cycle):
                issued += 1
                if di.state == ST_WAITING:
                    # loads that hit retry/backpressure stay waiting
                    still_waiting.append(di)
                elif self._obs is not None:
                    self._obs.emit_stage(self.core_id, di.seq, di.pc,
                                         instr.op.value, "issue", cycle)
            else:
                still_waiting.append(di)
                if strict_fu and nonpipelined:
                    blocked_classes.add(instr.fu_class)
        self.iq = still_waiting

    def _try_issue_one(self, di: DynInst, cycle: int) -> bool:
        instr = di.instr
        if instr.is_load:
            return self._issue_load(di, cycle)
        if instr.is_store:
            return self._issue_store(di, cycle)
        if self._taint_on and di.operand_taints:
            if instr.is_branch:
                # STT: a branch on tainted data is an (implicit)
                # transmitter and may not execute until the taint clears.
                if any(not self._taint_source_safe(s)
                       for s in di.operand_taints[0]):
                    self.stats.add(self._h_stt_branch_blocked)
                    return False
            elif not instr.pipelined:
                # Non-pipelined FU ops on tainted data transmit through
                # structural-hazard contention (SpectreRewind): STT
                # delays them like any other transmitter.
                if any(not self._taint_source_safe(s)
                       for taint in di.operand_taints for s in taint):
                    self.stats.add(self._h_stt_fu_blocked)
                    return False
        if not self.fu_pool.try_issue(instr.fu_class, cycle, instr.latency,
                                      instr.pipelined):
            return False
        values = di.operand_values()
        if instr.is_branch:
            self._compute_branch(di, values)
        elif instr.op is Op.RDCYC:
            di.result = cycle
        else:
            a = values[0] if values else 0
            b = values[1] if len(values) > 1 else instr.imm
            di.result = evaluate(instr.op, a, b, instr.imm)
        di.state = ST_EXECUTING
        di.done_cycle = cycle + instr.latency
        self.executing.append(di)
        return True

    def _compute_branch(self, di: DynInst, values: List[int]) -> None:
        instr = di.instr
        op = instr.op
        if op is Op.BEQZ:
            di.actual_taken = values[0] == 0
            di.actual_next = instr.target if di.actual_taken else di.pc + 1
        elif op is Op.BNEZ:
            di.actual_taken = values[0] != 0
            di.actual_next = instr.target if di.actual_taken else di.pc + 1
        elif op is Op.RET:
            di.actual_taken = True
            di.actual_next = values[0] & ADDR_MASK

    # -- loads ---------------------------------------------------------------

    def _issue_load(self, di: DynInst, cycle: int) -> bool:
        instr = di.instr
        values = di.operand_values()
        base = values[0] if instr.rs1 is not None else 0
        addr = (base + instr.imm) & ADDR_MASK
        di.addr = addr
        conflict = self._older_store_conflict(di, addr)
        if conflict == "wait":
            self.stats.add(self._h_lsq_load_waits)
            return False
        if self._taint_on and not self._address_operands_safe(di):
            self.stats.add(self._h_stt_load_blocked)
            return False
        if not self.fu_pool.try_issue("int", cycle, 1, True):
            return False
        if conflict is not None:
            # store-to-load forwarding: one-cycle completion
            di.result = conflict.store_value
            di.forwarded = True
            di.state = ST_EXECUTING
            di.done_cycle = cycle + 1
            self.executing.append(di)
            self.stats.add(self._h_lsq_forwards)
            return True
        req = self.hierarchy.load(addr, di.ts, cycle, speculative=True,
                                  pc=di.pc)
        if req is None:
            self.stats.add(self._h_load_retries)
            return True  # consumed an issue slot but stays waiting
        di.memreq = req
        di.result = self._memory_value(addr)
        di.state = ST_EXECUTING
        self.executing.append(di)
        return True

    def _memory_value(self, addr: int) -> int:
        return self.memory.get(addr, 0)

    def _older_store_conflict(self, load: DynInst, addr: int):
        """Return 'wait', a forwarding store, or None (no conflict)."""
        result = None
        for store in self.sq:
            if store.seq >= load.seq:
                break
            if store.squashed:
                continue
            if store.state != ST_DONE and store.addr is None:
                if store.committed:
                    continue
                return "wait"
            if store.addr == addr:
                if store.committed:
                    result = None  # value already in memory
                elif store.state == ST_DONE:
                    result = store
                else:
                    return "wait"
        return result

    def _address_operands_safe(self, di: DynInst) -> bool:
        if not di.operand_taints:
            return True
        for src in di.operand_taints[0]:
            if not self._taint_source_safe(src):
                return False
        return True

    def _taint_source_safe(self, src: DynInst) -> bool:
        if src.squashed or src.committed:
            return True
        if self._taint_spectre:
            return src.seq < self._oldest_unresolved
        return False  # 'future': safe only once committed

    # -- stores ---------------------------------------------------------------

    def _issue_store(self, di: DynInst, cycle: int) -> bool:
        instr = di.instr
        if self._taint_on:
            # store address is a transmitter too
            if di.operand_taints and any(
                    not self._taint_source_safe(s)
                    for s in di.operand_taints[0]):
                self.stats.add(self._h_stt_store_blocked)
                return False
        if not self.fu_pool.try_issue("int", cycle, 1, True):
            return False
        values = di.operand_values()
        base = values[0] if instr.rs1 is not None else 0
        di.addr = (base + instr.imm) & ADDR_MASK
        di.store_value = values[1] if len(values) > 1 else 0
        di.state = ST_EXECUTING
        di.done_cycle = cycle + 1
        self.executing.append(di)
        return True

    # ==================================================================
    # writeback & branch resolution
    # ==================================================================

    def _writeback(self, cycle: int) -> None:
        remaining: List[DynInst] = []
        # Resolve oldest-first so an older mispredict squashes younger ones.
        self.executing.sort(key=_seq_key)
        for di in self.executing:
            if di.squashed:
                continue
            if di.instr.is_load and di.memreq is not None:
                req = di.memreq
                if req.state is ReqState.REPLAY:
                    di.state = ST_WAITING
                    di.memreq = None
                    di.replays += 1
                    self.iq.append(di)
                    self.stats.add(self._h_load_replays)
                    if self._obs is not None:
                        self._obs.emit_stage(self.core_id, di.seq, di.pc,
                                             di.instr.op.value, "replay",
                                             cycle)
                    continue
                if req.done(cycle):
                    di.result = self._memory_value(di.addr)
                    di.state = ST_DONE
                    di.done_cycle = cycle
                else:
                    remaining.append(di)
                    continue
            elif di.done_cycle <= cycle:
                di.state = ST_DONE
            else:
                remaining.append(di)
                continue
            if self._obs is not None:
                self._obs.emit_stage(self.core_id, di.seq, di.pc,
                                     di.instr.op.value, "writeback",
                                     cycle)
            if di.instr.is_branch and not di.resolved:
                self._resolve_branch(di, cycle)
                if di.mispredicted:
                    # Everything younger was just squashed; stop scanning
                    # (their entries were already filtered/marked).
                    break
        self.executing = [d for d in remaining if not d.squashed]

    def _resolve_branch(self, di: DynInst, cycle: int) -> None:
        di.resolved = True
        self.unresolved_branches.discard(di)
        self._refresh_oldest_unresolved()
        instr = di.instr
        if instr.is_cond_branch:
            self.stats.add(self._h_cond_branches)
            if not self._train_at_commit:
                self.predictor.update(di.pc, di.actual_taken, di.ghr_ckpt)
        if instr.op is Op.RET and not self._train_at_commit:
            self.btb.update(di.pc, di.actual_next)
        if di.actual_next != di.pred_next:
            di.mispredicted = True
            self.stats.add(self._h_mispredicts)
            self._squash_after(di, cycle)

    def _squash_after(self, br: DynInst, cycle: int) -> None:
        boundary = br.seq
        squashed = 0
        for di in self.rob:
            if di.seq > boundary:
                di.squashed = True
                squashed += 1
        if squashed:
            self.rob = deque(d for d in self.rob if not d.squashed)
            self.iq = [d for d in self.iq if not d.squashed]
            self.lq = [d for d in self.lq if not d.squashed]
            self.sq = [d for d in self.sq if not d.squashed]
            self.executing = [d for d in self.executing if not d.squashed]
            self.unresolved_branches = {
                d for d in self.unresolved_branches if not d.squashed}
        for di in self.fetch_queue:
            di.squashed = True
            squashed += 1
        self.fetch_queue.clear()
        self.pending_ifetch = None
        # restore rename state
        if br.rename_ckpt is not None:
            self.rename_map = list(br.rename_ckpt)
            dest = br.instr.writes_reg
            if dest is not None:
                self.rename_map[dest] = br
        if br.instr.is_cond_branch:
            self.predictor.restore_ghr(br.ghr_ckpt, br.actual_taken)
        if br.ras_ckpt is not None:
            self.ras.restore(br.ras_ckpt)
            if br.instr.op is Op.RET:
                self.ras.pop()
        # redirect fetch
        self.fetch_halted = False
        self.fetch_pc = br.actual_next
        self.fetch_stall_until = cycle + self._mispredict_penalty
        self._refresh_oldest_unresolved()
        self.hierarchy.squash(br.ts, cycle)
        self.stats.add(self._h_squash_events)
        self.stats.add(self._h_squash_insts, squashed)
        if self._obs is not None:
            self._obs.emit_squash(self.core_id, boundary, cycle)

    def _refresh_oldest_unresolved(self) -> None:
        if self.unresolved_branches:
            self._oldest_unresolved = min(
                d.seq for d in self.unresolved_branches)
        else:
            self._oldest_unresolved = float("inf")

    # ==================================================================
    # InvisiSpec visibility
    # ==================================================================

    def _issue_ready_validations(self, cycle: int) -> None:
        """Issue InvisiSpec validations at each load's visibility point.

        * ``spectre`` mode: once all older branches have resolved.
        * ``future`` mode: at the commit point; validations for the
          oldest commit-window's worth of loads overlap (real InvisiSpec
          pipelines validations — fully serialising them at the ROB head
          would overstate the cost).
        """
        spectre_mode = self._spectre_validation
        window = None
        if not spectre_mode:
            window = {di.seq for di in islice(self.rob,
                                              2 * self._commit_width)}
        for di in self.lq:
            req = di.memreq
            if (req is None or not req.needs_validation or di.validated
                    or di.validation_done_cycle is not None):
                continue
            if di.state != ST_DONE:
                continue
            if spectre_mode:
                visible = di.seq < self._oldest_unresolved
            else:
                visible = di.seq in window
            if visible:
                di.validation_done_cycle = self.hierarchy.validate(
                    req, di.ts, cycle)

    def _early_commit_promotions(self, cycle: int) -> None:
        """§4.10 Early Commit: once every older branch has resolved, a
        completed load can no longer be squashed (no exceptions in this
        machine), so its Minion line may move to the L1 immediately."""
        for di in self.lq:
            if (di.promoted or di.squashed or di.state != ST_DONE
                    or di.forwarded or di.memreq is None):
                continue
            if di.seq < self._oldest_unresolved:
                self.hierarchy.commit_load(di.memreq, di.ts, cycle)
                di.promoted = True
                self.stats.add(self._h_gm_early_commits)

    # ==================================================================
    # commit
    # ==================================================================

    def _commit(self, cycle: int) -> None:
        committed = 0
        while self.rob and committed < self._commit_width:
            di = self.rob[0]
            if di.state != ST_DONE or di.squashed:
                break
            if di.commit_stall_until > cycle:
                self.stats.add(self._h_commit_stall)
                break
            if not self._commit_load_checks(di, cycle):
                break
            instr = di.instr
            if instr.is_store:
                self.memory[di.addr] = di.store_value & MASK64
                self.hierarchy.store_commit(di.addr, di.ts, cycle)
                self.stats.add(self._h_commit_stores)
            dest = instr.writes_reg
            if dest is not None:
                self.regs[dest] = di.result & MASK64
                if self.rename_map[dest] is di:
                    self.rename_map[dest] = None
            if instr.is_cond_branch and self._train_at_commit:
                self.predictor.update(di.pc, di.actual_taken, di.ghr_ckpt)
            if instr.op is Op.RET and self._train_at_commit:
                self.btb.update(di.pc, di.actual_next)
            di.committed = True
            self.rob.popleft()
            if instr.is_load:
                self.lq.remove(di)
                self.stats.add(self._h_commit_loads)
            if instr.is_store:
                self.sq.remove(di)
            self.hierarchy.commit_ifetch(di.pc * INST_BYTES, di.ts, cycle)
            self.stats.add(self._h_commit_insts)
            self.committed_insts += 1
            committed += 1
            if self._obs is not None:
                self._obs.emit_stage(self.core_id, di.seq, di.pc,
                                     instr.op.value, "commit", cycle)
            if instr.op is Op.HALT:
                self.halted = True
                return

    def _commit_load_checks(self, di: DynInst, cycle: int) -> bool:
        """Validation + GhostMinion commit actions; False blocks commit."""
        if not di.instr.is_load:
            return True
        req = di.memreq
        if self._validation_on and req is not None \
                and req.needs_validation and not di.validated:
            if di.validation_done_cycle is None:
                # 'future' mode validates at the commit point;
                # 'spectre' mode normally validated earlier but may
                # reach the head first.
                di.validation_done_cycle = self.hierarchy.validate(
                    req, di.ts, cycle)
                self.stats.add(self._h_ivs_commit_validations)
            if cycle < di.validation_done_cycle:
                self.stats.add(self._h_ivs_stall)
                return False
            di.validated = True
        if di.forwarded or di.promoted:
            return True
        extra = self.hierarchy.commit_load(req, di.ts, cycle)
        if extra > 0:
            di.commit_stall_until = cycle + extra
            return False
        return True

    # ==================================================================
    # architectural state (for differential tests)
    # ==================================================================

    def arch_regs(self) -> List[int]:
        return list(self.regs)
