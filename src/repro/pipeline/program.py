"""Program container and a tiny assembler-style builder.

Workload generators and attack gadgets author code through
:class:`ProgramBuilder`, which supports forward label references and an
initial data-memory image.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.pipeline.isa import Instr, Op

LabelOrIndex = Union[str, int]


@dataclass
class Program:
    """A fully resolved program: instructions plus initial memory."""

    instrs: List[Instr]
    memory: Dict[int, int] = field(default_factory=dict)
    name: str = "program"

    def __post_init__(self) -> None:
        for idx, instr in enumerate(self.instrs):
            if instr.target is not None and not isinstance(
                    instr.target, int):
                raise ValueError(
                    "unresolved label %r at %d" % (instr.target, idx))
            if instr.target is not None and not (
                    0 <= instr.target <= len(self.instrs)):
                raise ValueError(
                    "branch target %d out of range at %d"
                    % (instr.target, idx))

    def __len__(self) -> int:
        return len(self.instrs)


class ProgramBuilder:
    """Emit instructions with label support, then :meth:`build`."""

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self._instrs: List[Instr] = []
        self._labels: Dict[str, int] = {}
        self._memory: Dict[int, int] = {}

    # -- layout -----------------------------------------------------------

    def label(self, name: str) -> int:
        """Define ``name`` at the current position."""
        if name in self._labels:
            raise ValueError("duplicate label %r" % name)
        self._labels[name] = len(self._instrs)
        return self._labels[name]

    def here(self) -> int:
        return len(self._instrs)

    def data(self, addr: int, value: int) -> None:
        """Initialise one 8-byte memory word."""
        self._memory[addr] = value

    def data_block(self, base: int, values: List[int], stride: int = 8
                   ) -> None:
        for offset, value in enumerate(values):
            self._memory[base + offset * stride] = value

    # -- emission ----------------------------------------------------------

    def emit(self, op: Op, rd: Optional[int] = None,
             rs1: Optional[int] = None, rs2: Optional[int] = None,
             imm: int = 0, target: Optional[LabelOrIndex] = None) -> int:
        """Append an instruction; ``target`` may be a label name."""
        index = len(self._instrs)
        # Targets are patched in build(); store the raw value for now by
        # bypassing Instr validation with a placeholder when symbolic.
        if isinstance(target, str):
            instr = Instr(op, rd, rs1, rs2, imm, target=0)
            instr.target = target  # patched later
        else:
            instr = Instr(op, rd, rs1, rs2, imm, target=target)
        self._instrs.append(instr)
        return index

    # Convenience emitters keep generator code readable.

    def li(self, rd: int, imm: int) -> int:
        return self.emit(Op.LI, rd=rd, imm=imm)

    def mov(self, rd: int, rs: int) -> int:
        return self.emit(Op.MOV, rd=rd, rs1=rs)

    def add(self, rd: int, rs1: int, rs2: Optional[int] = None,
            imm: int = 0) -> int:
        return self.emit(Op.ADD, rd=rd, rs1=rs1, rs2=rs2, imm=imm)

    def sub(self, rd: int, rs1: int, rs2: Optional[int] = None,
            imm: int = 0) -> int:
        return self.emit(Op.SUB, rd=rd, rs1=rs1, rs2=rs2, imm=imm)

    def alu(self, op: Op, rd: int, rs1: int, rs2: Optional[int] = None,
            imm: int = 0) -> int:
        return self.emit(op, rd=rd, rs1=rs1, rs2=rs2, imm=imm)

    def load(self, rd: int, base: int, imm: int = 0) -> int:
        return self.emit(Op.LOAD, rd=rd, rs1=base, imm=imm)

    def store(self, base: int, value_reg: int, imm: int = 0) -> int:
        return self.emit(Op.STORE, rs1=base, rs2=value_reg, imm=imm)

    def beqz(self, rs: int, target: LabelOrIndex) -> int:
        return self.emit(Op.BEQZ, rs1=rs, target=target)

    def bnez(self, rs: int, target: LabelOrIndex) -> int:
        return self.emit(Op.BNEZ, rs1=rs, target=target)

    def jmp(self, target: LabelOrIndex) -> int:
        return self.emit(Op.JMP, target=target)

    def call(self, target: LabelOrIndex) -> int:
        return self.emit(Op.CALL, target=target)

    def ret(self) -> int:
        return self.emit(Op.RET)

    def nop(self) -> int:
        return self.emit(Op.NOP)

    def halt(self) -> int:
        return self.emit(Op.HALT)

    # -- finalisation --------------------------------------------------------

    def build(self) -> Program:
        instrs: List[Instr] = []
        for idx, instr in enumerate(self._instrs):
            target = instr.target
            if isinstance(target, str):
                if target not in self._labels:
                    raise ValueError(
                        "undefined label %r at %d" % (target, idx))
                target = self._labels[target]
            instrs.append(Instr(instr.op, instr.rd, instr.rs1, instr.rs2,
                                instr.imm, target=target))
        return Program(instrs=instrs, memory=dict(self._memory),
                       name=self.name)
