"""Tournament branch predictor, BTB and RAS (Table 1).

The tournament predictor follows the classic Alpha-21264 shape: a local
predictor (per-PC history indexing a pattern table), a global predictor
(global history register XOR PC), and a choice table selecting between
them.  All counters are 2-bit saturating.

Speculative state handling: the global history register is updated
speculatively at predict time and *checkpointed*; the core restores it
(and the RAS) on a squash.  Counter tables are updated either at
resolution (unsafe baseline) or at commit (GhostMinion's
non-speculative-soft-state rule, §4.9), selected by the defense.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.stats import Stats
from repro.config import PredictorConfig
from repro.registry import Registry
from repro.snapshot import SnapshotMixin


def _saturate(counter: int, taken: bool) -> int:
    if taken:
        return min(3, counter + 1)
    return max(0, counter - 1)


class TournamentPredictor(SnapshotMixin):
    """2-bit local/global/choice tournament predictor."""

    GHR_BITS = 13
    LOCAL_HIST_BITS = 11

    #: Snapshot contract: history registers and counter tables are the
    #: state; sizing config and the stats registry are wiring.
    _SNAPSHOT_EXCLUDE = ("cfg", "stats")

    def __init__(self, cfg: Optional[PredictorConfig] = None,
                 stats: Optional[Stats] = None) -> None:
        cfg = cfg if cfg is not None else PredictorConfig()
        self.cfg = cfg
        self.stats = stats if stats is not None else Stats()
        self.local_hist = [0] * cfg.local_entries
        self.local_pht = [1] * cfg.local_entries
        self.global_pht = [1] * cfg.global_entries
        self.choice_pht = [1] * cfg.choice_entries
        self.ghr = 0
        self._h_lookups = self.stats.handle("bp.lookups")

    # -- prediction --------------------------------------------------------

    def predict(self, pc: int) -> Tuple[bool, int]:
        """Predict a conditional branch at ``pc``.

        Returns ``(taken, ghr_checkpoint)``; the checkpoint must be kept
        by the core and passed back on squash-restore.  The GHR is
        speculatively updated with the prediction.
        """
        self.stats.add(self._h_lookups)
        checkpoint = self.ghr
        taken = self._direction(pc)
        self.ghr = ((self.ghr << 1) | (1 if taken else 0)) & (
            (1 << self.GHR_BITS) - 1)
        return taken, checkpoint

    def _direction(self, pc: int) -> bool:
        local_idx = pc % self.cfg.local_entries
        # pshare-style pattern indexing (history XOR pc): avoids the
        # cross-branch PHT aliasing a pure history index suffers.
        local_pattern = (self.local_hist[local_idx] ^ pc) \
            % self.cfg.local_entries
        local_taken = self.local_pht[local_pattern] >= 2
        global_idx = (self.ghr ^ pc) % self.cfg.global_entries
        global_taken = self.global_pht[global_idx] >= 2
        use_global = self.choice_pht[pc % self.cfg.choice_entries] >= 2
        return global_taken if use_global else local_taken

    # -- training ------------------------------------------------------------

    def update(self, pc: int, taken: bool, ghr_at_predict: int) -> None:
        """Train all tables with the actual outcome.

        ``ghr_at_predict`` is the checkpoint captured by :meth:`predict`
        so the global table trains against the history it predicted with.
        """
        local_idx = pc % self.cfg.local_entries
        local_pattern = (self.local_hist[local_idx] ^ pc) \
            % self.cfg.local_entries
        global_idx = (ghr_at_predict ^ pc) % self.cfg.global_entries
        local_taken = self.local_pht[local_pattern] >= 2
        global_taken = self.global_pht[global_idx] >= 2
        if local_taken != global_taken:
            choice_idx = pc % self.cfg.choice_entries
            self.choice_pht[choice_idx] = _saturate(
                self.choice_pht[choice_idx], global_taken == taken)
        self.local_pht[local_pattern] = _saturate(
            self.local_pht[local_pattern], taken)
        self.global_pht[global_idx] = _saturate(
            self.global_pht[global_idx], taken)
        self.local_hist[local_idx] = (
            (self.local_hist[local_idx] << 1) | (1 if taken else 0)
        ) & ((1 << self.LOCAL_HIST_BITS) - 1)

    def restore_ghr(self, checkpoint: int, actual_taken: bool) -> None:
        """Squash recovery: rebuild the GHR from the checkpoint plus the
        branch's real outcome."""
        self.ghr = ((checkpoint << 1) | (1 if actual_taken else 0)) & (
            (1 << self.GHR_BITS) - 1)


class BimodalPredictor(SnapshotMixin):
    """Per-PC 2-bit bimodal predictor (no history).

    A deliberately simple alternative to the tournament predictor,
    swappable from a config variant (``core.predictor.kind=bimodal``)
    to quantify how much of a defense's overhead rides on prediction
    accuracy.  Speaks the same protocol: ``predict`` returns a
    checkpoint (always 0 — there is no global history to restore) and
    ``update``/``restore_ghr`` mirror the tournament signatures.
    """

    _SNAPSHOT_EXCLUDE = ("cfg", "stats")

    def __init__(self, cfg: Optional[PredictorConfig] = None,
                 stats: Optional[Stats] = None) -> None:
        cfg = cfg if cfg is not None else PredictorConfig()
        self.cfg = cfg
        self.stats = stats if stats is not None else Stats()
        self.pht = [1] * cfg.local_entries
        self._h_lookups = self.stats.handle("bp.lookups")

    def predict(self, pc: int) -> Tuple[bool, int]:
        self.stats.add(self._h_lookups)
        return self.pht[pc % self.cfg.local_entries] >= 2, 0

    def update(self, pc: int, taken: bool, ghr_at_predict: int) -> None:
        idx = pc % self.cfg.local_entries
        self.pht[idx] = _saturate(self.pht[idx], taken)

    def restore_ghr(self, checkpoint: int, actual_taken: bool) -> None:
        pass  # no speculative history state


class AlwaysTakenPredictor(SnapshotMixin):
    """Static always-taken prediction (the no-hardware floor)."""

    _SNAPSHOT_EXCLUDE = ("stats",)

    def __init__(self, cfg: Optional[PredictorConfig] = None,
                 stats: Optional[Stats] = None) -> None:
        self.stats = stats if stats is not None else Stats()
        self._h_lookups = self.stats.handle("bp.lookups")

    def predict(self, pc: int) -> Tuple[bool, int]:
        self.stats.add(self._h_lookups)
        return True, 0

    def update(self, pc: int, taken: bool, ghr_at_predict: int) -> None:
        pass

    def restore_ghr(self, checkpoint: int, actual_taken: bool) -> None:
        pass


#: The ``predictor`` component registry; ``core.predictor.kind`` names
#: an entry (optionally a spec string), so config variants can swap
#: implementations per sweep point.
PREDICTORS: Registry[object] = Registry("predictor")

PREDICTORS.add("tournament", TournamentPredictor, tags=("builtin",),
               summary="Alpha-21264-style local/global/choice "
                       "tournament predictor (Table 1 default).")
PREDICTORS.add("bimodal", BimodalPredictor, tags=("builtin",))
PREDICTORS.add("always_taken", AlwaysTakenPredictor, tags=("builtin",))


def make_predictor(cfg: PredictorConfig, stats: Stats):
    """Construct the predictor ``cfg.kind`` names (a registry spec
    string), sized by ``cfg`` and reporting into ``stats``."""
    return PREDICTORS.create(cfg.kind, cfg=cfg, stats=stats)


class BranchTargetBuffer(SnapshotMixin):
    """Direct-mapped PC -> target store for indirect branches."""

    _SNAPSHOT_EXCLUDE = ("stats",)

    def __init__(self, entries: int = 4096, stats: Optional[Stats] = None
                 ) -> None:
        self.entries = entries
        self.stats = stats if stats is not None else Stats()
        self._tags: List[Optional[int]] = [None] * entries
        self._targets: List[int] = [0] * entries
        self._h_hits = self.stats.handle("btb.hits")
        self._h_misses = self.stats.handle("btb.misses")

    def predict(self, pc: int) -> Optional[int]:
        idx = pc % self.entries
        if self._tags[idx] == pc:
            self.stats.add(self._h_hits)
            return self._targets[idx]
        self.stats.add(self._h_misses)
        return None

    def update(self, pc: int, target: int) -> None:
        idx = pc % self.entries
        self._tags[idx] = pc
        self._targets[idx] = target


class ReturnAddressStack(SnapshotMixin):
    """Bounded return-address stack with checkpoint/restore.

    ``checkpoint``/``restore`` are the core's per-branch squash recovery
    protocol; the whole-stack :class:`~repro.snapshot.SnapshotMixin`
    contract (``snapshot_state``/``restore_state``) rides on top.
    """

    def __init__(self, entries: int = 16) -> None:
        self.entries = entries
        self._stack: List[int] = []

    def push(self, return_pc: int) -> None:
        if len(self._stack) >= self.entries:
            self._stack.pop(0)
        self._stack.append(return_pc)

    def pop(self) -> Optional[int]:
        if self._stack:
            return self._stack.pop()
        return None

    def checkpoint(self) -> List[int]:
        return list(self._stack)

    def restore(self, checkpoint: List[int]) -> None:
        self._stack = list(checkpoint)

    def __len__(self) -> int:
        return len(self._stack)
