"""Out-of-order core substrate: ISA, programs, predictor, FUs, the core."""

from repro.pipeline.isa import Op, Instr
from repro.pipeline.program import Program, ProgramBuilder
from repro.pipeline.interpreter import Interpreter, run_program
from repro.pipeline.branch_predictor import (
    PREDICTORS,
    AlwaysTakenPredictor,
    BimodalPredictor,
    TournamentPredictor,
    BranchTargetBuffer,
    ReturnAddressStack,
    make_predictor,
)
from repro.pipeline.functional_units import FUPool
from repro.pipeline.core import Core, DynInst

__all__ = [
    "Op",
    "Instr",
    "Program",
    "ProgramBuilder",
    "Interpreter",
    "run_program",
    "PREDICTORS",
    "AlwaysTakenPredictor",
    "BimodalPredictor",
    "TournamentPredictor",
    "BranchTargetBuffer",
    "ReturnAddressStack",
    "make_predictor",
    "FUPool",
    "Core",
    "DynInst",
]
