"""The mini-ISA executed by both the reference interpreter and the
out-of-order core.

A small RISC-like register machine: 32 64-bit integer registers
(``r31`` doubles as the link register for CALL/RET), a flat 64-bit byte
address space, and explicit HALT.  FP opcodes (FADD/FMUL/FDIV/FSQRT)
carry floating-point *timing* (FP functional units, non-pipelined
dividers) with integer *semantics* — the paper's experiments depend on
execution timing, never on FP numerics (DESIGN.md note 7).

Program counters are instruction indices; instruction memory addresses
are ``pc * 4`` so a 64-byte I-cache line holds 16 instructions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

NUM_REGS = 32
LINK_REG = 31
MASK64 = (1 << 64) - 1
INST_BYTES = 4


class Op(enum.Enum):
    # integer ALU (1 cycle, pipelined, INT units)
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    CMPLT = "cmplt"
    CMPEQ = "cmpeq"
    LI = "li"
    MOV = "mov"
    # multiply/divide (MULDIV units; DIV/REM non-pipelined)
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    # floating-point timing classes (FP units)
    FADD = "fadd"
    FMUL = "fmul"
    FDIV = "fdiv"      # non-pipelined
    FSQRT = "fsqrt"    # non-pipelined
    # memory
    LOAD = "load"
    STORE = "store"
    # control
    BEQZ = "beqz"
    BNEZ = "bnez"
    JMP = "jmp"
    CALL = "call"
    RET = "ret"
    # misc
    NOP = "nop"
    HALT = "halt"
    # cycle-counter read (the attacker's rdtsc).  Optional rs1 creates a
    # data dependency so the read can be ordered after a measured load.
    RDCYC = "rdcyc"


ALU_OPS = frozenset({Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SHL,
                     Op.SHR, Op.CMPLT, Op.CMPEQ, Op.LI, Op.MOV})
MULDIV_OPS = frozenset({Op.MUL, Op.DIV, Op.REM})
FP_OPS = frozenset({Op.FADD, Op.FMUL, Op.FDIV, Op.FSQRT})
BRANCH_OPS = frozenset({Op.BEQZ, Op.BNEZ, Op.JMP, Op.CALL, Op.RET})
COND_BRANCH_OPS = frozenset({Op.BEQZ, Op.BNEZ})
MEM_OPS = frozenset({Op.LOAD, Op.STORE})
NONPIPELINED_OPS = frozenset({Op.DIV, Op.REM, Op.FDIV, Op.FSQRT})

#: functional-unit class per op.
FU_CLASS = {}
for _op in ALU_OPS | BRANCH_OPS | MEM_OPS | {Op.NOP, Op.HALT, Op.RDCYC}:
    FU_CLASS[_op] = "int"
for _op in MULDIV_OPS:
    FU_CLASS[_op] = "muldiv"
for _op in FP_OPS:
    FU_CLASS[_op] = "fp"

#: execution latency in cycles (memory ops: address generation only).
LATENCY = {Op.MUL: 3, Op.DIV: 20, Op.REM: 20,
           Op.FADD: 4, Op.FMUL: 4, Op.FDIV: 12, Op.FSQRT: 24}
DEFAULT_LATENCY = 1


@dataclass
class Instr:
    """One static instruction.

    ``rs2`` and ``imm`` are alternatives for the second ALU operand:
    when ``rs2`` is None the immediate is used.  For STORE, ``rs1`` is
    the base address register and ``rs2`` the value register.  ``target``
    is an instruction index for direct branches (RET is indirect via
    ``r31``).
    """

    op: Op
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: int = 0
    target: Optional[int] = None

    def __post_init__(self) -> None:
        for reg in (self.rd, self.rs1, self.rs2):
            if reg is not None and not 0 <= reg < NUM_REGS:
                raise ValueError("register out of range: %r" % (reg,))
        op = self.op
        if op in COND_BRANCH_OPS | {Op.JMP, Op.CALL}:
            if self.target is None:
                raise ValueError("%s requires a target" % op.value)
        # -- classification, precomputed once per static instruction --
        # Every per-cycle consumer (the step loop, the stall analysis,
        # the interpreter) reads these as plain attributes; the old
        # per-access @property set-membership tests were measurable
        # churn in the dense loop.
        self.is_branch = op in BRANCH_OPS
        self.is_cond_branch = op in COND_BRANCH_OPS
        self.is_load = op is Op.LOAD
        self.is_store = op is Op.STORE
        self.is_mem = op in MEM_OPS
        self.is_alu = op in ALU_OPS or op in MULDIV_OPS or op in FP_OPS
        self.fu_class = FU_CLASS[op]
        self.latency = LATENCY.get(op, DEFAULT_LATENCY)
        self.pipelined = op not in NONPIPELINED_OPS
        self.writes_reg = LINK_REG if op is Op.CALL else self.rd
        #: True when the op flows through the issue queue (everything
        #: except NOP/HALT and direct jumps, which finish at dispatch).
        self.needs_iq = op not in (Op.NOP, Op.HALT, Op.JMP, Op.CALL)
        if op is Op.RET:
            self.srcs = (LINK_REG,)
        elif self.rs1 is not None:
            self.srcs = ((self.rs1, self.rs2)
                         if self.rs2 is not None else (self.rs1,))
        else:
            self.srcs = (self.rs2,) if self.rs2 is not None else ()

    def src_regs(self) -> "tuple":
        """Architectural source registers, in operand order."""
        return self.srcs

    def __repr__(self) -> str:
        parts = [self.op.value]
        if self.rd is not None:
            parts.append("r%d" % self.rd)
        if self.rs1 is not None:
            parts.append("r%d" % self.rs1)
        if self.rs2 is not None:
            parts.append("r%d" % self.rs2)
        if self.imm:
            parts.append("#%d" % self.imm)
        if self.target is not None:
            parts.append("@%s" % (self.target,))
        return "<%s>" % " ".join(parts)


def _ev_add(a: int, b: int, imm: int) -> int:
    return (a + b) & MASK64


def _ev_sub(a: int, b: int, imm: int) -> int:
    return (a - b) & MASK64


def _ev_and(a: int, b: int, imm: int) -> int:
    return a & b


def _ev_or(a: int, b: int, imm: int) -> int:
    return a | b


def _ev_xor(a: int, b: int, imm: int) -> int:
    return a ^ b


def _ev_shl(a: int, b: int, imm: int) -> int:
    return (a << (b & 63)) & MASK64


def _ev_shr(a: int, b: int, imm: int) -> int:
    return (a >> (b & 63)) & MASK64


def _ev_cmplt(a: int, b: int, imm: int) -> int:
    return 1 if a < b else 0


def _ev_cmpeq(a: int, b: int, imm: int) -> int:
    return 1 if a == b else 0


def _ev_li(a: int, b: int, imm: int) -> int:
    return imm & MASK64


def _ev_mov(a: int, b: int, imm: int) -> int:
    return a & MASK64


def _ev_mul(a: int, b: int, imm: int) -> int:
    return (a * b) & MASK64


def _ev_div(a: int, b: int, imm: int) -> int:
    return (a // b) & MASK64 if b else 0


def _ev_rem(a: int, b: int, imm: int) -> int:
    return (a % b) & MASK64 if b else 0


def _ev_fsqrt(a: int, b: int, imm: int) -> int:
    return _isqrt(a)


#: ALU semantics dispatch table: one dict probe per executed op instead
#: of a chain of identity tests (shared by the interpreter and the OoO
#: core's issue stage).
EVALUATE = {
    Op.ADD: _ev_add, Op.FADD: _ev_add,
    Op.SUB: _ev_sub,
    Op.AND: _ev_and,
    Op.OR: _ev_or,
    Op.XOR: _ev_xor,
    Op.SHL: _ev_shl,
    Op.SHR: _ev_shr,
    Op.CMPLT: _ev_cmplt,
    Op.CMPEQ: _ev_cmpeq,
    Op.LI: _ev_li,
    Op.MOV: _ev_mov,
    Op.MUL: _ev_mul, Op.FMUL: _ev_mul,
    Op.DIV: _ev_div, Op.FDIV: _ev_div,
    Op.REM: _ev_rem,
    Op.FSQRT: _ev_fsqrt,
}


def evaluate(op: Op, a: int, b: int, imm: int) -> int:
    """Pure ALU semantics shared by the interpreter and the OoO core.

    ``a`` is the first operand value, ``b`` the second (already the
    immediate when rs2 was absent).
    """
    fn = EVALUATE.get(op)
    if fn is None:
        raise ValueError("evaluate() called on non-ALU op %s" % op)
    return fn(a, b, imm)


def _isqrt(value: int) -> int:
    if value < 0:
        return 0
    return int(value ** 0.5) if value < (1 << 52) else _int_sqrt(value)


def _int_sqrt(value: int) -> int:
    guess = value
    bound = (value + 1) // 2
    while bound < guess:
        guess = bound
        bound = (bound + value // bound) // 2
    return guess
