"""The mini-ISA executed by both the reference interpreter and the
out-of-order core.

A small RISC-like register machine: 32 64-bit integer registers
(``r31`` doubles as the link register for CALL/RET), a flat 64-bit byte
address space, and explicit HALT.  FP opcodes (FADD/FMUL/FDIV/FSQRT)
carry floating-point *timing* (FP functional units, non-pipelined
dividers) with integer *semantics* — the paper's experiments depend on
execution timing, never on FP numerics (DESIGN.md note 7).

Program counters are instruction indices; instruction memory addresses
are ``pc * 4`` so a 64-byte I-cache line holds 16 instructions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

NUM_REGS = 32
LINK_REG = 31
MASK64 = (1 << 64) - 1
INST_BYTES = 4


class Op(enum.Enum):
    # integer ALU (1 cycle, pipelined, INT units)
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    CMPLT = "cmplt"
    CMPEQ = "cmpeq"
    LI = "li"
    MOV = "mov"
    # multiply/divide (MULDIV units; DIV/REM non-pipelined)
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    # floating-point timing classes (FP units)
    FADD = "fadd"
    FMUL = "fmul"
    FDIV = "fdiv"      # non-pipelined
    FSQRT = "fsqrt"    # non-pipelined
    # memory
    LOAD = "load"
    STORE = "store"
    # control
    BEQZ = "beqz"
    BNEZ = "bnez"
    JMP = "jmp"
    CALL = "call"
    RET = "ret"
    # misc
    NOP = "nop"
    HALT = "halt"
    # cycle-counter read (the attacker's rdtsc).  Optional rs1 creates a
    # data dependency so the read can be ordered after a measured load.
    RDCYC = "rdcyc"


ALU_OPS = frozenset({Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SHL,
                     Op.SHR, Op.CMPLT, Op.CMPEQ, Op.LI, Op.MOV})
MULDIV_OPS = frozenset({Op.MUL, Op.DIV, Op.REM})
FP_OPS = frozenset({Op.FADD, Op.FMUL, Op.FDIV, Op.FSQRT})
BRANCH_OPS = frozenset({Op.BEQZ, Op.BNEZ, Op.JMP, Op.CALL, Op.RET})
COND_BRANCH_OPS = frozenset({Op.BEQZ, Op.BNEZ})
MEM_OPS = frozenset({Op.LOAD, Op.STORE})
NONPIPELINED_OPS = frozenset({Op.DIV, Op.REM, Op.FDIV, Op.FSQRT})

#: functional-unit class per op.
FU_CLASS = {}
for _op in ALU_OPS | BRANCH_OPS | MEM_OPS | {Op.NOP, Op.HALT, Op.RDCYC}:
    FU_CLASS[_op] = "int"
for _op in MULDIV_OPS:
    FU_CLASS[_op] = "muldiv"
for _op in FP_OPS:
    FU_CLASS[_op] = "fp"

#: execution latency in cycles (memory ops: address generation only).
LATENCY = {Op.MUL: 3, Op.DIV: 20, Op.REM: 20,
           Op.FADD: 4, Op.FMUL: 4, Op.FDIV: 12, Op.FSQRT: 24}
DEFAULT_LATENCY = 1


@dataclass
class Instr:
    """One static instruction.

    ``rs2`` and ``imm`` are alternatives for the second ALU operand:
    when ``rs2`` is None the immediate is used.  For STORE, ``rs1`` is
    the base address register and ``rs2`` the value register.  ``target``
    is an instruction index for direct branches (RET is indirect via
    ``r31``).
    """

    op: Op
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: int = 0
    target: Optional[int] = None

    def __post_init__(self) -> None:
        for reg in (self.rd, self.rs1, self.rs2):
            if reg is not None and not 0 <= reg < NUM_REGS:
                raise ValueError("register out of range: %r" % (reg,))
        if self.op in COND_BRANCH_OPS | {Op.JMP, Op.CALL}:
            if self.target is None:
                raise ValueError("%s requires a target" % self.op.value)

    # -- classification ---------------------------------------------------

    @property
    def is_branch(self) -> bool:
        return self.op in BRANCH_OPS

    @property
    def is_cond_branch(self) -> bool:
        return self.op in COND_BRANCH_OPS

    @property
    def is_load(self) -> bool:
        return self.op is Op.LOAD

    @property
    def is_store(self) -> bool:
        return self.op is Op.STORE

    @property
    def is_mem(self) -> bool:
        return self.op in MEM_OPS

    @property
    def fu_class(self) -> str:
        return FU_CLASS[self.op]

    @property
    def latency(self) -> int:
        return LATENCY.get(self.op, DEFAULT_LATENCY)

    @property
    def pipelined(self) -> bool:
        return self.op not in NONPIPELINED_OPS

    @property
    def writes_reg(self) -> Optional[int]:
        if self.op is Op.CALL:
            return LINK_REG
        return self.rd

    def src_regs(self) -> "tuple":
        """Architectural source registers, in operand order."""
        if self.op is Op.RET:
            return (LINK_REG,)
        srcs = []
        if self.rs1 is not None:
            srcs.append(self.rs1)
        if self.rs2 is not None:
            srcs.append(self.rs2)
        return tuple(srcs)

    def __repr__(self) -> str:
        parts = [self.op.value]
        if self.rd is not None:
            parts.append("r%d" % self.rd)
        if self.rs1 is not None:
            parts.append("r%d" % self.rs1)
        if self.rs2 is not None:
            parts.append("r%d" % self.rs2)
        if self.imm:
            parts.append("#%d" % self.imm)
        if self.target is not None:
            parts.append("@%s" % (self.target,))
        return "<%s>" % " ".join(parts)


def evaluate(op: Op, a: int, b: int, imm: int) -> int:
    """Pure ALU semantics shared by the interpreter and the OoO core.

    ``a`` is the first operand value, ``b`` the second (already the
    immediate when rs2 was absent).
    """
    if op in (Op.ADD, Op.FADD):
        return (a + b) & MASK64
    if op is Op.SUB:
        return (a - b) & MASK64
    if op is Op.AND:
        return a & b
    if op is Op.OR:
        return a | b
    if op is Op.XOR:
        return a ^ b
    if op is Op.SHL:
        return (a << (b & 63)) & MASK64
    if op is Op.SHR:
        return (a >> (b & 63)) & MASK64
    if op is Op.CMPLT:
        return 1 if a < b else 0
    if op is Op.CMPEQ:
        return 1 if a == b else 0
    if op is Op.LI:
        return imm & MASK64
    if op is Op.MOV:
        return a & MASK64
    if op in (Op.MUL, Op.FMUL):
        return (a * b) & MASK64
    if op in (Op.DIV, Op.FDIV):
        return (a // b) & MASK64 if b else 0
    if op is Op.REM:
        return (a % b) & MASK64 if b else 0
    if op is Op.FSQRT:
        return _isqrt(a)
    raise ValueError("evaluate() called on non-ALU op %s" % op)


def _isqrt(value: int) -> int:
    if value < 0:
        return 0
    return int(value ** 0.5) if value < (1 << 52) else _int_sqrt(value)


def _int_sqrt(value: int) -> int:
    guess = value
    bound = (value + 1) // 2
    while bound < guess:
        guess = bound
        bound = (bound + value // bound) // 2
    return guess
