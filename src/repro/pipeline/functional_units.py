"""Functional-unit pool with non-pipelined occupancy and the §4.9
strictness-ordered issue policy.

Pipelined ops consume an issue *port* of their class for one cycle;
non-pipelined ops (DIV/REM/FDIV/FSQRT) additionally occupy a unit for
their full latency — the structural hazard SpectreRewind exploits.

``strict_order=True`` implements the paper's fix: a non-pipelined unit
"may only be issued a speculative operation once all previous speculative
operations in timestamp order, that may use the same unit, have issued".
The scheduler walks candidates oldest-first, so the rule reduces to: once
an older op of a class fails to issue, younger ops of that class are
blocked this cycle (per-class blocking flags, reset each cycle).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.stats import Stats
from repro.config import CoreConfig
from repro.snapshot import SnapshotMixin


class FUPool(SnapshotMixin):
    """Issue ports + non-pipelined unit occupancy for one core."""

    CLASSES = ("int", "fp", "muldiv")

    #: Snapshot contract: unit occupancy and per-cycle issue state are
    #: the state; port geometry is immutable and rides along.  The
    #: ``strict_order`` mode flag is wiring-derived (config/defense)
    #: and reconstructed at construction.
    _SNAPSHOT_EXCLUDE = ("stats", "strict_order")

    def __init__(self, cfg: CoreConfig, stats: Optional[Stats] = None,
                 strict_order: bool = False) -> None:
        self.stats = stats if stats is not None else Stats()
        self.strict_order = strict_order or cfg.strict_fu_order
        self._ports: Dict[str, int] = {
            "int": cfg.int_alus, "fp": cfg.fp_alus,
            "muldiv": cfg.muldiv_units}
        # busy-until cycle per non-pipelined unit instance.
        self._busy_until: Dict[str, List[int]] = {
            name: [0] * count for name, count in self._ports.items()}
        self._issued_this_cycle: Dict[str, int] = {
            name: 0 for name in self._ports}
        self._blocked_class: Dict[str, bool] = {
            name: False for name in self._ports}
        self._cycle = -1
        # Per-class stat slots, interned once (the old per-issue
        # "fu.%s.issued" % fu_class formatting allocated a string per
        # issued op).
        self._h_strict_blocked: Dict[str, int] = {}
        self._h_issued: Dict[str, int] = {}
        self._h_nonpipelined: Dict[str, int] = {}
        self._h_hazard: Dict[str, int] = {}
        for name in self._ports:
            self._h_strict_blocked[name] = self.stats.handle(
                "fu.%s.strict_blocked" % name)
            self._h_issued[name] = self.stats.handle("fu.%s.issued" % name)
            self._h_nonpipelined[name] = self.stats.handle(
                "fu.%s.nonpipelined_issued" % name)
            self._h_hazard[name] = self.stats.handle(
                "fu.%s.structural_hazard" % name)

    def begin_cycle(self, cycle: int) -> None:
        """Reset per-cycle port counts and strict-order blocking flags.

        Resets in place: rebuilding the two dicts every cycle was
        measurable allocation churn in the dense loop.
        """
        self._cycle = cycle
        issued = self._issued_this_cycle
        blocked = self._blocked_class
        for name in self._ports:
            issued[name] = 0
            blocked[name] = False

    def try_issue(self, fu_class: str, cycle: int, latency: int,
                  pipelined: bool) -> bool:
        """Attempt to issue one op; True on success.

        Callers must walk candidates in timestamp order within a cycle
        for ``strict_order`` to be meaningful (the core's scheduler does).
        """
        if cycle != self._cycle:
            self.begin_cycle(cycle)
        if self.strict_order and not pipelined \
                and self._blocked_class[fu_class]:
            self.stats.add(self._h_strict_blocked[fu_class])
            return False
        if self._issued_this_cycle[fu_class] >= self._ports[fu_class]:
            self._note_failure(fu_class, pipelined)
            return False
        if pipelined:
            self._issued_this_cycle[fu_class] += 1
            self.stats.add(self._h_issued[fu_class])
            return True
        # Non-pipelined: need a unit instance free for the whole latency.
        units = self._busy_until[fu_class]
        for idx, busy_until in enumerate(units):
            if busy_until <= cycle:
                units[idx] = cycle + latency
                self._issued_this_cycle[fu_class] += 1
                self.stats.add(self._h_issued[fu_class])
                self.stats.add(self._h_nonpipelined[fu_class])
                return True
        self._note_failure(fu_class, pipelined)
        self.stats.add(self._h_hazard[fu_class])
        return False

    def _note_failure(self, fu_class: str, pipelined: bool) -> None:
        if self.strict_order and not pipelined:
            self._blocked_class[fu_class] = True

    # -- introspection (attacks + tests) -----------------------------------

    def busy_units(self, fu_class: str, cycle: int) -> int:
        return sum(1 for busy in self._busy_until[fu_class]
                   if busy > cycle)

    def ports(self, fu_class: str) -> int:
        return self._ports[fu_class]
