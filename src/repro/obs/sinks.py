"""Trace sinks: exporters behind the ``sink`` component registry.

A *sink* turns a finished :class:`~repro.obs.trace.Tracer` into a file.
Sinks are registered components (``repro list sinks``, plugin-extensible
via the standard registry protocol) constructed from spec strings, so a
traced run can name its export formats as data::

    SINKS.create("perfetto").write("trace.json", tracer, meta)

Builtins:

``perfetto``
    Chrome trace-event / Perfetto JSON: per-instruction lifetime slices
    on one track per core, scheduler skip windows on their own track,
    memory events as instants, metrics series as counter tracks.  Loads
    directly in ``ui.perfetto.dev`` or ``chrome://tracing``.
``jsonl``
    One JSON object per line: a schema-versioned header, then every
    trace event, then every metrics sample.  The streaming-friendly
    format for ad-hoc ``jq``-style analysis.
``timeline``
    The folded per-instruction view (the :class:`PipelineTracer`
    successor): one JSON document of instruction lifetimes + run
    summary.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.obs.trace import Tracer, build_inst_records
from repro.registry.core import Registry

#: The sink component family (self-registers in ``REGISTRIES``).
SINKS: Registry = Registry("sink")

#: Synthetic Perfetto track ids (cores use their own ids from 0).
SCHEDULER_TID = 1000
MEM_TID_BASE = 2000


class PerfettoSink:
    """Chrome trace-event / Perfetto JSON export."""

    extension = ".json"

    def __init__(self, pretty: bool = False) -> None:
        self.pretty = pretty

    def render(self, tracer: Tracer,
               meta: Optional[Dict[str, object]] = None
               ) -> Dict[str, object]:
        events: List[Dict[str, object]] = []
        names = {0: "process"}

        def thread(tid: int, name: str) -> None:
            if tid not in names:
                names[tid] = name
                events.append({"ph": "M", "name": "thread_name",
                               "pid": 0, "tid": tid,
                               "args": {"name": name}})

        records = build_inst_records(tracer.events)
        for record in records.values():
            thread(record.core, "core%d pipeline" % record.core)
            end = record.end_cycle()
            stages = {"fetch": record.fetch, "dispatch": record.dispatch,
                      "issue": record.issue,
                      "writeback": record.writeback,
                      "commit": record.commit}
            events.append({
                "ph": "X", "pid": 0, "tid": record.core,
                "ts": record.fetch,
                "dur": max(end - record.fetch, 1),
                "name": record.op or "inst",
                "args": {"seq": record.seq, "pc": record.pc,
                         "replays": record.replays,
                         "squashed": record.squashed,
                         "stages": stages},
            })
        mem_tids: Dict[str, int] = {}
        for event in tracer.events:
            if event.kind == "skip":
                thread(SCHEDULER_TID, "scheduler")
                wake = int(event.args["wake"]) if event.args else event.cycle
                events.append({
                    "ph": "X", "pid": 0, "tid": SCHEDULER_TID,
                    "ts": event.cycle,
                    "dur": max(wake - event.cycle, 1),
                    "name": "skip",
                    "args": dict(event.args or {}),
                })
            elif event.kind == "mem":
                unit = str((event.args or {}).get("unit", "mem"))
                tid = mem_tids.get(unit)
                if tid is None:
                    tid = MEM_TID_BASE + len(mem_tids)
                    mem_tids[unit] = tid
                    thread(tid, unit)
                events.append({
                    "ph": "i", "s": "t", "pid": 0, "tid": tid,
                    "ts": event.cycle, "name": event.name,
                    "args": dict(event.args or {}),
                })
            elif event.kind == "marker":
                thread(SCHEDULER_TID, "scheduler")
                events.append({
                    "ph": "i", "s": "g", "pid": 0, "tid": SCHEDULER_TID,
                    "ts": event.cycle, "name": event.name,
                    "args": dict(event.args or {}),
                })
        sampler = tracer.sampler
        if sampler is not None:
            for row in sampler.samples:
                cycle = int(row[0])
                for name, value in zip(sampler.names, row[1:]):
                    events.append({"ph": "C", "pid": 0, "ts": cycle,
                                   "name": name, "args": {name: value}})
        doc: Dict[str, object] = {
            "traceEvents": events,
            "displayTimeUnit": "ns",
            "otherData": {"unit": "cycles",
                          "dropped_events": tracer.dropped},
        }
        if meta:
            doc["otherData"].update(meta)
        return doc

    def write(self, path: str, tracer: Tracer,
              meta: Optional[Dict[str, object]] = None) -> None:
        doc = self.render(tracer, meta)
        with open(path, "w") as handle:
            json.dump(doc, handle,
                      indent=2 if self.pretty else None,
                      sort_keys=True)
            handle.write("\n")


class JsonlSink:
    """Line-delimited JSON export: header, events, metrics samples."""

    extension = ".jsonl"

    def __init__(self, events: bool = True, metrics: bool = True) -> None:
        self.events = events
        self.metrics = metrics

    def write(self, path: str, tracer: Tracer,
              meta: Optional[Dict[str, object]] = None) -> None:
        with open(path, "w") as handle:
            header: Dict[str, object] = {
                "record": "header", "v": 1,
                "summary": tracer.summary(),
            }
            if meta:
                header["meta"] = dict(meta)
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            if self.events:
                for event in tracer.events:
                    row = event.to_json_dict()
                    row["record"] = "event"
                    handle.write(json.dumps(row, sort_keys=True) + "\n")
            sampler = tracer.sampler
            if self.metrics and sampler is not None:
                for row in sampler.samples:
                    record: Dict[str, object] = {
                        "record": "metric", "cycle": int(row[0])}
                    record.update(zip(sampler.names, row[1:]))
                    handle.write(json.dumps(record, sort_keys=True)
                                 + "\n")


class TimelineSink:
    """Folded per-instruction timeline (the gem5-``O3PipeView`` view)."""

    extension = ".timeline.json"

    def __init__(self, limit: Optional[int] = None) -> None:
        self.limit = limit

    def write(self, path: str, tracer: Tracer,
              meta: Optional[Dict[str, object]] = None) -> None:
        records = build_inst_records(tracer.events, limit=self.limit)
        doc: Dict[str, object] = {
            "v": 1,
            "records": [records[seq].to_json_dict()
                        for seq in sorted(records)],
            "summary": tracer.summary(),
        }
        if meta:
            doc["meta"] = dict(meta)
        with open(path, "w") as handle:
            json.dump(doc, handle, sort_keys=True)
            handle.write("\n")


SINKS.add("perfetto", PerfettoSink, tags=("builtin", "export"),
          summary="Chrome trace-event / Perfetto JSON (ui.perfetto.dev)")
SINKS.add("jsonl", JsonlSink, tags=("builtin", "export"),
          summary="Line-delimited JSON: header, events, metrics samples")
SINKS.add("timeline", TimelineSink, tags=("builtin", "export"),
          summary="Per-instruction lifetime timeline JSON")


def sink_paths(specs: Tuple[str, ...], out: str) -> List[Tuple[str, str]]:
    """Map sink specs onto output paths under/at ``out``.

    A single sink writes exactly to ``out``; with several sinks the
    first keeps ``out`` and the rest append their registry name before
    their extension, so one ``--trace-out`` serves them all.
    """
    pairs: List[Tuple[str, str]] = []
    taken = set()
    for position, spec in enumerate(specs):
        if position == 0:
            pairs.append((spec, out))
            taken.add(out)
            continue
        from repro.registry import parse_spec
        name, _kwargs = parse_spec(spec)
        sink = SINKS.create(spec)
        extension = getattr(sink, "extension", ".json")
        stem = out
        for suffix in (".timeline.json", ".jsonl", ".json"):
            if stem.endswith(suffix):
                stem = stem[:-len(suffix)]
                break
        path = stem + extension
        if path in taken:
            path = stem + "." + name + extension
        pairs.append((spec, path))
        taken.add(path)
    return pairs


def export_traces(tracer: Tracer, specs: Tuple[str, ...], out: str,
                  meta: Optional[Dict[str, object]] = None) -> List[str]:
    """Write ``tracer`` through every sink spec; returns written paths."""
    written: List[str] = []
    for spec, path in sink_paths(tuple(specs), out):
        sink = SINKS.create(spec)
        sink.write(path, tracer, meta)
        written.append(path)
    return written


__all__ = [
    "JsonlSink",
    "PerfettoSink",
    "SINKS",
    "TimelineSink",
    "export_traces",
    "sink_paths",
]
