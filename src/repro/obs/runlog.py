"""Structured JSONL run log: the machine-readable engine narration.

The engine used to narrate sweeps with ad-hoc ``print(..., file=stderr)``
summaries — fine for humans, hostile to anything parsing a ``--json``
run.  A :class:`RunLog` replaces that channel with one JSON object per
line, each stamped with a schema version, so consumers can mix human
and machine output on the same stream::

    {"v": 1, "event": "engine-summary", "points": 8, ...}
    {"v": 1, "event": "point-timing", "key": "mcf/GhostMinion", ...}

``event`` names the record type; unknown types must be skipped by
consumers (the additive-evolution contract shared with the result
store's schema versioning).
"""

from __future__ import annotations

import json
from typing import IO, Dict, Optional

#: Bump only when an *existing* record type changes shape incompatibly;
#: adding record types or optional fields is non-breaking.
RUNLOG_SCHEMA_VERSION = 1


class RunLog:
    """Write schema-versioned JSONL records to a stream."""

    def __init__(self, stream: IO[str]) -> None:
        self.stream = stream
        self.records = 0

    def emit(self, event: str, payload: Optional[Dict[str, object]] = None,
             **fields: object) -> Dict[str, object]:
        """Emit one record; returns the dict that was written."""
        record: Dict[str, object] = {"v": RUNLOG_SCHEMA_VERSION,
                                     "event": event}
        if payload:
            record.update(payload)
        if fields:
            record.update(fields)
        self.stream.write(json.dumps(record, sort_keys=True,
                                     default=str) + "\n")
        self.records += 1
        return record


__all__ = ["RUNLOG_SCHEMA_VERSION", "RunLog"]
