"""Cycle-domain metrics: periodic sampling of simulator probes.

A :class:`MetricsSampler` owns a list of named probes — zero-argument
callables closed over live simulator state — and records one row per
``interval`` cycles.  The simulator drives it through
``Tracer.on_cycle``: once per simulated cycle on the dense path, and
once after every bulk skip-window jump on the event-driven path.  A
jump past several due points records a single row at the landing cycle
(nothing changed inside the window — that is what the stall proof
proved), so the series stays truthful under cycle skipping.

The builtin probe catalogue (:func:`default_probes`) is documented in
``docs/observability.md``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

Probe = Callable[[int], float]


class MetricsSampler:
    """Sample registered probes into a time series every ``interval``
    cycles."""

    def __init__(self, interval: int = 1000) -> None:
        if interval <= 0:
            raise ValueError("metrics interval must be positive, got %r"
                             % (interval,))
        self.interval = interval
        self.names: List[str] = []
        self._probes: List[Probe] = []
        self.samples: List[List[float]] = []
        self._next_due = 0

    def bind(self, probes: Sequence[Tuple[str, Probe]]) -> None:
        """Install the probe list (replacing any previous one)."""
        self.names = [name for name, _probe in probes]
        self._probes = [probe for _name, probe in probes]

    def on_cycle(self, cycle: int) -> None:
        if cycle < self._next_due:
            return
        row: List[float] = [float(cycle)]
        for probe in self._probes:
            row.append(float(probe(cycle)))
        self.samples.append(row)
        # Next due point on the interval grid strictly after `cycle`
        # (a skip-window jump may have crossed several grid points —
        # they collapse into this one sample).
        self._next_due = cycle - (cycle % self.interval) + self.interval

    def series(self) -> Dict[str, object]:
        """JSON-able view: column names + rows (cycle first)."""
        return {
            "interval": self.interval,
            "columns": ["cycle"] + list(self.names),
            "samples": [list(row) for row in self.samples],
        }


def default_probes(sim) -> List[Tuple[str, Probe]]:
    """The builtin probe catalogue over a :class:`Simulator`.

    ===================  =================================================
    name                 meaning
    ===================  =================================================
    ``ipc``              committed instructions per cycle so far
    ``rob_occupancy``    in-flight ROB entries summed over cores
    ``mshr_occupancy``   allocated MSHRs (all L1 files + shared L2)
    ``l1d_misses``       cumulative L1-D misses (all cores)
    ``l2_misses``        cumulative shared-L2 misses
    ``skip_fraction``    fraction of elapsed cycles the scheduler skipped
    ===================  =================================================
    """
    cores = sim.cores
    stats = sim.stats
    shared = sim.shared

    def ipc(cycle: int) -> float:
        if cycle <= 0:
            return 0.0
        return sum(core.committed_insts for core in cores) / cycle

    def rob_occupancy(cycle: int) -> float:
        return float(sum(len(core.rob) for core in cores))

    def mshr_occupancy(cycle: int) -> float:
        total = shared.l2_mshrs.occupancy()
        for hierarchy in shared.hierarchies:
            total += hierarchy.dport.mshrs.occupancy()
            total += hierarchy.iport.mshrs.occupancy()
        return float(total)

    def l1d_misses(cycle: int) -> float:
        return stats.get("l1d.misses")

    def l2_misses(cycle: int) -> float:
        return stats.get("l2.misses")

    def skip_fraction(cycle: int) -> float:
        if cycle <= 0:
            return 0.0
        return sim.skipped_cycles / cycle

    return [
        ("ipc", ipc),
        ("rob_occupancy", rob_occupancy),
        ("mshr_occupancy", mshr_occupancy),
        ("l1d_misses", l1d_misses),
        ("l2_misses", l2_misses),
        ("skip_fraction", skip_fraction),
    ]


__all__ = ["MetricsSampler", "Probe", "default_probes"]
