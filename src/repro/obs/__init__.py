"""Run-scoped observability: structured tracing + cycle-domain metrics.

The simulator core carries dormant hooks — a single ``_obs``-is-not-None
attribute check on every hot path, enforced by the ``obs-guards`` lint
checker — that light up when a :class:`~repro.obs.trace.Tracer` is
attached via ``Simulator.attach_obs``.  Three pillars:

* **event tracing** (:mod:`repro.obs.trace`): typed trace events for
  pipeline stages, squashes, MSHR allocate/fill, cache miss/evict,
  scheduler skip windows (with their proof classes) and run markers
  such as checkpoint restores.  Event-driven runs produce gapless
  timelines because every emit carries the true cycle.
* **cycle-domain metrics** (:mod:`repro.obs.metrics`): periodic
  sampling of registered probes (IPC, ROB/MSHR occupancy, cache
  misses, skip fraction) into a time series at a configurable cycle
  interval, skip-window aware.
* **export + query** (:mod:`repro.obs.sinks`, :mod:`repro.obs.runlog`):
  a ``sink`` component registry (``repro list sinks``) with builtin
  Chrome trace-event / Perfetto JSON, JSONL and timeline sinks, plus a
  schema-versioned JSONL run log for engine summaries.

Tracing never mutates simulated state: a traced run is byte-identical
to an untraced one in cycles, stats and digests (pinned by
``tests/test_scheduler_equivalence.py``).  See ``docs/observability.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.obs.metrics import MetricsSampler, default_probes
from repro.obs.runlog import RUNLOG_SCHEMA_VERSION, RunLog
from repro.obs.trace import (
    TraceEvent,
    Tracer,
    build_inst_records,
)


@dataclass(frozen=True)
class ObsConfig:
    """Picklable tracing request threaded through the engine.

    ``sinks`` are sink spec strings (``"perfetto"``,
    ``"jsonl(events=False)"``); ``out`` is a file path for a single
    traced point or a directory for multi-point sweeps;
    ``metrics_interval`` of 0 disables the sampler; ``limit`` caps the
    in-memory event buffer (excess events are counted, not stored).
    """

    sinks: Tuple[str, ...] = ("perfetto",)
    out: str = "trace.json"
    metrics_interval: int = 0
    limit: int = 1_000_000


def build_tracer(config: ObsConfig) -> Tracer:
    """Construct the Tracer (and sampler) an :class:`ObsConfig` asks
    for; attach it with ``Simulator.attach_obs``."""
    sampler: Optional[MetricsSampler] = None
    if config.metrics_interval > 0:
        sampler = MetricsSampler(interval=config.metrics_interval)
    return Tracer(limit=config.limit, sampler=sampler)


__all__ = [
    "ObsConfig",
    "MetricsSampler",
    "RUNLOG_SCHEMA_VERSION",
    "RunLog",
    "TraceEvent",
    "Tracer",
    "build_inst_records",
    "build_tracer",
    "default_probes",
]
