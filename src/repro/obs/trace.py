"""Typed trace events and the run-scoped :class:`Tracer`.

The tracer is the object the simulator's dormant ``_obs`` hooks talk
to.  Emit methods are intentionally flat (scalar arguments, one append)
so a traced run stays usable, and they never touch simulated state —
attaching a tracer cannot change cycles, stats or digests.

Event kinds
-----------

``stage``
    One pipeline-stage transition of one dynamic instruction:
    ``fetch``, ``dispatch``, ``issue``, ``replay``, ``writeback`` or
    ``commit``, with the owning core, sequence number, pc and opcode.
``squash``
    A mispredict recovery: every in-flight instruction younger than
    ``seq`` (the branch) died at ``cycle``.
``mem``
    A memory-system edge: ``mshr-alloc``, ``mshr-fill``,
    ``cache-miss`` or ``cache-evict``, tagged with the emitting unit's
    name (``l1d``, ``l2``, ...) and the line address.
``skip``
    One scheduler skip window: the clock jumped from ``cycle`` to
    ``wake`` on the strength of stall proofs with the given classes
    (``docs/performance.md`` taxonomy).
``marker``
    A run-level annotation: run begin/end, checkpoint restore.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

STAGE_FETCH = "fetch"
STAGE_DISPATCH = "dispatch"
STAGE_ISSUE = "issue"
STAGE_REPLAY = "replay"
STAGE_WRITEBACK = "writeback"
STAGE_COMMIT = "commit"

#: Ordered stage names (the timeline column order).
STAGES = (STAGE_FETCH, STAGE_DISPATCH, STAGE_ISSUE, STAGE_REPLAY,
          STAGE_WRITEBACK, STAGE_COMMIT)

#: Memory-system event operations.
MEM_OPS = ("mshr-alloc", "mshr-fill", "cache-miss", "cache-evict")

#: Event kinds a sink must understand.
EVENT_KINDS = ("stage", "squash", "mem", "skip", "marker")


class TraceEvent:
    """One typed trace event (a flat record, cheap to allocate)."""

    __slots__ = ("kind", "cycle", "core", "name", "seq", "pc", "args")

    def __init__(self, kind: str, cycle: int, core: int = -1,
                 name: str = "", seq: int = -1, pc: int = -1,
                 args: Optional[dict] = None) -> None:
        self.kind = kind
        self.cycle = cycle
        self.core = core
        self.name = name
        self.seq = seq
        self.pc = pc
        self.args = args

    def to_json_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {"kind": self.kind, "cycle": self.cycle}
        if self.core >= 0:
            row["core"] = self.core
        if self.name:
            row["name"] = self.name
        if self.seq >= 0:
            row["seq"] = self.seq
        if self.pc >= 0:
            row["pc"] = self.pc
        if self.args:
            row["args"] = dict(self.args)
        return row

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "TraceEvent(%s)" % ", ".join(
            "%s=%r" % (key, value)
            for key, value in sorted(self.to_json_dict().items()))


class Tracer:
    """Run-scoped event buffer + optional metrics sampler.

    Components reach the tracer through their ``_obs`` attribute; every
    hot-path call site is guarded by ``if self._obs is not None`` (the
    ``obs-guards`` lint contract), so a ``None`` tracer costs one
    attribute load per potential event.

    ``limit`` caps the buffer: past it events are counted in
    ``dropped`` instead of stored, keeping long traced runs bounded.
    """

    def __init__(self, limit: int = 1_000_000,
                 sampler: Optional[object] = None) -> None:
        self.events: List[TraceEvent] = []
        self.limit = limit
        self.dropped = 0
        self.sampler = sampler
        self.counts: Dict[str, int] = {}

    # -- emit API (called from guarded hot-path hooks) --------------------

    def _append(self, event: TraceEvent) -> None:
        self.counts[event.kind] = self.counts.get(event.kind, 0) + 1
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(event)

    def emit_stage(self, core: int, seq: int, pc: int, op: str,
                   stage: str, cycle: int) -> None:
        self._append(TraceEvent("stage", cycle, core=core, name=stage,
                                seq=seq, pc=pc, args={"op": op}))

    def emit_squash(self, core: int, seq: int, cycle: int) -> None:
        self._append(TraceEvent("squash", cycle, core=core, seq=seq))

    def emit_mem(self, unit: str, op: str, line: int, cycle: int) -> None:
        self._append(TraceEvent("mem", cycle, name=op,
                                args={"unit": unit, "line": line}))

    def emit_skip(self, cycle: int, wake: int,
                  classes: Tuple[str, ...]) -> None:
        self._append(TraceEvent("skip", cycle, name="skip",
                                args={"wake": wake,
                                      "classes": sorted(set(classes))}))

    def emit_marker(self, name: str, cycle: int,
                    args: Optional[dict] = None) -> None:
        self._append(TraceEvent("marker", cycle, name=name, args=args))

    # -- cycle-domain sampling -------------------------------------------

    def on_cycle(self, cycle: int) -> None:
        """Advance the metrics sampler (no-op without one).

        The simulator calls this once per simulated cycle *and* after
        every skip-window jump, so sampling stays correct when the
        clock moves in bulk.
        """
        sampler = self.sampler
        if sampler is not None:
            sampler.on_cycle(cycle)

    # -- reporting --------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        return {
            "events": len(self.events),
            "dropped": self.dropped,
            "by_kind": dict(sorted(self.counts.items())),
        }


class InstTimeline:
    """Derived per-instruction lifetime (one row of a timeline)."""

    __slots__ = ("seq", "core", "pc", "op", "fetch", "dispatch", "issue",
                 "writeback", "commit", "replays", "squashed")

    def __init__(self, seq: int, core: int, pc: int, op: str,
                 fetch: int) -> None:
        self.seq = seq
        self.core = core
        self.pc = pc
        self.op = op
        self.fetch = fetch
        self.dispatch: Optional[int] = None
        self.issue: Optional[int] = None
        self.writeback: Optional[int] = None
        self.commit: Optional[int] = None
        self.replays = 0
        self.squashed = False

    def end_cycle(self) -> int:
        for value in (self.commit, self.writeback, self.issue,
                      self.dispatch):
            if value is not None:
                return value
        return self.fetch

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "seq": self.seq, "core": self.core, "pc": self.pc,
            "op": self.op, "fetch": self.fetch,
            "dispatch": self.dispatch, "issue": self.issue,
            "writeback": self.writeback, "commit": self.commit,
            "replays": self.replays, "squashed": self.squashed,
        }


def build_inst_records(events: List[TraceEvent],
                       limit: Optional[int] = None,
                       core: Optional[int] = None
                       ) -> Dict[int, InstTimeline]:
    """Fold stage/squash events into per-instruction lifetimes.

    Events are processed in emission order, so the result is exact
    under both the dense loop and the event-driven scheduler (each emit
    carries its true cycle).  ``limit`` caps the number of distinct
    instructions recorded; ``core`` filters to one core's stream.
    """
    records: Dict[int, InstTimeline] = {}
    for event in events:
        if core is not None and event.core != core:
            continue
        if event.kind == "stage":
            record = records.get(event.seq)
            if record is None:
                if event.name != STAGE_FETCH:
                    continue
                if limit is not None and len(records) >= limit:
                    continue
                op = event.args["op"] if event.args else ""
                records[event.seq] = InstTimeline(
                    event.seq, event.core, event.pc, op, event.cycle)
                continue
            if event.name == STAGE_DISPATCH:
                record.dispatch = event.cycle
            elif event.name == STAGE_ISSUE:
                if record.issue is None:
                    record.issue = event.cycle
            elif event.name == STAGE_REPLAY:
                record.replays += 1
            elif event.name == STAGE_WRITEBACK:
                record.writeback = event.cycle
            elif event.name == STAGE_COMMIT:
                record.commit = event.cycle
                if record.writeback is None:
                    record.writeback = event.cycle
        elif event.kind == "squash":
            for seq, record in records.items():
                if seq > event.seq and record.commit is None:
                    record.squashed = True
    return records


__all__ = [
    "EVENT_KINDS",
    "InstTimeline",
    "MEM_OPS",
    "STAGES",
    "STAGE_COMMIT",
    "STAGE_DISPATCH",
    "STAGE_FETCH",
    "STAGE_ISSUE",
    "STAGE_REPLAY",
    "STAGE_WRITEBACK",
    "TraceEvent",
    "Tracer",
    "build_inst_records",
]
