"""Runtime selection of the compiled hot-core build (``REPRO_ACCEL``).

The per-cycle step loop lives in :mod:`repro.pipeline.hotcore`, which
an accelerated install (``REPRO_BUILD_ACCEL=1 pip install -e .[accel]``,
see setup.py) additionally ships as a mypyc extension module.  Python's
import machinery prefers the extension over the ``.py`` source sitting
next to it, so merely importing the module picks the compiled build
when present.  This module adds the runtime knob on top:

``REPRO_ACCEL=1``
    Require the compiled build; if the extension is absent, warn once
    on stderr and fall back to pure Python.
``REPRO_ACCEL=0``
    Force the pure-Python build even when the extension is installed
    (the differential oracle for parity testing).
unset / anything else
    Auto: use the compiled build when present.

Either way the module is registered in ``sys.modules`` under its one
canonical name, ``repro.pipeline.hotcore`` — pickled checkpoints
reference ``DynInst`` by module path, so blobs written under one build
restore under the other.

``python -m repro.accel`` prints the selection as JSON;
``python -m repro.accel --digest`` additionally runs one smoke point
and prints its cycles/stats/regs digest, which ``tests/test_accel.py``
and ``benchmarks/bench_perf_smoke.py`` compare across
``REPRO_ACCEL=0``/``1`` subprocesses to enforce the byte-identical
parity contract.
"""

from __future__ import annotations

import importlib
import importlib.util
import os
import sys
from types import ModuleType
from typing import Optional

HOTCORE_MODULE = "repro.pipeline.hotcore"
ENV_ACCEL = "REPRO_ACCEL"

#: Extension suffixes that mark a compiled (mypyc/Cython) build.
_EXT_SUFFIXES = (".so", ".pyd")

_warned_missing = False


def _origin(spec) -> str:
    return getattr(spec, "origin", None) or ""


def _compiled_origin() -> Optional[str]:
    """Path of the compiled extension the import system would pick,
    or None when only the pure source is importable."""
    try:
        spec = importlib.util.find_spec(HOTCORE_MODULE)
    except (ImportError, ValueError):  # pragma: no cover - broken tree
        return None
    origin = _origin(spec)
    if origin.endswith(_EXT_SUFFIXES):
        return origin
    return None


def _source_path(compiled: str) -> Optional[str]:
    """The pure ``hotcore.py`` sitting next to the compiled extension."""
    candidate = os.path.join(os.path.dirname(compiled), "hotcore.py")
    return candidate if os.path.exists(candidate) else None


def _load_pure_source(path: str) -> ModuleType:
    """Exec the pure source under the canonical module name.

    Registration happens *before* exec and under ``repro.pipeline.
    hotcore`` (not a shadow name): checkpoint blobs pickle ``DynInst``
    by module path, so the name must resolve identically whichever
    build is active.
    """
    spec = importlib.util.spec_from_file_location(HOTCORE_MODULE, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[HOTCORE_MODULE] = module
    try:
        spec.loader.exec_module(module)
    except BaseException:
        sys.modules.pop(HOTCORE_MODULE, None)
        raise
    return module


def load_hotcore() -> ModuleType:
    """Import the hot-core module honouring ``REPRO_ACCEL``.

    Idempotent: the first caller in a process decides (imports are
    cached), so set the environment variable before importing repro.
    """
    module = sys.modules.get(HOTCORE_MODULE)
    if module is not None:
        return module
    global _warned_missing
    want = os.environ.get(ENV_ACCEL, "").strip()
    compiled = _compiled_origin()
    if want == "0" and compiled is not None:
        source = _source_path(compiled)
        if source is not None:
            return _load_pure_source(source)
        if not _warned_missing:
            _warned_missing = True
            print("repro.accel: REPRO_ACCEL=0 but no pure source next "
                  "to %s; using the compiled build" % compiled,
                  file=sys.stderr)
    elif want == "1" and compiled is None and not _warned_missing:
        _warned_missing = True
        print("repro.accel: REPRO_ACCEL=1 but the compiled extension "
              "is not installed (REPRO_BUILD_ACCEL=1 pip install -e "
              ".[accel]); falling back to pure Python",
              file=sys.stderr)
    return importlib.import_module(HOTCORE_MODULE)


def is_compiled(module: Optional[ModuleType] = None) -> bool:
    """True when the *active* hot-core build is a compiled extension."""
    if module is None:
        module = load_hotcore()
    return getattr(module, "__file__", "").endswith(_EXT_SUFFIXES)


def accel_status() -> dict:
    """Selection summary (the ``python -m repro.accel`` payload)."""
    module = load_hotcore()
    return {
        "requested": os.environ.get(ENV_ACCEL) or None,
        "compiled_available": _compiled_origin() is not None,
        "active": "compiled" if is_compiled(module) else "pure",
        "module_file": getattr(module, "__file__", None),
    }


def _digest_payload(scale: float) -> dict:
    """Run one event-path smoke point and digest its results.

    The digest covers everything the parity contract names: cycles,
    the full stats dict, and the architectural registers.  Subprocesses
    running under REPRO_ACCEL=0 and =1 must produce identical payloads
    (modulo ``seconds``).
    """
    import hashlib
    import json
    import time

    from repro.defenses import registry
    from repro.sim.simulator import Simulator
    from repro.workloads.spec import get_workload

    programs = get_workload("mcf").build(scale)
    defense = registry["GhostMinion"]()
    start = time.perf_counter()
    sim = Simulator(programs, defense)
    result = sim.run()
    seconds = time.perf_counter() - start
    stats = result.stats.as_dict()
    canonical = json.dumps(
        {"cycles": result.cycles, "stats": stats,
         "regs": [core.arch_regs() for core in sim.cores]},
        sort_keys=True)
    return {
        "active": accel_status()["active"],
        "cycles": result.cycles,
        "insts": int(stats.get("commit.insts", 0)),
        "skipped_cycles": result.skipped_cycles,
        "digest": hashlib.sha256(canonical.encode()).hexdigest(),
        "seconds": seconds,
    }


def main(argv=None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro.accel",
        description="Report (or exercise) the hot-core build selection.")
    parser.add_argument("--digest", action="store_true",
                        help="run one smoke point and print its "
                             "cycles/stats/regs digest (parity probe)")
    parser.add_argument("--scale", type=float, default=0.04,
                        help="workload scale for --digest "
                             "(default 0.04)")
    args = parser.parse_args(argv)
    payload = accel_status()
    if args.digest:
        payload.update(_digest_payload(args.scale))
    print(json.dumps(payload, sort_keys=True, indent=2))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
