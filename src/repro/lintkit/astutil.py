"""Small AST helpers shared by the builtin checkers."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple


def root_name(node: ast.AST) -> Optional[str]:
    """The :class:`ast.Name` id at the base of an attribute/subscript/
    call chain (``self._table[k].x`` -> ``"self"``), or ``None`` when
    the chain bottoms out in a literal or call result."""
    while True:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Starred):
            node = node.value
        else:
            return None


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def target_names(target: ast.AST) -> Iterator[ast.AST]:
    """Flatten tuple/list assignment targets into leaf targets."""
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from target_names(element)
    else:
        yield target


def const_str_elements(node: ast.AST) -> Optional[List[str]]:
    """The string elements of a literal tuple/list/set (``None`` when
    any element is not a string constant)."""
    if isinstance(node, ast.Call):  # frozenset({...}) / tuple([...])
        if node.args and not node.keywords:
            return const_str_elements(node.args[0])
        return None
    if not isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return None
    out = []
    for element in node.elts:
        if isinstance(element, ast.Constant) \
                and isinstance(element.value, str):
            out.append(element.value)
        else:
            return None
    return out


def module_str_constants(tree: ast.AST) -> Dict[str, str]:
    """Module-level ``NAME = "literal"`` assignments."""
    table: Dict[str, str] = {}
    for node in getattr(tree, "body", []):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, str):
            table[node.targets[0].id] = node.value.value
    return table


def resolve_str_set(node: ast.AST,
                    constants: Dict[str, str]) -> Optional[Set[str]]:
    """Evaluate a ``frozenset({NAME, "lit", ...})``-shaped expression
    against a module-constant table.  Handles set/tuple/list literals,
    ``frozenset(...)`` wrappers and ``|``/``+`` unions."""
    if isinstance(node, ast.Call):
        if node.args and not node.keywords:
            return resolve_str_set(node.args[0], constants)
        return None
    if isinstance(node, ast.BinOp) \
            and isinstance(node.op, (ast.BitOr, ast.Add)):
        left = resolve_str_set(node.left, constants)
        right = resolve_str_set(node.right, constants)
        if left is None or right is None:
            return None
        return left | right
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        out: Set[str] = set()
        for element in node.elts:
            if isinstance(element, ast.Constant) \
                    and isinstance(element.value, str):
                out.add(element.value)
            elif isinstance(element, ast.Name) \
                    and element.id in constants:
                out.add(constants[element.id])
            else:
                return None
        return out
    return None


def class_methods(cls: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    """Directly defined methods of a class body, by name."""
    return {node.name: node for node in cls.body
            if isinstance(node, (ast.FunctionDef,
                                 ast.AsyncFunctionDef))}


def base_names(cls: ast.ClassDef) -> List[str]:
    """Bare names of a class's bases (``pkg.Base`` -> ``Base``)."""
    names = []
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def iter_classes(tree: ast.AST) -> Iterator[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def self_attr_assign_names(func: ast.FunctionDef) -> List[Tuple[str,
                                                                int]]:
    """``(attr, lineno)`` for every ``self.<attr> = ...`` in ``func``
    (Assign, AnnAssign and AugAssign targets)."""
    found: List[Tuple[str, int]] = []
    for node in ast.walk(func):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            for target in node.targets:
                targets.extend(target_names(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets.append(node.target)
        for target in targets:
            if isinstance(target, ast.Attribute) \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id == "self":
                found.append((target.attr, node.lineno))
    return found
