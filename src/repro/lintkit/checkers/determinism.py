"""determinism: no ambient entropy on simulation/payload paths.

Results are content-addressed: the same (config, workload, defense)
point must produce byte-identical payloads on every run, or the cache,
the sqlite store, the checkpoint digests and the differential oracles
all silently fork.  Inside the simulation and payload directories
(``sim/``, ``pipeline/``, ``memory/``, ``defenses/``, ``exp/``) that
rules out wall-clock reads (``time.time``, ``datetime.now``),
OS entropy (``os.urandom``, ``uuid.uuid4``) and the process-global
``random`` module (seedless by definition); randomness must flow from
an explicitly seeded ``random.Random(seed)``.  ``time.perf_counter``
stays legal — interval timing feeds telemetry, never payloads.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lintkit.astutil import dotted_name
from repro.lintkit.base import Checker, Finding, LintContext

SCOPE = ("src/repro/sim", "src/repro/pipeline", "src/repro/memory",
         "src/repro/defenses", "src/repro/exp")

#: Dotted call names that read the wall clock.
WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.monotonic",
    "time.monotonic_ns", "datetime.now", "datetime.utcnow",
    "datetime.today", "date.today", "datetime.datetime.now",
    "datetime.datetime.utcnow", "datetime.date.today",
})

#: Dotted call names that draw OS entropy.
ENTROPY = frozenset({
    "os.urandom", "uuid.uuid1", "uuid.uuid4", "secrets.token_bytes",
    "secrets.token_hex", "secrets.randbelow",
})

#: Module-level ``random.*`` functions (the global, unseeded RNG).
GLOBAL_RANDOM = frozenset({
    "random.random", "random.randint", "random.randrange",
    "random.choice", "random.choices", "random.shuffle",
    "random.sample", "random.uniform", "random.getrandbits",
    "random.gauss", "random.seed",
})


class DeterminismChecker(Checker):
    """Simulation/payload code must be bit-reproducible."""

    name = "determinism"
    summary = ("no wall clock, OS entropy or global random on "
               "sim/pipeline/memory/defenses/exp payload paths")
    contract = (
        "Content-addressed results require bit-reproducible payload "
        "code.  Under src/repro/{sim,pipeline,memory,defenses,exp}: "
        "no time.time/monotonic or datetime.now/utcnow/today (wall "
        "clock), no os.urandom/uuid.uuid1/uuid4/secrets.* (OS "
        "entropy), no module-level random.* calls or seedless "
        "random.Random()/SystemRandom() (unseeded RNG).  "
        "time.perf_counter is allowed for interval telemetry, and "
        "random.Random(seed) with an explicit seed is the sanctioned "
        "randomness source.")
    codes = {
        "wall-clock": "wall-clock read on a payload path",
        "entropy": "OS entropy source on a payload path",
        "global-random": "process-global random module call",
        "unseeded-random": "random.Random()/SystemRandom() without a "
                           "seed argument",
    }

    def run(self, ctx: LintContext) -> List[Finding]:
        findings: List[Finding] = []
        seen = set()
        for subdir in SCOPE:
            for path in ctx.python_files(subdir):
                if path in seen:
                    continue
                seen.add(path)
                tree = ctx.tree(path)
                if tree is None:
                    continue
                findings.extend(self._scan(path, tree))
        return findings

    def _scan(self, path: str, tree: ast.AST) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            code = self._classify(name, node)
            if code is None:
                continue
            findings.append(self.finding(
                path, node.lineno,
                "%s() is nondeterministic on a payload path (%s); "
                "see docs/linting.md#determinism" % (name, code),
                symbol=name, code=code))
        return findings

    def _classify(self, name: str,
                  node: ast.Call) -> Optional[str]:
        if name in WALL_CLOCK:
            return "wall-clock"
        if name in ENTROPY:
            return "entropy"
        if name in GLOBAL_RANDOM:
            return "global-random"
        if name in ("random.Random", "random.SystemRandom",
                    "SystemRandom"):
            if name.endswith("SystemRandom"):
                return "unseeded-random"
            if not node.args and not node.keywords:
                return "unseeded-random"
        return None
