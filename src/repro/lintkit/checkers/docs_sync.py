"""docs-sync: documentation stays pinned to code, one lint family.

Folds the previously separate docs mechanisms — the relative-link /
anchor checker (tests/test_docs.py), the architecture-page coverage
rule, and the stall-taxonomy table sync (tests/test_stall_taxonomy.py
doc assertions) — into one checker:

* every ``[text](target)`` relative link across ``docs/*.md``,
  ``ROADMAP.md`` and ``CHANGES.md`` must resolve, and a ``#fragment``
  must match a heading (GitHub anchor rules) in the target page;
* ``docs/architecture.md`` is the map: it must link every other docs
  page;
* the stall-taxonomy tables after the
  ``<!-- stall-taxonomy:skip -->`` / ``<!-- stall-taxonomy:veto -->``
  markers in ``docs/performance.md`` must list exactly the
  ``SKIP_CLASSES`` / ``VETO_REASONS`` sets defined in
  ``src/repro/pipeline/core.py``.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, List, Optional, Set

from repro.lintkit.astutil import module_str_constants, \
    resolve_str_set
from repro.lintkit.base import Checker, Finding, LintContext

TAXONOMY_SOURCE = "src/repro/pipeline/core.py"
TAXONOMY_PAGE = "docs/performance.md"
TAXONOMY_TABLES = (("SKIP_CLASSES", "<!-- stall-taxonomy:skip -->"),
                   ("VETO_REASONS", "<!-- stall-taxonomy:veto -->"))

#: [text](target) — excluding images and in-code backticked brackets.
LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
ROW_RE = re.compile(r"\|\s*`([a-z-]+)`\s*\|")


def _strip_code(text: str) -> str:
    """Drop fenced code blocks and neutralize inline code spans (links
    inside code samples are illustrative, not navigable).  Inline
    spans are *replaced*, not deleted: a link whose entire text is a
    code span must keep matching LINK_RE."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`]*`", "code", text)


def _github_anchor(heading: str) -> str:
    """GitHub's heading -> anchor transformation."""
    heading = re.sub(r"[`*_]", "", heading.strip().lower())
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


class DocsSyncChecker(Checker):
    """Docs links resolve; pinned tables match the code's sets."""

    name = "docs-sync"
    summary = ("relative links/anchors resolve, architecture.md maps "
               "every page, taxonomy tables match the code")
    contract = (
        "Docs drift is one lint family: (1) every relative link and "
        "#anchor in docs/*.md, ROADMAP.md and CHANGES.md must "
        "resolve (GitHub anchor rules); (2) docs/architecture.md must "
        "link every other docs page; (3) the stall-taxonomy tables "
        "after the <!-- stall-taxonomy:skip/veto --> markers in "
        "docs/performance.md must list exactly the SKIP_CLASSES / "
        "VETO_REASONS frozensets of src/repro/pipeline/core.py.")
    codes = {
        "broken-link": "relative link target does not exist",
        "broken-anchor": "link fragment matches no heading",
        "unmapped-page": "docs page not linked from architecture.md",
        "taxonomy-drift": "taxonomy table out of sync with the code",
        "missing-marker": "taxonomy marker/table missing from the "
                          "docs page",
    }

    def run(self, ctx: LintContext) -> List[Finding]:
        findings: List[Finding] = []
        self._check_links(ctx, findings)
        self._check_coverage(ctx, findings)
        self._check_taxonomy(ctx, findings)
        return findings

    # -- links ------------------------------------------------------------

    def _links_of(self, ctx: LintContext, page: str) -> List[str]:
        return LINK_RE.findall(_strip_code(ctx.read(page)))

    def _anchors_of(self, ctx: LintContext, page: str) -> Set[str]:
        text = re.sub(r"```.*?```", "", ctx.read(page),
                      flags=re.DOTALL)
        return {_github_anchor(h) for h in HEADING_RE.findall(text)}

    def _check_links(self, ctx: LintContext,
                     findings: List[Finding]) -> None:
        for page in ctx.doc_files():
            base_dir = os.path.dirname(ctx.abspath(page))
            for target in self._links_of(ctx, page):
                if re.match(r"^[a-z][a-z0-9+.-]*:", target):
                    continue  # URL scheme
                path_part, _, fragment = target.partition("#")
                if path_part:
                    dest = os.path.normpath(
                        os.path.join(base_dir, path_part))
                else:
                    dest = ctx.abspath(page)  # same-page anchor
                line = self._link_line(ctx, page, target)
                if not os.path.exists(dest):
                    findings.append(self.finding(
                        page, line,
                        "link target %r does not exist" % target,
                        symbol=target, code="broken-link"))
                    continue
                if fragment and dest.endswith(".md"):
                    rel_dest = os.path.relpath(
                        dest, ctx.root).replace(os.sep, "/")
                    if fragment not in self._anchors_of(ctx, rel_dest):
                        findings.append(self.finding(
                            page, line,
                            "link %r names no heading anchor in %s"
                            % (target, rel_dest),
                            symbol=target, code="broken-anchor"))

    def _link_line(self, ctx: LintContext, page: str,
                   target: str) -> int:
        for number, line in enumerate(ctx.read(page).splitlines(), 1):
            if "(%s)" % target in line:
                return number
        return 0

    def _check_coverage(self, ctx: LintContext,
                        findings: List[Finding]) -> None:
        arch = "docs/architecture.md"
        if not ctx.exists(arch):
            findings.append(self.finding(
                arch, 0, "docs/architecture.md is missing — it is the "
                "map that links every docs page",
                code="unmapped-page"))
            return
        linked = {os.path.basename(t.partition("#")[0])
                  for t in self._links_of(ctx, arch)}
        for page in ctx.doc_files():
            name = os.path.basename(page)
            if name == "architecture.md" \
                    or not page.startswith("docs/"):
                continue
            if name not in linked:
                findings.append(self.finding(
                    arch, 0,
                    "docs/architecture.md does not link %s — every "
                    "docs page must be reachable from the map" % name,
                    symbol=name, code="unmapped-page"))

    # -- taxonomy tables --------------------------------------------------

    def _code_sets(self, ctx: LintContext
                   ) -> Optional[Dict[str, Set[str]]]:
        tree = ctx.tree(TAXONOMY_SOURCE) \
            if ctx.exists(TAXONOMY_SOURCE) else None
        if tree is None:
            return None
        constants = module_str_constants(tree)
        sets: Dict[str, Set[str]] = {}
        for node in tree.body:
            if isinstance(node, ast.Assign) \
                    and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and node.targets[0].id in dict(TAXONOMY_TABLES):
                resolved = resolve_str_set(node.value, constants)
                if resolved is not None:
                    sets[node.targets[0].id] = resolved
        return sets

    def _documented(self, ctx: LintContext,
                    marker: str) -> Optional[Set[str]]:
        text = ctx.read(TAXONOMY_PAGE)
        if marker not in text:
            return None
        names: List[str] = []
        in_table = False
        for line in text.split(marker, 1)[1].splitlines():
            row = ROW_RE.match(line)
            if row:
                in_table = True
                names.append(row.group(1))
            elif in_table and not line.startswith("|"):
                break  # table ended
        return set(names) if names else None

    def _check_taxonomy(self, ctx: LintContext,
                        findings: List[Finding]) -> None:
        if not ctx.exists(TAXONOMY_PAGE):
            findings.append(self.finding(
                TAXONOMY_PAGE, 0,
                "taxonomy docs page is missing", code="missing-marker"))
            return
        code_sets = self._code_sets(ctx)
        for set_name, marker in TAXONOMY_TABLES:
            documented = self._documented(ctx, marker)
            if documented is None:
                findings.append(self.finding(
                    TAXONOMY_PAGE, 0,
                    "no %s table found after marker %r"
                    % (set_name, marker),
                    symbol=set_name, code="missing-marker"))
                continue
            in_code = (code_sets or {}).get(set_name)
            if in_code is None:
                findings.append(self.finding(
                    TAXONOMY_SOURCE, 0,
                    "%s is not a statically resolvable frozenset of "
                    "string constants" % set_name,
                    symbol=set_name, code="taxonomy-drift"))
                continue
            for name in sorted(in_code - documented):
                findings.append(self.finding(
                    TAXONOMY_PAGE, 0,
                    "%s member %r is undocumented in the %s table"
                    % (set_name, name, marker),
                    symbol=name, code="taxonomy-drift"))
            for name in sorted(documented - in_code):
                findings.append(self.finding(
                    TAXONOMY_PAGE, 0,
                    "documented %s entry %r no longer exists in the "
                    "code" % (set_name, name),
                    symbol=name, code="taxonomy-drift"))
