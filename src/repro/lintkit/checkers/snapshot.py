"""snapshot-completeness: SnapshotMixin wiring vs captured state.

``repro.snapshot.SnapshotMixin`` captures *everything* an instance
holds except names listed in ``_SNAPSHOT_EXCLUDE`` (nested mixins
recurse in place).  Two structural failure modes produce silently
wrong checkpoints:

* **wiring captured as state** — a ``self.<attr> = <param>`` in
  ``__init__`` that stores an injected collaborator (stats sink,
  config, shared memory, back-reference) without an exclusion entry
  deep-copies the collaborator into every snapshot: restores then
  resurrect stale counters/config and break byte-identity with a cold
  run;
* **stale exclusions** — a ``_SNAPSHOT_EXCLUDE`` name never assigned
  on the class silently stops protecting anything after a rename.

The checker resolves each class's *effective* exclusion tuple
(literal tuples, ``Base._SNAPSHOT_EXCLUDE + (...)`` extensions and
inheritance) and each class's *effective* ``__init__`` (own or
inherited), then cross-checks the two.  Classes that override the
snapshot protocol itself (``snapshot_state``/``restore_state``/
``_state_items``) opt out of the structural analysis.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.lintkit.astutil import base_names, class_methods, \
    const_str_elements, iter_classes
from repro.lintkit.base import Checker, Finding, LintContext

#: Parameter names whose storage on self is wiring by convention.
WIRING_PARAM_NAMES = frozenset({
    "stats", "cfg", "config", "shared", "hierarchy", "memory",
    "defense", "program", "core", "owner", "parent",
})

#: Annotation type names that mark an injected collaborator.
WIRING_TYPE_NAMES = frozenset({
    "Stats", "SystemConfig", "SharedMemory", "CacheConfig",
    "MinionConfig", "DRAMConfig", "TLBConfig", "PredictorConfig",
    "CoreConfig", "Defense", "Simulator",
})


class _ClassInfo:
    def __init__(self, path: str, node: ast.ClassDef) -> None:
        self.path = path
        self.node = node
        self.bases = base_names(node)
        self.methods = class_methods(node)


def _annotation_name(annotation: Optional[ast.AST]) -> Optional[str]:
    """Bare type name of a parameter annotation (unwraps Optional[...]
    by taking the subscripted head's argument when it is a Name)."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) \
            and isinstance(annotation.value, str):
        # String annotation: take the last identifier-ish head.
        text = annotation.value.strip()
        for bracket in ("[", "]"):
            text = text.replace(bracket, " ")
        for token in text.split():
            head = token.split(".")[-1].rstrip(",")
            if head in WIRING_TYPE_NAMES:
                return head
        return None
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Subscript):
        # Optional[X] / "Optional[Stats]": scan the slice.
        for inner in ast.walk(annotation.slice):
            name = _annotation_name(inner)
            if name in WIRING_TYPE_NAMES:
                return name
    return None


class SnapshotChecker(Checker):
    """Injected wiring must be excluded from snapshots, and every
    exclusion must still name a real attribute."""

    name = "snapshot-completeness"
    summary = ("SnapshotMixin __init__ wiring must appear in "
               "_SNAPSHOT_EXCLUDE; exclusions must not go stale")
    contract = (
        "SnapshotMixin captures every instance attribute not named in "
        "_SNAPSHOT_EXCLUDE (repro/snapshot.py).  Any __init__ "
        "assignment that stores an injected collaborator — a "
        "parameter named stats/cfg/config/shared/... or annotated "
        "with a wiring type (Stats, SystemConfig, SharedMemory, "
        "cache/DRAM/TLB configs, Defense) — must be listed in the "
        "class's effective _SNAPSHOT_EXCLUDE, or checkpoints "
        "deep-copy the collaborator and restores resurrect stale "
        "wiring.  Conversely every name a class itself adds to "
        "_SNAPSHOT_EXCLUDE must be assigned as self.<name> somewhere "
        "on the class or its bases.  Classes overriding "
        "snapshot_state/restore_state/_state_items use a bespoke "
        "protocol and are skipped.")
    codes = {
        "unsnapshotted-wiring": "wiring stored in __init__ but missing "
                                "from _SNAPSHOT_EXCLUDE",
        "stale-exclude": "_SNAPSHOT_EXCLUDE entry never assigned on "
                         "the class",
        "unresolved-exclude": "_SNAPSHOT_EXCLUDE expression too "
                              "dynamic for static analysis",
    }

    def run(self, ctx: LintContext) -> List[Finding]:
        index = self._class_index(ctx)
        findings: List[Finding] = []
        for info in index.values():
            if info.path == "src/repro/snapshot.py":
                continue  # the mixin itself
            if not self._is_snapshot_class(info, index):
                continue
            if self._overrides_protocol(info):
                continue
            findings.extend(self._check_class(info, index))
        return findings

    # -- class graph ------------------------------------------------------

    def _class_index(self, ctx: LintContext) -> Dict[str, _ClassInfo]:
        index: Dict[str, _ClassInfo] = {}
        for path in ctx.python_files("src/repro"):
            tree = ctx.tree(path)
            if tree is None:
                continue
            for cls in iter_classes(tree):
                # First definition wins; bare-name collisions are rare
                # enough that a project-wide index stays useful.
                index.setdefault(cls.name, _ClassInfo(path, cls))
        return index

    def _ancestry(self, info: _ClassInfo,
                  index: Dict[str, _ClassInfo]) -> List[_ClassInfo]:
        """``info`` followed by its resolvable bases, nearest first."""
        out, queue, seen = [], [info], set()
        while queue:
            node = queue.pop(0)
            if node.node.name in seen:
                continue
            seen.add(node.node.name)
            out.append(node)
            for base in node.bases:
                if base in index:
                    queue.append(index[base])
        return out

    def _is_snapshot_class(self, info: _ClassInfo,
                           index: Dict[str, _ClassInfo]) -> bool:
        for ancestor in self._ancestry(info, index):
            if "SnapshotMixin" in ancestor.bases:
                return True
        return False

    def _overrides_protocol(self, info: _ClassInfo) -> bool:
        bespoke = {"snapshot_state", "restore_state", "_state_items"}
        return bool(bespoke & set(info.methods))

    # -- exclusion resolution ---------------------------------------------

    def _own_exclude(self, info: _ClassInfo
                     ) -> Tuple[Optional[List[str]],
                                Optional[ast.AST]]:
        """The names this class *itself* adds via _SNAPSHOT_EXCLUDE:
        (added_names, node) — added_names None when unresolvable, node
        None when the class does not set the attribute."""
        for stmt in info.node.body:
            target = None
            value = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                target, value = stmt.targets[0].id, stmt.value
            elif isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name):
                target, value = stmt.target.id, stmt.value
            if target != "_SNAPSHOT_EXCLUDE" or value is None:
                continue
            names = const_str_elements(value)
            if names is not None:
                return names, stmt
            if isinstance(value, ast.BinOp) \
                    and isinstance(value.op, ast.Add):
                # Base._SNAPSHOT_EXCLUDE + ("extra", ...): the base
                # half is inherited anyway; only the right-hand
                # extension is "own".
                extension = const_str_elements(value.right)
                if extension is not None and isinstance(
                        value.left, (ast.Attribute, ast.Name)):
                    return extension, stmt
            return None, stmt
        return [], None

    def _effective_exclude(self, info: _ClassInfo,
                           index: Dict[str, _ClassInfo]
                           ) -> Optional[Set[str]]:
        excluded: Set[str] = set()
        for ancestor in self._ancestry(info, index):
            own, node = self._own_exclude(ancestor)
            if own is None:
                return None  # dynamic expression somewhere in the MRO
            excluded.update(own)
        return excluded

    # -- the check --------------------------------------------------------

    def _effective_init(self, info: _ClassInfo,
                        index: Dict[str, _ClassInfo]
                        ) -> List[Tuple[_ClassInfo, ast.FunctionDef]]:
        """Every ``__init__`` that runs for this class (own plus
        ancestors', since super().__init__ chains assignments)."""
        inits = []
        for ancestor in self._ancestry(info, index):
            init = ancestor.methods.get("__init__")
            if init is not None:
                inits.append((ancestor, init))
        return inits

    def _all_assigned_attrs(self, info: _ClassInfo,
                            index: Dict[str, _ClassInfo]) -> Set[str]:
        assigned: Set[str] = set()
        for ancestor in self._ancestry(info, index):
            for func in ancestor.methods.values():
                for node in ast.walk(func):
                    if isinstance(node, ast.Attribute) \
                            and isinstance(node.value, ast.Name) \
                            and node.value.id == "self" \
                            and isinstance(node.ctx, ast.Store):
                        assigned.add(node.attr)
        return assigned

    def _check_class(self, info: _ClassInfo,
                     index: Dict[str, _ClassInfo]) -> List[Finding]:
        findings: List[Finding] = []
        excluded = self._effective_exclude(info, index)
        if excluded is None:
            own, node = self._own_exclude(info)
            findings.append(self.finding(
                info.path,
                node.lineno if node is not None else info.node.lineno,
                "_SNAPSHOT_EXCLUDE is not a resolvable literal tuple; "
                "the snapshot contract cannot be checked statically",
                symbol=info.node.name, code="unresolved-exclude"))
            return findings

        # (a) wiring stored without an exclusion.
        flagged: Set[str] = set()
        for owner, init in self._effective_init(info, index):
            wiring = self._wiring_params(init)
            for stmt in ast.walk(init):
                if not isinstance(stmt, ast.Assign):
                    continue
                for target in stmt.targets:
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        continue
                    attr = target.attr
                    if attr in excluded or attr in flagged:
                        continue
                    source = self._wiring_source(stmt.value, wiring)
                    if source is None:
                        continue
                    flagged.add(attr)
                    findings.append(self.finding(
                        owner.path, stmt.lineno,
                        "self.%s stores injected wiring (%s) but is "
                        "not in _SNAPSHOT_EXCLUDE; snapshots would "
                        "deep-copy it and restores would resurrect "
                        "stale wiring" % (attr, source),
                        symbol="%s.%s" % (info.node.name, attr),
                        code="unsnapshotted-wiring"))

        # (b) own exclusions that no longer name an attribute.
        own, node = self._own_exclude(info)
        if own and node is not None:
            assigned = self._all_assigned_attrs(info, index)
            for name in own:
                if name not in assigned:
                    findings.append(self.finding(
                        info.path, node.lineno,
                        "_SNAPSHOT_EXCLUDE lists %r but no method of "
                        "%s (or its bases) assigns self.%s — stale "
                        "exclusion" % (name, info.node.name, name),
                        symbol="%s.%s" % (info.node.name, name),
                        code="stale-exclude"))
        return findings

    def _wiring_params(self, init: ast.FunctionDef) -> Dict[str, str]:
        """Parameter name -> reason string for wiring-typed params."""
        wiring: Dict[str, str] = {}
        args = init.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.arg == "self":
                continue
            annotated = _annotation_name(arg.annotation)
            if annotated in WIRING_TYPE_NAMES:
                wiring[arg.arg] = "parameter %r annotated %s" \
                    % (arg.arg, annotated)
            elif arg.arg in WIRING_PARAM_NAMES:
                wiring[arg.arg] = "parameter %r is wiring by naming " \
                    "convention" % arg.arg
        return wiring

    def _wiring_source(self, value: ast.AST,
                       wiring: Dict[str, str]) -> Optional[str]:
        """Why ``value`` aliases injected wiring, or None."""
        if isinstance(value, ast.Name) and value.id in wiring:
            return wiring[value.id]
        if isinstance(value, ast.Attribute):
            node: ast.AST = value
            while isinstance(node, ast.Attribute):
                node = node.value
            if isinstance(node, ast.Name) and node.id in wiring:
                return wiring[node.id] + " (attribute alias)"
        if isinstance(value, ast.BoolOp):  # stats or Stats()
            for part in value.values:
                source = self._wiring_source(part, wiring)
                if source is not None:
                    return source
        return None
