"""proof-purity: stall-proof probes must not mutate simulator state.

The event-driven scheduler (PRs 2/5) trusts the proof/probe family —
``*_proof``, ``probe*``, ``peek``, ``next_event_cycle``,
``_probe_stall_bumps``, ``_probe_present``, ``ifetch_would_hit`` — to
inspect state without changing it: a probe that bumps a counter or
touches an LRU makes the dense differential oracle diverge from the
event path *silently*.  Mutations belong in the returned
``StallProof`` bump/replay payloads, applied by the scheduler once the
skip is committed.

The analysis is a conservative freshness walk: locals assigned from
literals, constructors or arithmetic are *fresh* (a proof may build its
payload in them); ``self``, parameters and anything aliased from an
attribute/subscript chain are *shared*.  Writes through shared roots
and calls of known mutating methods on shared roots are findings.
Nested ``lambda``/``def`` bodies are skipped — deferred replay
thunks are exactly the sanctioned place for mutation.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from repro.lintkit.astutil import class_methods, iter_classes, \
    root_name, target_names
from repro.lintkit.base import Checker, Finding, LintContext

#: Exact names in the family besides the ``*_proof``/``probe*``
#: patterns.  (``ifetch_probe`` is deliberately *not* covered: it
#: drains due fills by documented design before probing.)
FAMILY_NAMES = frozenset({
    "peek", "next_event_cycle", "_probe_stall_bumps", "_probe_present",
    "ifetch_would_hit",
})

#: Method names that mutate their receiver in this codebase (Stats,
#: caches, MSHRs, minions, deques, dicts, sets, lists).
MUTATORS = frozenset({
    "add", "add_fill", "allocate", "append", "appendleft", "attach",
    "bump", "clear", "discard", "drain", "extend", "fill", "insert",
    "invalidate", "mark_ready", "merge", "move_to_end", "pop",
    "popitem", "popleft", "postpone", "push", "register", "remove",
    "restore_state", "set", "setdefault", "steal", "timeleap", "touch",
    "train", "update", "wipe", "wipe_above",
})


def in_family(name: str) -> bool:
    return name.endswith("_proof") or name.startswith("probe") \
        or name in FAMILY_NAMES


class _PurityWalk(ast.NodeVisitor):
    """Freshness-tracking walk over one proof-family function body."""

    def __init__(self, checker: "ProofPurityChecker", path: str,
                 symbol: str, func: ast.FunctionDef) -> None:
        self.checker = checker
        self.path = path
        self.symbol = symbol
        self.func = func
        self.findings: List[Finding] = []
        args = func.args
        params = [a.arg for a in
                  args.posonlyargs + args.args + args.kwonlyargs]
        for extra in (args.vararg, args.kwarg):
            if extra is not None:
                params.append(extra.arg)
        #: name -> True when the local holds a freshly built value.
        self.fresh: Dict[str, bool] = {name: False for name in params}

    # -- freshness lattice ------------------------------------------------

    def _value_is_fresh(self, value: ast.AST) -> bool:
        if isinstance(value, ast.Name):
            return self.fresh.get(value.id, True)  # globals: immutable
        if isinstance(value, (ast.Attribute, ast.Subscript)):
            return False  # alias into the object graph
        if isinstance(value, ast.IfExp):
            return self._value_is_fresh(value.body) \
                and self._value_is_fresh(value.orelse)
        # Literals, constructors, call results, comprehensions,
        # arithmetic: treated as fresh.  (A call *returning* a shared
        # object then mutated through the local escapes this lint; the
        # direct self-rooted chain covers the cases that matter.)
        return True

    def _shared_root(self, node: ast.AST) -> bool:
        root = root_name(node)
        return root is not None and not self.fresh.get(root, True)

    def _bind(self, target: ast.AST, fresh: bool) -> None:
        for leaf in target_names(target):
            if isinstance(leaf, ast.Name):
                self.fresh[leaf.id] = fresh

    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(self.checker.finding(
            self.path, node.lineno, message, symbol=self.symbol,
            code=code))

    # -- skipped scopes ---------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node is not self.func:
            return  # deferred replay thunk: mutation is its job
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return

    # -- statements -------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        fresh = self._value_is_fresh(node.value)
        for target in node.targets:
            for leaf in target_names(target):
                if isinstance(leaf, (ast.Attribute, ast.Subscript)):
                    if self._shared_root(leaf):
                        self._flag(leaf, "attr-assign",
                                   "assignment through shared state "
                                   "(%s) inside a proof-family "
                                   "function" % ast.unparse(leaf))
            self._bind(target, fresh)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, (ast.Attribute, ast.Subscript)) \
                and self._shared_root(node.target):
            self._flag(node.target, "attr-assign",
                       "assignment through shared state (%s) inside a "
                       "proof-family function"
                       % ast.unparse(node.target))
        elif node.value is not None:
            self._bind(node.target, self._value_is_fresh(node.value))
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, (ast.Attribute, ast.Subscript)):
            if self._shared_root(node.target):
                self._flag(node.target, "aug-assign",
                           "in-place mutation of shared state (%s) "
                           "inside a proof-family function"
                           % ast.unparse(node.target))
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)) \
                    and self._shared_root(target):
                self._flag(target, "attr-assign",
                           "deletion of shared state (%s) inside a "
                           "proof-family function"
                           % ast.unparse(target))
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        # Iterating a shared container yields shared items.
        self._bind(node.target, self._value_is_fresh(node.iter))
        self.generic_visit(node)

    def visit_withitem(self, node: ast.withitem) -> None:
        if node.optional_vars is not None:
            self._bind(node.optional_vars,
                       self._value_is_fresh(node.context_expr))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATORS \
                and self._shared_root(func.value):
            self._flag(node, "mutating-call",
                       "call of mutating method %s() on shared state "
                       "(%s) inside a proof-family function"
                       % (func.attr, ast.unparse(func)))
        self.generic_visit(node)


class ProofPurityChecker(Checker):
    """Proof/probe-family methods must be side-effect-free."""

    name = "proof-purity"
    summary = ("stall-proof probes (*_proof, probe*, peek, "
               "next_event_cycle) must not mutate simulator state")
    contract = (
        "The event-driven scheduler skips stall windows on the word of "
        "the proof/probe family (*_proof, probe*, peek, "
        "next_event_cycle, _probe_stall_bumps, _probe_present, "
        "ifetch_would_hit).  Those methods may only read: no attribute "
        "or subscript writes through self/parameters/aliases, no calls "
        "of mutating methods (Stats.add/bump, cache fill/drain, "
        "container append/pop/...) on shared receivers.  Mutations are "
        "returned as StallProof bump handles and replay thunks "
        "(nested lambda/def bodies are exempt) and applied by the "
        "scheduler when the skip commits.")
    codes = {
        "attr-assign": "write through shared state in a proof function",
        "aug-assign": "in-place update of shared state in a proof "
                      "function",
        "mutating-call": "mutating method call on shared state in a "
                         "proof function",
    }

    #: Directories whose classes participate in the stall analysis.
    scope = ("src/repro/pipeline", "src/repro/memory",
             "src/repro/defenses", "src/repro/core", "src/repro/sim")

    def run(self, ctx: LintContext) -> List[Finding]:
        findings: List[Finding] = []
        seen: Set[str] = set()
        for subdir in self.scope:
            for path in ctx.python_files(subdir):
                if path in seen:
                    continue
                seen.add(path)
                tree = ctx.tree(path)
                if tree is None:
                    continue
                for cls in iter_classes(tree):
                    for fname, func in class_methods(cls).items():
                        if not in_family(fname):
                            continue
                        symbol = "%s.%s" % (cls.name, fname)
                        walk = _PurityWalk(self, path, symbol, func)
                        walk.visit(func)
                        findings.extend(walk.findings)
        return findings
