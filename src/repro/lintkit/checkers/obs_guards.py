"""obs-guards: observability hooks stay zero-cost when disabled.

The tracing layer (``docs/observability.md``) promises that a
simulation with no tracer attached pays exactly one attribute check
per potential event: every emit site sits behind ``if self._obs is
not None:`` (or an alias bound from ``._obs``), and the ``_obs``
attribute itself defaults to ``None``.  An unguarded emit would make
every untraced run pay a method call — and, worse, would crash the
compiled hot core when ``_obs`` is ``None``.

Structurally, inside the per-cycle hot modules:

* every call to an obs emit method (``emit_*``/``on_cycle``) on an
  ``._obs`` attribute or an obs alias is lexically inside an ``if``
  whose test references ``_obs`` (directly or through the alias);
* the walk actually reaches the hooked hot modules, so a source
  layout move cannot silently empty the scan.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.lintkit.base import Checker, Finding, LintContext

#: Methods the tracing layer exposes to hot paths.  ``on_cycle`` is the
#: per-cycle sampler tick; everything else appends one event.
EMIT_METHODS = frozenset({
    "emit_stage", "emit_squash", "emit_mem", "emit_skip",
    "emit_marker", "on_cycle",
})

#: The modules holding (or allowed to hold) obs hooks on per-cycle
#: paths.  The scan must keep reaching each of them.
HOT_MODULES = (
    "src/repro/pipeline/hotcore.py",
    "src/repro/pipeline/core.py",
    "src/repro/memory/cache.py",
    "src/repro/memory/mshr.py",
    "src/repro/memory/hierarchy.py",
    "src/repro/sim/simulator.py",
)


def _mentions_obs(node: ast.AST, aliases: Set[str]) -> bool:
    """Does this expression reference ``._obs`` or an obs alias?"""
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and child.attr == "_obs":
            return True
        if isinstance(child, ast.Name) and child.id in aliases:
            return True
    return False


class _GuardScan(ast.NodeVisitor):
    """Emit-call sites that are not under an ``_obs`` guard.

    Tracks, per enclosing function, the names bound from an ``._obs``
    attribute (``obs = self._obs``) and whether the current lexical
    position is inside an ``if`` whose test mentions ``_obs`` or an
    alias.  ``else`` branches of a guard are *not* guarded.
    """

    def __init__(self) -> None:
        self.unguarded: List[int] = []
        self._aliases: Set[str] = set()
        self._guard_depth = 0

    def _visit_func(self, node: ast.FunctionDef) -> None:
        saved_aliases, saved_depth = self._aliases, self._guard_depth
        self._aliases, self._guard_depth = set(), 0
        self.generic_visit(node)
        self._aliases, self._guard_depth = saved_aliases, saved_depth

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def visit_Assign(self, node: ast.Assign) -> None:
        if isinstance(node.value, ast.Attribute) and \
                node.value.attr == "_obs":
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._aliases.add(target.id)
        self.generic_visit(node)

    def visit_If(self, node: ast.If) -> None:
        guards = _mentions_obs(node.test, self._aliases)
        self.visit(node.test)
        if guards:
            self._guard_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if guards:
            self._guard_depth -= 1
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) \
                and func.attr in EMIT_METHODS \
                and _mentions_obs(func.value, self._aliases) \
                and self._guard_depth == 0:
            self.unguarded.append(node.lineno)
        self.generic_visit(node)


class ObsGuardsChecker(Checker):
    """Tracing hooks cost one ``is not None`` check when disabled."""

    name = "obs-guards"
    summary = ("every obs emit on a hot path sits behind an "
               "`if ... _obs is not None` guard")
    contract = (
        "An untraced simulation pays exactly one attribute check per "
        "potential trace event: `_obs` defaults to None and every "
        "emit_*/on_cycle call in the per-cycle modules (pipeline "
        "hot core, memory system, simulator loop) is lexically inside "
        "an `if` whose test references `_obs` — directly or through a "
        "local alias bound from it.  The scan must keep reaching the "
        "hooked hot modules; a layout move that empties it is itself "
        "a finding.")
    codes = {
        "unguarded-emit": "obs emit call not behind an `_obs is not "
                          "None` guard on a hot path",
        "missing-hot-module": "the scan no longer reaches a known "
                              "hooked hot-path module",
    }

    def run(self, ctx: LintContext) -> List[Finding]:
        findings: List[Finding] = []
        seen = set()
        targets = set(HOT_MODULES)
        for path in ctx.python_files("src/repro"):
            if path not in targets:
                continue
            seen.add(path)
            tree = ctx.tree(path)
            if tree is None:
                continue
            scan = _GuardScan()
            scan.visit(tree)
            for line in scan.unguarded:
                findings.append(self.finding(
                    path, line,
                    "obs emit call outside an `_obs is not None` "
                    "guard — untraced runs must pay one attribute "
                    "check, not a method call", code="unguarded-emit"))
        for expected in HOT_MODULES:
            if expected not in seen:
                findings.append(self.finding(
                    expected, 0,
                    "hooked hot-path module not reached by the "
                    "obs-guard scan — source layout moved without "
                    "updating the lint", code="missing-hot-module"))
        return findings
