"""digest-stability: new config fields must not fork cache digests.

``CACHE_SCHEMA_VERSION`` froze the v1 cache-token layout; the golden
token test (tests/test_registry.py) pins its exact bytes.  A config
field added *after* that freeze enters every token — silently forking
the digest of every existing cached/stored result — unless it is
listed in ``_POST_V1_CONFIG_DEFAULTS`` (``repro/exp/spec.py``), which
strips it while it holds its default.

This checker walks the ``src/repro/config.py`` dataclass graph from
``SystemConfig``, diffs the dotted leaf paths against the embedded v1
field set (the golden token's exact config keys), and requires every
post-v1 path to appear as ``config.<path>`` in
``_POST_V1_CONFIG_DEFAULTS`` — and every ``config.*`` entry there to
still name a real field.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.lintkit.base import Checker, Finding, LintContext

CONFIG_PATH = "src/repro/config.py"
SPEC_PATH = "src/repro/exp/spec.py"
DEFAULTS_NAME = "_POST_V1_CONFIG_DEFAULTS"

#: The exact config leaf paths of the v1 golden cache token
#: (GOLDEN_TOKEN_PR2 in tests/test_registry.py).  Frozen: editing this
#: set means deliberately re-deriving it from the golden token, never
#: syncing it to config.py (that would defeat the check).
V1_CONFIG_PATHS = frozenset({
    "cores",
    "core.fetch_width", "core.issue_width", "core.commit_width",
    "core.rob_entries", "core.iq_entries", "core.lq_entries",
    "core.sq_entries", "core.int_alus", "core.fp_alus",
    "core.muldiv_units", "core.mispredict_penalty",
    "core.strict_fu_order",
    "core.predictor.local_entries", "core.predictor.global_entries",
    "core.predictor.choice_entries", "core.predictor.btb_entries",
    "core.predictor.ras_entries",
    "l1i.size_bytes", "l1i.assoc", "l1i.latency", "l1i.mshrs",
    "l1i.line_bytes",
    "l1d.size_bytes", "l1d.assoc", "l1d.latency", "l1d.mshrs",
    "l1d.line_bytes",
    "l2.size_bytes", "l2.assoc", "l2.latency", "l2.mshrs",
    "l2.line_bytes",
    "dram.base_latency", "dram.row_hit_latency", "dram.row_bits",
    "dram.banks", "dram.open_page", "dram.nonspec_open_only",
    "minion_d.size_bytes", "minion_d.assoc", "minion_d.async_reload",
    "minion_d.timeless", "minion_d.line_bytes",
    "minion_i.size_bytes", "minion_i.assoc", "minion_i.async_reload",
    "minion_i.timeless", "minion_i.line_bytes",
    "l2_prefetcher", "prefetcher_rpt_entries", "model_tlb",
    "tlb.l1_entries", "tlb.l1_assoc", "tlb.l2_entries",
    "tlb.l2_assoc", "tlb.l2_latency", "tlb.walk_latency",
    "tlb.page_bits", "tlb.minion_entries", "tlb.minion_assoc",
    "iprefetch_into_minion", "l2_mshr_partitioning",
})


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for decorator in cls.decorator_list:
        node = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        name = node.attr if isinstance(node, ast.Attribute) \
            else getattr(node, "id", None)
        if name == "dataclass":
            return True
    return False


def _annotation_head(annotation: ast.AST) -> Optional[str]:
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Constant) \
            and isinstance(annotation.value, str):
        return annotation.value.split("[")[0].strip()
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    return None


def walk_config_leaves(tree: ast.Module
                       ) -> Optional[Tuple[Set[str], Dict[str, int]]]:
    """Dotted leaf paths of the ``SystemConfig`` dataclass graph.

    Returns ``(leaves, path -> lineno)``, or None when the module has
    no ``SystemConfig`` dataclass.  Shared by this checker and
    ``fuzz-bounds`` so both agree on what a config leaf is."""
    classes: Dict[str, ast.ClassDef] = {
        node.name: node for node in tree.body
        if isinstance(node, ast.ClassDef) and _is_dataclass(node)}
    if "SystemConfig" not in classes:
        return None
    leaves: Set[str] = set()
    lines: Dict[str, int] = {}
    _walk_dataclass(classes, "SystemConfig", "", leaves, lines, set())
    return leaves, lines


def _walk_dataclass(classes: Dict[str, ast.ClassDef], name: str,
                    prefix: str, leaves: Set[str],
                    lines: Dict[str, int],
                    visiting: Set[str]) -> None:
    if name in visiting:  # defensive: cyclic config graph
        return
    visiting = visiting | {name}
    for stmt in classes[name].body:
        if not isinstance(stmt, ast.AnnAssign) \
                or not isinstance(stmt.target, ast.Name):
            continue
        head = _annotation_head(stmt.annotation)
        if head == "ClassVar":
            continue
        field_path = prefix + stmt.target.id
        if head in classes:
            _walk_dataclass(classes, head, field_path + ".",
                            leaves, lines, visiting)
        else:
            leaves.add(field_path)
            lines[field_path] = stmt.lineno


class DigestStabilityChecker(Checker):
    """Post-v1 config fields must be digest-neutral at their default."""

    name = "digest-stability"
    summary = ("config fields absent from the v1 golden token must be "
               "stripped by _POST_V1_CONFIG_DEFAULTS")
    contract = (
        "The v1 cache token froze the config key set (golden token in "
        "tests/test_registry.py).  Every dotted leaf field reachable "
        "from SystemConfig in src/repro/config.py that is not part of "
        "that v1 set must appear as ('config.<path>', <default>) in "
        "_POST_V1_CONFIG_DEFAULTS (src/repro/exp/spec.py) so "
        "default-holding points keep their pre-existing digests; "
        "conversely every config.* entry there must still name a real "
        "field, and no v1 field may disappear without a deliberate "
        "schema bump.")
    codes = {
        "missing-post-v1-default": "post-v1 config field not stripped "
                                   "at its default",
        "stale-post-v1-entry": "_POST_V1_CONFIG_DEFAULTS names a "
                               "nonexistent config field",
        "missing-v1-field": "a v1 golden-token field vanished from "
                            "config.py",
        "unparseable": "config.py/spec.py structure not statically "
                       "resolvable",
    }

    def run(self, ctx: LintContext) -> List[Finding]:
        findings: List[Finding] = []
        current = self._config_leaves(ctx, findings)
        defaults = self._post_v1_entries(ctx, findings)
        if current is None or defaults is None:
            return findings
        for path in sorted(current - V1_CONFIG_PATHS):
            if "config." + path not in defaults:
                findings.append(self.finding(
                    CONFIG_PATH, self._field_line(ctx, path),
                    "config field %r is not in the v1 golden token "
                    "and not stripped by %s — adding it forks the "
                    "digest of every cached result; add "
                    "(\"config.%s\", <default>) in %s"
                    % (path, DEFAULTS_NAME, path, SPEC_PATH),
                    symbol=path, code="missing-post-v1-default"))
        for entry in sorted(defaults):
            if not entry.startswith("config."):
                continue  # engine-policy token fields, not config
            if entry[len("config."):] not in current:
                findings.append(self.finding(
                    SPEC_PATH, defaults[entry],
                    "%s entry %r names no field reachable from "
                    "SystemConfig — stale strip rule"
                    % (DEFAULTS_NAME, entry),
                    symbol=entry, code="stale-post-v1-entry"))
        for path in sorted(V1_CONFIG_PATHS - current):
            findings.append(self.finding(
                CONFIG_PATH, 0,
                "v1 golden-token field %r no longer exists in the "
                "config dataclasses — renames/removals break every "
                "stored digest and need a deliberate "
                "CACHE_SCHEMA_VERSION bump" % path,
                symbol=path, code="missing-v1-field"))
        return findings

    # -- config graph -----------------------------------------------------

    def _config_leaves(self, ctx: LintContext,
                       findings: List[Finding]) -> Optional[Set[str]]:
        tree = ctx.tree(CONFIG_PATH) if ctx.exists(CONFIG_PATH) \
            else None
        if tree is None:
            findings.append(self.finding(
                CONFIG_PATH, 0, "cannot parse the config module",
                code="unparseable"))
            return None
        walked = walk_config_leaves(tree)
        if walked is None:
            findings.append(self.finding(
                CONFIG_PATH, 0,
                "no SystemConfig dataclass found", code="unparseable"))
            return None
        leaves, self._lines = walked
        return leaves

    def _field_line(self, ctx: LintContext, path: str) -> int:
        return getattr(self, "_lines", {}).get(path, 0)

    # -- spec.py defaults table -------------------------------------------

    def _post_v1_entries(self, ctx: LintContext,
                         findings: List[Finding]
                         ) -> Optional[Dict[str, int]]:
        tree = ctx.tree(SPEC_PATH) if ctx.exists(SPEC_PATH) else None
        if tree is None:
            findings.append(self.finding(
                SPEC_PATH, 0, "cannot parse the experiment spec "
                "module", code="unparseable"))
            return None
        for node in tree.body:
            target = None
            value = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                target, value = node.targets[0].id, node.value
            elif isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Name):
                target, value = node.target.id, node.value
            if target != DEFAULTS_NAME or value is None:
                continue
            if not isinstance(value, (ast.Tuple, ast.List)):
                break
            entries: Dict[str, int] = {}
            for element in value.elts:
                if isinstance(element, (ast.Tuple, ast.List)) \
                        and element.elts \
                        and isinstance(element.elts[0], ast.Constant) \
                        and isinstance(element.elts[0].value, str):
                    entries[element.elts[0].value] = element.lineno
                else:
                    findings.append(self.finding(
                        SPEC_PATH, element.lineno,
                        "%s entry is not a (\"path\", default) "
                        "literal" % DEFAULTS_NAME, code="unparseable"))
            return entries
        findings.append(self.finding(
            SPEC_PATH, 0,
            "%s is missing or not a literal tuple of (path, default) "
            "pairs" % DEFAULTS_NAME, code="unparseable"))
        return None
