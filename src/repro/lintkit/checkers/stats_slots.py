"""stats-slots: the hot path stays on interned stat handles.

The per-cycle loop (and every component it drives) bumps counters
through integer handles resolved once at construction — never through
the string-keyed ``Stats.bump`` — and never re-interns on a hot path.
This checker generalizes the original tests/test_hotloop_lint.py AST
walk into the lint framework:

* ``.bump(...)`` appears nowhere under ``src/repro`` except inside
  ``repro/analysis/`` (whose string-keyed view is the cold-path API
  for reports, figures and tests);
* ``.handle(...)`` is only called from ``__init__`` methods
  (``analysis/stats.py`` excepted) — interning happens at
  construction time;
* the walk actually reaches the per-cycle modules it exists for, so a
  source-layout move cannot silently empty the scan.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lintkit.base import Checker, Finding, LintContext

#: The string-keyed view lives here; everything under it is cold path.
EXEMPT_BUMP_PREFIX = "src/repro/analysis/"
EXEMPT_HANDLE = frozenset({"src/repro/analysis/stats.py"})

#: The per-cycle files this lint exists for: if the walk misses any of
#: them the scan has gone vacuous.
HOT_MODULES = (
    "src/repro/pipeline/hotcore.py",
    "src/repro/memory/cache.py",
    "src/repro/memory/mshr.py",
    "src/repro/memory/hierarchy.py",
)


class _CallScan(ast.NodeVisitor):
    """Method-call sites of interest with their enclosing function."""

    def __init__(self) -> None:
        self.stack: List[str] = []
        self.bumps: List[int] = []
        self.handles_outside_init: List[int] = []

    def _visit_func(self, node: ast.FunctionDef) -> None:
        self.stack.append(node.name)
        self.generic_visit(node)
        self.stack.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "bump":
                self.bumps.append(node.lineno)
            elif func.attr == "handle":
                if "__init__" not in self.stack:
                    self.handles_outside_init.append(node.lineno)
        self.generic_visit(node)


class StatsSlotsChecker(Checker):
    """Hot-path counters go through interned slots, not string keys."""

    name = "stats-slots"
    summary = ("no Stats.bump outside analysis/, no handle() interning "
               "outside __init__")
    contract = (
        "Hot-path counters pay no string hashing: Stats.handle(name) "
        "is called once at component construction (__init__) and the "
        "per-cycle path uses stats.add(slot).  Structurally: no "
        ".bump(...) call anywhere under src/repro except repro/"
        "analysis/ (the cold-path string-keyed view), and no "
        ".handle(...) call outside an __init__ (analysis/stats.py "
        "excepted).  The scan must keep reaching pipeline/hotcore.py "
        "and the memory-system modules; a layout move that empties it "
        "is itself a finding.")
    codes = {
        "string-bump": "string-keyed Stats.bump() on a simulation path",
        "late-intern": "Stats.handle() outside __init__",
        "missing-hot-module": "the scan no longer reaches a known "
                              "hot-path module",
    }

    def run(self, ctx: LintContext) -> List[Finding]:
        findings: List[Finding] = []
        seen = set()
        for path in ctx.python_files("src/repro"):
            seen.add(path)
            tree = ctx.tree(path)
            if tree is None:
                continue
            scan = _CallScan()
            scan.visit(tree)
            if not path.startswith(EXEMPT_BUMP_PREFIX):
                for line in scan.bumps:
                    findings.append(self.finding(
                        path, line,
                        "string-keyed Stats.bump() on a simulation "
                        "path — intern a handle in __init__ and use "
                        "stats.add(slot)", code="string-bump"))
            if path not in EXEMPT_HANDLE:
                for line in scan.handles_outside_init:
                    findings.append(self.finding(
                        path, line,
                        "Stats.handle() outside __init__ — interning "
                        "belongs at construction, not on a per-cycle "
                        "path", code="late-intern"))
        for expected in HOT_MODULES:
            if expected not in seen:
                findings.append(self.finding(
                    expected, 0,
                    "hot-path module not reached by the stats-slot "
                    "scan — source layout moved without updating the "
                    "lint", code="missing-hot-module"))
        return findings
