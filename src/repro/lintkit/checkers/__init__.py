"""Builtin lint checkers, registered as ``lint`` components.

Importing this module populates the ``lint`` registry — it is the
``_BUILTIN_MODULES`` target for the kind, so ``repro lint``,
``repro list lints`` and ``repro describe <checker>`` all resolve
through the same typed-registry seam as defenses and workloads.
Plugins (``REPRO_PLUGINS`` / ``repro_plugins.py``) add checkers with::

    from repro.lintkit import LINTS, Checker

    @LINTS.register("my-invariant", tags=("plugin",),
                    metadata={"contract": "..."})
    class MyChecker(Checker):
        ...
"""

from __future__ import annotations

from repro.registry.core import Registry

from repro.lintkit.checkers.determinism import DeterminismChecker
from repro.lintkit.checkers.digest import DigestStabilityChecker
from repro.lintkit.checkers.docs_sync import DocsSyncChecker
from repro.lintkit.checkers.fuzz_bounds import FuzzBoundsChecker
from repro.lintkit.checkers.obs_guards import ObsGuardsChecker
from repro.lintkit.checkers.purity import ProofPurityChecker
from repro.lintkit.checkers.snapshot import SnapshotChecker
from repro.lintkit.checkers.stats_slots import StatsSlotsChecker

#: The ``lint`` component registry: checker name -> checker class.
LINTS: Registry = Registry("lint")

for _cls in (SnapshotChecker, ProofPurityChecker, StatsSlotsChecker,
             DigestStabilityChecker, DeterminismChecker,
             DocsSyncChecker, ObsGuardsChecker, FuzzBoundsChecker):
    LINTS.add(_cls.name, _cls, tags=("builtin",),
              summary=_cls.summary,
              metadata={"contract": _cls.contract,
                        "codes": dict(_cls.codes)})

__all__ = [
    "DeterminismChecker",
    "DigestStabilityChecker",
    "DocsSyncChecker",
    "FuzzBoundsChecker",
    "LINTS",
    "ObsGuardsChecker",
    "ProofPurityChecker",
    "SnapshotChecker",
    "StatsSlotsChecker",
]
