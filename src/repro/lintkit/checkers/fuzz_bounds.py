"""fuzz-bounds: every post-v1 config leaf must be fuzzable.

The differential fuzzer (``repro fuzz``, ``docs/fuzzing.md``) draws
config overrides from the ``BOUNDS`` table in
``src/repro/fuzz/grammar.py``.  A config knob added without a bounds
entry is silently invisible to the fuzzer — new machine behaviour
ships with zero generative coverage.  The v1 leaves predate the
fuzzer and are grandfathered (most have entries anyway); everything
added after the digest freeze must be listed.

This checker reuses the ``SystemConfig`` dataclass-graph walker from
``digest-stability``, so the two checkers — and the runtime — agree
on what a config leaf is.  It also rejects stale ``BOUNDS`` keys that
no longer name a real leaf: a renamed field must not leave the fuzzer
drawing overrides that ``apply_overrides`` will reject at run time.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.lintkit.base import Checker, Finding, LintContext
from repro.lintkit.checkers.digest import (CONFIG_PATH,
                                           V1_CONFIG_PATHS,
                                           walk_config_leaves)

GRAMMAR_PATH = "src/repro/fuzz/grammar.py"
BOUNDS_NAME = "BOUNDS"


class FuzzBoundsChecker(Checker):
    """Post-v1 config leaves need a fuzz BOUNDS entry."""

    name = "fuzz-bounds"
    summary = ("config leaves added after the v1 digest freeze must "
               "have a BOUNDS entry in the fuzz grammar")
    contract = (
        "Every dotted leaf field reachable from SystemConfig in "
        "src/repro/config.py that is not part of the frozen v1 "
        "golden-token set must appear as a key of the BOUNDS dict "
        "literal in src/repro/fuzz/grammar.py, so `repro fuzz` can "
        "draw overrides for it; conversely every BOUNDS key must "
        "still name a real config leaf.  Values may be literal menus "
        "or RegistryChoice(kind) markers.")
    codes = {
        "missing-bounds": "post-v1 config leaf has no fuzz BOUNDS "
                          "entry",
        "stale-bounds": "BOUNDS names a nonexistent config leaf",
        "unparseable": "config.py/grammar.py structure not "
                       "statically resolvable",
    }

    def run(self, ctx: LintContext) -> List[Finding]:
        findings: List[Finding] = []
        leaves_lines = self._leaves(ctx, findings)
        bounds = self._bounds_keys(ctx, findings)
        if leaves_lines is None or bounds is None:
            return findings
        leaves, lines = leaves_lines
        for path in sorted(leaves - V1_CONFIG_PATHS):
            if path not in bounds:
                findings.append(self.finding(
                    CONFIG_PATH, lines.get(path, 0),
                    "config leaf %r is invisible to the fuzzer — add "
                    "a %r entry (value menu or RegistryChoice) in %s"
                    % (path, path, GRAMMAR_PATH),
                    symbol=path, code="missing-bounds"))
        for path in sorted(bounds):
            if path not in leaves:
                findings.append(self.finding(
                    GRAMMAR_PATH, bounds[path],
                    "BOUNDS key %r names no field reachable from "
                    "SystemConfig — the fuzzer would draw overrides "
                    "the engine rejects" % path,
                    symbol=path, code="stale-bounds"))
        return findings

    def _leaves(self, ctx: LintContext, findings: List[Finding]):
        tree = ctx.tree(CONFIG_PATH) if ctx.exists(CONFIG_PATH) \
            else None
        walked = walk_config_leaves(tree) if tree is not None else None
        if walked is None:
            findings.append(self.finding(
                CONFIG_PATH, 0,
                "cannot resolve the SystemConfig dataclass graph",
                code="unparseable"))
            return None
        return walked

    def _bounds_keys(self, ctx: LintContext,
                     findings: List[Finding]
                     ) -> Optional[Dict[str, int]]:
        tree = ctx.tree(GRAMMAR_PATH) if ctx.exists(GRAMMAR_PATH) \
            else None
        if tree is None:
            findings.append(self.finding(
                GRAMMAR_PATH, 0, "cannot parse the fuzz grammar "
                "module", code="unparseable"))
            return None
        for node in tree.body:
            target = None
            value = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                target, value = node.targets[0].id, node.value
            elif isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Name):
                target, value = node.target.id, node.value
            if target != BOUNDS_NAME or value is None:
                continue
            if not isinstance(value, ast.Dict):
                break
            keys: Dict[str, int] = {}
            for key in value.keys:
                if isinstance(key, ast.Constant) \
                        and isinstance(key.value, str):
                    keys[key.value] = key.lineno
                else:
                    findings.append(self.finding(
                        GRAMMAR_PATH, getattr(key, "lineno", 0),
                        "%s key is not a string literal — the "
                        "bounds table must be statically enumerable"
                        % BOUNDS_NAME, code="unparseable"))
            return keys
        findings.append(self.finding(
            GRAMMAR_PATH, 0,
            "%s is missing or not a dict literal" % BOUNDS_NAME,
            code="unparseable"))
        return None
