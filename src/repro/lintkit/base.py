"""Core types of the static-invariant lint framework.

A *checker* is a registered component (kind ``lint``) that walks the
repository's Python ASTs (and docs) through a shared
:class:`LintContext` and reports :class:`Finding`\\ s — structural
violations of the simulator's correctness contracts (snapshot
completeness, proof purity, stats-slot discipline, digest stability,
determinism, docs sync).  Checkers never execute repository code: the
whole analysis is source-level, so it is safe to run on a broken tree
and cheap enough for a gating CI step.

See ``docs/linting.md`` for the checker catalogue and the plugin
protocol.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Finding:
    """One violation reported by a checker.

    ``path`` is repository-relative.  ``symbol`` names the enclosing
    class/function when meaningful and ``code`` the checker-specific
    violation class (one checker can enforce several related rules).
    :meth:`fingerprint` deliberately omits the line number so baseline
    suppressions survive unrelated edits that shift lines.
    """

    checker: str
    path: str
    line: int
    message: str
    symbol: str = ""
    code: str = ""

    def fingerprint(self) -> str:
        return "%s:%s:%s:%s" % (self.checker, self.path, self.symbol,
                                self.code)

    def as_dict(self) -> Dict[str, object]:
        return {
            "checker": self.checker,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "code": self.code,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }

    def render(self) -> str:
        where = "%s:%d" % (self.path, self.line)
        label = self.checker if not self.code \
            else "%s/%s" % (self.checker, self.code)
        prefix = "%s: [%s]" % (where, label)
        if self.symbol:
            prefix += " %s:" % self.symbol
        return "%s %s" % (prefix, self.message)


class LintContext:
    """Shared, cached view of the repository for one lint run.

    Parsing is memoized per path, so checkers that walk overlapping
    file sets (most of them) pay for each parse once.  Files that fail
    to parse surface as ``syntax-error`` findings via
    :meth:`parse_errors` instead of raising, so one broken file cannot
    hide every other finding.
    """

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        self._texts: Dict[str, str] = {}
        self._trees: Dict[str, Optional[ast.AST]] = {}
        self._errors: List[Tuple[str, int, str]] = []

    # -- file access ------------------------------------------------------

    def abspath(self, relpath: str) -> str:
        return os.path.join(self.root, *relpath.split("/"))

    def exists(self, relpath: str) -> bool:
        return os.path.exists(self.abspath(relpath))

    def read(self, relpath: str) -> str:
        if relpath not in self._texts:
            with open(self.abspath(relpath), "r",
                      encoding="utf-8") as handle:
                self._texts[relpath] = handle.read()
        return self._texts[relpath]

    def tree(self, relpath: str) -> Optional[ast.AST]:
        """The parsed AST of ``relpath`` (``None`` on syntax error)."""
        if relpath not in self._trees:
            try:
                self._trees[relpath] = ast.parse(self.read(relpath),
                                                 filename=relpath)
            except SyntaxError as exc:
                self._trees[relpath] = None
                self._errors.append((relpath, exc.lineno or 0,
                                     exc.msg or "syntax error"))
        return self._trees[relpath]

    def parse_errors(self) -> List[Tuple[str, int, str]]:
        return list(self._errors)

    # -- enumeration ------------------------------------------------------

    def python_files(self, subdir: str = "src/repro"
                     ) -> List[str]:
        """Sorted repo-relative paths of ``*.py`` under ``subdir``."""
        base = self.abspath(subdir)
        found = []
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = sorted(d for d in dirnames
                                 if d != "__pycache__")
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, name),
                                      self.root)
                found.append(rel.replace(os.sep, "/"))
        return sorted(found)

    def doc_files(self) -> List[str]:
        """The markdown surface the docs checks cover."""
        pages = []
        docs = self.abspath("docs")
        if os.path.isdir(docs):
            pages.extend("docs/" + name for name in os.listdir(docs)
                         if name.endswith(".md"))
        pages.extend(name for name in ("ROADMAP.md", "CHANGES.md")
                     if self.exists(name))
        return sorted(pages)


class Checker:
    """Base class for lint checkers (registered in ``LINTS``).

    Subclasses set ``name``/``summary``/``contract`` and implement
    :meth:`run`.  ``contract`` is the human-readable statement of the
    invariant being enforced; ``repro list lints`` and
    ``repro describe <name>`` surface it via :meth:`describe`.
    """

    name: str = ""
    summary: str = ""
    #: Full statement of the enforced invariant (multi-line ok).
    contract: str = ""
    #: Checker-specific finding codes -> one-line meanings.
    codes: Dict[str, str] = {}

    def run(self, ctx: LintContext) -> List[Finding]:
        raise NotImplementedError

    def finding(self, path: str, line: int, message: str,
                symbol: str = "", code: str = "") -> Finding:
        return Finding(checker=self.name, path=path, line=line,
                       message=message, symbol=symbol, code=code)

    @classmethod
    def describe(cls) -> Dict[str, object]:
        return {
            "name": cls.name,
            "summary": cls.summary,
            "contract": cls.contract,
            "codes": dict(cls.codes),
        }


def detect_root(start: Optional[str] = None) -> str:
    """Locate the repository root: the nearest ancestor of ``start``
    (default: cwd) holding ``src/repro``; falls back to the installed
    package's grandparent so ``repro lint`` works from anywhere."""
    probe = os.path.abspath(start or os.getcwd())
    while True:
        if os.path.isdir(os.path.join(probe, "src", "repro")):
            return probe
        parent = os.path.dirname(probe)
        if parent == probe:
            break
        probe = parent
    import repro
    pkg = os.path.dirname(os.path.abspath(repro.__file__))
    return os.path.dirname(os.path.dirname(pkg))


__all__ = ["Checker", "Finding", "LintContext", "detect_root"]
