"""Baseline suppressions: reviewed, justified exceptions to the lint.

``lint-baseline.toml`` at the repository root holds ``[[suppress]]``
tables::

    [[suppress]]
    checker = "determinism"
    path = "src/repro/exp/cache.py"
    code = "wall-clock"
    symbol = "time.time"        # optional narrowing
    reason = "entry-age stamp for prune cutoffs; never in payloads"

A finding is suppressed when an entry matches its checker, path and
code (and symbol, when the entry narrows by one).  ``reason`` is
mandatory: a suppression without a recorded justification is itself an
error — the baseline is a reviewed ledger, not an off switch.

Parsing uses :mod:`tomllib` when available (py>=3.11) and falls back
to a minimal reader for exactly the subset above on older
interpreters, so the lint gate runs on the whole CI matrix without
new dependencies.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.lintkit.base import Finding

DEFAULT_BASELINE = "lint-baseline.toml"

_FIELDS = ("checker", "path", "code", "symbol", "reason")


class BaselineError(ValueError):
    """A malformed or unjustified baseline file."""


class Suppression:
    """One reviewed ``[[suppress]]`` entry."""

    def __init__(self, table: Dict[str, str], source: str,
                 line: int) -> None:
        unknown = sorted(set(table) - set(_FIELDS))
        if unknown:
            raise BaselineError(
                "%s:%d: unknown suppression key%s %s (known: %s)"
                % (source, line, "s" if len(unknown) > 1 else "",
                   ", ".join(unknown), ", ".join(_FIELDS)))
        for required in ("checker", "path", "reason"):
            if not table.get(required):
                raise BaselineError(
                    "%s:%d: suppression missing required %r — every "
                    "baseline entry needs a checker, a path and a "
                    "one-line justification"
                    % (source, line, required))
        self.checker = table["checker"]
        self.path = table["path"]
        self.code = table.get("code", "")
        self.symbol = table.get("symbol", "")
        self.reason = table["reason"]
        self.source = source
        self.line = line
        self.used = False

    def matches(self, finding: Finding) -> bool:
        if finding.checker != self.checker:
            return False
        if finding.path != self.path:
            return False
        if self.code and finding.code != self.code:
            return False
        if self.symbol and finding.symbol != self.symbol:
            return False
        return True

    def describe(self) -> Dict[str, object]:
        return {
            "checker": self.checker,
            "path": self.path,
            "code": self.code,
            "symbol": self.symbol,
            "reason": self.reason,
            "line": self.line,
        }


def _parse_toml_text(text: str, source: str) -> List[Suppression]:
    try:
        import tomllib
    except ImportError:  # py3.10: minimal fallback reader below
        return _parse_minimal(text, source)
    try:
        payload = tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise BaselineError("%s: %s" % (source, exc))
    out = []
    for table in payload.get("suppress", []):
        if not isinstance(table, dict) or not all(
                isinstance(v, str) for v in table.values()):
            raise BaselineError(
                "%s: [[suppress]] values must all be strings" % source)
        out.append(Suppression(table, source, 0))
    return out


def _parse_minimal(text: str, source: str) -> List[Suppression]:
    """Fallback TOML reader for the emitted subset: ``[[suppress]]``
    headers and ``key = "value"`` lines, comments and blanks."""
    out: List[Suppression] = []
    current: Optional[Tuple[Dict[str, str], int]] = None

    def flush() -> None:
        if current is not None:
            out.append(Suppression(current[0], source, current[1]))

    for number, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line == "[[suppress]]":
            flush()
            current = ({}, number)
            continue
        if "=" in line and current is not None:
            key, _, value = line.partition("=")
            key = key.strip()
            value = value.strip()
            if value.startswith('"') and value.count('"') >= 2:
                value = value[1:value.index('"', 1)]
            else:
                raise BaselineError(
                    "%s:%d: expected key = \"string\" (fallback "
                    "parser accepts only quoted strings)"
                    % (source, number))
            current[0][key] = value
            continue
        raise BaselineError("%s:%d: unexpected line %r"
                            % (source, number, line))
    flush()
    return out


def load_baseline(path: str) -> List[Suppression]:
    """Parse ``path`` into suppressions (empty for a missing file)."""
    if not os.path.exists(path):
        return []
    with open(path, "r", encoding="utf-8") as handle:
        return _parse_toml_text(handle.read(), os.path.basename(path))


__all__ = ["BaselineError", "DEFAULT_BASELINE", "Suppression",
           "load_baseline"]
