"""The lint engine: select checkers, run them, apply the baseline.

:func:`run_lint` is the single entry point behind the ``repro lint``
CLI, the CI gate and the test suite's thin lint invocations.  It
resolves checker names against the ``lint`` component registry (so
``REPRO_PLUGINS`` checkers participate exactly like builtins), runs
each checker over one shared :class:`~repro.lintkit.base.LintContext`,
folds in parse errors, and partitions findings against the reviewed
baseline.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.lintkit.base import Checker, Finding, LintContext, \
    detect_root
from repro.lintkit.baseline import DEFAULT_BASELINE, Suppression, \
    load_baseline

#: Schema version of the ``--json`` report payload.
REPORT_SCHEMA_VERSION = 1


class LintReport:
    """Outcome of one lint run, JSON-able for the CI artifact."""

    def __init__(self, root: str, checkers: List[str],
                 findings: List[Finding],
                 suppressed: List[Finding],
                 suppressions: List[Suppression]) -> None:
        self.root = root
        self.checkers = checkers
        self.findings = findings
        self.suppressed = suppressed
        self.suppressions = suppressions

    @property
    def clean(self) -> bool:
        return not self.findings

    def unused_suppressions(self) -> List[Suppression]:
        return [entry for entry in self.suppressions if not entry.used]

    def counts(self) -> Dict[str, int]:
        by_checker: Dict[str, int] = {name: 0 for name in self.checkers}
        for finding in self.findings:
            by_checker[finding.checker] = \
                by_checker.get(finding.checker, 0) + 1
        return by_checker

    def as_json(self) -> Dict[str, object]:
        return {
            "version": REPORT_SCHEMA_VERSION,
            "root": self.root,
            "checkers": list(self.checkers),
            "clean": self.clean,
            "counts": self.counts(),
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": [f.as_dict() for f in self.suppressed],
            "unused_suppressions": [s.describe() for s in
                                    self.unused_suppressions()],
        }

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        for entry in self.unused_suppressions():
            lines.append(
                "lint-baseline: unused suppression %s:%s%s — remove "
                "it or re-justify (reason was: %s)"
                % (entry.checker, entry.path,
                   "#" + entry.symbol if entry.symbol else "",
                   entry.reason))
        total = len(self.findings)
        summary = "repro lint: %d finding%s" \
            % (total, "" if total == 1 else "s")
        if self.suppressed:
            summary += ", %d suppressed by baseline" \
                % len(self.suppressed)
        ran = ", ".join(self.checkers)
        lines.append("%s (checkers: %s)" % (summary, ran))
        return "\n".join(lines)


def lint_registry():
    """The ``lint`` component registry (imports the builtins)."""
    from repro.registry import component_registry
    return component_registry("lint")


def select_checkers(select: Optional[Sequence[str]] = None,
                    ignore: Optional[Sequence[str]] = None
                    ) -> List[Checker]:
    """Instantiate the requested checkers (all registered by default).

    Unknown names raise ``UnknownComponentError`` with did-you-mean
    suggestions, exactly like any other component lookup.
    """
    registry = lint_registry()
    from repro.registry import load_plugins
    load_plugins()  # plugin checkers must be selectable
    names = list(registry.names())
    if select:
        chosen = []
        for name in select:
            registry.entry(name)  # raises with suggestions on a miss
            if name not in chosen:
                chosen.append(name)
        names = chosen
    if ignore:
        for name in ignore:
            registry.entry(name)
        names = [name for name in names if name not in set(ignore)]
    return [registry.entry(name).create() for name in names]


def run_lint(root: Optional[str] = None,
             select: Optional[Sequence[str]] = None,
             ignore: Optional[Sequence[str]] = None,
             baseline: Optional[str] = None) -> LintReport:
    """Run the selected checkers over the repository at ``root``.

    ``baseline`` is a path to a suppression file; ``None`` uses
    ``<root>/lint-baseline.toml`` when present.  Findings matching a
    suppression move to the report's ``suppressed`` list; everything
    else fails the gate.
    """
    resolved_root = detect_root(root) if root is None else root
    ctx = LintContext(resolved_root)
    checkers = select_checkers(select=select, ignore=ignore)

    findings: List[Finding] = []
    for checker in checkers:
        findings.extend(checker.run(ctx))
    for path, line, message in ctx.parse_errors():
        findings.append(Finding(
            checker="lintkit", path=path, line=line,
            message="file does not parse: %s" % message,
            code="syntax-error"))
    findings.sort(key=lambda f: (f.path, f.line, f.checker, f.code))

    if baseline is None:
        baseline = ctx.abspath(DEFAULT_BASELINE)
    suppressions = load_baseline(baseline)
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        hit = next((entry for entry in suppressions
                    if entry.matches(finding)), None)
        if hit is not None:
            hit.used = True
            suppressed.append(finding)
        else:
            kept.append(finding)

    return LintReport(root=resolved_root,
                      checkers=[c.name for c in checkers],
                      findings=kept, suppressed=suppressed,
                      suppressions=suppressions)


def report_to_json(report: LintReport) -> str:
    return json.dumps(report.as_json(), sort_keys=True, indent=2)


__all__ = ["LintReport", "REPORT_SCHEMA_VERSION", "lint_registry",
           "report_to_json", "run_lint", "select_checkers"]
