"""Static invariant analysis for the simulator's correctness contracts.

``repro lint`` (and the gating CI lane behind it) runs AST-based
checkers over the repository: snapshot completeness, proof purity,
stats-slot discipline, cache-digest stability, determinism and docs
sync.  Checkers are typed registry components (kind ``lint``), so
plugins add project-specific invariants through the same
``REPRO_PLUGINS`` seam as defenses and workloads.

See ``docs/linting.md`` for the checker catalogue, the baseline
workflow and a worked plugin example.
"""

from __future__ import annotations

from repro.lintkit.base import Checker, Finding, LintContext, \
    detect_root
from repro.lintkit.baseline import BaselineError, DEFAULT_BASELINE, \
    Suppression, load_baseline
from repro.lintkit.engine import LintReport, REPORT_SCHEMA_VERSION, \
    report_to_json, run_lint, select_checkers


def __getattr__(name: str):
    # LINTS lives in repro.lintkit.checkers (the registry-populating
    # import); resolve it lazily so `import repro.lintkit` stays cheap.
    if name == "LINTS":
        from repro.lintkit.checkers import LINTS
        return LINTS
    raise AttributeError(name)


__all__ = [
    "BaselineError",
    "Checker",
    "DEFAULT_BASELINE",
    "Finding",
    "LINTS",
    "LintContext",
    "LintReport",
    "REPORT_SCHEMA_VERSION",
    "Suppression",
    "detect_root",
    "load_baseline",
    "report_to_json",
    "run_lint",
    "select_checkers",
]
