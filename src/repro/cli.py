"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run WORKLOAD [--defense NAME] [--scale S]``
    Simulate one workload and print cycles/IPC/key stats.
``compare WORKLOAD [...] [--scale S]``
    Normalised execution time of every defense on the given workloads.
``figure {table1,6,7,8,9,10,11,sec49,sec65} [--scale S]``
    Regenerate one paper artefact.
``attack {spectre,rewind,interference} [--defense NAME]``
    Run a transient-execution attack and report the verdict.
``list``
    Show available workloads and defenses.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import figures
from repro.analysis.report import format_table, normalised_series
from repro.defenses import FIGURE_ORDER, registry
from repro.sim.runner import compare_defenses, normalised_times, run_workload
from repro.workloads.spec import PARSEC, SPEC2006, SPEC2017

FIGURES = {
    "table1": lambda scale: figures.table1(),
    "6": figures.figure6,
    "7": figures.figure7,
    "8": figures.figure8,
    "9": figures.figure9,
    "10": figures.figure10,
    "11": figures.figure11,
    "sec49": figures.section49_fu_order,
    "sec65": figures.section65_power,
    "dram": figures.dram_policy_ablation,
}

INTERESTING_STATS = [
    "commit.insts", "commit.loads", "bp.mispredicts", "squash.events",
    "l1d.hits", "l1d.misses", "l2.hits", "l2.misses", "dram.accesses",
    "dminion.fills", "dminion.read_hits", "dminion.commit_moves",
    "dminion.wipes", "gm.timeguard_loads", "gm.timeleap_loads",
    "gm.leapfrog_loads",
]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GhostMinion (MICRO 2021) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="simulate one workload")
    run_p.add_argument("workload")
    run_p.add_argument("--defense", default="GhostMinion")
    run_p.add_argument("--scale", type=float, default=0.25)

    cmp_p = sub.add_parser("compare",
                           help="all defenses on the given workloads")
    cmp_p.add_argument("workloads", nargs="+")
    cmp_p.add_argument("--scale", type=float, default=0.25)

    fig_p = sub.add_parser("figure", help="regenerate a paper artefact")
    fig_p.add_argument("which", choices=sorted(FIGURES))
    fig_p.add_argument("--scale", type=float, default=0.25)

    atk_p = sub.add_parser("attack", help="run a transient attack")
    atk_p.add_argument("which",
                       choices=["spectre", "rewind", "interference"])
    atk_p.add_argument("--defense", default="Unsafe")
    atk_p.add_argument("--secret", type=int, default=5)

    sub.add_parser("list", help="available workloads and defenses")
    return parser


def _cmd_run(args) -> int:
    result = run_workload(args.workload, args.defense, scale=args.scale)
    print("workload:   %s" % args.workload)
    print("defense:    %s" % args.defense)
    print("finished:   %s" % result.finished)
    print("cycles:     %d" % result.cycles)
    print("insts:      %d" % result.insts)
    print("IPC:        %.3f" % result.ipc)
    rows = [(name, int(result.stats.get(name)))
            for name in INTERESTING_STATS if name in result.stats]
    if rows:
        print()
        print(format_table(["stat", "value"], rows))
    return 0


def _cmd_compare(args) -> int:
    results = compare_defenses(args.workloads, ["Unsafe"] + FIGURE_ORDER,
                               scale=args.scale)
    table = normalised_times(results)
    rows = normalised_series(table, FIGURE_ORDER)
    print(format_table(["workload"] + FIGURE_ORDER, rows))
    return 0


def _cmd_figure(args) -> int:
    result = FIGURES[args.which](args.scale)
    print(result.name)
    print("=" * len(result.name))
    print(result.text)
    return 0


def _cmd_attack(args) -> int:
    from repro.attacks import interference, spectre, spectre_rewind
    module = {"spectre": spectre, "rewind": spectre_rewind,
              "interference": interference}[args.which]
    if args.which == "spectre":
        outcome = module.run(args.defense, args.secret)
        print("secret:    %d" % outcome.secret)
        print("recovered: %d (%s)" % (
            outcome.recovered,
            "correct" if outcome.correct else "wrong"))
        print("timings:   %s" % dict(sorted(outcome.timings.items())))
    else:
        for bit in (0, 1):
            outcome = module.run(args.defense, bit)
            print("secret bit %d -> measured delta %d cycles"
                  % (bit, outcome.timings[0]))
    verdict = module.leaks(args.defense)
    print("verdict:   %s"
          % ("LEAKS under %s" % args.defense if verdict
             else "safe under %s" % args.defense))
    return 1 if verdict and args.defense != "Unsafe" else 0


def _cmd_list(_args) -> int:
    print("defenses:")
    for name in ["Unsafe"] + FIGURE_ORDER:
        print("  %s" % name)
    for title, suite in (("SPEC CPU2006", SPEC2006),
                         ("SPECspeed 2017", SPEC2017),
                         ("Parsec (4 threads)", PARSEC)):
        print("%s:" % title)
        print("  " + ", ".join(spec.name for spec in suite))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handler = {
        "run": _cmd_run,
        "compare": _cmd_compare,
        "figure": _cmd_figure,
        "attack": _cmd_attack,
        "list": _cmd_list,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
