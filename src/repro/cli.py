"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run [WORKLOAD] [--workload SPEC] [--defense SPEC] [--scale S]``
    Simulate one workload and print cycles/IPC/key stats.
``compare WORKLOAD [...] [--scale S]``
    Normalised execution time of every defense on the given workloads.
``figure {table1,6,7,8,9,10,11,sec49,sec65,dram} [--scale S]``
    Regenerate one paper artefact.
``sweep WORKLOAD [...] [--defense SPEC ...] [--set K=V] [--axis K=V1,V2]``
    Run a declarative workloads x defenses x config sweep.
``trace WORKLOAD [--defense SPEC] [--sink SPEC] [--out PATH]``
    Simulate one point with full tracing armed and export the event
    stream (Perfetto JSON by default) plus cycle-domain metrics —
    see ``docs/observability.md``.
``attack {spectre,rewind,interference} [--defense NAME]``
    Run a transient-execution attack and report the verdict.
``list [KIND] [--tag TAG] [--json]``
    Enumerate registered components (defenses, workloads, predictors,
    hierarchies); with no KIND, print the classic overview.
``describe SPEC [--kind KIND] [--json]``
    Introspect one component or spec string: summary, parameters,
    and — for defenses/workloads — what the spec resolves to.
``merge SHARD... --db results.sqlite``
    Gather exported sweep shards into the sqlite result store
    (conflicting results for the same digest are a hard error).
``report {compare,timeline,<figure>} [WORKLOAD...] --db results.sqlite``
    Rebuild a compare/figure table from the result store — byte
    identical to the direct engine run, without re-simulation
    (``--allow-sim`` simulates and records missing points instead).
    ``report timeline`` lists/dumps the cycle-domain metrics series
    recorded by traced runs (digest prefixes select series).
``store {stats,backfill,prune} --db results.sqlite``
    Result-store maintenance: summary (points + checkpoints), ingest
    of an existing JSON result-cache directory, or checkpoint pruning
    by age/prefix (``--older-than 30d``, ``--prefix DIGEST``,
    ``--all``).
``cache {stats,prune}``
    JSON result-cache maintenance: entry count/bytes, and pruning by
    age (``--older-than 30d``) or wholesale (``--all``).
``bench [--baseline PATH] [--current PATH] [--max-regress PCT]``
    Run the perf smoke bench and diff each section's speedup against
    the committed ``BENCH_perf.json`` (``--current`` diffs a recorded
    payload instead of re-running).
``fuzz [--seed N] [--count K] [--oracle NAME] [--repro FILE]``
    Differential config fuzzing: generate seeded valid points from
    the registry grammar and check them with equivalence oracles;
    failures shrink to reproducer files in ``--corpus`` and exit 1
    (``--repro FILE`` replays one) — see ``docs/fuzzing.md``.

Everywhere a defense or workload is named, a parameterized **spec
string** works too: ``--defense "MuonTrap(flush=True)"``,
``--workload "pointer_chase(stride=128, footprint_kb=8192)"`` (see
``docs/components.md``; plugins registered via ``REPRO_PLUGINS`` or a
local ``repro_plugins.py`` are resolved the same way).

``run``/``compare``/``figure``/``sweep`` share the experiment-engine
flags: ``--jobs N`` fans sweep points out over N worker processes
(``0`` = all cores; default from ``REPRO_JOBS``), results are cached
on disk under ``REPRO_CACHE_DIR`` (``--cache-dir`` to override,
``--no-cache`` to disable), and ``--json`` emits the machine-readable
payload instead of the text table.  Per-point progress and cache-hit
counts go to stderr.

``run`` and ``sweep`` also take ``--trace``/``--trace-sink``/
``--trace-out``/``--metrics-interval``: any of them arms the
observability layer for the invocation (forcing ``--jobs 1`` and
bypassing cache *reads*, since a cache hit produces no trace).  With
``--json``, engine telemetry goes to stderr as schema-versioned JSONL
run-log records instead of free-form text.

``--db PATH`` on those commands swaps the JSON cache for the sqlite
result store (write-through: hits come from the store, executed points
are recorded into it).  ``--warmup-insts N`` and ``--sample-regions K
--sample-window N`` add warm-start / region-sampling policies backed
by a checkpoint database (``--checkpoint-db``, ``$REPRO_CHECKPOINT_DB``
or the ``--db`` store itself) — see ``docs/checkpoints.md``.  ``sweep`` and ``compare`` additionally take
``--shard I/N`` (run the I-th of N digest-partitioned slices) and
``--export PATH`` (write the slice's results as a shard file for
``repro merge``) — see ``docs/results-store.md`` for the distributed
campaign workflow.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import os
import re
import sys
import time
from typing import List, Optional, Tuple

from repro.analysis import figures
from repro.analysis.report import format_table, normalised_series
from repro.defenses import FIGURE_ORDER
from repro.exp import (
    BASE_VARIANT,
    ConfigVariant,
    RegionSampling,
    ResultCache,
    Sweep,
    format_engine_summary,
    run_points,
    run_sweep,
    shard_points,
    variants_for_axis,
)
from repro.registry import (
    KIND_ALIASES,
    SpecError,
    UnknownComponentError,
    all_registries,
    component_registry,
    load_plugins,
)
from repro.sim.runner import normalised_times

FIGURES = {
    "table1": lambda scale, **kw: figures.table1(),
    "6": figures.figure6,
    "7": figures.figure7,
    "8": figures.figure8,
    "9": figures.figure9,
    "10": figures.figure10,
    "11": figures.figure11,
    "sec49": figures.section49_fu_order,
    "sec65": figures.section65_power,
    "dram": figures.dram_policy_ablation,
}

INTERESTING_STATS = [
    "commit.insts", "commit.loads", "bp.mispredicts", "squash.events",
    "l1d.hits", "l1d.misses", "l2.hits", "l2.misses", "dram.accesses",
    "dminion.fills", "dminion.read_hits", "dminion.commit_moves",
    "dminion.wipes", "gm.timeguard_loads", "gm.timeleap_loads",
    "gm.leapfrog_loads",
]


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (0 = all cores; "
                             "default $REPRO_JOBS or 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    parser.add_argument("--cache-dir", default=None,
                        help="result cache directory "
                             "(default $REPRO_CACHE_DIR or "
                             "~/.cache/repro-ghostminion)")
    parser.add_argument("--db", default=None, metavar="PATH",
                        help="use this sqlite result store instead of "
                             "the JSON cache (write-through)")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON on stdout")


def _add_profile_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--profile", action="store_true",
                        help="run the simulation under cProfile and "
                             "print the top 25 cumulative-time entries "
                             "to stderr (forces --jobs 1)")
    parser.add_argument("--profile-out", default=None, metavar="PATH",
                        dest="profile_out",
                        help="write the raw cProfile data to PATH "
                             "instead of printing (implies --profile; "
                             "inspect with `python -m pstats`)")


def _add_trace_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", action="store_true",
                        help="record a structured execution trace and "
                             "export it through the configured sinks "
                             "(forces --jobs 1, bypasses cache reads; "
                             "see docs/observability.md)")
    parser.add_argument("--trace-sink", action="append", default=None,
                        metavar="SPEC", dest="trace_sink",
                        help="sink spec to export through (repeatable; "
                             "default perfetto — `repro list sinks`)")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        dest="trace_out",
                        help="trace output path (default trace.json; "
                             "implies --trace; multi-point runs insert "
                             "the point key before the extension)")
    parser.add_argument("--metrics-interval", type=int, default=0,
                        metavar="CYCLES", dest="metrics_interval",
                        help="sample cycle-domain metrics (IPC, "
                             "occupancies, miss counters) every N "
                             "cycles into the trace and any --db store "
                             "(implies --trace)")


def _obs_from_args(args):
    """``--trace``/``--trace-out``/``--metrics-interval`` -> ObsConfig
    (None when tracing is off).  Any of the three flags arms tracing;
    jobs are forced to 1 so every event lands in one tracer."""
    armed = (getattr(args, "trace", False)
             or getattr(args, "trace_out", None)
             or getattr(args, "metrics_interval", 0))
    if not armed:
        return None
    from repro.obs import ObsConfig
    # Validate sink specs before any simulation time is spent: an
    # unknown sink raises UnknownComponentError (with did-you-mean)
    # here instead of after the traced run completes.
    for spec in args.trace_sink or ("perfetto",):
        component_registry("sink").describe(spec)
    if args.jobs not in (None, 1):
        print("trace: forcing --jobs 1 (worker processes would "
              "scatter the event stream)", file=sys.stderr)
    args.jobs = 1
    return ObsConfig(sinks=tuple(args.trace_sink or ("perfetto",)),
                     out=args.trace_out or "trace.json",
                     metrics_interval=args.metrics_interval or 0)


def _add_shard_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--shard", default=None, metavar="I/N",
                        help="run only the I-th (0-based) of N "
                             "digest-partitioned slices of the sweep")
    parser.add_argument("--export", default=None, metavar="PATH",
                        dest="export_path",
                        help="write this invocation's results as a "
                             "shard file for `repro merge`")


def _add_max_insts_arg(parser: argparse.ArgumentParser) -> None:
    # Not offered on `figure`: paper artefacts run their workloads to
    # completion by construction.
    parser.add_argument("--max-insts", type=int, default=None,
                        help="early-stop: cap each point at this many "
                             "committed instructions")
    # Warm-start / region-sampling policies ride on the same commands
    # (see docs/checkpoints.md).
    parser.add_argument("--warmup-insts", type=int, default=None,
                        help="treat the first N committed instructions "
                             "as warm-up; with a checkpoint database, "
                             "later runs sharing the prefix restore it "
                             "instead of re-simulating")
    parser.add_argument("--sample-regions", type=int, default=None,
                        metavar="K",
                        help="SimPoint-style sampling: cut the "
                             "--max-insts horizon into K regions and "
                             "simulate only a window of each")
    parser.add_argument("--sample-window", type=int, default=10_000,
                        metavar="N",
                        help="instructions measured per sampled region "
                             "(default 10000; clamped to the region)")
    parser.add_argument("--checkpoint-db", default=None, metavar="PATH",
                        help="sqlite checkpoint database for "
                             "--warmup-insts/--sample-regions (default "
                             "$REPRO_CHECKPOINT_DB, or the --db store)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GhostMinion (MICRO 2021) reproduction toolkit",
        epilog="docs/architecture.md maps the subsystems; see also "
               "docs/experiments.md (sweeps, caching, parallelism), "
               "docs/components.md (spec strings, plugins), "
               "docs/performance.md (scheduler, stall taxonomy), "
               "docs/results-store.md (sqlite store, shards) and "
               "docs/linting.md (static invariant checks, baseline).")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="simulate one workload")
    run_p.add_argument("workload", nargs="?", default=None,
                       help="workload name or spec string")
    run_p.add_argument("--workload", dest="workload_flag", default=None,
                       help="alternative to the positional (handy for "
                            "spec strings)")
    run_p.add_argument("--defense", default="GhostMinion",
                       help="defense name or spec string")
    run_p.add_argument("--scale", type=float, default=0.25)
    _add_engine_args(run_p)
    _add_max_insts_arg(run_p)
    _add_profile_args(run_p)
    _add_trace_args(run_p)

    cmp_p = sub.add_parser("compare",
                           help="all defenses on the given workloads")
    cmp_p.add_argument("workloads", nargs="+")
    cmp_p.add_argument("--scale", type=float, default=0.25)
    _add_engine_args(cmp_p)
    _add_max_insts_arg(cmp_p)
    _add_shard_args(cmp_p)

    fig_p = sub.add_parser("figure", help="regenerate a paper artefact")
    fig_p.add_argument("which", choices=sorted(FIGURES))
    fig_p.add_argument("--scale", type=float, default=0.25)
    _add_engine_args(fig_p)

    swp_p = sub.add_parser(
        "sweep", help="workloads x defenses x config sweep")
    swp_p.add_argument("workloads", nargs="+")
    swp_p.add_argument("--defense", action="append", default=None,
                       help="defense to include (repeatable; default "
                            "Unsafe + GhostMinion)")
    swp_p.add_argument("--scale", type=float, default=0.25)
    swp_p.add_argument("--set", action="append", default=None,
                       metavar="PATH=VALUE", dest="set_overrides",
                       help="config override applied to every point "
                            "(e.g. minion_d.size_bytes=512)")
    swp_p.add_argument("--axis", action="append", default=None,
                       metavar="PATH=V1,V2,...",
                       help="config axis swept as variants "
                            "(e.g. minion_d.size_bytes=2048,512,128)")
    _add_engine_args(swp_p)
    _add_max_insts_arg(swp_p)
    _add_shard_args(swp_p)
    _add_profile_args(swp_p)
    _add_trace_args(swp_p)

    trc_p = sub.add_parser(
        "trace",
        help="simulate one point with full tracing and export it")
    trc_p.add_argument("workload",
                       help="workload name or spec string")
    trc_p.add_argument("--defense", default="GhostMinion",
                       help="defense name or spec string")
    trc_p.add_argument("--scale", type=float, default=0.25)
    trc_p.add_argument("--sink", action="append", default=None,
                       metavar="SPEC",
                       help="sink spec to export through (repeatable; "
                            "default perfetto — `repro list sinks`)")
    trc_p.add_argument("--out", default="trace.json", metavar="PATH",
                       help="trace output path (default trace.json)")
    trc_p.add_argument("--metrics-interval", type=int, default=1000,
                       metavar="CYCLES", dest="metrics_interval",
                       help="cycle-domain metrics sampling interval "
                            "(default 1000; 0 disables)")
    trc_p.add_argument("--max-insts", type=int, default=None,
                       help="early-stop: cap the run at this many "
                            "committed instructions")
    trc_p.add_argument("--db", default=None, metavar="PATH",
                       help="record the result and metrics series "
                            "into this sqlite store")
    trc_p.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON on stdout")

    mrg_p = sub.add_parser(
        "merge", help="gather sweep shard files into a result store")
    mrg_p.add_argument("shards", nargs="+", metavar="SHARD",
                       help="shard files written by --export")
    mrg_p.add_argument("--db", required=True, metavar="PATH",
                       help="sqlite result store to merge into")
    mrg_p.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON on stdout")

    rep_p = sub.add_parser(
        "report",
        help="rebuild a compare/figure table from the result store")
    rep_p.add_argument("which",
                       choices=sorted(FIGURES) + ["compare", "timeline"],
                       help="'compare', 'timeline' (stored metrics "
                            "series) or a figure name")
    rep_p.add_argument("workloads", nargs="*",
                       help="workloads (compare reports) or digest "
                            "prefixes (timeline reports)")
    rep_p.add_argument("--db", required=True, metavar="PATH",
                       help="sqlite result store to read")
    rep_p.add_argument("--scale", type=float, default=0.25)
    rep_p.add_argument("--allow-sim", action="store_true",
                       help="simulate (and record) missing points "
                            "instead of failing")
    rep_p.add_argument("--jobs", type=int, default=None,
                       help="worker processes for --allow-sim misses")
    rep_p.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON on stdout")
    rep_p.add_argument("--max-insts", type=int, default=None,
                       help="early-stop cap the reported sweep ran "
                            "with (compare reports only)")

    str_p = sub.add_parser(
        "store", help="result-store maintenance")
    str_p.add_argument("action", choices=["stats", "backfill", "prune"])
    str_p.add_argument("--db", required=True, metavar="PATH",
                       help="sqlite result store")
    str_p.add_argument("--older-than", default=None, metavar="AGE",
                       help="`store prune`: drop checkpoints recorded "
                            "more than AGE ago (30d, 12h, 45m, 3600s)")
    str_p.add_argument("--prefix", default=None, metavar="DIGEST",
                       help="`store prune`: drop checkpoints whose "
                            "prefix digest starts with DIGEST")
    str_p.add_argument("--all", action="store_true", dest="prune_all",
                       help="`store prune`: drop every checkpoint")
    str_p.add_argument("--cache-dir", default=None,
                       help="JSON cache directory to backfill from "
                            "(default $REPRO_CACHE_DIR or "
                            "~/.cache/repro-ghostminion)")
    str_p.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON on stdout")

    cch_p = sub.add_parser(
        "cache", help="JSON result-cache maintenance")
    cch_p.add_argument("action", choices=["stats", "prune"])
    cch_p.add_argument("--cache-dir", default=None,
                       help="cache directory (default $REPRO_CACHE_DIR "
                            "or ~/.cache/repro-ghostminion)")
    cch_p.add_argument("--older-than", default=None, metavar="AGE",
                       help="prune only entries older than AGE "
                            "(e.g. 30d, 12h, 45m, 3600s; bare numbers "
                            "are days)")
    cch_p.add_argument("--all", action="store_true", dest="prune_all",
                       help="prune every entry")
    cch_p.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON on stdout")

    bch_p = sub.add_parser(
        "bench",
        help="run the perf bench and diff against BENCH_perf.json")
    bch_p.add_argument("--baseline", default=None, metavar="PATH",
                       help="committed bench payload to diff against "
                            "(default ./BENCH_perf.json)")
    bch_p.add_argument("--current", default=None, metavar="PATH",
                       help="diff this previously recorded payload "
                            "instead of re-running the bench")
    bch_p.add_argument("--scale", type=float, default=None,
                       help="workload scale for the re-run (default "
                            "$REPRO_BENCH_PERF_SCALE or 0.25)")
    bch_p.add_argument("--max-regress", type=float, default=None,
                       metavar="PCT", dest="max_regress",
                       help="exit non-zero if any section's speedup "
                            "regressed by more than PCT percent")
    bch_p.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON on stdout")

    fzz_p = sub.add_parser(
        "fuzz",
        help="differential config fuzzing: generated points checked "
             "by equivalence oracles (docs/fuzzing.md)")
    fzz_p.add_argument("--seed", type=int, default=None,
                       help="campaign seed (default 0; the nightly "
                            "lane rotates this by date)")
    fzz_p.add_argument("--count", type=int, default=None,
                       help="points to generate (default 25)")
    fzz_p.add_argument("--oracle", action="append", default=None,
                       metavar="NAME",
                       help="oracle to run (repeatable; default "
                            "dense-event — `repro list oracles`)")
    fzz_p.add_argument("--budget", type=int, default=None,
                       metavar="INSTS",
                       help="committed-instruction cap per point "
                            "(default 4000)")
    fzz_p.add_argument("--jobs", type=int, default=None,
                       help="worker processes per oracle leg "
                            "(0 = all cores; default from REPRO_JOBS)")
    fzz_p.add_argument("--corpus", default="fuzz-corpus",
                       metavar="DIR",
                       help="directory reproducer files are written "
                            "to (default fuzz-corpus)")
    fzz_p.add_argument("--repro", default=None, metavar="PATH",
                       dest="repro_path",
                       help="replay one reproducer file through its "
                            "recorded oracle instead of generating")
    fzz_p.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON on stdout")

    atk_p = sub.add_parser("attack", help="run a transient attack")
    atk_p.add_argument("which",
                       choices=["spectre", "rewind", "interference"])
    atk_p.add_argument("--defense", default="Unsafe")
    atk_p.add_argument("--secret", type=int, default=5)

    lnt_p = sub.add_parser(
        "lint",
        help="static invariant analysis (snapshots, proof purity, "
             "stats slots, digest stability, determinism, docs sync)")
    lnt_p.add_argument("--select", action="append", default=None,
                       metavar="CHECKER",
                       help="run only this checker (repeatable; "
                            "`repro list lints` names them)")
    lnt_p.add_argument("--ignore", action="append", default=None,
                       metavar="CHECKER",
                       help="skip this checker (repeatable)")
    lnt_p.add_argument("--baseline", default=None, metavar="PATH",
                       help="reviewed suppression file (default "
                            "<root>/lint-baseline.toml)")
    lnt_p.add_argument("--root", default=None, metavar="PATH",
                       help="repository root to lint (default: "
                            "nearest ancestor holding src/repro)")
    lnt_p.add_argument("--json", action="store_true",
                       help="emit the machine-readable report on "
                            "stdout (docs/linting.md#json-report)")

    lst_p = sub.add_parser(
        "list", help="available components (defenses, workloads, ...)")
    lst_p.add_argument("kind", nargs="?", default=None,
                       choices=sorted(KIND_ALIASES),
                       help="component kind to enumerate (default: "
                            "overview of workloads and defenses)")
    lst_p.add_argument("--tag", default=None,
                       help="only components carrying this tag "
                            "(e.g. figure, synthetic, spec2006)")
    lst_p.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON on stdout")

    dsc_p = sub.add_parser(
        "describe", help="introspect one component or spec string")
    dsc_p.add_argument("spec",
                       help="component name or spec string, e.g. "
                            "'MuonTrap(flush=True)'")
    dsc_p.add_argument("--kind", default=None,
                       choices=sorted(KIND_ALIASES),
                       help="restrict the lookup to one registry")
    dsc_p.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON on stdout")
    return parser


def _open_store(path, mode="rw"):
    """Open a result store behind the given access policy."""
    from repro.store import ResultStore, RunMeta, StoreCache
    return StoreCache(ResultStore(path, run_meta=RunMeta.capture()),
                      mode=mode)


def _cache_from_args(args):
    if getattr(args, "db", None):
        # The sqlite store replaces the JSON cache (write-through).
        return _open_store(args.db)
    if args.no_cache:
        return None
    if args.cache_dir:
        return args.cache_dir
    return True


def _maybe_profile(args, thunk):
    """Run ``thunk`` under cProfile when ``--profile``/``--profile-out``
    was given.  Jobs are forced to 1: the profiler only sees this
    process, and points executed in workers would escape it."""
    if not (getattr(args, "profile", False)
            or getattr(args, "profile_out", None)):
        return thunk()
    import cProfile
    import pstats
    if args.jobs not in (None, 1):
        print("profile: forcing --jobs 1 (worker processes are "
              "invisible to cProfile)", file=sys.stderr)
    args.jobs = 1
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return thunk()
    finally:
        profiler.disable()
        if args.profile_out:
            profiler.dump_stats(args.profile_out)
            print("profile: raw stats -> %s" % args.profile_out,
                  file=sys.stderr)
        else:
            stats = pstats.Stats(profiler, stream=sys.stderr)
            stats.sort_stats("cumulative").print_stats(25)


def _sampling_from_args(args):
    """``--sample-regions``/``--sample-window`` -> RegionSampling."""
    if getattr(args, "sample_regions", None) is None:
        return None
    if args.max_insts is None:
        raise ValueError("--sample-regions requires --max-insts "
                         "(the sampled horizon)")
    if getattr(args, "warmup_insts", None) is not None:
        raise ValueError("--warmup-insts and --sample-regions are "
                         "mutually exclusive")
    return RegionSampling(regions=args.sample_regions,
                          window_insts=args.sample_window)


def _checkpoints_from_args(args):
    """``--checkpoint-db`` -> the engine's ``checkpoints=`` argument
    (None defers to $REPRO_CHECKPOINT_DB / a store-backed --db)."""
    return getattr(args, "checkpoint_db", None)


def _parse_shard(text: str) -> Tuple[int, int]:
    match = re.fullmatch(r"(\d+)/(\d+)", text)
    if not match:
        raise ValueError("--shard wants I/N, e.g. 0/4 (got %r)" % text)
    return int(match.group(1)), int(match.group(2))


def _apply_shard(args, sweep: Sweep):
    """Expand ``sweep`` honouring ``--shard``; returns (points, note)."""
    points = sweep.points()
    if not args.shard:
        return points, None
    index, count = _parse_shard(args.shard)
    selected = shard_points(points, index, count)
    note = ("shard %d/%d: %d of %d points"
            % (index, count, len(selected), len(points)))
    return selected, note


def _export_results(args, report, sweep: Sweep) -> None:
    """Write this invocation's results as a shard file (--export)."""
    from repro.store import RunMeta, write_shard
    index = count = None
    if args.shard:
        index, count = _parse_shard(args.shard)
    write_shard(args.export_path, report.results, sweep=sweep.name,
                index=index, count=count,
                total_points=len(sweep.points()),
                run_meta=RunMeta.capture())
    print("exported %d point(s) -> %s"
          % (len(report.results), args.export_path), file=sys.stderr)


def _results_json(report) -> str:
    """Canonical result payload plus the (non-canonical) timing
    telemetry block — the `sweep --json` shape."""
    payload = json.loads(report.results.to_json())
    payload["timing"] = report.timing_meta()
    return json.dumps(payload, sort_keys=True, indent=2)


def _progress_to_stderr(done: int, total: int, point) -> None:
    source = "cached" if point.cached else "%d cycles" % point.cycles
    print("[%d/%d] %s (%s)" % (done, total, point.key, source),
          file=sys.stderr)


def _report_engine(report, args=None) -> None:
    """Engine telemetry to stderr.

    ``--json`` consumers get schema-versioned JSONL records (the
    structured run log, ``docs/observability.md``) so the telemetry
    machine-parses without scraping free-form text; interactive runs
    keep the human summary lines."""
    if args is not None and getattr(args, "json", False):
        from repro.obs import RunLog
        log = RunLog(sys.stderr)
        for record in report.runlog_records():
            record = dict(record)
            log.emit(record.pop("event"), record)
        return
    print(report.summary(), file=sys.stderr)
    print(report.timing_summary(), file=sys.stderr)
    for path in report.trace_paths():
        print("trace: wrote %s" % path, file=sys.stderr)


def _json_default(obj):
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return dataclasses.asdict(obj)
    return str(obj)


def _parse_value(text: str):
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            continue
    return text


def _cmd_run(args) -> int:
    if args.workload_flag is not None and args.workload is not None:
        print("error: workload given both positionally and via "
              "--workload", file=sys.stderr)
        return 2
    workload = (args.workload_flag if args.workload_flag is not None
                else args.workload)
    if workload is None:
        print("error: no workload given (positional or --workload)",
              file=sys.stderr)
        return 2
    args.workload = workload
    try:
        sampling = _sampling_from_args(args)
    except ValueError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    sweep = Sweep(name="run", workloads=[args.workload],
                  defenses=[args.defense], scale=args.scale,
                  max_insts=args.max_insts,
                  warmup_insts=args.warmup_insts, sampling=sampling)
    try:
        report = _maybe_profile(args, lambda: run_sweep(
            sweep, jobs=args.jobs, cache=_cache_from_args(args),
            progress=_progress_to_stderr,
            checkpoints=_checkpoints_from_args(args),
            obs=_obs_from_args(args)))
    except (SpecError, UnknownComponentError) as exc:
        # Malformed spec strings and unknown component names (the
        # latter carry did-you-mean suggestions) are usage errors.
        print("error: %s" % exc, file=sys.stderr)
        return 2
    point = next(iter(report.results))
    _report_engine(report, args)
    if args.json:
        print(json.dumps({"workload": args.workload,
                          "defense": args.defense,
                          "scale": args.scale,
                          "cache_hits": report.cache_hits,
                          "timing": report.timing_meta(),
                          "result": point.to_json_dict()},
                         sort_keys=True, indent=2))
        return 0
    print("workload:   %s" % args.workload)
    print("defense:    %s" % args.defense)
    print("finished:   %s" % point.finished)
    print("cycles:     %d" % point.cycles)
    print("insts:      %d" % point.insts)
    print("IPC:        %.3f" % point.ipc)
    rows = [(name, int(point.stats.get(name)))
            for name in INTERESTING_STATS if name in point.stats]
    if rows:
        print()
        print(format_table(["stat", "value"], rows))
    return 0


def _compare_sweep(args) -> Sweep:
    return Sweep(name="compare", workloads=list(args.workloads),
                 defenses=["Unsafe"] + FIGURE_ORDER, scale=args.scale,
                 max_insts=args.max_insts,
                 warmup_insts=getattr(args, "warmup_insts", None),
                 sampling=_sampling_from_args(args))


def _print_compare(report, args) -> int:
    """Emit the compare artefact (shared by `compare` and `report`)."""
    table = normalised_times(report.results.as_run_results())
    if args.json:
        print(json.dumps({"normalised": table,
                          "cache_hits": report.cache_hits,
                          "executed": report.executed,
                          "timing": report.timing_meta(),
                          "points": [p.to_json_dict()
                                     for p in report.results]},
                         sort_keys=True, indent=2))
        return 0
    rows = normalised_series(table, FIGURE_ORDER)
    print(format_table(["workload"] + FIGURE_ORDER, rows))
    return 0


def _cmd_compare(args) -> int:
    try:
        sweep = _compare_sweep(args)
        points, note = _apply_shard(args, sweep)
    except (ValueError, UnknownComponentError) as exc:
        # ValueError covers malformed specs (SpecError) and bad
        # --shard values; UnknownComponentError adds did-you-mean.
        print("error: %s" % exc, file=sys.stderr)
        return 2
    if note:
        print(note, file=sys.stderr)
    report = run_points(points, jobs=args.jobs,
                        cache=_cache_from_args(args),
                        progress=_progress_to_stderr,
                        checkpoints=_checkpoints_from_args(args))
    _report_engine(report, args)
    if args.export_path:
        _export_results(args, report, sweep)
    if args.shard:
        # A slice cannot be normalised against baselines it may not
        # hold, so there is no compare table here (it comes from
        # `repro merge` + `repro report`); --json still gets the
        # slice's canonical results, like a sharded `sweep` would.
        if args.json:
            print(_results_json(report))
        return 0
    return _print_compare(report, args)


def _print_figure(result, args) -> int:
    """Emit a figure artefact (shared by `figure` and `report`)."""
    if result.meta:
        print(format_engine_summary(result.meta), file=sys.stderr)
    if args.json:
        print(json.dumps({"name": result.name, "data": result.data,
                          "text": result.text, "meta": result.meta},
                         sort_keys=True, indent=2,
                         default=_json_default))
        return 0
    print(result.name)
    print("=" * len(result.name))
    print(result.text)
    return 0


def _cmd_figure(args) -> int:
    result = FIGURES[args.which](args.scale, jobs=args.jobs,
                                 cache=_cache_from_args(args),
                                 progress=_progress_to_stderr)
    return _print_figure(result, args)


def _cmd_sweep(args) -> int:
    axes = {}
    for axis in args.axis or []:
        path, _, values = axis.partition("=")
        if not values:
            print("error: --axis wants PATH=V1,V2,... (got %r)" % axis,
                  file=sys.stderr)
            return 2
        axes[path] = [_parse_value(v) for v in values.split(",")]
    overrides = {}
    for item in args.set_overrides or []:
        path, sep, value = item.partition("=")
        if not sep:
            print("error: --set wants PATH=VALUE (got %r)" % item,
                  file=sys.stderr)
            return 2
        overrides[path] = _parse_value(value)
    variants = variants_for_axis(axes) if axes else [BASE_VARIANT]
    if overrides:
        variants = [
            ConfigVariant.make(v.label, {**v.as_dict(), **overrides})
            for v in variants]
    defenses = args.defense or ["Unsafe", "GhostMinion"]
    try:
        sweep = Sweep(name="sweep", workloads=list(args.workloads),
                      defenses=defenses, variants=variants,
                      scale=args.scale, max_insts=args.max_insts,
                      warmup_insts=args.warmup_insts,
                      sampling=_sampling_from_args(args))
        points, note = _apply_shard(args, sweep)
        if note:
            print(note, file=sys.stderr)
        report = _maybe_profile(args, lambda: run_points(
            points, jobs=args.jobs, cache=_cache_from_args(args),
            progress=_progress_to_stderr,
            checkpoints=_checkpoints_from_args(args),
            obs=_obs_from_args(args)))
    except (ValueError, UnknownComponentError) as exc:
        # malformed spec/--shard, out-of-range shard index, or an
        # unknown component name (with did-you-mean suggestions)
        print("error: %s" % exc, file=sys.stderr)
        return 2
    except AttributeError as exc:
        # apply_overrides rejects typo'd/unknown config paths.
        print("error: %s" % exc, file=sys.stderr)
        return 2
    _report_engine(report, args)
    if args.export_path:
        _export_results(args, report, sweep)
    if args.json:
        print(_results_json(report))
        return 0
    rows = [(p.key, p.cycles, p.insts, "%.3f" % p.ipc,
             "hit" if p.cached else "run")
            for p in report.results]
    print(format_table(["point", "cycles", "insts", "IPC", "cache"],
                       rows))
    return 0


def _cmd_trace(args) -> int:
    """One fully-traced point: simulate, export, summarize."""
    from repro.obs import ObsConfig
    obs = ObsConfig(sinks=tuple(args.sink or ("perfetto",)),
                    out=args.out,
                    metrics_interval=args.metrics_interval)
    cache = _open_store(args.db) if args.db else None
    sweep = Sweep(name="trace", workloads=[args.workload],
                  defenses=[args.defense], scale=args.scale,
                  max_insts=args.max_insts)
    try:
        # Validate sink specs up front: a typo'd --sink must not cost
        # a full traced simulation before erroring.
        for spec in obs.sinks:
            component_registry("sink").describe(spec)
        report = run_sweep(sweep, jobs=1, cache=cache,
                           progress=_progress_to_stderr, obs=obs)
    except (SpecError, UnknownComponentError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    point = next(iter(report.results))
    if args.json:
        print(json.dumps({"result": point.to_json_dict(),
                          "trace_paths": point.trace_paths,
                          "metrics": point.metrics},
                         sort_keys=True, indent=2))
        return 0
    print("workload: %s" % args.workload)
    print("defense:  %s" % args.defense)
    print("cycles:   %d" % point.cycles)
    print("insts:    %d" % point.insts)
    print("digest:   %s" % point.digest)
    for path in point.trace_paths:
        print("trace:    %s" % path)
    if point.metrics is not None:
        print("metrics:  %d samples every %d cycles%s"
              % (len(point.metrics["samples"]),
                 point.metrics["interval"],
                 " (stored)" if args.db else ""))
    return 0


def _cmd_report_timeline(args) -> int:
    """Stored cycle-domain metrics: list series, or dump matches."""
    from repro.store import ResultStore, StoreError
    try:
        with ResultStore(args.db) as store:
            digests = store.metrics_digests()
            keys = {row["digest"]: row for row in store.rows()}
            if not args.workloads:
                rows = []
                payload = []
                for digest in digests:
                    series = store.metrics_lookup(digest)
                    meta = keys.get(digest, {})
                    entry = {"digest": digest,
                             "key": meta.get("key", "?"),
                             "workload": meta.get("workload", "?"),
                             "defense": meta.get("defense", "?"),
                             "interval": series["interval"],
                             "samples": len(series["samples"])}
                    payload.append(entry)
                    rows.append((digest[:12], entry["key"],
                                 entry["interval"], entry["samples"]))
                if args.json:
                    print(json.dumps({"series": payload},
                                     sort_keys=True, indent=2))
                elif rows:
                    print(format_table(
                        ["digest", "point", "interval", "samples"],
                        rows))
                else:
                    print("(no metrics series stored; trace a run "
                          "with --metrics-interval and --db)")
                return 0
            matched = {}
            for prefix in args.workloads:
                hits = [d for d in digests if d.startswith(prefix)]
                if not hits:
                    print("error: no stored metrics series matches "
                          "digest prefix %r" % prefix, file=sys.stderr)
                    return 1
                for digest in hits:
                    matched[digest] = store.metrics_lookup(digest)
            if args.json:
                print(json.dumps({"series": matched},
                                 sort_keys=True, indent=2))
                return 0
            for digest, series in matched.items():
                meta = keys.get(digest, {})
                print("%s  (%s)" % (digest, meta.get("key", "?")))
                columns = series["columns"]
                rows = [tuple(("%g" % v) for v in row)
                        for row in series["samples"]]
                print(format_table(columns, rows))
            return 0
    except StoreError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1


def _cmd_merge(args) -> int:
    from repro.store import (
        ResultStore, RunMeta, StoreError, merge_shards)
    try:
        with ResultStore(args.db,
                         run_meta=RunMeta.capture()) as store:
            report = merge_shards(store, args.shards)
            stats = store.stats()
    except StoreError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    for warning in report.warnings:
        print("warning: %s" % warning, file=sys.stderr)
    if args.json:
        print(json.dumps({"inserted": report.inserted,
                          "duplicates": report.duplicates,
                          "shards": report.shards,
                          "warnings": report.warnings,
                          "store": stats},
                         sort_keys=True, indent=2))
        return 0
    print(report.summary())
    print("store: %(points)d points, %(bytes)d bytes at %(path)s"
          % stats)
    return 0


def _cmd_report(args) -> int:
    from repro.store import MissingStoreResultError, StoreError
    if args.which == "timeline":
        return _cmd_report_timeline(args)
    mode = "rw" if args.allow_sim else "strict"
    try:
        cache = _open_store(args.db, mode=mode)
    except StoreError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    try:
        if args.which == "compare":
            if not args.workloads:
                print("error: `report compare` needs at least one "
                      "workload", file=sys.stderr)
                return 2
            report = run_sweep(_compare_sweep(args), jobs=args.jobs,
                               cache=cache,
                               progress=_progress_to_stderr)
            _report_engine(report, args)
            return _print_compare(report, args)
        if args.workloads:
            print("error: figure reports take no workload arguments",
                  file=sys.stderr)
            return 2
        result = FIGURES[args.which](args.scale, jobs=args.jobs,
                                     cache=cache,
                                     progress=_progress_to_stderr)
        return _print_figure(result, args)
    except MissingStoreResultError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1


def _cmd_store(args) -> int:
    from repro.store import (
        ResultStore, RunMeta, StoreError, backfill_from_cache)
    try:
        with ResultStore(args.db,
                         run_meta=RunMeta.capture()) as store:
            if args.action == "stats":
                payload = store.stats()
                if args.json:
                    print(json.dumps(payload, sort_keys=True, indent=2))
                    return 0
                print("store:       %s" % payload["path"])
                print("schema:      v%d" % payload["schema_version"])
                print("points:      %d" % payload["points"])
                print("bytes:       %d" % payload["bytes"])
                print("workloads:   %d" % payload["workloads"])
                print("defenses:    %d" % payload["defenses"])
                print("sweeps:      %d" % payload["sweeps"])
                print("checkpoints: %d (%d bytes, %d prefixes)"
                      % (payload["checkpoints"],
                         payload["checkpoint_bytes"],
                         payload["checkpoint_prefixes"]))
                return 0
            if args.action == "prune":
                if not (args.prune_all or args.older_than is not None
                        or args.prefix is not None):
                    print("error: `store prune` needs --older-than "
                          "AGE, --prefix DIGEST or --all",
                          file=sys.stderr)
                    return 2
                if args.prune_all and (args.older_than is not None
                                       or args.prefix is not None):
                    print("error: give either --all or a filter "
                          "(--older-than/--prefix), not both",
                          file=sys.stderr)
                    return 2
                try:
                    # The store wants an absolute recorded_at cutoff;
                    # the flag speaks ages (like `cache prune`).
                    older_than = (
                        None if args.older_than is None
                        else time.time() - _parse_age(args.older_than))
                except ValueError as exc:
                    print("error: %s" % exc, file=sys.stderr)
                    return 2
                removed = store.checkpoint_prune(
                    older_than=older_than, prefix=args.prefix,
                    all_rows=args.prune_all)
                payload = store.checkpoint_stats()
                payload["removed"] = removed
                if args.json:
                    print(json.dumps(payload, sort_keys=True, indent=2))
                    return 0
                print("pruned %d checkpoint%s; %d left (%d bytes)"
                      % (removed, "" if removed == 1 else "s",
                         payload["checkpoints"],
                         payload["checkpoint_bytes"]))
                return 0
            cache = ResultCache(args.cache_dir)
            report = backfill_from_cache(store, cache)
            if args.json:
                print(json.dumps({"scanned": report.scanned,
                                  "inserted": report.inserted,
                                  "duplicates": report.duplicates,
                                  "skipped": report.skipped,
                                  "store": store.stats()},
                                 sort_keys=True, indent=2))
                return 0
            print(report.summary())
            return 0
    except StoreError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1


_AGE_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0,
              "w": 7 * 86400.0}


def _parse_age(text: str) -> float:
    """``30d``/``12h``/``45m``/``3600s``/``2w`` (bare number = days)."""
    text = text.strip().lower()
    unit = 86400.0
    if text and text[-1] in _AGE_UNITS:
        unit = _AGE_UNITS[text[-1]]
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise ValueError("--older-than wants AGE like 30d, 12h, 45m, "
                         "3600s (got %r)" % text)
    # NaN would disable the age filter entirely (every comparison is
    # False), turning an age prune into --all.
    if not math.isfinite(value) or value < 0:
        raise ValueError("--older-than must be a finite, non-negative "
                         "AGE")
    return value * unit


def _cmd_cache(args) -> int:
    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        payload = cache.stats()
        if args.json:
            print(json.dumps(payload, sort_keys=True, indent=2))
            return 0
        print("cache:   %s" % payload["directory"])
        print("entries: %d" % payload["entries"])
        print("bytes:   %d" % payload["bytes"])
        return 0
    if args.prune_all and args.older_than is not None:
        print("error: give either --older-than or --all, not both",
              file=sys.stderr)
        return 2
    if not args.prune_all and args.older_than is None:
        print("error: `cache prune` needs --older-than AGE or --all",
              file=sys.stderr)
        return 2
    try:
        older_than = (None if args.prune_all
                      else _parse_age(args.older_than))
    except ValueError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    payload = cache.prune(older_than=older_than)
    if args.json:
        print(json.dumps(payload, sort_keys=True, indent=2))
        return 0
    print("pruned %d entr%s (%d bytes) from %s"
          % (payload["removed"],
             "y" if payload["removed"] == 1 else "ies",
             payload["bytes"], payload["directory"]))
    return 0


def _bench_sections(payload):
    """Flatten a BENCH_perf.json payload into ``{section: payload}``.

    The original scheduler numbers live at top level (the legacy
    layout); every newer section nests under its own key.  A section is
    anything carrying a ``speedup``.
    """
    sections = {}
    if "speedup" in payload:
        sections[str(payload.get("bench", "perf_smoke"))] = payload
    for key, value in payload.items():
        if isinstance(value, dict) and "speedup" in value:
            sections[key] = value
    return sections


def _bench_speedup(section):
    """A section's speedup as a number, or None when it is absent or
    non-numeric (older baselines record placeholder sections with
    ``"speedup": null``; those must diff as missing, not crash)."""
    if section is None:
        return None
    value = section.get("speedup")
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return value


def _load_bench_payload(path, label):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        print("error: cannot read %s %s (%s)" % (label, path, exc),
              file=sys.stderr)
        return None
    if not isinstance(payload, dict):
        print("error: %s %s is not a JSON object" % (label, path),
              file=sys.stderr)
        return None
    return payload


def _run_bench(args, baseline_path):
    """Execute the perf smoke bench into a fresh payload dict."""
    import subprocess
    import tempfile
    root = os.path.dirname(os.path.abspath(baseline_path))
    script = os.path.join(root, "benchmarks", "bench_perf_smoke.py")
    if not os.path.exists(script):
        print("error: %s not found — run from a checkout or pass "
              "--current PATH" % script, file=sys.stderr)
        return None
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "bench.json")
        env = dict(os.environ, REPRO_BENCH_PERF_OUT=out)
        if args.scale is not None:
            env["REPRO_BENCH_PERF_SCALE"] = repr(args.scale)
        print("bench: running %s at scale %s (simulates; takes "
              "minutes)" % (script,
                            env.get("REPRO_BENCH_PERF_SCALE", "0.25")),
              file=sys.stderr)
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "-q", script], env=env)
        if proc.returncode != 0:
            print("error: bench run failed (exit %d)" % proc.returncode,
                  file=sys.stderr)
            return None
        return _load_bench_payload(out, "bench output")


def _cmd_bench(args) -> int:
    baseline_path = args.baseline or "BENCH_perf.json"
    baseline = _load_bench_payload(baseline_path, "baseline")
    if baseline is None:
        print("hint: run from the repo root or pass --baseline PATH",
              file=sys.stderr)
        return 2
    if args.current:
        current = _load_bench_payload(args.current, "--current")
        if current is None:
            return 2
    else:
        current = _run_bench(args, baseline_path)
        if current is None:
            return 1
    base_sections = _bench_sections(baseline)
    cur_sections = _bench_sections(current)
    diff = {}
    rows = []
    regressions = []
    for name in sorted(set(base_sections) | set(cur_sections)):
        base = base_sections.get(name)
        cur = cur_sections.get(name)
        base_speedup = _bench_speedup(base)
        cur_speedup = _bench_speedup(cur)
        entry = {
            "baseline_speedup": base_speedup,
            "current_speedup": cur_speedup,
            "delta_pct": None,
        }
        note = ""
        if base_speedup is None:
            # The committed baseline predates this section (or holds a
            # null placeholder): nothing to diff against.
            note = "new section"
        elif cur_speedup is None:
            note = "missing from current"
        else:
            if base.get("scale") != cur.get("scale"):
                note = "scale differs"
            if base_speedup:
                entry["delta_pct"] = round(
                    (cur_speedup - base_speedup)
                    / base_speedup * 100.0, 1)
                if (args.max_regress is not None
                        and entry["delta_pct"] < -args.max_regress):
                    regressions.append(
                        "%s: %.2fx -> %.2fx (%.1f%%)"
                        % (name, base_speedup, cur_speedup,
                           entry["delta_pct"]))
        diff[name] = entry
        rows.append((
            name,
            "%.2fx" % base_speedup if base_speedup is not None
            else "-",
            "%.2fx" % cur_speedup if cur_speedup is not None
            else "-",
            ("%+.1f%%" % entry["delta_pct"]
             if entry["delta_pct"] is not None else "-"),
            note,
        ))
    if args.json:
        print(json.dumps({"baseline": baseline_path,
                          "sections": diff,
                          "regressions": regressions},
                         sort_keys=True, indent=2))
    else:
        print(format_table(
            ["section", "baseline", "current", "delta", "note"], rows))
    if regressions:
        print("error: speedup regressed beyond %.1f%%:"
              % args.max_regress, file=sys.stderr)
        for line in regressions:
            print("  " + line, file=sys.stderr)
        return 1
    return 0


def _cmd_fuzz(args) -> int:
    """Differential config fuzzing (docs/fuzzing.md).

    Two modes: generate-and-check (default; failures are shrunk to
    reproducer files under ``--corpus`` and the command exits 1) and
    ``--repro FILE`` (replay one reproducer through its recorded
    oracle; exits 1 iff the divergence still reproduces).  Exit 2 is
    reserved for usage errors, as everywhere else in the CLI."""
    from repro import fuzz

    def progress(message: str) -> None:
        print("fuzz: %s" % message, file=sys.stderr)

    if args.repro_path:
        conflicting = [flag for flag, value in
                       (("--seed", args.seed), ("--count", args.count),
                        ("--oracle", args.oracle),
                        ("--budget", args.budget))
                       if value is not None]
        if conflicting:
            print("error: --repro replays a recorded point; it "
                  "conflicts with %s" % ", ".join(conflicting),
                  file=sys.stderr)
            return 2
        try:
            verdict = fuzz.replay_reproducer(args.repro_path,
                                             jobs=args.jobs)
        except (OSError, ValueError, KeyError) as exc:
            # Unreadable/invalid reproducer files and unknown oracle
            # names (UnknownComponentError is a KeyError) alike.
            print("error: %s" % exc, file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(verdict.as_dict(), sort_keys=True,
                             indent=2))
        elif verdict.ok:
            print("reproducer %s: PASS (%s no longer diverges)"
                  % (args.repro_path, verdict.point.label))
        else:
            print("reproducer %s: FAIL [%s] %s"
                  % (args.repro_path, verdict.oracle, verdict.detail))
        return 0 if verdict.ok else 1

    seed = 0 if args.seed is None else args.seed
    count = 25 if args.count is None else args.count
    budget = fuzz.DEFAULT_BUDGET if args.budget is None else args.budget
    oracles = list(args.oracle or ("dense-event",))
    try:
        for name in oracles:
            component_registry("oracle").entry(name)
    except UnknownComponentError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    report = fuzz.run_campaign(seed, count, oracles, budget=budget,
                               jobs=args.jobs, corpus_dir=args.corpus,
                               progress=progress)
    if args.json:
        print(json.dumps(report.as_dict(), sort_keys=True, indent=2))
        return 0 if report.ok else 1
    rows = [(v.point.label, v.oracle, v.point.defense,
             v.point.workload, "ok" if v.ok else "FAIL")
            for v in report.verdicts]
    print(format_table(
        ["point", "oracle", "defense", "workload", "verdict"], rows))
    if report.ok:
        print("fuzz: %d point(s) x %d oracle(s), no divergence"
              % (count, len(oracles)))
        return 0
    print("fuzz: %d failure(s); reproducers:" % len(report.failures))
    for path in report.reproducers:
        print("  %s" % path)
    return 1


def _cmd_attack(args) -> int:
    from repro.attacks import interference, spectre, spectre_rewind
    module = {"spectre": spectre, "rewind": spectre_rewind,
              "interference": interference}[args.which]
    if args.which == "spectre":
        outcome = module.run(args.defense, args.secret)
        print("secret:    %d" % outcome.secret)
        print("recovered: %d (%s)" % (
            outcome.recovered,
            "correct" if outcome.correct else "wrong"))
        print("timings:   %s" % dict(sorted(outcome.timings.items())))
    else:
        for bit in (0, 1):
            outcome = module.run(args.defense, bit)
            print("secret bit %d -> measured delta %d cycles"
                  % (bit, outcome.timings[0]))
    verdict = module.leaks(args.defense)
    print("verdict:   %s"
          % ("LEAKS under %s" % args.defense if verdict
             else "safe under %s" % args.defense))
    return 1 if verdict and args.defense != "Unsafe" else 0


def _cmd_lint(args) -> int:
    from repro.lintkit import BaselineError, detect_root, \
        report_to_json, run_lint
    root = args.root or detect_root()
    try:
        report = run_lint(root=root, select=args.select,
                          ignore=args.ignore, baseline=args.baseline)
    except (UnknownComponentError, BaselineError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    if args.json:
        print(report_to_json(report))
    else:
        print(report.render_text())
    return 0 if report.clean and not report.unused_suppressions() \
        else 1


def _cmd_list(args) -> int:
    load_plugins()  # plugin components must be enumerable
    if args.kind is None and not args.json and not args.tag:
        return _list_overview()
    kinds = ([KIND_ALIASES[args.kind]] if args.kind
             else sorted(all_registries()))
    payload = {}
    for kind in kinds:
        reg = component_registry(kind)
        payload[kind] = [reg.describe(name)
                         for name in reg.names(tag=args.tag)]
    if args.json:
        print(json.dumps(payload, sort_keys=True, indent=2))
        return 0
    for kind in kinds:
        rows = [(info["name"], ",".join(info["tags"]),
                 info["summary"]) for info in payload[kind]]
        print("%s components:" % kind)
        if rows:
            print(format_table(["name", "tags", "summary"], rows))
        else:
            print("  (none%s)" % (" with tag %r" % args.tag
                                  if args.tag else ""))
        print()
    return 0


def _list_overview() -> int:
    """The classic ``repro list`` text: suites + figure defenses, plus
    the registry kinds that hold the rest."""
    from repro.workloads.spec import PARSEC, SPEC2006, SPEC2017, WORKLOADS
    from repro.defenses import DEFENSES
    print("defenses:")
    for name in ["Unsafe"] + FIGURE_ORDER:
        print("  %s" % name)
    extras = [name for name in DEFENSES
              if name not in ["Unsafe"] + FIGURE_ORDER]
    if extras:
        print("  (+ %s)" % ", ".join(extras))
    for title, suite in (("SPEC CPU2006", SPEC2006),
                         ("SPECspeed 2017", SPEC2017),
                         ("Parsec (4 threads)", PARSEC)):
        print("%s:" % title)
        print("  " + ", ".join(spec.name for spec in suite))
    synth = WORKLOADS.names(tag="synthetic")
    print("synthetic kernels (parameterizable, e.g. "
          "\"pointer_chase(stride=128)\"):")
    print("  " + ", ".join(synth))
    print("more: `repro list {defenses,workloads,predictors,"
          "hierarchies,lints} [--json]`, `repro describe SPEC`")
    return 0


def _cmd_describe(args) -> int:
    load_plugins()
    kinds = ([KIND_ALIASES[args.kind]] if args.kind
             else sorted(all_registries()))
    info = None
    misses = []
    for kind in kinds:
        reg = component_registry(kind)
        try:
            info = reg.describe(args.spec)
            break
        except UnknownComponentError as exc:
            misses.append(exc)
        except SpecError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
    if info is None:
        for exc in misses:
            if exc.suggestions:
                print("error: %s" % exc, file=sys.stderr)
                return 2
        print("error: no %s component answers to %r"
              % ("/".join(kinds), args.spec), file=sys.stderr)
        return 2
    # Defense/workload specs are cheap to resolve; show the result.
    if info["kind"] in ("defense", "workload"):
        try:
            obj = component_registry(info["kind"]).create(args.spec)
            if info["kind"] == "defense":
                from repro.exp.spec import _defense_descriptor
                info["resolved"] = _defense_descriptor(obj)
            else:
                info["resolved"] = dataclasses.asdict(obj)
        except (SpecError, TypeError, ValueError) as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
    if args.json:
        print(json.dumps(info, sort_keys=True, indent=2))
        return 0
    for key in ("kind", "name", "summary", "tags", "factory", "spec"):
        if info.get(key):
            print("%-9s %s" % (key + ":", info[key]))
    params = info.get("params") or []
    if params:
        print("params:")
        print(format_table(
            ["name", "default"],
            [(row["name"],
              "(required)" if row["required"] else row["default"])
             for row in params]))
    if info.get("preset"):
        print("preset:   %s" % ", ".join(
            "%s=%s" % kv for kv in sorted(info["preset"].items())))
    meta = info.get("metadata") or {}
    if meta.get("contract"):  # lint checkers carry their invariant
        print("contract: %s" % meta["contract"])
    if meta.get("codes"):
        print("codes:")
        print(format_table(["code", "meaning"],
                           sorted(meta["codes"].items())))
    if info.get("resolved"):
        print("resolves to:")
        print(json.dumps(info["resolved"], sort_keys=True, indent=2))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handler = {
        "run": _cmd_run,
        "compare": _cmd_compare,
        "figure": _cmd_figure,
        "sweep": _cmd_sweep,
        "trace": _cmd_trace,
        "merge": _cmd_merge,
        "report": _cmd_report,
        "store": _cmd_store,
        "cache": _cmd_cache,
        "bench": _cmd_bench,
        "fuzz": _cmd_fuzz,
        "attack": _cmd_attack,
        "lint": _cmd_lint,
        "list": _cmd_list,
        "describe": _cmd_describe,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
