"""Per-component snapshot/restore contract.

Every stateful simulated component mixes in :class:`SnapshotMixin` and
gains two methods:

* :meth:`~SnapshotMixin.snapshot_state` — capture the component's own
  mutable state as an inert value (a dict of deep-copied fields);
* :meth:`~SnapshotMixin.restore_state` — re-install a captured state
  **in place**, leaving the component's wiring (its :class:`Stats`
  registry, config objects, references to neighbouring components)
  untouched.

Two rules make the contract precise:

1. **Wiring is excluded, state is included.**  Each class lists its
   wiring fields in ``_SNAPSHOT_EXCLUDE`` (shared ``stats`` objects,
   immutable config, back-references like a hierarchy's ``shared``
   memory).  Everything else — tables, queues, registers, counters — is
   captured.  Excluding by list (rather than including by list) means a
   newly added mutable field is snapshotted by default; forgetting to
   exclude wiring shows up immediately as an over-deep copy, while
   forgetting to *include* state would silently corrupt restores.
2. **Sub-components restore in place.**  A field whose value is itself
   a :class:`SnapshotMixin` (a core's branch predictor, a hierarchy's
   L1 port) is recursed into rather than replaced, so the sub-object's
   identity — and every handle other components hold to it — survives a
   restore.

All plain fields of one component are copied through a *single* deepcopy
memo, so aliasing between fields (the same in-flight instruction queued
in both the ROB and the load queue) is preserved within the snapshot.
Aliasing *across* components (an MSHR entry's pointer into another
component's request) is intentionally out of scope here: whole-machine
checkpoints serialize the entire object graph in one piece via
:meth:`repro.sim.simulator.Simulator.snapshot` (see
:mod:`repro.sim.checkpoint`), which is the only way to keep
cross-component identity intact.  The component-level contract exists
for targeted state save/restore — unit tests, future incremental
checkpoint formats, interactive debugging — on quiesced components.
"""

from __future__ import annotations

import copy
from typing import Dict, Iterator, Tuple


class NestedState:
    """Marker wrapping a sub-component's captured state inside a parent
    snapshot, so :meth:`SnapshotMixin.restore_state` knows to recurse
    in place instead of assigning over the sub-object."""

    __slots__ = ("state",)

    def __init__(self, state: Dict[str, object]) -> None:
        self.state = state


def _state_items(obj: object) -> Iterator[Tuple[str, object]]:
    """All attribute (name, value) pairs of ``obj``: instance ``__dict__``
    plus any ``__slots__`` declared anywhere in the MRO."""
    if hasattr(obj, "__dict__"):
        for item in obj.__dict__.items():
            yield item
    seen = set()
    for cls in type(obj).__mro__:
        for name in getattr(cls, "__slots__", ()):
            if name in seen or name in ("__dict__", "__weakref__"):
                continue
            seen.add(name)
            if hasattr(obj, name):
                yield name, getattr(obj, name)


class SnapshotMixin:
    """Adds the snapshot/restore contract described in the module doc."""

    #: Wiring fields never captured (shared registries, config, and
    #: back-references into neighbouring components).  Subclasses extend
    #: this tuple; field names absent from an instance are ignored.
    _SNAPSHOT_EXCLUDE: Tuple[str, ...] = ()

    def snapshot_state(self) -> Dict[str, object]:
        """Deep-copied dict of this component's own mutable state."""
        plain: Dict[str, object] = {}
        nested: Dict[str, Dict[str, object]] = {}
        exclude = self._SNAPSHOT_EXCLUDE
        for name, value in _state_items(self):
            if name in exclude:
                continue
            if isinstance(value, SnapshotMixin):
                nested[name] = value.snapshot_state()
            else:
                plain[name] = value
        memo: Dict[int, object] = {}
        state: Dict[str, object] = {
            name: copy.deepcopy(value, memo)
            for name, value in plain.items()}
        for name, sub in nested.items():
            state[name] = NestedState(sub)
        return state

    def restore_state(self, state: Dict[str, object]) -> None:
        """Re-install a :meth:`snapshot_state` capture in place.

        The snapshot itself is left reusable (values are copied out of
        it), and sub-components are restored through their own
        ``restore_state`` so object identity — and all external
        references to them — is preserved.
        """
        memo: Dict[int, object] = {}
        for name, value in state.items():
            if isinstance(value, NestedState):
                getattr(self, name).restore_state(value.state)
            else:
                setattr(self, name, copy.deepcopy(value, memo))
