"""The GhostMinion: a TimeGuarded speculative cache compartment (§4).

A Minion sits next to an L1 and is accessed in parallel with it.  It
buffers the lines brought in by speculative loads and enforces Temporal
Order with *TimeGuarding*:

* **read rule** (fig. 4a): a load may only see a line whose timestamp is
  at-or-before its own — younger lines are invisible, so concurrent
  misspeculation cannot transmit backwards in time;
* **fill rule** (fig. 4b): a fill may only take a free slot or overwrite a
  line at an equal-or-greater timestamp; when a set offers neither, the
  fill *fails* and the data is returned to the CPU uncached;
* **free-slotting** (fig. 3): at commit, the line is moved to the L1 and
  evicted from the Minion, leaving a free slot for speculative fills;
* **wipe** (§4.2): on misspeculation, all lines *above* the squash
  timestamp are cleared in a single cycle (not the whole structure —
  footnote 2).

Timestamps here are monotone integers; ``repro.core.timestamp`` provides
(and tests) the 2x-ROB wrap-around hardware encoding, and an optional
cross-check asserts both agree (DESIGN.md note 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.stats import Stats
from repro.core.timestamp import TimestampWindow
from repro.snapshot import SnapshotMixin


class MinionLine:
    """One Minion slot: a tag plus the TimeGuard timestamp."""

    __slots__ = ("line", "ts", "version", "src_level")

    def __init__(self, line: int, ts: int, version: int = 0,
                 src_level: int = 3) -> None:
        self.line = line
        self.ts = ts
        self.version = version      # coherence version at fill time
        self.src_level = src_level  # level data came from (prefetch notify)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "MinionLine(%#x, ts=%d)" % (self.line, self.ts)


@dataclass
class FillOutcome:
    """Result of attempting a TimeGuarded fill."""

    filled: bool
    evicted: Optional[int] = None   # line number displaced, if any
    took_free_slot: bool = False


class Minion(SnapshotMixin):
    """Set-associative TimeGuarded speculative buffer."""

    #: Snapshot contract: the tag/timestamp sets are the state (the
    #: stateless ``_window`` cross-checker rides along harmlessly).
    _SNAPSHOT_EXCLUDE = ("stats",)

    def __init__(self, num_sets: int, assoc: int, name: str = "minion",
                 stats: Optional[Stats] = None, timeless: bool = False,
                 rob_entries: int = 0) -> None:
        if num_sets < 1 or assoc < 1:
            raise ValueError("minion must have at least one set and way")
        self.num_sets = num_sets
        self.assoc = assoc
        self.name = name
        self.stats = stats if stats is not None else Stats()
        # DMinion-Timeless (fig. 9): no timestamp concept — wiped fully on
        # squash, but reads/fills ignore Temporal Order.
        self.timeless = timeless
        # Optional hardware-encoding cross-check (DESIGN.md note 2).
        self._window = (TimestampWindow(rob_entries)
                        if rob_entries > 0 else None)
        self._sets: List[Dict[int, MinionLine]] = [
            {} for _ in range(num_sets)]
        # Read-path handles are public: defense hierarchies emit them in
        # their stall-proof dry-runs (see _probe_stall_bumps overrides).
        self.h_misses = self.stats.handle(name + ".misses")
        self.h_timeguard_blocks = self.stats.handle(
            name + ".timeguard_blocks")
        self.h_read_hits = self.stats.handle(name + ".read_hits")
        self._h_fills = self.stats.handle(name + ".fills")
        self._h_fill_fails = self.stats.handle(name + ".fill_fails")
        self._h_fill_evictions = self.stats.handle(name + ".fill_evictions")
        self._h_commit_moves = self.stats.handle(name + ".commit_moves")
        self._h_wipes = self.stats.handle(name + ".wipes")
        self._h_wiped_lines = self.stats.handle(name + ".wiped_lines")
        self._h_invalidations = self.stats.handle(name + ".invalidations")

    # -- geometry -------------------------------------------------------

    def set_index(self, line: int) -> int:
        return line % self.num_sets

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def lines(self) -> Iterator[MinionLine]:
        for minion_set in self._sets:
            for entry in minion_set.values():
                yield entry

    def get(self, line: int) -> Optional[MinionLine]:
        return self._sets[self.set_index(line)].get(line)

    def _check_window(self, ts_a: int, ts_b: int, monotone: bool) -> None:
        """Assert the wrap-around encoding agrees with the monotone one."""
        if self._window is None:
            return
        if not self._window.in_flight_together(ts_a, ts_b):
            return  # hardware never compares timestamps this far apart
        enc = self._window.precedes_or_equal(
            self._window.encode(ts_a), self._window.encode(ts_b))
        if enc != monotone:  # pragma: no cover - invariant guard
            raise AssertionError(
                "window/monotone disagreement: %d vs %d" % (ts_a, ts_b))

    # -- TimeGuarded read (fig. 4a) --------------------------------------

    def read(self, line: int, ts: int) -> str:
        """Attempt a read at timestamp ``ts``.

        Returns ``'hit'``, ``'timeguard'`` (line present but younger than
        the reader, so invisible), or ``'miss'``.
        """
        entry = self.get(line)
        if entry is None:
            self.stats.add(self.h_misses)
            return "miss"
        if not self.timeless and entry.ts > ts:
            self._check_window(entry.ts, ts, False)
            self.stats.add(self.h_timeguard_blocks)
            return "timeguard"
        if not self.timeless:
            self._check_window(entry.ts, ts, True)
        self.stats.add(self.h_read_hits)
        return "hit"

    def probe(self, line: int, ts: int) -> bool:
        """Side-effect-free presence check at timestamp ``ts``.

        ``True`` iff :meth:`read` would hit — but without counting an
        access.  Used by the fetch stage's per-cycle presence poll (and
        by the event-driven scheduler's stall analysis), which must not
        perturb counters while a core spins on a pending miss.
        """
        entry = self.get(line)
        if entry is None:
            return False
        return self.timeless or entry.ts <= ts

    def probe_outcome(self, line: int, ts: int) -> str:
        """Side-effect-free form of :meth:`read`: the same
        ``'hit'``/``'timeguard'``/``'miss'`` verdict, no counters.

        The scheduler's stall analysis needs the full three-way outcome
        (not just presence) to predict which counters a blocked access
        would bump each cycle it retries.
        """
        entry = self.get(line)
        if entry is None:
            return "miss"
        if not self.timeless and entry.ts > ts:
            return "timeguard"
        return "hit"

    # -- TimeGuarded fill (figs. 3, 4b) ----------------------------------

    def fill(self, line: int, ts: int, version: int = 0,
             src_level: int = 3) -> FillOutcome:
        """Attempt a fill at timestamp ``ts``.

        Policy (footnote 4): take a free slot if one exists; otherwise
        evict the *highest*-timestamped line that is at-or-above ``ts``;
        otherwise fail — only the highest-timestamped instruction may
        learn the Minion is full.
        """
        minion_set = self._sets[self.set_index(line)]
        existing = minion_set.get(line)
        if existing is not None:
            # Same line already present.  Overwrite rule still applies:
            # an older fill may lower the timestamp; a younger fill must
            # not disturb an older line (it simply isn't cached again).
            if self.timeless or existing.ts >= ts:
                existing.ts = min(existing.ts, ts)
                existing.version = version
                existing.src_level = min(existing.src_level, src_level)
                self.stats.add(self._h_fills)
                return FillOutcome(filled=True)
            self.stats.add(self._h_fill_fails)
            return FillOutcome(filled=False)
        if len(minion_set) < self.assoc:
            minion_set[line] = MinionLine(line, ts, version, src_level)
            self.stats.add(self._h_fills)
            return FillOutcome(filled=True, took_free_slot=True)
        if self.timeless:
            # No timestamp concept: evict an arbitrary (oldest-inserted)
            # victim, as a plain speculative buffer would.
            victim = next(iter(minion_set.values())).line
        else:
            candidates = [e for e in minion_set.values() if e.ts >= ts]
            if not candidates:
                self.stats.add(self._h_fill_fails)
                return FillOutcome(filled=False)
            victim = max(candidates, key=lambda e: e.ts).line
            self._check_window(ts, minion_set[victim].ts, True)
        del minion_set[victim]
        minion_set[line] = MinionLine(line, ts, version, src_level)
        self.stats.add(self._h_fills)
        self.stats.add(self._h_fill_evictions)
        return FillOutcome(filled=True, evicted=victim)

    # -- commit (fig. 3) --------------------------------------------------

    def take_for_commit(self, line: int, ts: int) -> Optional[MinionLine]:
        """On commit of a load: if the Minion holds a line the committing
        instruction may validly read, remove and return it (the caller
        writes it to the L1, leaving a free slot here)."""
        entry = self.get(line)
        if entry is None:
            return None
        if not self.timeless and entry.ts > ts:
            # Present, but brought in by a logically younger instruction:
            # invisible to this commit.
            return None
        del self._sets[self.set_index(line)][line]
        self.stats.add(self._h_commit_moves)
        return entry

    # -- squash (§4.2) ----------------------------------------------------

    def wipe_above(self, ts: int) -> int:
        """Single-cycle wipe of every line *above* the squash timestamp.

        Unlike MuonTrap, lines at-or-below survive (footnote 2): the
        discovered misspeculation may itself be speculative.
        Timeless Minions wipe everything.
        """
        wiped = 0
        for minion_set in self._sets:
            if self.timeless:
                wiped += len(minion_set)
                minion_set.clear()
                continue
            doomed = [line for line, e in minion_set.items() if e.ts > ts]
            for line in doomed:
                del minion_set[line]
            wiped += len(doomed)
        self.stats.add(self._h_wipes)
        self.stats.add(self._h_wiped_lines, wiped)
        return wiped

    def invalidate(self, line: int) -> bool:
        """Coherence invalidation of a single line."""
        minion_set = self._sets[self.set_index(line)]
        if line in minion_set:
            del minion_set[line]
            self.stats.add(self._h_invalidations)
            return True
        return False

    def contents(self) -> List[Tuple[int, int]]:
        """Sorted (line, ts) pairs — handy for tests."""
        return sorted((e.line, e.ts) for e in self.lines())
