"""The paper's primary contribution: Strictness Ordering and GhostMinion.

``strictness``
    Executable formal model of Strictness Order (definition 1) and
    Temporal Order (definition 2).
``timestamp``
    The 2x-ROB sliding-window timestamp arithmetic of section 4.4.
``ghostminion``
    The TimeGuarded Minion cache structure (figs. 3 and 4).
"""

from repro.core.ghostminion import Minion, MinionLine, FillOutcome
from repro.core.strictness import (
    InstDesc,
    strictly_observes,
    temporally_succeeds,
    may_influence_timing,
)
from repro.core.timestamp import TimestampWindow

__all__ = [
    "Minion",
    "MinionLine",
    "FillOutcome",
    "InstDesc",
    "strictly_observes",
    "temporally_succeeds",
    "may_influence_timing",
    "TimestampWindow",
]
