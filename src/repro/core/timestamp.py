"""Sliding-window timestamp arithmetic (section 4.4, footnote 5).

The paper sizes the TimeGuard timestamp space at twice the number of
reorder-buffer entries: since at most ``N`` instructions are in flight at
once and timestamps are allocated in order, an instruction at timestamp
``t`` can only coexist with instructions in ``t .. (t + N) mod 2N``.  A
wrapped comparison over that window is therefore exact.

The cycle-level simulator internally carries monotone global sequence
numbers (which never wrap and are trivially comparable); this module
implements the *hardware* encoding and is used to cross-check that the
windowed comparison always agrees with the monotone one whenever both
instructions are legally in flight together (tests/core/test_timestamp.py).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TimestampWindow:
    """Wrap-around timestamp space of size ``2 * rob_entries``.

    ``encode`` maps a monotone sequence number into the window;
    ``precedes_or_equal`` answers "is x at-or-before y" for two encoded
    timestamps that are guaranteed to be within ``rob_entries`` of each
    other (the hardware invariant).
    """

    rob_entries: int

    def __post_init__(self) -> None:
        if self.rob_entries < 1:
            raise ValueError("ROB must have at least one entry")
        self.modulus = 2 * self.rob_entries

    def encode(self, seq: int) -> int:
        """Hardware encoding of a monotone sequence number."""
        if seq < 0:
            raise ValueError("sequence numbers are non-negative")
        return seq % self.modulus

    def distance(self, ts_from: int, ts_to: int) -> int:
        """Forward distance from ``ts_from`` to ``ts_to`` in the window."""
        return (ts_to - ts_from) % self.modulus

    def precedes_or_equal(self, ts_x: int, ts_y: int) -> bool:
        """True iff x was allocated at-or-before y.

        Exact provided ``|seq_x - seq_y| <= rob_entries``, which the ROB
        guarantees for concurrently live instructions.
        """
        return self.distance(ts_x, ts_y) <= self.rob_entries

    def may_read(self, inst_ts: int, line_ts: int) -> bool:
        """TimeGuard read rule (fig. 4a): line visible iff its timestamp
        is at-or-before the reading instruction's."""
        return self.precedes_or_equal(line_ts, inst_ts)

    def may_overwrite(self, inst_ts: int, line_ts: int) -> bool:
        """TimeGuard fill rule (fig. 4b): a fill may only overwrite data
        at a greater-than-or-equal timestamp."""
        return self.precedes_or_equal(inst_ts, line_ts)

    def in_flight_together(self, seq_x: int, seq_y: int) -> bool:
        """Whether two monotone sequence numbers could legally coexist in
        a ROB of this size (used by the cross-check tests).

        A ROB of N entries holds sequence numbers spanning at most N-1,
        so coexistence requires strict distance below N.
        """
        return abs(seq_x - seq_y) < self.rob_entries
