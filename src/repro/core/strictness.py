"""Executable model of Strictness Order and Temporal Order (section 3).

The paper defines two relations over executed instructions:

Definition 1 (Strictness Ordering)
    ``x S=> y`` (y can strictly observe x; x may impact y's timing) iff
    ``commit(y) -> commit(x)``.

Definition 2 (Temporal Ordering)
    ``x T=> y`` iff ``commit(x) or seq(x, y)``.

This module encodes both over lightweight instruction descriptors so the
properties claimed in section 3 can be *checked*, not just asserted:

* Strictness Order is a preorder (reflexive, transitive).
* Within a single thread it is total.
* Temporal Order implies Strictness Order for pipelines that restart at
  the last correct instruction (the paper's overapproximation theorem).
* The security theorem: a transient instruction can never strictly
  transmit to a committed one.

The cycle simulator uses the same predicates to police its own timing
decisions in debug mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class InstDesc:
    """Minimal description of an executed instruction for the relations.

    ``thread``
        Hardware thread the instruction executed on.
    ``seq``
        Program-order position within its thread (the order the frontend
        issued it, which for a restart-at-last-correct-instruction pipeline
        is also speculation order).
    ``commits``
        Whether the instruction is guaranteed to reach the end of the
        pipeline without being squashed (or already has).
    """

    thread: int
    seq: int
    commits: bool


def seq_before(x: InstDesc, y: InstDesc) -> bool:
    """``seq(x, y)``: x occurs before y in the same thread's sequence."""
    return x.thread == y.thread and x.seq < y.seq


def strictly_observes(x: InstDesc, y: InstDesc) -> bool:
    """``x S=> y`` (definition 1): x may impact the execution time of y.

    Holds iff ``commit(y) -> commit(x)``, i.e. either y never commits, or
    x (also) commits.
    """
    return (not y.commits) or x.commits


def temporally_succeeds(x: InstDesc, y: InstDesc) -> bool:
    """``x T=> y`` (definition 2): x may impact the execution time of y.

    Holds iff x commits, or x precedes y in the same thread's sequence.
    """
    return x.commits or seq_before(x, y)


def may_influence_timing(x: InstDesc, y: InstDesc,
                         temporal: bool = False) -> bool:
    """Unified query used by the simulator's debug assertions."""
    if temporal:
        return temporally_succeeds(x, y)
    return strictly_observes(x, y)


def consistent_commit_sets(insts: Iterable[InstDesc]) -> bool:
    """Check the pipeline invariant the theorems rely on: within a thread,
    committed instructions form a prefix-closed set under program order
    (an instruction commits only if every earlier one in its thread does).

    Descriptor sets produced by a restart-at-last-correct-instruction
    pipeline always satisfy this; test generators use it as a filter.
    """
    insts = list(insts)
    for x in insts:
        for y in insts:
            if seq_before(x, y) and y.commits and not x.commits:
                return False
    return True


def temporal_implies_strict(x: InstDesc, y: InstDesc) -> bool:
    """The overapproximation theorem instance for a pair: if the commit
    sets are consistent, ``x T=> y`` implies ``x S=> y``.

    Returns True when the implication holds for this pair (vacuously when
    ``x T=> y`` does not hold).
    """
    if not consistent_commit_sets([x, y]):
        raise ValueError("pair violates the pipeline commit invariant")
    return (not temporally_succeeds(x, y)) or strictly_observes(x, y)


def transmission_allowed(x: InstDesc, y: InstDesc) -> bool:
    """Alias with the paper's reading: may information (including timing
    side channels) flow from x to y?"""
    return strictly_observes(x, y)
