"""One-call experiment drivers used by the benches and examples.

``run_program``/``run_workload`` simulate a single point in-process and
return the full :class:`RunResult` (live cores included).
``compare_defenses`` is a thin wrapper over the experiment engine
(:mod:`repro.exp`): it builds a workloads x defenses sweep, optionally
fans it out over worker processes and consults the on-disk result
cache, and returns the classic ``{workload: {defense: RunResult}}``
table (engine-produced results carry no live cores).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterable, List, Optional, Union

from repro.config import SystemConfig, default_config
from repro.defenses.base import Defense
from repro.exp.spec import resolve_defense, resolve_workload
from repro.pipeline.program import Program
from repro.sim.simulator import RunResult, Simulator
from repro.workloads.spec import WorkloadSpec


def default_scale() -> float:
    """Global scale knob for experiment sizes (iteration counts).

    Resolved from ``REPRO_SCALE`` lazily at *call* time, so setting the
    variable after import is honoured.  The benches use it so a quick
    smoke run and a full run share one code path.
    """
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def run_program(program: Union[Program, List[Program]],
                defense: Union[str, Defense],
                cfg: Optional[SystemConfig] = None,
                max_cycles: int = 5_000_000,
                max_insts: Optional[int] = None) -> RunResult:
    """Simulate ``program`` under ``defense`` and return the result.

    ``defense`` accepts a :class:`Defense`, a registry name, or a spec
    string — resolution is the registry-backed
    :func:`repro.exp.spec.resolve_defense`, the same path the engine
    uses.
    """
    simulator = Simulator(program, resolve_defense(defense), cfg=cfg)
    return simulator.run(max_cycles=max_cycles, max_insts=max_insts)


def run_workload(workload: Union[str, WorkloadSpec],
                 defense: Union[str, Defense],
                 scale: Optional[float] = None,
                 cfg: Optional[SystemConfig] = None,
                 max_cycles: int = 5_000_000,
                 max_insts: Optional[int] = None) -> RunResult:
    """Build a named (or spec-string) workload and simulate it under
    ``defense``."""
    spec = resolve_workload(workload)
    programs = spec.build(scale if scale is not None else default_scale())
    if cfg is None:
        cfg = default_config(cores=len(programs))
    return run_program(programs, defense, cfg=cfg, max_cycles=max_cycles,
                       max_insts=max_insts)


def compare_defenses(workloads: Iterable[Union[str, WorkloadSpec]],
                     defenses: Iterable[Union[str, Defense]],
                     scale: Optional[float] = None,
                     cfg: Optional[SystemConfig] = None,
                     jobs: Optional[int] = None,
                     cache: object = None,
                     progress: Optional[Callable] = None,
                     max_insts: Optional[int] = None
                     ) -> Dict[str, Dict[str, RunResult]]:
    """Run every (workload, defense) pair through the experiment engine.

    Returns ``{workload_name: {defense_name: RunResult}}``.  ``jobs``
    fans points out over worker processes (default serial; see
    ``REPRO_JOBS``); ``cache`` enables the on-disk result cache
    (``True``, a directory path, or a :class:`repro.exp.ResultCache`);
    ``max_insts`` declaratively caps every point's simulation length.
    """
    from repro.exp import Sweep, run_sweep
    sweep = Sweep(name="compare", workloads=list(workloads),
                  defenses=list(defenses), scale=scale, base_cfg=cfg,
                  max_insts=max_insts)
    report = run_sweep(sweep, jobs=jobs, cache=cache, progress=progress)
    return report.results.as_run_results()


def normalised_times(results: Dict[str, Dict[str, RunResult]],
                     baseline: str = "Unsafe"
                     ) -> Dict[str, Dict[str, float]]:
    """Execution time of each defense normalised to ``baseline``
    (the y-axis of figs. 6-8)."""
    table: Dict[str, Dict[str, float]] = {}
    for workload, row in results.items():
        if baseline not in row:
            raise KeyError("baseline %r missing for %s"
                           % (baseline, workload))
        base_cycles = row[baseline].cycles
        table[workload] = {
            name: result.cycles / base_cycles
            for name, result in row.items() if name != baseline}
    return table
