"""One-call experiment drivers used by the benches and examples."""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Union

from repro.config import SystemConfig, default_config
from repro.defenses import registry
from repro.defenses.base import Defense
from repro.pipeline.program import Program
from repro.sim.simulator import RunResult, Simulator
from repro.workloads.spec import WorkloadSpec, get_workload

#: Global scale knob for experiment sizes (iteration counts).  The
#: benches honour ``REPRO_SCALE`` so a quick smoke run and a full run use
#: the same code.
DEFAULT_SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))


def _resolve_defense(defense: Union[str, Defense]) -> Defense:
    if isinstance(defense, Defense):
        return defense
    if defense not in registry:
        raise KeyError("unknown defense %r (have: %s)"
                       % (defense, ", ".join(sorted(registry))))
    return registry[defense]()


def run_program(program: Union[Program, List[Program]],
                defense: Union[str, Defense],
                cfg: Optional[SystemConfig] = None,
                max_cycles: int = 5_000_000,
                max_insts: Optional[int] = None) -> RunResult:
    """Simulate ``program`` under ``defense`` and return the result."""
    simulator = Simulator(program, _resolve_defense(defense), cfg=cfg)
    return simulator.run(max_cycles=max_cycles, max_insts=max_insts)


def run_workload(workload: Union[str, WorkloadSpec],
                 defense: Union[str, Defense],
                 scale: Optional[float] = None,
                 cfg: Optional[SystemConfig] = None,
                 max_cycles: int = 5_000_000) -> RunResult:
    """Build a named workload and simulate it under ``defense``."""
    spec = (get_workload(workload) if isinstance(workload, str)
            else workload)
    programs = spec.build(scale if scale is not None else DEFAULT_SCALE)
    if cfg is None:
        cfg = default_config(cores=len(programs))
    return run_program(programs, defense, cfg=cfg, max_cycles=max_cycles)


def compare_defenses(workloads: Iterable[Union[str, WorkloadSpec]],
                     defenses: Iterable[Union[str, Defense]],
                     scale: Optional[float] = None,
                     cfg: Optional[SystemConfig] = None
                     ) -> Dict[str, Dict[str, RunResult]]:
    """Run every (workload, defense) pair.

    Returns ``{workload_name: {defense_name: RunResult}}``.
    """
    results: Dict[str, Dict[str, RunResult]] = {}
    for workload in workloads:
        spec = (get_workload(workload) if isinstance(workload, str)
                else workload)
        row: Dict[str, RunResult] = {}
        for defense in defenses:
            resolved = _resolve_defense(defense)
            row[resolved.name] = run_workload(spec, resolved, scale=scale,
                                              cfg=cfg)
        results[spec.name] = row
    return results


def normalised_times(results: Dict[str, Dict[str, RunResult]],
                     baseline: str = "Unsafe"
                     ) -> Dict[str, Dict[str, float]]:
    """Execution time of each defense normalised to ``baseline``
    (the y-axis of figs. 6-8)."""
    table: Dict[str, Dict[str, float]] = {}
    for workload, row in results.items():
        if baseline not in row:
            raise KeyError("baseline %r missing for %s"
                           % (baseline, workload))
        base_cycles = row[baseline].cycles
        table[workload] = {
            name: result.cycles / base_cycles
            for name, result in row.items() if name != baseline}
    return table
