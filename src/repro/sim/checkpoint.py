"""Whole-machine checkpoint serialization.

A checkpoint is the complete :class:`~repro.sim.simulator.Simulator`
object graph — cores (architectural registers, ROB/IQ/LSQ, predictor,
rename state), per-core hierarchies (L1s, Minions, MSHR files), the
shared memory system (L2, DRAM row buffers, directory, prefetcher), the
functional memory image and all statistics counters — captured between
two simulated cycles and serialized in **one piece**, so every
cross-component reference (an in-flight instruction's memory request
queued inside an MSHR entry, a fill action bound to its hierarchy)
survives the round trip with identity intact.  Restoring a checkpoint
and continuing is byte-identical to never having stopped: cycles, the
full stats dict and architectural registers all match a cold run
(gated by the matrix in ``tests/test_scheduler_equivalence.py``).

The wire format is a zlib-compressed pickle of a header + state dict.
The header carries the blob format version and the producing tree's
:func:`~repro.exp.spec.code_fingerprint`, and restore refuses blobs
from a different format or source tree: simulator state is an internal
structure, and interpreting it with different code would silently mix
numbers from two simulators.  (Checkpoints stored in the result store
are additionally *keyed* by a prefix digest that folds the same
fingerprint in, so a stale blob is never even looked up — the header
check is the belt to that suspender for blobs passed around by hand.)

Per-component state save/restore — without whole-graph identity — is a
separate, lighter contract: see :mod:`repro.snapshot`.
"""

from __future__ import annotations

import pickle
import zlib
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import Simulator

#: Bump on incompatible changes to the blob layout *or* to what a
#: restored simulator is allowed to assume about its state.  Folded into
#: checkpoint prefix digests, so a bump orphans (rather than corrupts)
#: every stored checkpoint.
CHECKPOINT_FORMAT = 1


class CheckpointError(RuntimeError):
    """Unusable checkpoint blob (corrupt, wrong format, wrong tree)."""


def _code_fingerprint() -> str:
    # Imported lazily: repro.exp.spec imports this module for
    # CHECKPOINT_FORMAT, and module-level cross-imports would cycle.
    from repro.exp.spec import code_fingerprint
    return code_fingerprint()


def snapshot_simulator(sim: "Simulator") -> bytes:
    """Serialize ``sim`` (between cycles) into a self-describing blob."""
    payload = {
        "format": CHECKPOINT_FORMAT,
        "code": _code_fingerprint(),
        "sim": sim,
    }
    return zlib.compress(
        pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))


def restore_simulator(blob: bytes, check_code: bool = True
                      ) -> "Simulator":
    """Rebuild a live :class:`Simulator` from a snapshot blob.

    ``check_code=False`` skips the source-tree fingerprint check (the
    store path already keys blobs by a digest covering the fingerprint,
    so the lookup itself guarantees a match).
    """
    from repro.sim.simulator import Simulator
    try:
        payload = pickle.loads(zlib.decompress(blob))
    except Exception as exc:
        raise CheckpointError("undecodable checkpoint blob: %s"
                              % exc) from exc
    if not isinstance(payload, dict) or \
            payload.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            "checkpoint format %r not supported (this build speaks %d)"
            % (payload.get("format") if isinstance(payload, dict)
               else None, CHECKPOINT_FORMAT))
    if check_code and payload.get("code") != _code_fingerprint():
        raise CheckpointError(
            "checkpoint was produced by a different source tree; "
            "refusing to resume it (re-run the warm-up instead)")
    sim = payload.get("sim")
    if not isinstance(sim, Simulator):
        raise CheckpointError("checkpoint blob holds no simulator")
    return sim
