"""Multi-core event-driven simulator with a dense-loop cross-check mode.

One :class:`Simulator` owns the shared memory system (L2, DRAM,
directory, prefetcher), one :class:`repro.pipeline.core.Core` per thread,
and the shared functional memory.  Cores step round-robin each cycle
until every program HALTs (or a cycle/instruction cap fires).

Two schedulers drive the stepping:

* the **event-driven** default: after each stepped cycle, every core is
  asked for its :meth:`~repro.pipeline.core.Core.next_event_cycle` — a
  proof that stepping it before some wakeup cycle is a no-op apart from
  a fixed set of per-cycle stall-counter bumps.  When every core is
  provably stalled, the clock jumps straight to the earliest wakeup
  (pending MSHR fill, load/FU completion, commit/fetch stall release)
  and the skipped cycles' stall bumps are applied in bulk.  Memory-bound
  regions simulate in time proportional to *work*, not simulated
  latency.
* the **dense loop** (``REPRO_DENSE_LOOP=1`` or ``run(dense=True)``):
  the original step-every-core-every-cycle loop, kept reachable for
  differential testing.  Both schedulers are observably pure relative
  to each other: cycles, every stats counter, and architectural
  registers are byte-identical (see
  ``tests/test_scheduler_equivalence.py``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.stats import Stats
from repro.config import SystemConfig, default_config
from repro.defenses.base import Defense
from repro.memory.hierarchy import SharedMemory
from repro.pipeline.core import Core
from repro.pipeline.program import Program

#: Environment knob: any value other than ""/"0" forces the dense loop.
ENV_DENSE_LOOP = "REPRO_DENSE_LOOP"


def dense_loop_forced() -> bool:
    """Resolve ``REPRO_DENSE_LOOP`` lazily (at run time, not import)."""
    return os.environ.get(ENV_DENSE_LOOP, "") not in ("", "0")


@dataclass
class RunResult:
    """Outcome of one simulation."""

    cycles: int
    stats: Stats
    finished: bool
    cores: List[Core]
    #: Cycles the event-driven scheduler skipped over (0 under the dense
    #: loop).  Runtime telemetry only — never part of result payloads,
    #: which stay byte-identical across schedulers.
    skipped_cycles: int = field(default=0, compare=False)

    @property
    def insts(self) -> int:
        return int(self.stats.get("commit.insts"))

    @property
    def ipc(self) -> float:
        return self.stats.ipc()

    def arch_regs(self, core: int = 0) -> List[int]:
        return self.cores[core].arch_regs()


class Simulator:
    """A whole machine: N cores over a shared memory system."""

    def __init__(self, programs: Union[Program, Sequence[Program]],
                 defense: Defense,
                 cfg: Optional[SystemConfig] = None,
                 init_regs: Optional[Sequence[Dict[int, int]]] = None
                 ) -> None:
        if isinstance(programs, Program):
            programs = [programs]
        self.programs = list(programs)
        if cfg is None:
            cfg = default_config(cores=len(self.programs))
        if cfg.cores != len(self.programs):
            raise ValueError("config cores (%d) != programs (%d)"
                             % (cfg.cores, len(self.programs)))
        cfg.validate()
        self.cfg = cfg
        self.defense = defense
        self.stats = Stats()
        self.shared = SharedMemory(cfg, self.stats)
        # Shared functional memory: merged initial images.
        self.memory: Dict[int, int] = {}
        for program in self.programs:
            self.memory.update(program.memory)
        self.cores: List[Core] = []
        for core_id, program in enumerate(self.programs):
            hierarchy = defense.build_hierarchy(
                core_id, cfg, self.shared, self.stats)
            regs = (init_regs[core_id]
                    if init_regs is not None else None)
            self.cores.append(Core(core_id, program, cfg, defense,
                                   hierarchy, self.memory, self.stats,
                                   init_regs=regs))
        self.cycle = 0
        #: Telemetry: cycles the event-driven scheduler fast-forwarded.
        self.skipped_cycles = 0

    def run(self, max_cycles: int = 5_000_000,
            max_insts: Optional[int] = None,
            dense: Optional[bool] = None) -> RunResult:
        """Simulate until all cores halt or a cap fires.

        ``dense=None`` consults ``REPRO_DENSE_LOOP``; ``True`` forces
        the per-cycle reference loop, ``False`` the event-driven
        scheduler.  Both produce byte-identical results.
        """
        if dense is None:
            dense = dense_loop_forced()
        cores = self.cores
        while self.cycle < max_cycles:
            all_halted = True
            for core in cores:
                if not core.halted:
                    core.step(self.cycle)
                    if not core.halted:
                        all_halted = False
            self.cycle += 1
            if all_halted:
                break
            if max_insts is not None and \
                    self._committed_insts() >= max_insts:
                break
            if not dense:
                self._skip_idle_cycles(max_cycles)
        finished = all(core.halted for core in cores)
        self.stats.set("sim.cycles", self.cycle)
        return RunResult(cycles=self.cycle, stats=self.stats,
                         finished=finished, cores=cores,
                         skipped_cycles=self.skipped_cycles)

    def _committed_insts(self) -> int:
        """Total committed instructions, via plain integer counters (the
        per-cycle ``max_insts`` cap must not pay for a dict lookup)."""
        total = 0
        for core in self.cores:
            total += core.committed_insts
        return total

    def _skip_idle_cycles(self, max_cycles: int) -> None:
        """Fast-forward the clock while every core is provably stalled.

        Each core either vetoes the skip (``None``: it may make progress
        at the current cycle) or contributes a wakeup cycle plus the
        stall counters it would bump once per skipped cycle; the shared
        L2-DRAM system contributes its next fill completion.  Jumping to
        the minimum wakeup and applying the bumps in bulk is then
        observably identical to stepping every intervening cycle.
        """
        cycle = self.cycle
        wake = self.shared.next_event_cycle()
        bumps: List[int] = []
        for core in self.cores:
            if core.halted:
                continue
            outcome = core.next_event_cycle(cycle)
            if outcome is None:
                return
            core_wake, core_bumps = outcome
            if core_wake < wake:
                wake = core_wake
            bumps.extend(core_bumps)
        target = min(wake, max_cycles)
        skipped = int(target - cycle)
        if skipped <= 0:
            return
        stats = self.stats
        for handle in bumps:
            stats.add(handle, skipped)
        self.skipped_cycles += skipped
        self.cycle = cycle + skipped
