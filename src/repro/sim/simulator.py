"""Multi-core cycle-driven simulator.

One :class:`Simulator` owns the shared memory system (L2, DRAM,
directory, prefetcher), one :class:`repro.pipeline.core.Core` per thread,
and the shared functional memory.  Cores step round-robin each cycle
until every program HALTs (or a cycle/instruction cap fires).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.stats import Stats
from repro.config import SystemConfig, default_config
from repro.defenses.base import Defense
from repro.memory.hierarchy import SharedMemory
from repro.pipeline.core import Core
from repro.pipeline.program import Program


@dataclass
class RunResult:
    """Outcome of one simulation."""

    cycles: int
    stats: Stats
    finished: bool
    cores: List[Core]

    @property
    def insts(self) -> int:
        return int(self.stats.get("commit.insts"))

    @property
    def ipc(self) -> float:
        return self.stats.ipc()

    def arch_regs(self, core: int = 0) -> List[int]:
        return self.cores[core].arch_regs()


class Simulator:
    """A whole machine: N cores over a shared memory system."""

    def __init__(self, programs: Union[Program, Sequence[Program]],
                 defense: Defense,
                 cfg: Optional[SystemConfig] = None,
                 init_regs: Optional[Sequence[Dict[int, int]]] = None
                 ) -> None:
        if isinstance(programs, Program):
            programs = [programs]
        self.programs = list(programs)
        if cfg is None:
            cfg = default_config(cores=len(self.programs))
        if cfg.cores != len(self.programs):
            raise ValueError("config cores (%d) != programs (%d)"
                             % (cfg.cores, len(self.programs)))
        cfg.validate()
        self.cfg = cfg
        self.defense = defense
        self.stats = Stats()
        self.shared = SharedMemory(cfg, self.stats)
        # Shared functional memory: merged initial images.
        self.memory: Dict[int, int] = {}
        for program in self.programs:
            self.memory.update(program.memory)
        self.cores: List[Core] = []
        for core_id, program in enumerate(self.programs):
            hierarchy = defense.build_hierarchy(
                core_id, cfg, self.shared, self.stats)
            regs = (init_regs[core_id]
                    if init_regs is not None else None)
            self.cores.append(Core(core_id, program, cfg, defense,
                                   hierarchy, self.memory, self.stats,
                                   init_regs=regs))
        self.cycle = 0

    def run(self, max_cycles: int = 5_000_000,
            max_insts: Optional[int] = None) -> RunResult:
        """Simulate until all cores halt or a cap fires."""
        cores = self.cores
        stats = self.stats
        while self.cycle < max_cycles:
            all_halted = True
            for core in cores:
                if not core.halted:
                    core.step(self.cycle)
                    if not core.halted:
                        all_halted = False
            self.cycle += 1
            if all_halted:
                break
            if max_insts is not None and \
                    stats.get("commit.insts") >= max_insts:
                break
        finished = all(core.halted for core in cores)
        stats.set("sim.cycles", self.cycle)
        return RunResult(cycles=self.cycle, stats=stats,
                         finished=finished, cores=cores)
