"""Multi-core event-driven simulator with a dense-loop cross-check mode.

One :class:`Simulator` owns the shared memory system (L2, DRAM,
directory, prefetcher), one :class:`repro.pipeline.core.Core` per thread,
and the shared functional memory.  Cores step round-robin each cycle
until every program HALTs (or a cycle/instruction cap fires).

Two schedulers drive the stepping:

* the **event-driven** default: after each stepped cycle, every core is
  asked for its :meth:`~repro.pipeline.core.Core.next_event_cycle` — a
  proof that stepping it before some wakeup cycle is a no-op apart from
  a fixed set of per-cycle stall-counter bumps.  When every core is
  provably stalled, the clock jumps straight to the earliest wakeup
  (pending MSHR fill, load/FU completion, commit/fetch stall release)
  and the skipped cycles' stall bumps are applied in bulk.  Memory-bound
  regions simulate in time proportional to *work*, not simulated
  latency.
* the **dense loop** (``REPRO_DENSE_LOOP=1`` or ``run(dense=True)``):
  the original step-every-core-every-cycle loop, kept reachable for
  differential testing.  Both schedulers are observably pure relative
  to each other: cycles, every stats counter, and architectural
  registers are byte-identical (see
  ``tests/test_scheduler_equivalence.py``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.stats import Stats
from repro.config import SystemConfig, default_config
from repro.defenses.base import Defense
from repro.memory.hierarchy import SharedMemory
from repro.pipeline.core import (
    SKIP_IDLE,
    VETO_MEM_EVENT_DUE,
    Core,
    StallVeto,
)
from repro.pipeline.program import Program

#: Environment knob: any value other than ""/"0" forces the dense loop.
ENV_DENSE_LOOP = "REPRO_DENSE_LOOP"


def dense_loop_forced() -> bool:
    """Resolve ``REPRO_DENSE_LOOP`` lazily (at run time, not import)."""
    return os.environ.get(ENV_DENSE_LOOP, "") not in ("", "0")


@dataclass
class RunResult:
    """Outcome of one simulation."""

    cycles: int
    stats: Stats
    finished: bool
    cores: List[Core]
    #: Cycles the event-driven scheduler skipped over (0 under the dense
    #: loop).  Runtime telemetry only — never part of result payloads,
    #: which stay byte-identical across schedulers.
    skipped_cycles: int = field(default=0, compare=False)
    #: Skipped cycles broken down by stall class
    #: (:data:`repro.pipeline.core.SKIP_CLASSES` names).  A window is
    #: attributed to *every* class active in it, so values can sum to
    #: more than ``skipped_cycles``.  Runtime telemetry only.
    skipped_by_class: Dict[str, int] = field(default_factory=dict,
                                             compare=False)
    #: Dense-stepped cycles by veto reason
    #: (:data:`repro.pipeline.core.VETO_REASONS` names).  Runtime
    #: telemetry only.
    veto_counts: Dict[str, int] = field(default_factory=dict,
                                        compare=False)

    @property
    def insts(self) -> int:
        return int(self.stats.get("commit.insts"))

    @property
    def ipc(self) -> float:
        return self.stats.ipc()

    def arch_regs(self, core: int = 0) -> List[int]:
        return self.cores[core].arch_regs()


class Simulator:
    """A whole machine: N cores over a shared memory system."""

    def __init__(self, programs: Union[Program, Sequence[Program]],
                 defense: Defense,
                 cfg: Optional[SystemConfig] = None,
                 init_regs: Optional[Sequence[Dict[int, int]]] = None
                 ) -> None:
        if isinstance(programs, Program):
            programs = [programs]
        self.programs = list(programs)
        if cfg is None:
            cfg = default_config(cores=len(self.programs))
        if cfg.cores != len(self.programs):
            raise ValueError("config cores (%d) != programs (%d)"
                             % (cfg.cores, len(self.programs)))
        cfg.validate()
        self.cfg = cfg
        self.defense = defense
        self.stats = Stats()
        self.shared = SharedMemory(cfg, self.stats)
        # Shared functional memory: merged initial images.
        self.memory: Dict[int, int] = {}
        for program in self.programs:
            self.memory.update(program.memory)
        self.cores: List[Core] = []
        for core_id, program in enumerate(self.programs):
            hierarchy = defense.build_hierarchy(
                core_id, cfg, self.shared, self.stats)
            regs = (init_regs[core_id]
                    if init_regs is not None else None)
            self.cores.append(Core(core_id, program, cfg, defense,
                                   hierarchy, self.memory, self.stats,
                                   init_regs=regs))
        self.cycle = 0
        #: Dormant observability hook (:meth:`attach_obs`); every use
        #: sits behind an is-not-None guard so an untraced run pays one
        #: attribute check per potential event.
        self._obs = None
        #: Telemetry: cycles the event-driven scheduler fast-forwarded.
        self.skipped_cycles = 0
        #: Telemetry: skipped cycles per stall class (a window counts
        #: toward every class active in it).
        self.skipped_by_class: Dict[str, int] = {}
        #: Telemetry: dense-stepped cycles per veto reason.
        self.veto_counts: Dict[str, int] = {}

    def attach_obs(self, obs) -> None:
        """Light up the observability hooks with ``obs`` (a
        :class:`repro.obs.trace.Tracer`).

        Sets the ``_obs`` attribute on every hooked component — cores,
        L1 caches and MSHR files, the shared L2 and its MSHRs — and
        binds the default metrics probes when the tracer carries an
        unbound sampler.  Attaching never changes simulated state:
        traced and untraced runs are byte-identical in cycles, stats
        and digests.
        """
        self._obs = obs
        for core in self.cores:
            core._obs = obs
            hierarchy = core.hierarchy
            for port in (hierarchy.dport, hierarchy.iport):
                port.cache._obs = obs
                port.mshrs._obs = obs
        self.shared.l2._obs = obs
        self.shared.l2_mshrs._obs = obs
        if obs is not None and obs.sampler is not None \
                and not obs.sampler.names:
            from repro.obs.metrics import default_probes
            obs.sampler.bind(default_probes(self))

    def detach_obs(self):
        """Disarm every hook; returns the tracer that was attached.

        Used around :meth:`snapshot`: checkpoint blobs must never
        capture a tracer (its probes close over live state and are not
        part of the machine).
        """
        obs = self._obs
        if obs is not None:
            self.attach_obs(None)
        return obs

    def run(self, max_cycles: int = 5_000_000,
            max_insts: Optional[int] = None,
            dense: Optional[bool] = None) -> RunResult:
        """Simulate until all cores halt or a cap fires.

        ``dense=None`` consults ``REPRO_DENSE_LOOP``; ``True`` forces
        the per-cycle reference loop, ``False`` the event-driven
        scheduler.  Both produce byte-identical results.
        """
        if dense is None:
            dense = dense_loop_forced()
        cores = self.cores
        obs = self._obs
        if obs is not None:
            obs.emit_marker("run-begin", self.cycle,
                            {"dense": bool(dense),
                             "max_cycles": max_cycles})
        while self.cycle < max_cycles:
            if obs is not None:
                obs.on_cycle(self.cycle)
            all_halted = True
            for core in cores:
                if not core.halted:
                    core.step(self.cycle)
                    if not core.halted:
                        all_halted = False
            self.cycle += 1
            if all_halted:
                break
            if max_insts is not None and \
                    self._committed_insts() >= max_insts:
                break
            if not dense:
                self._skip_idle_cycles(max_cycles)
        finished = all(core.halted for core in cores)
        self.stats.set("sim.cycles", self.cycle)
        if obs is not None:
            obs.on_cycle(self.cycle)
            obs.emit_marker("run-end", self.cycle,
                            {"finished": finished,
                             "insts": self._committed_insts()})
        return RunResult(cycles=self.cycle, stats=self.stats,
                         finished=finished, cores=cores,
                         skipped_cycles=self.skipped_cycles,
                         skipped_by_class=dict(self.skipped_by_class),
                         veto_counts=dict(self.veto_counts))

    # -- checkpoints ----------------------------------------------------

    def snapshot(self) -> bytes:
        """Serialize the whole machine (between cycles) into a blob.

        The returned bytes round-trip through :meth:`restore` such that
        continuing the restored simulator is byte-identical — cycles,
        every stats counter, architectural registers — to continuing
        this one (or to never having stopped: ``run`` may be split at
        any committed-instruction boundary).  See
        :mod:`repro.sim.checkpoint` for the format.
        """
        from repro.sim.checkpoint import snapshot_simulator
        # A tracer is run wiring, not machine state: disarm the hooks
        # for the duration of the pickle so blobs never capture one.
        obs = self.detach_obs()
        try:
            return snapshot_simulator(self)
        finally:
            if obs is not None:
                self.attach_obs(obs)

    @classmethod
    def restore(cls, blob: bytes, check_code: bool = True
                ) -> "Simulator":
        """Rebuild a :meth:`snapshot` blob into a live simulator."""
        from repro.sim.checkpoint import restore_simulator
        return restore_simulator(blob, check_code=check_code)

    def committed_insts(self) -> int:
        """Total committed instructions across all cores."""
        return self._committed_insts()

    def _committed_insts(self) -> int:
        """Total committed instructions, via plain integer counters (the
        per-cycle ``max_insts`` cap must not pay for a dict lookup)."""
        total = 0
        for core in self.cores:
            total += core.committed_insts
        return total

    def _skip_idle_cycles(self, max_cycles: int) -> None:
        """Fast-forward the clock while every core is provably stalled.

        Each core either vetoes the skip (:class:`StallVeto`: it may
        make progress at the current cycle) or contributes a
        :class:`~repro.pipeline.core.StallProof` — a wakeup cycle, the
        stall counters it would bump once per skipped cycle, replay
        callables for per-cycle side effects that are state changes
        rather than counter bumps (MSHR-retry prefetcher training), and
        the stall classes active in the window.  The shared L2-DRAM
        system contributes its next fill completion.  Jumping to the
        minimum wakeup and applying bumps and replays in bulk is then
        observably identical to stepping every intervening cycle.
        """
        cycle = self.cycle
        wake = self.shared.next_event_cycle()
        bumps: List[int] = []
        replays: List = []
        classes: set = set()
        for core in self.cores:
            if core.halted:
                continue
            outcome = core.next_event_cycle(cycle)
            if type(outcome) is StallVeto:
                reason = outcome.reason
                self.veto_counts[reason] = \
                    self.veto_counts.get(reason, 0) + 1
                return
            if outcome.wake < wake:
                wake = outcome.wake
            bumps.extend(outcome.bumps)
            replays.extend(outcome.replays)
            classes.update(outcome.classes)
        target = min(wake, max_cycles)
        skipped = int(target - cycle)
        if skipped <= 0:
            if wake <= cycle:
                # Every core is stalled but a shared-system event (an
                # undrained L2 fill) is due this cycle: count it so the
                # veto profile accounts for every dense-stepped cycle.
                self.veto_counts[VETO_MEM_EVENT_DUE] = \
                    self.veto_counts.get(VETO_MEM_EVENT_DUE, 0) + 1
            return
        stats = self.stats
        for handle in bumps:
            stats.add(handle, skipped)
        for replay in replays:
            replay(cycle, skipped)
        self.skipped_cycles += skipped
        if not classes:
            classes.add(SKIP_IDLE)
        by_class = self.skipped_by_class
        for cls in classes:
            by_class[cls] = by_class.get(cls, 0) + skipped
        self.cycle = cycle + skipped
        if self._obs is not None:
            self._obs.emit_skip(cycle, self.cycle, tuple(classes))
