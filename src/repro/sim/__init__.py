"""Top-level simulation driver and experiment runner."""

from repro.sim.simulator import Simulator, RunResult
from repro.sim.runner import (
    run_workload,
    run_program,
    compare_defenses,
    default_scale,
    normalised_times,
)

__all__ = [
    "Simulator",
    "RunResult",
    "run_workload",
    "run_program",
    "compare_defenses",
    "default_scale",
    "normalised_times",
]
