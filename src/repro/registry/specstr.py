"""Spec-string grammar: ``Name`` or ``Name(kw=literal, ...)``.

A *spec string* names a registered component, optionally parameterized
with keyword arguments::

    GhostMinion
    MuonTrap(flush=True)
    pointer_chase(stride=128, footprint_kb=8192)

The grammar is deliberately tiny and injection-safe:

* the head is a bare component name (letters, digits, ``_``, ``.``,
  ``-`` and ``[...]`` — covering figure names like ``MuonTrap-Flush``
  and ``GhostMinion[All]``);
* arguments are **keyword-only** and their values must be Python
  literals (``ast.literal_eval`` territory: numbers, strings, booleans,
  ``None``, and tuples/lists/dicts thereof).  Names, attribute access,
  calls, comprehensions, f-strings and starred expressions are all
  rejected, so a spec string can never execute code.

:func:`parse_spec` -> ``(name, kwargs)``; :func:`format_spec` is its
inverse and produces the *normalized* form (sorted keys, ``repr``
values) used for display names and cache digests — so two spellings of
the same spec digest identically.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Tuple

__all__ = ["SpecError", "parse_spec", "format_spec", "normalize_spec"]

#: Bare component names: must not look like an expression (no spaces,
#: parens or quotes), but may contain ``-``, ``.`` and ``[...]``.
_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.\-\[\]]*\Z")

#: ``Name(...)`` call form; the argument list is handed to ``ast``.
_CALL_RE = re.compile(r"(?P<name>[A-Za-z_][A-Za-z0-9_.\-\[\]]*)"
                      r"\s*\((?P<args>.*)\)\s*\Z", re.DOTALL)


class SpecError(ValueError):
    """A spec string that does not fit the grammar."""


def parse_spec(text: str) -> Tuple[str, Dict[str, object]]:
    """Parse a spec string into ``(name, kwargs)``.

    Raises :class:`SpecError` for anything outside the grammar: bad
    syntax, positional arguments, ``**`` expansion, or non-literal
    values.  ``Name()`` normalizes to a bare ``Name`` (empty kwargs).
    """
    if not isinstance(text, str):
        raise SpecError("spec must be a string, got %r" % (text,))
    stripped = text.strip()
    if not stripped:
        raise SpecError("empty spec string")
    if _NAME_RE.match(stripped):
        return stripped, {}
    match = _CALL_RE.match(stripped)
    if match is None:
        raise SpecError(
            "bad spec %r: expected NAME or NAME(kw=literal, ...)" % text)
    name = match.group("name")
    # Re-parse as a call on a placeholder identifier so the component
    # name itself (which may contain '-' / '[...]') never reaches ast.
    try:
        tree = ast.parse("_spec_(%s)" % match.group("args"), mode="eval")
    except SyntaxError as exc:
        raise SpecError("bad spec %r: %s" % (text, exc.msg)) from None
    call = tree.body
    if not (isinstance(call, ast.Call)
            and isinstance(call.func, ast.Name)
            and call.func.id == "_spec_"):
        # e.g. "k()(x=1)": the argument text itself contained parens
        # that re-shaped the expression.
        raise SpecError(
            "bad spec %r: expected NAME or NAME(kw=literal, ...)" % text)
    if call.args:
        raise SpecError(
            "bad spec %r: positional arguments are not allowed, use "
            "keyword=value" % text)
    kwargs: Dict[str, object] = {}
    for keyword in call.keywords:
        if keyword.arg is None:
            raise SpecError(
                "bad spec %r: ** expansion is not allowed" % text)
        if keyword.arg in kwargs:
            raise SpecError("bad spec %r: duplicate keyword %r"
                            % (text, keyword.arg))
        try:
            kwargs[keyword.arg] = ast.literal_eval(keyword.value)
        except (ValueError, SyntaxError):
            raise SpecError(
                "bad spec %r: value of %r must be a literal (number, "
                "string, bool, None, or tuple/list/dict of those)"
                % (text, keyword.arg)) from None
    return name, kwargs


def format_spec(name: str, kwargs: Dict[str, object]) -> str:
    """The normalized spec string: sorted keys, ``repr`` values.

    ``format_spec(*parse_spec(s))`` is a fixed point: parsing the
    result gives back the same ``(name, kwargs)``.
    """
    if not kwargs:
        return name
    return "%s(%s)" % (name, ", ".join(
        "%s=%r" % (key, value) for key, value in sorted(kwargs.items())))


def normalize_spec(text: str) -> str:
    """Parse and re-format: the canonical spelling of ``text``."""
    return format_spec(*parse_spec(text))
