"""Typed component registries with spec-string construction.

A :class:`Registry` maps component *names* to zero-or-more-argument
factories and is the single seam every component family (defenses,
workloads, branch predictors, hierarchies) hangs off.  Components are
constructed lazily from *spec strings* (:mod:`repro.registry.specstr`),
so an experiment names its points as data::

    DEFENSES.create("MuonTrap(flush=True)")
    WORKLOADS.create("pointer_chase(stride=128, footprint_kb=8192)")

Every registry self-registers in the process-global :data:`REGISTRIES`
table under its ``kind``, which is what the CLI's ``list``/``describe``
commands and the plugin loader enumerate.
"""

from __future__ import annotations

import difflib
import functools
import inspect
from typing import (
    Callable,
    Dict,
    Generic,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.registry.specstr import SpecError, format_spec, parse_spec

T = TypeVar("T")

#: kind -> registry, in registration order.  See :func:`get_registry`
#: in :mod:`repro.registry` for the lazy-importing public accessor.
REGISTRIES: "Dict[str, Registry]" = {}


class UnknownComponentError(KeyError):
    """A name that no registry entry answers to.

    Subclasses :class:`KeyError` so existing ``except KeyError`` call
    sites (and tests) keep working; the message lists close matches
    (did-you-mean) and every available name.
    """

    def __init__(self, kind: str, name: str,
                 available: Sequence[str]) -> None:
        self.kind = kind
        self.name = name
        self.available = list(available)
        self.suggestions = difflib.get_close_matches(
            name, self.available, n=3, cutoff=0.5)
        message = "unknown %s %r" % (kind, name)
        if self.suggestions:
            message += "; did you mean: %s?" % ", ".join(self.suggestions)
        message += " (available: %s)" % (", ".join(self.available)
                                         or "none")
        super().__init__(message)

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


def _unwrap_partial(factory: Callable) -> Tuple[Callable, Dict]:
    """Peel ``functools.partial`` layers; returns (function, preset)."""
    preset: Dict[str, object] = {}
    while isinstance(factory, functools.partial):
        if factory.args:
            raise ValueError("registry factories must bind presets as "
                             "keywords, not positionally")
        preset = {**factory.keywords, **preset}
        factory = factory.func
    return factory, preset


def check_kwargs(factory: Callable, kwargs: Dict[str, object],
                 what: str) -> None:
    """Reject keyword arguments ``factory`` cannot accept.

    Raises :class:`SpecError` naming the offending keys and the
    accepted parameters, so a typo'd spec string fails loudly before
    any simulation time is spent.  Factories taking ``**kwargs`` accept
    everything.
    """
    if not kwargs:
        return
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # builtins without signatures
        return
    params = signature.parameters
    if any(p.kind is inspect.Parameter.VAR_KEYWORD
           for p in params.values()):
        return
    accepted = [name for name, p in params.items()
                if p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                              inspect.Parameter.KEYWORD_ONLY)]
    unknown = sorted(set(kwargs) - set(accepted))
    if unknown:
        raise SpecError(
            "%s does not accept keyword%s %s (accepted: %s)"
            % (what, "s" if len(unknown) > 1 else "",
               ", ".join(map(repr, unknown)),
               ", ".join(accepted) or "none"))


class Entry(Generic[T]):
    """One registered component: a named, tagged, documented factory."""

    def __init__(self, registry: "Registry[T]", name: str,
                 factory: Callable[..., T], tags: Tuple[str, ...] = (),
                 summary: Optional[str] = None,
                 metadata: Optional[Dict[str, object]] = None) -> None:
        self.registry = registry
        self.name = name
        self.factory = factory
        self.tags = tuple(tags)
        func, preset = _unwrap_partial(factory)
        self.preset = preset
        if summary is None:
            doc = inspect.getdoc(func) or ""
            summary = doc.splitlines()[0].strip() if doc else ""
        self.summary = summary
        self.metadata = dict(metadata or {})

    def create(self, kwargs: Optional[Dict[str, object]] = None) -> T:
        kwargs = dict(kwargs or {})
        check_kwargs(self.factory, kwargs,
                     "%s %r" % (self.registry.kind, self.name))
        return self.factory(**kwargs)

    def params(self) -> List[Dict[str, object]]:
        """Constructor parameters as JSON-able rows (spec-string
        keywords a user may pass)."""
        try:
            signature = inspect.signature(self.factory)
        except (TypeError, ValueError):
            return []
        rows: List[Dict[str, object]] = []
        for name, param in signature.parameters.items():
            if param.kind in (inspect.Parameter.VAR_POSITIONAL,):
                continue
            if param.kind is inspect.Parameter.VAR_KEYWORD:
                rows.append({"name": "**" + name, "default": None,
                             "required": False})
                continue
            has_default = param.default is not inspect.Parameter.empty
            rows.append({
                "name": name,
                "default": repr(param.default) if has_default else None,
                "required": not has_default,
            })
        return rows

    def describe(self) -> Dict[str, object]:
        """JSON-able introspection of this entry."""
        func, _preset = _unwrap_partial(self.factory)
        info: Dict[str, object] = {
            "kind": self.registry.kind,
            "name": self.name,
            "summary": self.summary,
            "tags": list(self.tags),
            "factory": "%s.%s" % (getattr(func, "__module__", "?"),
                                  getattr(func, "__qualname__",
                                          repr(func))),
            "params": self.params(),
        }
        if self.preset:
            info["preset"] = {key: repr(value)
                              for key, value in sorted(
                                  self.preset.items())}
        if self.metadata:
            info["metadata"] = dict(self.metadata)
        return info


#: ``finalize(obj, entry_name, normalized_spec, kwargs)`` -> obj, run on
#: every construction; lets a family stamp display names / spec strings.
FinalizeFn = Callable[[T, str, str, Dict[str, object]], T]


class Registry(Generic[T]):
    """A named component family: name -> factory, spec-string aware."""

    def __init__(self, kind: str,
                 finalize: Optional[FinalizeFn] = None) -> None:
        self.kind = kind
        self.finalize = finalize
        self._entries: Dict[str, Entry[T]] = {}
        REGISTRIES[kind] = self

    # -- registration -----------------------------------------------------

    def add(self, name: str, factory: Callable[..., T],
            tags: Sequence[str] = (), summary: Optional[str] = None,
            metadata: Optional[Dict[str, object]] = None,
            override: bool = False) -> Entry[T]:
        """Register ``factory`` under ``name``.

        Duplicate names are an error unless ``override=True`` — a
        plugin that silently shadowed a builtin would corrupt result
        labels and cache digests.
        """
        if name in self._entries and not override:
            raise ValueError(
                "%s %r is already registered; pass override=True to "
                "replace it" % (self.kind, name))
        entry = Entry(self, name, factory, tuple(tags), summary,
                      metadata)
        self._entries[name] = entry
        return entry

    def register(self, name: Optional[str] = None,
                 tags: Sequence[str] = (),
                 summary: Optional[str] = None,
                 metadata: Optional[Dict[str, object]] = None,
                 override: bool = False) -> Callable:
        """Decorator form of :meth:`add` (name defaults to
        ``factory.__name__``)."""
        def decorate(factory: Callable[..., T]) -> Callable[..., T]:
            self.add(name or factory.__name__, factory, tags=tags,
                     summary=summary, metadata=metadata,
                     override=override)
            return factory
        return decorate

    def remove(self, name: str) -> None:
        """Unregister ``name`` (primarily for tests and plugin
        reloads); missing names are ignored."""
        self._entries.pop(name, None)

    # -- lookup -----------------------------------------------------------

    def names(self, tag: Optional[str] = None) -> List[str]:
        """Registered names in registration order, optionally filtered
        by tag."""
        return [name for name, entry in self._entries.items()
                if tag is None or tag in entry.tags]

    def tags(self) -> List[str]:
        """Every tag in use, sorted."""
        seen = set()
        for entry in self._entries.values():
            seen.update(entry.tags)
        return sorted(seen)

    def entry(self, name: str) -> Entry[T]:
        """Look a name up, consulting plugins on a miss."""
        found = self._entries.get(name)
        if found is None:
            from repro.registry import plugins
            plugins.load_plugins()
            found = self._entries.get(name)
        if found is None:
            raise UnknownComponentError(self.kind, name,
                                        sorted(self._entries))
        return found

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    # -- construction -----------------------------------------------------

    def create(self, spec: str, **extra: object) -> T:
        """Construct a component from a spec string.

        ``extra`` keywords are runtime arguments merged *after* the
        spec's (they do not participate in spec normalization — e.g.
        the stats sink handed to a predictor factory).
        """
        name, kwargs = parse_spec(spec)
        entry = self.entry(name)
        merged = dict(kwargs)
        merged.update(extra)
        obj = entry.create(merged)
        if self.finalize is not None:
            obj = self.finalize(obj, name, format_spec(name, kwargs),
                                kwargs)
        return obj

    def describe(self, spec: str) -> Dict[str, object]:
        """Introspect a name or spec string without constructing it."""
        name, kwargs = parse_spec(spec)
        entry = self.entry(name)
        check_kwargs(entry.factory, kwargs,
                     "%s %r" % (self.kind, name))
        info = entry.describe()
        if kwargs:
            info["spec"] = format_spec(name, kwargs)
            info["spec_kwargs"] = {key: repr(value) for key, value
                                   in sorted(kwargs.items())}
        return info


__all__ = [
    "Entry",
    "Registry",
    "REGISTRIES",
    "SpecError",
    "UnknownComponentError",
    "check_kwargs",
]
