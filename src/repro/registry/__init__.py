"""Unified component registry: spec strings, plugins, introspection.

Every swappable component family registers here under a *kind*:

==============  ==========================================  ==========
kind            components                                  defined in
==============  ==========================================  ==========
``defense``     protection schemes (figs. 6-9 + ``Custom``) ``repro.defenses``
``workload``    named suites + parameterized synthetics     ``repro.workloads.spec``
``predictor``   branch-predictor implementations            ``repro.pipeline.branch_predictor``
``hierarchy``   per-core memory-hierarchy classes           ``repro.defenses``
``lint``        static invariant checkers (``repro lint``)  ``repro.lintkit.checkers``
``sink``        trace exporters (``repro trace``)           ``repro.obs.sinks``
``oracle``      differential fuzz oracles (``repro fuzz``)  ``repro.fuzz.oracles``
==============  ==========================================  ==========

Components are constructed from *spec strings* (``"MuonTrap(flush=True)"``,
``"pointer_chase(stride=128, footprint_kb=8192)"``) — see
``docs/components.md`` for the grammar, plugin protocol and a worked
example.  :func:`component_registry` is the public accessor; it imports
the defining module on demand so merely importing :mod:`repro.registry`
stays cheap.
"""

from __future__ import annotations

import importlib
from typing import Dict, List

from repro.registry.core import (
    Entry,
    REGISTRIES,
    Registry,
    SpecError,
    UnknownComponentError,
    check_kwargs,
)
from repro.registry.plugins import (
    ENV_PLUGINS,
    PLUGIN_FILE,
    PluginError,
    load_plugins,
    loaded_plugins,
)
from repro.registry.specstr import format_spec, normalize_spec, parse_spec

#: kind -> module whose import populates that registry.
_BUILTIN_MODULES = {
    "defense": "repro.defenses",
    "workload": "repro.workloads.spec",
    "predictor": "repro.pipeline.branch_predictor",
    "hierarchy": "repro.defenses",
    "lint": "repro.lintkit.checkers",
    "sink": "repro.obs.sinks",
    "oracle": "repro.fuzz.oracles",
}

#: CLI spellings (``repro list defenses``) -> canonical kind.
KIND_ALIASES = {
    "defense": "defense", "defenses": "defense",
    "workload": "workload", "workloads": "workload",
    "predictor": "predictor", "predictors": "predictor",
    "hierarchy": "hierarchy", "hierarchies": "hierarchy",
    "lint": "lint", "lints": "lint",
    "sink": "sink", "sinks": "sink",
    "oracle": "oracle", "oracles": "oracle",
}


def component_registry(kind: str) -> Registry:
    """The registry for ``kind`` (accepts plural CLI spellings)."""
    canonical = KIND_ALIASES.get(kind, kind)
    module = _BUILTIN_MODULES.get(canonical)
    if module is not None:
        importlib.import_module(module)
    if canonical not in REGISTRIES:
        raise UnknownComponentError("registry kind", kind,
                                    sorted(_BUILTIN_MODULES))
    return REGISTRIES[canonical]


def all_registries() -> Dict[str, Registry]:
    """Every builtin registry, imported and keyed by kind."""
    return {kind: component_registry(kind)
            for kind in sorted(_BUILTIN_MODULES)}


def component_kinds() -> List[str]:
    """The canonical registry kinds."""
    return sorted(_BUILTIN_MODULES)


__all__ = [
    "ENV_PLUGINS",
    "Entry",
    "KIND_ALIASES",
    "PLUGIN_FILE",
    "PluginError",
    "REGISTRIES",
    "Registry",
    "SpecError",
    "UnknownComponentError",
    "all_registries",
    "check_kwargs",
    "component_kinds",
    "component_registry",
    "format_spec",
    "load_plugins",
    "loaded_plugins",
    "normalize_spec",
    "parse_spec",
]
