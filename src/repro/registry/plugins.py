"""Plugin loading: third-party components without touching the repo.

Two discovery channels, both opt-in:

* ``REPRO_PLUGINS`` — ``os.pathsep``-separated entries, each either a
  dotted module name (imported) or a path to a ``.py`` file (executed
  as a module);
* a project-local ``repro_plugins.py`` in the current working
  directory, loaded automatically when present.

A plugin module registers components at import time::

    # repro_plugins.py
    from repro.registry import component_registry

    DEFENSES = component_registry("defense")

    @DEFENSES.register("MyDefense", tags=("plugin",))
    def my_defense(aggressive=False):
        from repro.defenses.base import Defense
        return Defense(name="MyDefense", strict_fu_order=aggressive)

Loading happens lazily — on the first registry miss, or eagerly via the
CLI's ``list``/``describe`` — and exactly once per process (call
:func:`reset` to re-arm, e.g. between tests).  Plugins execute
arbitrary code: only point these knobs at files you trust.
"""

from __future__ import annotations

import hashlib
import importlib
import importlib.util
import os
import sys
from typing import List, Optional

ENV_PLUGINS = "REPRO_PLUGINS"
PLUGIN_FILE = "repro_plugins.py"

#: Loaded plugin identifiers (None until the first load attempt).
_LOADED: Optional[List[str]] = None


class PluginError(RuntimeError):
    """A plugin entry that could not be imported or executed."""


def reset() -> None:
    """Forget that plugins were loaded (the next lookup reloads)."""
    global _LOADED
    _LOADED = None


def loaded_plugins() -> List[str]:
    """Identifiers of plugins loaded so far (empty before first load)."""
    return list(_LOADED or [])


def _load_file(path: str) -> str:
    module_name = "repro_plugin_%s" % (
        os.path.splitext(os.path.basename(path))[0])
    # A path-keyed suffix so two files don't collide.  Must be
    # *deterministic across processes* (hashlib, not hash()): worker
    # processes re-load plugins and must recreate the same module name
    # for plugin-defined classes to unpickle.
    module_name += "_%s" % hashlib.sha1(
        os.path.abspath(path).encode()).hexdigest()[:8]
    spec = importlib.util.spec_from_file_location(module_name, path)
    if spec is None or spec.loader is None:
        raise PluginError("cannot load plugin file %r" % path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    try:
        spec.loader.exec_module(module)
    except Exception as exc:
        sys.modules.pop(module_name, None)
        raise PluginError("error executing plugin file %r: %s"
                          % (path, exc)) from exc
    return path


def _load_module(name: str) -> str:
    try:
        importlib.import_module(name)
    except Exception as exc:
        raise PluginError("error importing plugin module %r: %s"
                          % (name, exc)) from exc
    return name


def load_plugins(force: bool = False) -> List[str]:
    """Load every configured plugin (idempotent; see :func:`reset`).

    Returns the identifiers loaded this process.  Raises
    :class:`PluginError` on a broken entry — a silently dropped plugin
    would make "unknown component" errors inexplicable.
    """
    global _LOADED
    if _LOADED is not None and not force:
        return list(_LOADED)
    loaded: List[str] = []
    entries = [entry for entry
               in os.environ.get(ENV_PLUGINS, "").split(os.pathsep)
               if entry.strip()]
    local = os.path.join(os.getcwd(), PLUGIN_FILE)
    if os.path.isfile(local):
        entries.append(local)
    seen = set()
    for entry in entries:
        entry = entry.strip()
        if entry.endswith(".py") or os.path.sep in entry:
            # Dedupe by absolute path: REPRO_PLUGINS naming the local
            # repro_plugins.py (or repeating an entry) must not execute
            # the file twice — re-registration would raise.
            key = os.path.abspath(entry)
            if key in seen:
                continue
            seen.add(key)
            loaded.append(_load_file(entry))
        else:
            if entry in seen:
                continue
            seen.add(entry)
            loaded.append(_load_module(entry))
    _LOADED = loaded
    return list(loaded)


__all__ = ["ENV_PLUGINS", "PLUGIN_FILE", "PluginError", "load_plugins",
           "loaded_plugins", "reset"]
