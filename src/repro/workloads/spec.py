"""Benchmark tables: every workload in figs. 6, 7 and 8.

Each entry picks a kernel and parameters reflecting the benchmark's
dominant behaviour in the literature (memory-bound pointer chasing for
mcf, streaming for lbm/libquantum, indirect gathers for xalancbmk, FP
compute for gamess, ...).  Absolute footprints and iteration counts are
scaled down ~5 orders of magnitude from the real suites so a pure-Python
cycle simulator can run the full evaluation (DESIGN.md note 1); what is
preserved is *which machine structure each workload stresses*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.pipeline.program import Program
from repro.workloads import patterns

KERNELS: Dict[str, Callable[..., Program]] = {
    "stream": patterns.stream_kernel,
    "pchase": patterns.pointer_chase_kernel,
    "indirect": patterns.indirect_kernel,
    "random": patterns.random_kernel,
    "compute": patterns.compute_kernel,
    "mixed": patterns.mixed_kernel,
}

#: kernels that accept a ``seed`` parameter (varied per thread).
_SEEDED = {"pchase", "indirect", "random", "mixed"}


@dataclass
class WorkloadSpec:
    """One named benchmark: kernel + parameters + thread count."""

    name: str
    suite: str
    kernel: str
    base_iters: int
    params: Dict[str, object] = field(default_factory=dict)
    threads: int = 1

    def build(self, scale: float = 1.0) -> List[Program]:
        """Instantiate the program(s), one per thread."""
        if self.kernel not in KERNELS:
            raise KeyError("unknown kernel %r" % self.kernel)
        iters = max(50, int(self.base_iters * scale))
        programs = []
        for thread in range(self.threads):
            params = dict(self.params)
            if self.threads > 1 and self.kernel in _SEEDED:
                params["seed"] = int(params.get("seed", 7)) + thread * 13
            programs.append(KERNELS[self.kernel](
                iters=iters, name="%s.t%d" % (self.name, thread),
                **params))
        return programs


def _spec(name: str, suite: str, kernel: str, iters: int,
          threads: int = 1, **params) -> WorkloadSpec:
    return WorkloadSpec(name=name, suite=suite, kernel=kernel,
                        base_iters=iters, params=params, threads=threads)


# ---------------------------------------------------------------------------
# SPEC CPU2006 (fig. 6) — 25 workloads
# ---------------------------------------------------------------------------

SPEC2006: List[WorkloadSpec] = [
    # pointer/graph-heavy integer codes
    _spec("astar", "spec2006", "indirect", 1100,
          footprint_lines=1024, index_lines=256, seed=5,
          branch_entropy=True),
    _spec("bzip2", "spec2006", "mixed", 320, stream_weight=2,
          indirect_weight=1, compute_weight=1, chase_weight=1,
          footprint_lines=2048, branch_entropy=True),
    _spec("gcc", "spec2006", "mixed", 300, stream_weight=1,
          indirect_weight=1, chase_weight=2, compute_weight=1,
          footprint_lines=8192, branch_entropy=True),
    _spec("gobmk", "spec2006", "mixed", 300, stream_weight=1,
          indirect_weight=1, chase_weight=1, compute_weight=2,
          footprint_lines=1024, branch_entropy=True),
    _spec("h264ref", "spec2006", "mixed", 340, stream_weight=2,
          indirect_weight=1, compute_weight=2, footprint_lines=512,
          branch_entropy=False),
    _spec("hmmer", "spec2006", "stream", 1600, footprint_lines=256,
          stride_lines=1),
    _spec("libquantum", "spec2006", "stream", 1600,
          footprint_lines=2048, stride_lines=2),
    _spec("mcf", "spec2006", "pchase", 1300, nodes=8192,
          work_per_node=1, branchy=True),
    _spec("omnetpp", "spec2006", "indirect", 1100,
          footprint_lines=1024, index_lines=512, seed=29,
          branch_entropy=True),
    _spec("perlbench-like-sjeng", "spec2006", "mixed", 300,
          stream_weight=1, indirect_weight=1, compute_weight=2,
          chase_weight=0, footprint_lines=1024, branch_entropy=True),
    _spec("xalancbmk", "spec2006", "indirect", 1100,
          footprint_lines=512, index_lines=512, branch_entropy=True),
    # FP / streaming codes
    _spec("bwaves", "spec2006", "stream", 1500, footprint_lines=4096,
          stride_lines=2),
    _spec("cactusADM", "spec2006", "stream", 1500,
          footprint_lines=2048, stride_lines=4),
    _spec("calculix", "spec2006", "compute", 800, div_every=4,
          fp=True, unroll=4),
    _spec("gamess", "spec2006", "compute", 800, div_every=0,
          fp=True, unroll=6),
    _spec("GemsFDTD", "spec2006", "stream", 1500,
          footprint_lines=8192, stride_lines=1),
    _spec("gromacs", "spec2006", "mixed", 320, stream_weight=2,
          indirect_weight=0, compute_weight=2, footprint_lines=1024,
          branch_entropy=False),
    _spec("lbm", "spec2006", "stream", 1500, footprint_lines=8192,
          stride_lines=1, store_every=1),
    _spec("leslie3d", "spec2006", "stream", 1400,
          footprint_lines=4096, stride_lines=8),
    _spec("milc", "spec2006", "random", 900, footprint_lines=4096),
    _spec("namd", "spec2006", "compute", 800, div_every=8, fp=True,
          unroll=5),
    _spec("povray", "spec2006", "compute", 750, div_every=3, fp=True,
          unroll=4),
    _spec("soplex", "spec2006", "mixed", 300, stream_weight=2,
          indirect_weight=2, chase_weight=1, compute_weight=1,
          footprint_lines=8192, branch_entropy=True),
    _spec("tonto", "spec2006", "compute", 780, div_every=5, fp=True,
          unroll=5),
    _spec("zeusmp", "spec2006", "mixed", 300, stream_weight=3,
          indirect_weight=0, chase_weight=1, compute_weight=1,
          footprint_lines=16384, branch_entropy=True),
]
# Keep the paper's fig. 6 naming: "sjeng" is the mixed entry above.
SPEC2006[9].name = "sjeng"


# ---------------------------------------------------------------------------
# SPECspeed 2017 (fig. 8) — 18 workloads
# ---------------------------------------------------------------------------

SPEC2017: List[WorkloadSpec] = [
    _spec("bwaves17", "spec2017", "stream", 1500,
          footprint_lines=16384, stride_lines=2),
    _spec("cactuBSSN", "spec2017", "stream", 1500,
          footprint_lines=8192, stride_lines=4),
    _spec("cam4", "spec2017", "mixed", 300, stream_weight=2,
          indirect_weight=1, compute_weight=2, footprint_lines=4096,
          branch_entropy=False),
    _spec("deepsjeng", "spec2017", "mixed", 300, stream_weight=1,
          indirect_weight=1, compute_weight=2, footprint_lines=1024,
          branch_entropy=True),
    _spec("exchange2", "spec2017", "compute", 800, div_every=0,
          fp=False, unroll=6),
    _spec("fotonik3d", "spec2017", "stream", 1500,
          footprint_lines=16384, stride_lines=1),
    _spec("gcc17", "spec2017", "mixed", 300, stream_weight=1,
          indirect_weight=1, chase_weight=2, compute_weight=1,
          footprint_lines=8192, branch_entropy=True),
    _spec("imagick", "spec2017", "compute", 800, div_every=6,
          fp=True, unroll=5),
    _spec("lbm17", "spec2017", "stream", 1500, footprint_lines=8192,
          stride_lines=1, store_every=1),
    _spec("leela", "spec2017", "mixed", 300, stream_weight=1,
          indirect_weight=1, compute_weight=2, chase_weight=1,
          footprint_lines=512, branch_entropy=True),
    _spec("mcf17", "spec2017", "pchase", 1300, nodes=8192,
          work_per_node=1, branchy=True),
    _spec("nab", "spec2017", "compute", 800, div_every=5, fp=True,
          unroll=5),
    _spec("perlbench", "spec2017", "mixed", 300, stream_weight=1,
          indirect_weight=2, compute_weight=1, footprint_lines=1024,
          branch_entropy=True),
    _spec("pop2", "spec2017", "stream", 1400, footprint_lines=8192,
          stride_lines=2),
    _spec("roms", "spec2017", "stream", 1400, footprint_lines=16384,
          stride_lines=1),
    _spec("wrf", "spec2017", "mixed", 300, stream_weight=2,
          indirect_weight=0, chase_weight=2, compute_weight=1,
          footprint_lines=16384, branch_entropy=True),
    _spec("xalancbmk17", "spec2017", "indirect", 1100,
          footprint_lines=512, index_lines=512, branch_entropy=True),
    _spec("xz", "spec2017", "mixed", 300, stream_weight=2,
          indirect_weight=1, compute_weight=1, footprint_lines=4096,
          branch_entropy=True),
]


# ---------------------------------------------------------------------------
# Parsec, 4 threads (fig. 7) — 7 workloads
# ---------------------------------------------------------------------------

PARSEC: List[WorkloadSpec] = [
    _spec("blackscholes", "parsec", "compute", 700, threads=4,
          div_every=4, fp=True, unroll=4),
    _spec("canneal", "parsec", "mixed", 260, threads=4,
          stream_weight=0, indirect_weight=1, chase_weight=1,
          compute_weight=1, store_weight=1, footprint_lines=8192,
          branch_entropy=True),
    _spec("ferret", "parsec", "mixed", 260, threads=4,
          stream_weight=1, indirect_weight=2, compute_weight=1,
          footprint_lines=4096, branch_entropy=False),
    _spec("fluidanimate", "parsec", "mixed", 260, threads=4,
          stream_weight=2, indirect_weight=1, compute_weight=1,
          store_weight=1, footprint_lines=8192, branch_entropy=False),
    _spec("freqmine", "parsec", "indirect", 900, threads=4,
          footprint_lines=4096, index_lines=512),
    _spec("streamcluster", "parsec", "stream", 1300, threads=4,
          footprint_lines=4096, stride_lines=1),
    _spec("swaptions", "parsec", "compute", 700, threads=4,
          div_every=6, fp=True, unroll=5),
]


_ALL: Dict[str, WorkloadSpec] = {
    spec.name: spec for spec in SPEC2006 + SPEC2017 + PARSEC}


def get_workload(name: str) -> WorkloadSpec:
    """Look a workload up by its figure name."""
    if name not in _ALL:
        raise KeyError("unknown workload %r (have: %s)"
                       % (name, ", ".join(sorted(_ALL))))
    return _ALL[name]
