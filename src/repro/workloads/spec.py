"""Benchmark tables: every workload in figs. 6, 7 and 8.

Each entry picks a kernel and parameters reflecting the benchmark's
dominant behaviour in the literature (memory-bound pointer chasing for
mcf, streaming for lbm/libquantum, indirect gathers for xalancbmk, FP
compute for gamess, ...).  Absolute footprints and iteration counts are
scaled down ~5 orders of magnitude from the real suites so a pure-Python
cycle simulator can run the full evaluation (DESIGN.md note 1); what is
preserved is *which machine structure each workload stresses*.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.pipeline.program import Program
from repro.registry import Registry
from repro.workloads import patterns

KERNELS: Dict[str, Callable[..., Program]] = {
    "stream": patterns.stream_kernel,
    "pchase": patterns.pointer_chase_kernel,
    "indirect": patterns.indirect_kernel,
    "random": patterns.random_kernel,
    "compute": patterns.compute_kernel,
    "mixed": patterns.mixed_kernel,
}

#: kernels that accept a ``seed`` parameter (varied per thread).
_SEEDED = {"pchase", "indirect", "random", "mixed"}


@dataclass
class WorkloadSpec:
    """One named benchmark: kernel + parameters + thread count."""

    name: str
    suite: str
    kernel: str
    base_iters: int
    params: Dict[str, object] = field(default_factory=dict)
    threads: int = 1

    def build(self, scale: float = 1.0) -> List[Program]:
        """Instantiate the program(s), one per thread."""
        if self.kernel not in KERNELS:
            raise KeyError("unknown kernel %r" % self.kernel)
        iters = max(50, int(self.base_iters * scale))
        programs = []
        for thread in range(self.threads):
            params = dict(self.params)
            if self.threads > 1 and self.kernel in _SEEDED:
                params["seed"] = int(params.get("seed", 7)) + thread * 13
            programs.append(KERNELS[self.kernel](
                iters=iters, name="%s.t%d" % (self.name, thread),
                **params))
        return programs


def _spec(name: str, suite: str, kernel: str, iters: int,
          threads: int = 1, **params) -> WorkloadSpec:
    return WorkloadSpec(name=name, suite=suite, kernel=kernel,
                        base_iters=iters, params=params, threads=threads)


# ---------------------------------------------------------------------------
# SPEC CPU2006 (fig. 6) — 25 workloads
# ---------------------------------------------------------------------------

SPEC2006: List[WorkloadSpec] = [
    # pointer/graph-heavy integer codes
    _spec("astar", "spec2006", "indirect", 1100,
          footprint_lines=1024, index_lines=256, seed=5,
          branch_entropy=True),
    _spec("bzip2", "spec2006", "mixed", 320, stream_weight=2,
          indirect_weight=1, compute_weight=1, chase_weight=1,
          footprint_lines=2048, branch_entropy=True),
    _spec("gcc", "spec2006", "mixed", 300, stream_weight=1,
          indirect_weight=1, chase_weight=2, compute_weight=1,
          footprint_lines=8192, branch_entropy=True),
    _spec("gobmk", "spec2006", "mixed", 300, stream_weight=1,
          indirect_weight=1, chase_weight=1, compute_weight=2,
          footprint_lines=1024, branch_entropy=True),
    _spec("h264ref", "spec2006", "mixed", 340, stream_weight=2,
          indirect_weight=1, compute_weight=2, footprint_lines=512,
          branch_entropy=False),
    _spec("hmmer", "spec2006", "stream", 1600, footprint_lines=256,
          stride_lines=1),
    _spec("libquantum", "spec2006", "stream", 1600,
          footprint_lines=2048, stride_lines=2),
    _spec("mcf", "spec2006", "pchase", 1300, nodes=8192,
          work_per_node=1, branchy=True),
    _spec("omnetpp", "spec2006", "indirect", 1100,
          footprint_lines=1024, index_lines=512, seed=29,
          branch_entropy=True),
    _spec("perlbench-like-sjeng", "spec2006", "mixed", 300,
          stream_weight=1, indirect_weight=1, compute_weight=2,
          chase_weight=0, footprint_lines=1024, branch_entropy=True),
    _spec("xalancbmk", "spec2006", "indirect", 1100,
          footprint_lines=512, index_lines=512, branch_entropy=True),
    # FP / streaming codes
    _spec("bwaves", "spec2006", "stream", 1500, footprint_lines=4096,
          stride_lines=2),
    _spec("cactusADM", "spec2006", "stream", 1500,
          footprint_lines=2048, stride_lines=4),
    _spec("calculix", "spec2006", "compute", 800, div_every=4,
          fp=True, unroll=4),
    _spec("gamess", "spec2006", "compute", 800, div_every=0,
          fp=True, unroll=6),
    _spec("GemsFDTD", "spec2006", "stream", 1500,
          footprint_lines=8192, stride_lines=1),
    _spec("gromacs", "spec2006", "mixed", 320, stream_weight=2,
          indirect_weight=0, compute_weight=2, footprint_lines=1024,
          branch_entropy=False),
    _spec("lbm", "spec2006", "stream", 1500, footprint_lines=8192,
          stride_lines=1, store_every=1),
    _spec("leslie3d", "spec2006", "stream", 1400,
          footprint_lines=4096, stride_lines=8),
    _spec("milc", "spec2006", "random", 900, footprint_lines=4096),
    _spec("namd", "spec2006", "compute", 800, div_every=8, fp=True,
          unroll=5),
    _spec("povray", "spec2006", "compute", 750, div_every=3, fp=True,
          unroll=4),
    _spec("soplex", "spec2006", "mixed", 300, stream_weight=2,
          indirect_weight=2, chase_weight=1, compute_weight=1,
          footprint_lines=8192, branch_entropy=True),
    _spec("tonto", "spec2006", "compute", 780, div_every=5, fp=True,
          unroll=5),
    _spec("zeusmp", "spec2006", "mixed", 300, stream_weight=3,
          indirect_weight=0, chase_weight=1, compute_weight=1,
          footprint_lines=16384, branch_entropy=True),
]
# Keep the paper's fig. 6 naming: "sjeng" is the mixed entry above.
SPEC2006[9].name = "sjeng"


# ---------------------------------------------------------------------------
# SPECspeed 2017 (fig. 8) — 18 workloads
# ---------------------------------------------------------------------------

SPEC2017: List[WorkloadSpec] = [
    _spec("bwaves17", "spec2017", "stream", 1500,
          footprint_lines=16384, stride_lines=2),
    _spec("cactuBSSN", "spec2017", "stream", 1500,
          footprint_lines=8192, stride_lines=4),
    _spec("cam4", "spec2017", "mixed", 300, stream_weight=2,
          indirect_weight=1, compute_weight=2, footprint_lines=4096,
          branch_entropy=False),
    _spec("deepsjeng", "spec2017", "mixed", 300, stream_weight=1,
          indirect_weight=1, compute_weight=2, footprint_lines=1024,
          branch_entropy=True),
    _spec("exchange2", "spec2017", "compute", 800, div_every=0,
          fp=False, unroll=6),
    _spec("fotonik3d", "spec2017", "stream", 1500,
          footprint_lines=16384, stride_lines=1),
    _spec("gcc17", "spec2017", "mixed", 300, stream_weight=1,
          indirect_weight=1, chase_weight=2, compute_weight=1,
          footprint_lines=8192, branch_entropy=True),
    _spec("imagick", "spec2017", "compute", 800, div_every=6,
          fp=True, unroll=5),
    _spec("lbm17", "spec2017", "stream", 1500, footprint_lines=8192,
          stride_lines=1, store_every=1),
    _spec("leela", "spec2017", "mixed", 300, stream_weight=1,
          indirect_weight=1, compute_weight=2, chase_weight=1,
          footprint_lines=512, branch_entropy=True),
    _spec("mcf17", "spec2017", "pchase", 1300, nodes=8192,
          work_per_node=1, branchy=True),
    _spec("nab", "spec2017", "compute", 800, div_every=5, fp=True,
          unroll=5),
    _spec("perlbench", "spec2017", "mixed", 300, stream_weight=1,
          indirect_weight=2, compute_weight=1, footprint_lines=1024,
          branch_entropy=True),
    _spec("pop2", "spec2017", "stream", 1400, footprint_lines=8192,
          stride_lines=2),
    _spec("roms", "spec2017", "stream", 1400, footprint_lines=16384,
          stride_lines=1),
    _spec("wrf", "spec2017", "mixed", 300, stream_weight=2,
          indirect_weight=0, chase_weight=2, compute_weight=1,
          footprint_lines=16384, branch_entropy=True),
    _spec("xalancbmk17", "spec2017", "indirect", 1100,
          footprint_lines=512, index_lines=512, branch_entropy=True),
    _spec("xz", "spec2017", "mixed", 300, stream_weight=2,
          indirect_weight=1, compute_weight=1, footprint_lines=4096,
          branch_entropy=True),
]


# ---------------------------------------------------------------------------
# Parsec, 4 threads (fig. 7) — 7 workloads
# ---------------------------------------------------------------------------

PARSEC: List[WorkloadSpec] = [
    _spec("blackscholes", "parsec", "compute", 700, threads=4,
          div_every=4, fp=True, unroll=4),
    _spec("canneal", "parsec", "mixed", 260, threads=4,
          stream_weight=0, indirect_weight=1, chase_weight=1,
          compute_weight=1, store_weight=1, footprint_lines=8192,
          branch_entropy=True),
    _spec("ferret", "parsec", "mixed", 260, threads=4,
          stream_weight=1, indirect_weight=2, compute_weight=1,
          footprint_lines=4096, branch_entropy=False),
    _spec("fluidanimate", "parsec", "mixed", 260, threads=4,
          stream_weight=2, indirect_weight=1, compute_weight=1,
          store_weight=1, footprint_lines=8192, branch_entropy=False),
    _spec("freqmine", "parsec", "indirect", 900, threads=4,
          footprint_lines=4096, index_lines=512),
    _spec("streamcluster", "parsec", "stream", 1300, threads=4,
          footprint_lines=4096, stride_lines=1),
    _spec("swaptions", "parsec", "compute", 700, threads=4,
          div_every=6, fp=True, unroll=5),
]


# ---------------------------------------------------------------------------
# The ``workload`` component registry
# ---------------------------------------------------------------------------

def _finalize_workload(spec: WorkloadSpec, entry_name: str,
                       normalized: str, kwargs: Dict[str, object]
                       ) -> WorkloadSpec:
    """Name parameterized synthetic constructions after their
    normalized spec string, so two parameterizations never collide in
    sweep keys and result labels say exactly what ran."""
    if kwargs and spec.name == entry_name:
        spec.name = normalized
    return spec


#: Every named benchmark plus the parameterized synthetic kernels,
#: tagged by suite (``spec2006``/``spec2017``/``parsec``/``synthetic``).
WORKLOADS: Registry[WorkloadSpec] = Registry(
    "workload", finalize=_finalize_workload)


def _named_workload(spec: WorkloadSpec) -> WorkloadSpec:
    """A fixed benchmark from the paper's suites (takes no
    parameters)."""
    if not isinstance(spec, WorkloadSpec):
        raise ValueError("named workloads take no parameters")
    return spec


for _spec_obj in SPEC2006 + SPEC2017 + PARSEC:
    WORKLOADS.add(
        _spec_obj.name,
        functools.partial(_named_workload, spec=_spec_obj),
        tags=(_spec_obj.suite,),
        summary="%s: %s kernel, %d base iters%s." % (
            _spec_obj.suite, _spec_obj.kernel, _spec_obj.base_iters,
            ", %d threads" % _spec_obj.threads
            if _spec_obj.threads > 1 else ""),
        metadata={"kernel": _spec_obj.kernel,
                  "threads": _spec_obj.threads,
                  "base_iters": _spec_obj.base_iters})
del _spec_obj


def get_workload(name: str) -> WorkloadSpec:
    """Look a workload up by figure name (or construct a synthetic one
    from a spec string)."""
    return WORKLOADS.create(name)


# ---------------------------------------------------------------------------
# Parameterized synthetic kernels, constructible straight from spec
# strings: ``repro run --workload "pointer_chase(stride=128)"``.
# Byte-denominated conveniences (``stride``, ``footprint_kb``) translate
# onto the kernels' line-denominated parameters.
# ---------------------------------------------------------------------------

_SYNTH = ("synthetic",)


def _footprint_lines(footprint_kb: Optional[int],
                     default_lines: int) -> int:
    if footprint_kb is None:
        return default_lines
    return max(1, (footprint_kb * 1024) // patterns.LINE)


def _synth_spec(kernel: str, iters: int, threads: int,
                params: Dict[str, object]) -> WorkloadSpec:
    name = {"pchase": "pointer_chase", "random": "random_access"}.get(
        kernel, kernel)
    return WorkloadSpec(name=name, suite="synthetic", kernel=kernel,
                        base_iters=iters, params=params,
                        threads=threads)


@WORKLOADS.register("pointer_chase", tags=_SYNTH)
def pointer_chase(iters: int = 1300, nodes: Optional[int] = None,
                  footprint_kb: Optional[int] = None, stride: int = 64,
                  work_per_node: int = 1, branchy: bool = True,
                  value_lines: int = 8192, seed: int = 7,
                  threads: int = 1) -> WorkloadSpec:
    """mcf-like linked-list chase; ``footprint_kb``/``stride`` size the
    node array (``nodes`` overrides the count directly)."""
    if nodes is None:
        nodes = ((footprint_kb * 1024) // stride
                 if footprint_kb is not None else 8192)
    return _synth_spec("pchase", iters, threads, dict(
        nodes=nodes, work_per_node=work_per_node, branchy=branchy,
        value_lines=value_lines, seed=seed, stride=stride))


@WORKLOADS.register("stream", tags=_SYNTH)
def stream(iters: int = 1600, footprint_kb: Optional[int] = None,
           footprint_lines: Optional[int] = None, stride: int = 64,
           store_every: int = 0, threads: int = 1) -> WorkloadSpec:
    """lbm-like strided streaming; ``stride`` in bytes (a line
    multiple), footprint via ``footprint_kb`` or ``footprint_lines``."""
    if stride % patterns.LINE:
        raise ValueError("stream stride must be a multiple of %d bytes"
                         % patterns.LINE)
    if footprint_lines is None:
        footprint_lines = _footprint_lines(footprint_kb, 4096)
    return _synth_spec("stream", iters, threads, dict(
        footprint_lines=footprint_lines,
        stride_lines=stride // patterns.LINE, store_every=store_every))


@WORKLOADS.register("indirect", tags=_SYNTH)
def indirect(iters: int = 1100, footprint_kb: Optional[int] = None,
             footprint_lines: Optional[int] = None,
             index_lines: int = 512, branch_entropy: bool = True,
             seed: int = 11, threads: int = 1) -> WorkloadSpec:
    """xalancbmk-like ``B[A[i]]`` gathers (tainted second-load
    address)."""
    if footprint_lines is None:
        footprint_lines = _footprint_lines(footprint_kb, 2048)
    return _synth_spec("indirect", iters, threads, dict(
        footprint_lines=footprint_lines, index_lines=index_lines,
        branch_entropy=branch_entropy, seed=seed))


@WORKLOADS.register("random_access", tags=_SYNTH)
def random_access(iters: int = 1200, footprint_kb: Optional[int] = None,
                  footprint_lines: Optional[int] = None, seed: int = 3,
                  branch_entropy: bool = False,
                  threads: int = 1) -> WorkloadSpec:
    """milc-like LCG-addressed sparse access (taint-free,
    DRAM-bound)."""
    if footprint_lines is None:
        footprint_lines = _footprint_lines(footprint_kb, 16384)
    return _synth_spec("random", iters, threads, dict(
        footprint_lines=footprint_lines, seed=seed,
        branch_entropy=branch_entropy))


@WORKLOADS.register("compute", tags=_SYNTH)
def compute(iters: int = 800, div_every: int = 4, fp: bool = True,
            unroll: int = 4, threads: int = 1) -> WorkloadSpec:
    """gamess-like ALU/FP kernel with periodic non-pipelined
    divides."""
    return _synth_spec("compute", iters, threads, dict(
        div_every=div_every, fp=fp, unroll=unroll))


@WORKLOADS.register("mixed", tags=_SYNTH)
def mixed(iters: int = 1200, footprint_kb: Optional[int] = None,
          footprint_lines: Optional[int] = None, index_lines: int = 256,
          chase_nodes: int = 256, stream_weight: int = 1,
          indirect_weight: int = 1, chase_weight: int = 0,
          compute_weight: int = 1, store_weight: int = 0,
          branch_entropy: bool = True, div_in_compute: bool = False,
          seed: int = 23, threads: int = 1) -> WorkloadSpec:
    """Weighted composition of stream/indirect/chase/compute
    behaviours."""
    if footprint_lines is None:
        footprint_lines = _footprint_lines(footprint_kb, 4096)
    return _synth_spec("mixed", iters, threads, dict(
        footprint_lines=footprint_lines, index_lines=index_lines,
        chase_nodes=chase_nodes, stream_weight=stream_weight,
        indirect_weight=indirect_weight, chase_weight=chase_weight,
        compute_weight=compute_weight, store_weight=store_weight,
        branch_entropy=branch_entropy, div_in_compute=div_in_compute,
        seed=seed))
