"""Synthetic workloads standing in for SPEC CPU2006, SPECspeed 2017 and
Parsec (DESIGN.md substitution table).

Each benchmark in figs. 6-8 maps to a :class:`WorkloadSpec` — a kernel
pattern (stream / pointer-chase / indirect-index / random / compute /
mixed) with per-benchmark parameters chosen to reproduce the *shape* of
the paper's results: which workloads rely on misspeculated prefetching,
which are taint-sensitive, which are compute-bound.
"""

from repro.workloads.patterns import (
    stream_kernel,
    pointer_chase_kernel,
    indirect_kernel,
    random_kernel,
    compute_kernel,
    mixed_kernel,
)
from repro.workloads.spec import (
    WorkloadSpec,
    SPEC2006,
    SPEC2017,
    PARSEC,
    get_workload,
)

__all__ = [
    "stream_kernel",
    "pointer_chase_kernel",
    "indirect_kernel",
    "random_kernel",
    "compute_kernel",
    "mixed_kernel",
    "WorkloadSpec",
    "SPEC2006",
    "SPEC2017",
    "PARSEC",
    "get_workload",
]
