"""Kernel generators for the synthetic benchmark suites.

Every generator emits a self-contained :class:`repro.pipeline.program.
Program` (loop + HALT + initial memory image) through the builder.  The
kernels are designed around the behaviours the paper's evaluation hinges
on:

* ``pointer_chase_kernel`` — mcf-like: data-dependent load chains whose
  *wrong-path* continuation loads the very lines the correct path needs
  next, so defences that discard misspeculated fills lose real
  prefetching (§6.1's mcf discussion);
* ``indirect_kernel`` — astar/omnetpp/xalancbmk-like ``B[A[i]]`` chains:
  the second load's address depends on speculative load data, which STT
  delays but GhostMinion does not;
* ``stream_kernel`` — lbm/libquantum-like strided streaming that the L2
  stride prefetcher captures;
* ``random_kernel`` — LCG-addressed (ALU-computed, taint-free) sparse
  access, DRAM-latency bound;
* ``compute_kernel`` — gamess/povray-like FP/divider pressure with a
  small working set;
* ``mixed_kernel`` — weighted composition of the above behaviours.

Register conventions: r1-r15 kernel state, r16-r25 scratch, r31 link.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.pipeline.isa import Op
from repro.pipeline.program import Program, ProgramBuilder

LINE = 64
#: data segment bases, far apart so kernels never alias by accident.
BASE_A = 1 << 20
BASE_B = 1 << 22
BASE_C = 1 << 24

# LCG constants (numerical recipes); low bits are branch-unpredictable.
LCG_MUL = 1664525
LCG_ADD = 1013904223
LCG_MASK = (1 << 32) - 1


def _emit_lcg_step(b: ProgramBuilder, seed_reg: int, tmp: int) -> None:
    """seed = (seed * LCG_MUL + LCG_ADD) & LCG_MASK"""
    b.li(tmp, LCG_MUL)
    b.alu(Op.MUL, seed_reg, seed_reg, tmp)
    b.alu(Op.ADD, seed_reg, seed_reg, imm=LCG_ADD)
    b.li(tmp, LCG_MASK)
    b.alu(Op.AND, seed_reg, seed_reg, tmp)


def _require_pow2(value: int, what: str) -> None:
    if value < 1 or value & (value - 1):
        raise ValueError("%s must be a power of two, got %d" % (what, value))


def stream_kernel(iters: int = 2000, footprint_lines: int = 4096,
                  stride_lines: int = 1, store_every: int = 0,
                  name: str = "stream") -> Program:
    """Sequential/strided streaming over ``footprint_lines`` of data."""
    _require_pow2(footprint_lines, "footprint_lines")
    b = ProgramBuilder(name)
    counter, addr, acc, tmp, val = 1, 2, 3, 4, 5
    b.li(counter, iters)
    b.li(addr, BASE_A)
    b.li(acc, 0)
    b.label("loop")
    b.load(val, addr)
    b.alu(Op.ADD, acc, acc, val)
    b.load(val, addr, imm=16)   # second word of the line: always a hit
    b.alu(Op.XOR, acc, acc, val)
    if store_every:
        b.store(addr, acc, imm=8)
    b.alu(Op.ADD, addr, addr, imm=stride_lines * LINE)
    # wrap: addr = BASE_A + (addr - BASE_A) & (footprint - 1)
    b.alu(Op.SUB, tmp, addr, imm=BASE_A)
    b.li(val, footprint_lines * LINE - 1)
    b.alu(Op.AND, tmp, tmp, val)
    b.alu(Op.ADD, addr, tmp, imm=BASE_A)
    b.alu(Op.SUB, counter, counter, imm=1)
    b.bnez(counter, "loop")
    b.halt()
    return b.build()


def pointer_chase_kernel(iters: int = 1500, nodes: int = 1024,
                         work_per_node: int = 2, branchy: bool = True,
                         value_lines: int = 8192, seed: int = 7,
                         stride: int = LINE,
                         name: str = "pchase") -> Program:
    """Chase a randomly-permuted linked list, mcf-style.

    Each node holds its successor pointer at offset 0 and a payload at
    offset 8.  With ``branchy=True``, each iteration additionally loads a
    *slow* value — a second, payload-indexed access into a large sparse
    array — and branches unpredictably on it.  Because the next-pointer
    chase is independent of that branch, the pipeline runs ahead along
    the predicted path, loading future nodes, while the branch's
    DRAM-bound condition resolves.  On the ~50% mispredicts, those
    run-ahead loads are squashed — so defences that discard misspeculated
    fills (GhostMinion, MuonTrap-Flush) lose real prefetching, while the
    unsafe baseline and base MuonTrap keep it.  This is the mechanism
    behind mcf's overhead in §6.1.

    ``stride`` spaces consecutive node slots (bytes, power of two,
    >= 16 so the pointer and payload words fit): larger strides spread
    the list over more cache lines per node, raising miss pressure at a
    fixed node count.
    """
    _require_pow2(value_lines, "value_lines")
    _require_pow2(stride, "stride")
    if stride < 16:
        raise ValueError("stride must be >= 16 bytes, got %d" % stride)
    if nodes * stride > BASE_C - BASE_B:
        raise ValueError(
            "node array (%d nodes x %d B) overflows its data segment"
            % (nodes, stride))
    rng = random.Random(seed)
    order = list(range(nodes))
    rng.shuffle(order)
    b = ProgramBuilder(name)
    node_addr = [BASE_B + idx * stride for idx in range(nodes)]
    for pos in range(nodes):
        here = node_addr[order[pos]]
        succ = node_addr[order[(pos + 1) % nodes]]
        b.data(here, succ)
        b.data(here + 8, rng.getrandbits(32))
    counter, ptr, payload, acc, tmp = 1, 2, 3, 4, 5
    value, vaddr = 6, 7
    b.li(counter, iters)
    b.li(ptr, node_addr[order[0]])
    b.li(acc, 0)
    b.label("loop")
    b.load(payload, ptr, imm=8)
    # The chase is independent of the branch below: run-ahead fuel.
    b.load(ptr, ptr)
    if branchy:
        # slow condition: value = V[payload % value_lines] (DRAM-bound)
        b.li(tmp, value_lines - 1)
        b.alu(Op.AND, vaddr, payload, tmp)
        b.alu(Op.SHL, vaddr, vaddr, imm=6)
        b.alu(Op.ADD, vaddr, vaddr, imm=BASE_C)
        b.load(value, vaddr)
        b.alu(Op.XOR, value, value, payload)
        b.alu(Op.AND, tmp, value, imm=1)
        b.bnez(tmp, "odd_arm")
        for _ in range(work_per_node):
            b.alu(Op.ADD, acc, acc, payload)
        b.jmp("join")
        b.label("odd_arm")
        for _ in range(work_per_node):
            b.alu(Op.XOR, acc, acc, payload)
        b.label("join")
    else:
        for _ in range(work_per_node):
            b.alu(Op.ADD, acc, acc, payload)
    b.alu(Op.SUB, counter, counter, imm=1)
    b.bnez(counter, "loop")
    b.halt()
    return b.build()


def indirect_kernel(iters: int = 1500, footprint_lines: int = 2048,
                    index_lines: int = 512, branch_entropy: bool = False,
                    seed: int = 11, name: str = "indirect") -> Program:
    """``B[A[i]]`` gather: the second load's address is load-dependent.

    This is the pattern STT must delay (tainted address) but GhostMinion
    executes freely; with a small-enough footprint the loads mostly hit,
    so GhostMinion shows no overhead while STT stalls every gather.
    ``branch_entropy`` adds an unpredictable data-dependent branch, which
    keeps older branches unresolved over the gathers — the case where
    STT-*Spectre* also pays (astar/omnetpp/xalancbmk-like).
    """
    _require_pow2(footprint_lines, "footprint_lines")
    rng = random.Random(seed)
    b = ProgramBuilder(name)
    index_words = index_lines * 8
    for word in range(index_words):
        b.data(BASE_A + word * 8, rng.randrange(footprint_lines))
    counter, iaddr, idx, val, acc, tmp = 1, 2, 3, 4, 5, 6
    b.li(counter, iters)
    b.li(iaddr, BASE_A)
    b.li(acc, 0)
    b.label("loop")
    b.load(idx, iaddr)                    # idx = A[i]
    if branch_entropy:
        b.alu(Op.AND, tmp, idx, imm=1)
        b.bnez(tmp, "ent_taken")
        b.alu(Op.ADD, acc, acc, imm=3)
        b.jmp("ent_join")
        b.label("ent_taken")
        b.alu(Op.XOR, acc, acc, idx)
        b.label("ent_join")
    b.alu(Op.SHL, tmp, idx, imm=6)        # idx * 64
    b.alu(Op.ADD, tmp, tmp, imm=BASE_B)
    b.load(val, tmp)                      # val = B[idx]   (tainted addr)
    b.alu(Op.ADD, acc, acc, val)
    b.alu(Op.ADD, iaddr, iaddr, imm=8)
    b.alu(Op.SUB, tmp, iaddr, imm=BASE_A)
    b.li(val, index_words * 8 - 1)
    b.alu(Op.AND, tmp, tmp, val)
    b.alu(Op.ADD, iaddr, tmp, imm=BASE_A)
    b.alu(Op.SUB, counter, counter, imm=1)
    b.bnez(counter, "loop")
    b.halt()
    return b.build()


def random_kernel(iters: int = 1200, footprint_lines: int = 16384,
                  seed: int = 3, branch_entropy: bool = False,
                  name: str = "random") -> Program:
    """LCG-addressed sparse access: miss-heavy but taint-free addresses."""
    _require_pow2(footprint_lines, "footprint_lines")
    b = ProgramBuilder(name)
    counter, seed_reg, addr, val, acc, tmp = 1, 2, 3, 4, 5, 6
    b.li(counter, iters)
    b.li(seed_reg, seed)
    b.li(acc, 0)
    b.label("loop")
    _emit_lcg_step(b, seed_reg, tmp)
    b.alu(Op.SHR, addr, seed_reg, imm=10)
    b.li(tmp, footprint_lines - 1)
    b.alu(Op.AND, addr, addr, tmp)
    b.alu(Op.SHL, addr, addr, imm=6)
    b.alu(Op.ADD, addr, addr, imm=BASE_C)
    b.load(val, addr)
    b.alu(Op.ADD, acc, acc, val)
    if branch_entropy:
        b.alu(Op.AND, tmp, seed_reg, imm=1)
        b.bnez(tmp, "skip")
        b.alu(Op.XOR, acc, acc, seed_reg)
        b.label("skip")
    b.alu(Op.SUB, counter, counter, imm=1)
    b.bnez(counter, "loop")
    b.halt()
    return b.build()


def compute_kernel(iters: int = 1500, div_every: int = 4,
                   fp: bool = True, unroll: int = 4,
                   name: str = "compute") -> Program:
    """ALU/FP-bound kernel with periodic non-pipelined divides."""
    b = ProgramBuilder(name)
    counter, a, c_reg, d, tmp = 1, 2, 3, 4, 5
    b.li(counter, iters)
    b.li(a, 123456789)
    b.li(c_reg, 97)
    b.li(d, 3)
    b.label("loop")
    for step in range(unroll):
        b.alu(Op.MUL, a, a, c_reg)
        b.alu(Op.ADD, a, a, imm=step + 1)
        if fp:
            b.alu(Op.FMUL, tmp, a, d)
            b.alu(Op.FADD, a, a, tmp)
        if div_every and step % div_every == div_every - 1:
            b.alu(Op.FDIV if fp else Op.DIV, a, a, d)
            b.alu(Op.ADD, a, a, imm=1)
    b.alu(Op.SUB, counter, counter, imm=1)
    b.bnez(counter, "loop")
    b.halt()
    return b.build()


def mixed_kernel(iters: int = 1200, footprint_lines: int = 4096,
                 index_lines: int = 256, chase_nodes: int = 256,
                 stream_weight: int = 1, indirect_weight: int = 1,
                 chase_weight: int = 0, compute_weight: int = 1,
                 store_weight: int = 0, branch_entropy: bool = True,
                 div_in_compute: bool = False, seed: int = 23,
                 name: str = "mixed") -> Program:
    """Weighted composition: each loop iteration runs each enabled
    behaviour ``weight`` times, calling shared subroutines (exercising
    CALL/RET and the RAS)."""
    _require_pow2(footprint_lines, "footprint_lines")
    rng = random.Random(seed)
    b = ProgramBuilder(name)
    # data: index array for the indirect part, linked list for the chase.
    index_words = index_lines * 8
    for word in range(index_words):
        b.data(BASE_A + word * 8, rng.randrange(footprint_lines))
    order = list(range(chase_nodes))
    rng.shuffle(order)
    chase_addr = [BASE_B + idx * LINE for idx in range(chase_nodes)]
    for pos in range(chase_nodes):
        here = chase_addr[order[pos]]
        succ = chase_addr[order[(pos + 1) % chase_nodes]]
        b.data(here, succ)
        b.data(here + 8, rng.getrandbits(32))
    counter, seed_reg, acc = 1, 2, 3
    saddr, iaddr, ptr = 6, 7, 8
    val, idx, tmp, tmp2 = 16, 17, 18, 19
    b.li(counter, iters)
    b.li(seed_reg, seed)
    b.li(acc, 0)
    b.li(saddr, BASE_C)
    b.li(iaddr, BASE_A)
    b.li(ptr, chase_addr[order[0]])
    b.jmp("loop")

    # --- subroutines -----------------------------------------------------
    b.label("sub_stream")
    b.load(val, saddr)
    b.alu(Op.ADD, acc, acc, val)
    b.alu(Op.ADD, saddr, saddr, imm=LINE)
    b.alu(Op.SUB, tmp, saddr, imm=BASE_C)
    b.li(tmp2, footprint_lines * LINE - 1)
    b.alu(Op.AND, tmp, tmp, tmp2)
    b.alu(Op.ADD, saddr, tmp, imm=BASE_C)
    b.ret()

    b.label("sub_indirect")
    b.load(idx, iaddr)
    b.alu(Op.SHL, tmp, idx, imm=6)
    b.alu(Op.ADD, tmp, tmp, imm=BASE_C)
    b.load(val, tmp)
    b.alu(Op.ADD, acc, acc, val)
    b.alu(Op.ADD, iaddr, iaddr, imm=8)
    b.alu(Op.SUB, tmp, iaddr, imm=BASE_A)
    b.li(tmp2, index_words * 8 - 1)
    b.alu(Op.AND, tmp, tmp, tmp2)
    b.alu(Op.ADD, iaddr, tmp, imm=BASE_A)
    b.ret()

    b.label("sub_chase")
    b.load(val, ptr, imm=8)
    b.load(ptr, ptr)
    b.alu(Op.ADD, acc, acc, val)
    b.ret()

    b.label("sub_compute")
    b.alu(Op.MUL, tmp, seed_reg, imm=0)  # tmp = 0 (cheap dep break)
    b.alu(Op.ADD, tmp, acc, imm=17)
    b.alu(Op.MUL, acc, acc, imm=0)       # acc*0 keeps values bounded
    b.alu(Op.ADD, acc, acc, tmp)
    if div_in_compute:
        b.li(tmp2, 3)
        b.alu(Op.DIV, acc, acc, tmp2)
        b.alu(Op.ADD, acc, acc, imm=5)
    b.alu(Op.FADD, acc, acc, imm=2)
    b.ret()

    # --- main loop ---------------------------------------------------------
    b.label("loop")
    _emit_lcg_step(b, seed_reg, tmp)
    for _ in range(stream_weight):
        b.call("sub_stream")
    for _ in range(indirect_weight):
        b.call("sub_indirect")
    for _ in range(chase_weight):
        b.call("sub_chase")
    for _ in range(compute_weight):
        b.call("sub_compute")
    if store_weight:
        for s in range(store_weight):
            b.alu(Op.AND, tmp, seed_reg, imm=(footprint_lines - 1))
            b.alu(Op.SHL, tmp, tmp, imm=6)
            b.alu(Op.ADD, tmp, tmp, imm=BASE_C + s * 8)
            b.store(tmp, acc)
    if branch_entropy:
        b.alu(Op.AND, tmp, seed_reg, imm=1)
        b.bnez(tmp, "entropy_taken")
        b.alu(Op.ADD, acc, acc, imm=1)
        b.jmp("entropy_join")
        b.label("entropy_taken")
        b.alu(Op.XOR, acc, acc, seed_reg)
        b.label("entropy_join")
    b.alu(Op.SUB, counter, counter, imm=1)
    b.bnez(counter, "loop")
    b.halt()
    return b.build()
