"""MuonTrap baseline (Ainsworth & Jones, ISCA 2020) — section 6.1.

MuonTrap hides speculative fills in an **L0 filter cache** in front of
the L1, accessed *serially*: an L0 miss adds a cycle to every L1 access,
which is exactly why the paper moves GhostMinion next to the L1 with
parallel access.  Two variants:

* **MuonTrap** (base): a cross-process defence — the L0 is *not* cleared
  on misspeculation, so transiently fetched lines remain usable by the
  same process (this is why mcf shows no overhead under it, §6.1);
* **MuonTrap-Flush**: the whole L0 is flushed on every squash
  (timing-invariant, but loses all speculative *and* committed-resident
  L0 contents — unlike GhostMinion's timestamp-bounded wipe).

Neither variant TimeGuards reads/fills or touches MSHR ordering, so both
remain vulnerable to backwards-in-time attacks — visible in the security
benches, not in performance.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.stats import Stats
from repro.config import SystemConfig
from repro.defenses.base import Defense
from repro.memory.cache import SetAssocCache
from repro.memory.hierarchy import (
    BaseHierarchy,
    FillFn,
    L1Port,
    SharedMemory,
)
from repro.memory.request import MemRequest

L0_ACCESS_CYCLES = 1


class MuonTrapHierarchy(BaseHierarchy):
    """L0 filter caches (I and D) in front of the L1s."""

    def __init__(self, core_id: int, cfg: SystemConfig,
                 shared: SharedMemory, stats: Stats,
                 flush_on_squash: bool = False,
                 l0_size_bytes: int = 2048, l0_assoc: int = 4) -> None:
        super().__init__(core_id, cfg, shared, stats)
        self.flush_on_squash = flush_on_squash
        num_sets = max(1, (l0_size_bytes // 64) // l0_assoc)
        self.l0d = SetAssocCache(num_sets, l0_assoc, "l0d", stats)
        self.l0i = SetAssocCache(num_sets, l0_assoc, "l0i", stats)
        # Interned miss handles for the stall-proof dry-run below.
        self._h_l0d_misses = stats.handle("l0d.misses")
        self._h_l0i_misses = stats.handle("l0i.misses")

    # The L0 filter caches are plain tag stores with no cycle-based
    # state of their own, so the base next_event_cycle (L1-side MSHR
    # completions) remains the only autonomous wakeup source; the
    # _probe_present override below is already side-effect-free
    # (``contains`` probes), as the scheduler's stall analysis requires.

    def _l0_for(self, port: L1Port) -> SetAssocCache:
        return self.l0d if port is self.dport else self.l0i

    # -- serial L0 -> L1 probe -------------------------------------------

    def _probe(self, port: L1Port, req: MemRequest, cycle: int
               ) -> Optional[int]:
        l0 = self._l0_for(port)
        if l0.lookup(req.line, cycle):
            req.hit_level = 0
            return cycle + L0_ACCESS_CYCLES
        if port.cache.lookup(req.line, cycle):
            req.hit_level = 1
            # Serial access: the L0 lookup happened first.
            return cycle + L0_ACCESS_CYCLES + port.latency
        return None

    def _probe_present(self, port: L1Port, line: int, ts: int) -> bool:
        return (self._l0_for(port).contains(line)
                or port.cache.contains(line))

    def _probe_stall_bumps(self, port: L1Port, line: int, ts: int):
        # Pure mirror of the serial L0 -> L1 probe's miss path for the
        # scheduler's MSHR-backpressure dry-run.
        l0 = self._l0_for(port)
        if l0.contains(line) or port.cache.contains(line):
            return None
        h_l0 = (self._h_l0d_misses if l0 is self.l0d
                else self._h_l0i_misses)
        return [h_l0, port.h_misses]

    # -- L0 miss latency also applies on the miss path --------------------

    def _l2_access(self, req: MemRequest, start: int, train: bool):
        return super()._l2_access(req, start + L0_ACCESS_CYCLES, train)

    def _l2_access_lookahead(self, port: L1Port) -> int:
        return super()._l2_access_lookahead(port) + L0_ACCESS_CYCLES

    def _fills_l2(self, req: MemRequest) -> bool:
        # Speculative lines live in the L0 filter cache only until commit.
        return not req.speculative

    # -- fills: speculative data only enters the L0 -----------------------

    def _fill_targets(self, port: L1Port, req: MemRequest
                      ) -> List[Tuple[FillFn, Optional[int]]]:
        if not req.speculative:
            return super()._fill_targets(port, req)
        if port is self.dport:
            return [(self._fill_l0d, None)]
        return [(self._fill_l0i, None)]

    def _fill_l0d(self, line: int, cycle: int, _ts: int) -> None:
        self.l0d.fill(line, cycle)
        self.shared.directory.on_fill(self.core_id, line)

    def _fill_l0i(self, line: int, cycle: int, _ts: int) -> None:
        self.l0i.fill(line, cycle)

    # -- commit: promote to the L1 ----------------------------------------

    def commit_load(self, req: Optional[MemRequest], ts: int, cycle: int
                    ) -> int:
        if req is None:
            return 0
        self.drain(cycle)
        line = req.line
        if self.l0d.invalidate(line):
            victim = self.dport.cache.fill(line, cycle)
            self._handle_l1_victim(victim, cycle)
            self.shared.directory.on_fill(self.core_id, line)
        return 0

    def commit_ifetch(self, addr: int, ts: int, cycle: int) -> None:
        line = addr >> 6
        if self.l0i.invalidate(line):
            self.iport.cache.fill(line, cycle)

    # -- squash ------------------------------------------------------------

    def squash(self, ts: int, cycle: int) -> None:
        if self.flush_on_squash:
            self.l0d.invalidate_all()
            self.l0i.invalidate_all()
            # In-flight speculative fills must not repopulate the L0
            # after the flush (§6.1: MuonTrap-Flush "clears" transient
            # data as comprehensively as GhostMinion for plain Spectre).
            fill_fns = {self._fill_l0d, self._fill_l0i}
            self.dport.mshrs.drop_fills_above(-1, fill_fns)
            self.iport.mshrs.drop_fills_above(-1, fill_fns)

    # -- coherence ----------------------------------------------------------

    def invalidate_line(self, line: int) -> None:
        super().invalidate_line(line)
        self.l0d.invalidate(line)


def muontrap(flush: bool = False, l0_size_bytes: Optional[int] = None,
             l0_assoc: Optional[int] = None) -> Defense:
    """MuonTrap baseline; ``flush=True`` gives MuonTrap-Flush.

    ``l0_size_bytes``/``l0_assoc`` re-size the filter cache; they fold
    into the hierarchy kwargs (and hence cache digests) only when
    given, so default constructions keep their historical digests.
    """
    kwargs = dict(flush_on_squash=flush)
    if l0_size_bytes is not None:
        kwargs["l0_size_bytes"] = l0_size_bytes
    if l0_assoc is not None:
        kwargs["l0_assoc"] = l0_assoc
    return Defense(
        name="MuonTrap-Flush" if flush else "MuonTrap",
        hierarchy_cls=MuonTrapHierarchy,
        hierarchy_kwargs=kwargs,
    )
