"""Defense description consumed by the core and the simulator.

A defense is (a) a per-core hierarchy class and (b) a handful of
core-side policy knobs.  Keeping the knobs declarative lets one core
implementation host every scheme:

``taint_mode``
    STT: ``'spectre'`` delays tainted-address loads until every branch
    older than the *source* load resolves; ``'future'`` until the source
    load commits.
``validation_mode``
    InvisiSpec: when invisible loads must validate — ``'spectre'`` once
    older branches resolve, ``'future'`` at the commit point.  Commit
    blocks until validation completes.
``strict_fu_order``
    Section 4.9: non-pipelined FU ops issue in timestamp order.
``train_predictor_at_commit``
    Strictness Order for predictor soft state (§4.9 "other soft state"):
    update the branch predictor only with committed outcomes.
``early_commit``
    §4.10's Early Commit optimisation: promote loads at branch
    resolution rather than retirement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Type

from repro.memory.hierarchy import BaseHierarchy, SharedMemory
from repro.analysis.stats import Stats
from repro.config import SystemConfig


@dataclass
class Defense:
    """A named protection scheme."""

    name: str
    hierarchy_cls: Type[BaseHierarchy] = BaseHierarchy
    hierarchy_kwargs: Dict[str, Any] = field(default_factory=dict)
    taint_mode: str = "none"          # 'none' | 'spectre' | 'future'
    validation_mode: str = "none"     # 'none' | 'spectre' | 'future'
    strict_fu_order: bool = False
    train_predictor_at_commit: bool = False
    #: §4.10 Early Commit: treat a load as non-speculative once every
    #: older branch has resolved (InvisiSpec-Spectre-style visibility),
    #: moving its Minion line to the L1 before retirement.  Trades the
    #: inherent exception-attack protection for performance.
    early_commit: bool = False
    #: §4.10 Full Strictness Order: assign a new timestamp per
    #: speculatively predicted branch instead of per instruction, so
    #: instructions within a speculation epoch may freely exchange
    #: timing (their fates are tied).
    epoch_timestamps: bool = False
    #: The normalized spec string this defense was constructed from,
    #: set by the registry for *parameterized* constructions only
    #: (``"MuonTrap(flush=True)"``).  Folded into cache digests so two
    #: spellings of one parameterization share results; ``None`` for
    #: plain-name constructions, whose digests therefore stay identical
    #: to the pre-registry engine.
    spec: Optional[str] = None

    def build_hierarchy(self, core_id: int, cfg: SystemConfig,
                        shared: SharedMemory, stats: Stats
                        ) -> BaseHierarchy:
        return self.hierarchy_cls(core_id, cfg, shared, stats,
                                  **self.hierarchy_kwargs)

    def __post_init__(self) -> None:
        if self.taint_mode not in ("none", "spectre", "future"):
            raise ValueError("bad taint_mode %r" % self.taint_mode)
        if self.validation_mode not in ("none", "spectre", "future"):
            raise ValueError(
                "bad validation_mode %r" % self.validation_mode)
