"""InvisiSpec baseline (Yan et al., MICRO 2018) — section 6.1.

Speculative loads are *invisible*: they obtain data without filling any
cache (buffered in the load queue).  At the load's **visibility point**
the line is made visible:

* loads that originally hit the L1 simply *expose* (no timing cost);
* loads that missed must **validate** — refetch the line through the
  (now fillable) hierarchy — and, crucially, the instruction may not
  commit until the validation completes.  This commit-critical-path
  revalidation is where InvisiSpec's overhead comes from (§6.1), in
  contrast to GhostMinion's MuonTrap-like commit move which is off the
  critical path.

Variants: **InvisiSpec-Spectre** reaches visibility when all older
branches have resolved; **InvisiSpec-Future** only at the commit point.
The core drives both via ``Defense.validation_mode``; the hierarchy here
provides invisible access plus the ``validate`` entry point.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.stats import Stats
from repro.config import SystemConfig
from repro.defenses.base import Defense
from repro.memory.hierarchy import BaseHierarchy, FillFn, L1Port, SharedMemory
from repro.memory.request import MemRequest


class InvisiSpecHierarchy(BaseHierarchy):
    """Invisible speculative loads + validation refetches."""

    # InvisiSpec allocates its load buffer in program order and has no
    # Temporal-Order MSHR machinery.
    temporal_order = False
    # Invisible accesses must not train the prefetcher (no visible
    # side effects); validations — non-speculative — do, via refetch().
    speculative_prefetcher_training = False

    def __init__(self, core_id: int, cfg: SystemConfig,
                 shared: SharedMemory, stats: Stats) -> None:
        super().__init__(core_id, cfg, shared, stats)
        self._h_exposures = stats.handle("ivs.exposures")
        self._h_invisible_misses = stats.handle("ivs.invisible_misses")
        self._h_validations = stats.handle("ivs.validations")

    # Validation completion times live on the load-queue entries (the
    # core blocks commit on them), so the base next_event_cycle — L1
    # MSHR completions — already covers every timing source here.

    def _probe(self, port: L1Port, req: MemRequest, cycle: int
               ) -> Optional[int]:
        ready = super()._probe(port, req, cycle)
        if ready is not None and req.speculative and port is self.dport:
            # An L1 hit was already globally visible: exposure, not
            # validation, at the visibility point.
            req.invisible = True
            req.needs_validation = False
            self.stats.add(self._h_exposures)
        return ready

    def _fill_targets(self, port: L1Port, req: MemRequest
                      ) -> List[Tuple[FillFn, Optional[int]]]:
        if req.speculative and port is self.dport:
            # Invisible: the data is buffered per load-queue entry; no
            # cache anywhere changes state.
            req.invisible = True
            req.needs_validation = True
            self.stats.add(self._h_invisible_misses)
            return []
        return super()._fill_targets(port, req)

    def _fills_l2(self, req: MemRequest) -> bool:
        # Invisible loads change no cache state anywhere.
        return not (req.speculative and req.kind == "load")

    def validate(self, req: MemRequest, ts: int, cycle: int) -> int:
        """Make a missed invisible load visible; returns completion cycle.

        The caller (the core) blocks the load's commit until then.
        """
        self.stats.add(self._h_validations)
        return self.refetch(req.addr, ts, cycle)


def invisispec(future: bool = True) -> Defense:
    """InvisiSpec-Future (default) or InvisiSpec-Spectre."""
    return Defense(
        name="InvisiSpec-Future" if future else "InvisiSpec-Spectre",
        hierarchy_cls=InvisiSpecHierarchy,
        validation_mode="future" if future else "spectre",
    )
