"""The GhostMinion defense: Minions next to each L1 plus Temporal-Order
MSHR mechanisms (section 4).

Feature flags reproduce every configuration of the fig. 9 breakdown:

========================  =========================================
``dminion``               data-side Minion with TimeGuarding
``iminion``               instruction-side Minion
``timeless``              DMinion-Timeless: wipe-on-squash only, no
                          timestamps (vulnerable to backwards-in-time
                          attacks; the fig. 9 strawman)
``coherence_ext``         §4.6 Shared/Invalid rule + commit replay
``prefetch_ext``          §4.7 commit-time prefetcher training
``async_reload``          §6.4 asynchronous reload of lines lost
                          before commit
========================  =========================================
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.stats import Stats
from repro.config import SystemConfig
from repro.core.ghostminion import Minion
from repro.defenses.base import Defense
from repro.memory.hierarchy import (
    BaseHierarchy,
    FillFn,
    L1Port,
    SharedMemory,
)
from repro.memory.mshr import MSHREntry
from repro.memory.request import MemRequest


class GhostMinionHierarchy(BaseHierarchy):
    """Per-core hierarchy with D/I Minions and TimeGuarded MSHRs."""

    #: ``_minion_fill_fns`` holds bound methods of this hierarchy — pure
    #: wiring (recomputed in ``__init__``), excluded from component
    #: snapshots so capturing a hierarchy never drags the whole machine
    #: graph along behind a bound ``self``.
    _SNAPSHOT_EXCLUDE = BaseHierarchy._SNAPSHOT_EXCLUDE + (
        "_minion_fill_fns",)

    def __init__(self, core_id: int, cfg: SystemConfig,
                 shared: SharedMemory, stats: Stats,
                 dminion: bool = True, iminion: bool = True,
                 timeless: bool = False, coherence_ext: bool = True,
                 prefetch_ext: bool = True,
                 async_reload: Optional[bool] = None) -> None:
        super().__init__(core_id, cfg, shared, stats)
        self.dminion_enabled = dminion
        self.iminion_enabled = iminion
        self.timeless = timeless
        self.coherence_ext = coherence_ext
        self.prefetch_ext = prefetch_ext
        if async_reload is None:
            async_reload = cfg.minion_d.async_reload
        self.async_reload = async_reload
        # Temporal-Order MSHR mechanisms only make sense with timestamps.
        self.temporal_order = dminion and not timeless
        # §4.7: with the prefetcher extension, speculative accesses no
        # longer train the (non-speculative) L2 prefetcher.
        self.speculative_prefetcher_training = not prefetch_ext
        rob = cfg.core.rob_entries
        mcfg_d, mcfg_i = cfg.minion_d, cfg.minion_i
        self.dminion = Minion(mcfg_d.num_sets, mcfg_d.assoc, "dminion",
                              stats, timeless=timeless, rob_entries=rob
                              ) if dminion else None
        self.iminion = Minion(mcfg_i.num_sets, mcfg_i.assoc, "iminion",
                              stats, timeless=timeless, rob_entries=rob
                              ) if iminion else None
        # Fill functions targeted by squash-time fill dropping.
        self._minion_fill_fns = {self._fill_dminion, self._fill_iminion}
        self._h_timeguard_loads = stats.handle("gm.timeguard_loads")
        self._h_iprefetches = stats.handle("gm.iprefetches")
        self._h_fill_denied = stats.handle("coh.minion_fill_denied")
        self._h_commit_replays = stats.handle("coh.commit_replays")
        self._h_commit_refetches = stats.handle("coh.commit_refetches")
        self._h_async_reloads = stats.handle("dminion.async_reloads")

    def _tlb_minion_enabled(self) -> bool:
        # §4.9: GhostMinions attach to TLBs too (when the TLB is
        # modelled): speculative walks fill a TimeGuarded TLB-Minion.
        return True

    # ------------------------------------------------------------------
    # §4.7: fetch-directed instruction prefetching into the I-Minion
    # ------------------------------------------------------------------

    def ifetch(self, addr: int, ts: int, cycle: int):
        req = super().ifetch(addr, ts, cycle)
        if (req is not None and self.iminion is not None
                and self.cfg.iprefetch_into_minion):
            self._iprefetch_next(addr + 64, ts, cycle)
        return req

    def _iprefetch_next(self, addr: int, ts: int, cycle: int) -> None:
        """Prefetch the next instruction line into the I-Minion,
        timestamped to the triggering instruction (§4.7): only
        instructions at equal-or-higher timestamps can observe it."""
        line = addr >> 6
        if (self.iminion.get(line) is not None
                or self.iport.cache.contains(line)
                or self.iport.mshrs.find(line) is not None
                or self.iport.mshrs.full()):
            return
        result = self.shared.access(
            line, cycle + self.iport.latency, ts, True, 0,
            self.temporal_order, False, fill_l2=False, core=self.core_id)
        if result is None:
            return
        ready, _level, l2_entry = result
        entry = self.iport.mshrs.allocate(line, ts, ready,
                                          core=self.core_id)
        if l2_entry is not None:
            l2_entry.dependents.append((self.iport.mshrs, entry))
        entry.fill_actions.append((self._fill_iminion, None))
        self.stats.add(self._h_iprefetches)

    # ------------------------------------------------------------------
    # probes: Minion accessed in parallel with the L1 (§4.3)
    # ------------------------------------------------------------------

    def _minion_for(self, port: L1Port) -> Optional[Minion]:
        if port is self.dport:
            return self.dminion
        return self.iminion

    def _probe(self, port: L1Port, req: MemRequest, cycle: int
               ) -> Optional[int]:
        minion = self._minion_for(port)
        if minion is not None:
            outcome = minion.read(req.line, req.ts)
            if outcome == "hit":
                req.hit_level = 0
                return cycle + port.latency
            if outcome == "timeguard":
                self.stats.add(self._h_timeguard_loads)
                # The line is invisible at this timestamp; the access
                # proceeds as a miss, but it must not *refetch over* the
                # younger line (handled by the fill rule).
        if port.cache.lookup(req.line, cycle):
            req.hit_level = 1
            return cycle + port.latency
        return None

    def _probe_present(self, port: L1Port, line: int, ts: int) -> bool:
        # Pure presence poll (fetch-stage spin / scheduler stall
        # analysis): must not count Minion reads, unlike the real access
        # path through ``_probe``.
        minion = self._minion_for(port)
        if minion is not None and minion.probe(line, ts):
            return True
        return port.cache.contains(line)

    def _probe_stall_bumps(self, port: L1Port, line: int, ts: int):
        # Pure mirror of _probe's miss path for the scheduler's
        # MSHR-backpressure dry-run: the Minion read outcome decides
        # which counters a retrying access bumps each cycle.
        bumps = []
        minion = self._minion_for(port)
        if minion is not None:
            outcome = minion.probe_outcome(line, ts)
            if outcome == "hit":
                return None
            if outcome == "timeguard":
                bumps.append(minion.h_timeguard_blocks)
                bumps.append(self._h_timeguard_loads)
            else:
                bumps.append(minion.h_misses)
        if port.cache.contains(line):
            return None
        bumps.append(port.h_misses)
        return bumps

    # ------------------------------------------------------------------
    # Temporal-Order MSHR mechanisms
    # ------------------------------------------------------------------

    def _leapfrog_victim(self, port: L1Port, req: MemRequest
                         ) -> Optional[MSHREntry]:
        if not self.temporal_order:
            return None
        return port.mshrs.leapfrog_victim(req.ts, self.core_id)

    def _fills_l2(self, req: MemRequest) -> bool:
        # §4.2: the non-speculative hierarchy never sees speculative
        # state changes — speculative misses bypass the L2 and land in
        # the Minion only (when the relevant Minion exists).
        if not req.speculative:
            return True
        if req.kind == "ifetch":
            return self.iminion is None
        return self.dminion is None

    # ------------------------------------------------------------------
    # fills: speculative data goes to the Minion only (§4.2)
    # ------------------------------------------------------------------

    def _fill_targets(self, port: L1Port, req: MemRequest
                      ) -> List[Tuple[FillFn, Optional[int]]]:
        minion = self._minion_for(port)
        if minion is None or not req.speculative:
            return super()._fill_targets(port, req)
        if (port is self.dport and self.coherence_ext
                and not self.shared.directory.minion_fill_allowed(
                    self.core_id, req.line)):
            # §4.6: no Shared Minion copy while a remote core holds the
            # line modified: the data passes through uncached and the
            # load refetches coherently at commit.
            self.stats.add(self._h_fill_denied)
            req.uncached = True
            return []
        if port is self.dport:
            return [(self._fill_dminion, None)]
        return [(self._fill_iminion, None)]

    def _fill_dminion(self, line: int, cycle: int, ts: int) -> None:
        version = self.shared.directory.version(line)
        outcome = self.dminion.fill(line, ts, version=version, src_level=3)
        if outcome.filled:
            self.shared.directory.on_fill(self.core_id, line)

    def _fill_iminion(self, line: int, cycle: int, ts: int) -> None:
        self.iminion.fill(line, ts)

    # ------------------------------------------------------------------
    # commit: free-slotting (fig. 3) + extensions
    # ------------------------------------------------------------------

    def commit_load(self, req: Optional[MemRequest], ts: int, cycle: int
                    ) -> int:
        if req is None:
            return 0
        if self.dtlb is not None:
            self.dtlb.commit_translation(req.addr, ts, cycle)
        if self.dminion is None:
            return 0
        self.drain(cycle)
        line = req.line
        entry = self.dminion.take_for_commit(line, ts)
        if entry is not None:
            victim = self.dport.cache.fill(line, cycle)
            self._handle_l1_victim(victim, cycle)
            self.shared.directory.on_fill(self.core_id, line)
            extra = 0
            if (self.coherence_ext
                    and entry.version != self.shared.directory.version(line)):
                # §4.6: the speculatively forwarded copy went stale; the
                # load is replayed non-speculatively before commit.
                self.stats.add(self._h_commit_replays)
                extra = self.refetch(req.addr, ts, cycle) - cycle
            if self.prefetch_ext and entry.src_level >= 2:
                self.shared.train_commit(req.pc, line, cycle)
            return max(0, extra)
        if self.dport.cache.contains(line):
            return 0
        if req.uncached and self.coherence_ext:
            # Denied a Minion copy while remote-modified: gain the
            # coherent copy now, non-speculatively, off the critical
            # path unless the value is needed (we charge the L2 path).
            self.stats.add(self._h_commit_refetches)
            return self.refetch(req.addr, ts, cycle) - cycle
        if self.async_reload:
            # §6.4: reload lost lines in the background (no commit stall).
            self.stats.add(self._h_async_reloads)
            self.refetch(req.addr, ts, cycle)
        return 0

    def commit_ifetch(self, addr: int, ts: int, cycle: int) -> None:
        if self.iminion is None:
            return
        entry = self.iminion.take_for_commit(addr >> 6, ts)
        if entry is not None:
            self.iport.cache.fill(addr >> 6, cycle)

    # ------------------------------------------------------------------
    # squash: single-cycle timestamp-bounded wipe (§4.2)
    # ------------------------------------------------------------------

    def squash(self, ts: int, cycle: int) -> None:
        if self.dminion is not None:
            self.dminion.wipe_above(ts)
            self.dport.mshrs.drop_fills_above(ts, self._minion_fill_fns)
        if self.iminion is not None:
            self.iminion.wipe_above(ts)
            self.iport.mshrs.drop_fills_above(ts, self._minion_fill_fns)
        if self.temporal_order:
            # In-flight entries from squashed instructions sit above the
            # squash point in the timestamp window: stealable/restartable
            # by any future request (see MSHRFile.mark_squashed_above).
            self.dport.mshrs.mark_squashed_above(ts, self.core_id)
            self.iport.mshrs.mark_squashed_above(ts, self.core_id)
            self.shared.l2_mshrs.mark_squashed_above(ts, self.core_id)
        if self.dtlb is not None:
            self.dtlb.squash(ts)

    # ------------------------------------------------------------------
    # coherence (§4.6)
    # ------------------------------------------------------------------

    def invalidate_line(self, line: int) -> None:
        super().invalidate_line(line)
        if self.dminion is not None:
            self.dminion.invalidate(line)

    def _on_own_store(self, line: int, ts: int, cycle: int) -> None:
        if self.coherence_ext and self.dminion is not None:
            # A store upgrade needs exclusivity; the Minion may only hold
            # Shared copies, so our own speculative copy is invalidated.
            self.dminion.invalidate(line)


def ghostminion(dminion: bool = True, iminion: bool = True,
                timeless: bool = False, coherence_ext: bool = True,
                prefetch_ext: bool = True,
                async_reload: Optional[bool] = None,
                strict_fu_order: bool = False,
                early_commit: bool = False,
                full_strictness: bool = False) -> Defense:
    """The full GhostMinion defense (figs. 6-8 configuration).

    ``early_commit=True`` gives the §4.10 Early Commit variant (promote
    loads at branch resolution instead of retirement);
    ``full_strictness=True`` gives §4.10's Full Strictness Order variant
    (one timestamp per speculation epoch rather than per instruction).
    """
    name = "GhostMinion"
    if early_commit:
        name = "GhostMinion-EC"
    if full_strictness:
        name = "GhostMinion-FS"
    return Defense(
        name=name,
        hierarchy_cls=GhostMinionHierarchy,
        hierarchy_kwargs=dict(
            dminion=dminion, iminion=iminion, timeless=timeless,
            coherence_ext=coherence_ext, prefetch_ext=prefetch_ext,
            async_reload=async_reload),
        strict_fu_order=strict_fu_order,
        train_predictor_at_commit=True,
        early_commit=early_commit,
        epoch_timestamps=full_strictness,
    )


def ghostminion_breakdown(which: str) -> Defense:
    """The fig. 9 breakdown configurations by bar name."""
    configs = {
        "DMinion-Timeless": dict(dminion=True, iminion=False, timeless=True,
                                 coherence_ext=False, prefetch_ext=False),
        "DMinion": dict(dminion=True, iminion=False, timeless=False,
                        coherence_ext=False, prefetch_ext=False),
        "IMinion": dict(dminion=False, iminion=True, timeless=False,
                        coherence_ext=False, prefetch_ext=False),
        "Coherence": dict(dminion=True, iminion=False, timeless=False,
                          coherence_ext=True, prefetch_ext=False),
        "Prefetcher": dict(dminion=True, iminion=False, timeless=False,
                           coherence_ext=False, prefetch_ext=True),
        "All": dict(dminion=True, iminion=True, timeless=False,
                    coherence_ext=True, prefetch_ext=True),
    }
    if which not in configs:
        raise KeyError("unknown breakdown config %r" % which)
    defense = ghostminion(**configs[which])
    defense.name = "GhostMinion[%s]" % which
    return defense
