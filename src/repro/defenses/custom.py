"""Data-driven defense composition: the ``Custom`` registry entry.

The core is policy-driven (taint, validation, FU order, predictor
training) and the hierarchy is a registered class, so a *new* scheme is
often just a new combination of existing parts.  ``Custom`` exposes
exactly that through a spec string — no code edit required::

    repro run hmmer --defense "Custom(hierarchy='muontrap', \\
        flush_on_squash=True, strict_fu_order=True)"

``hierarchy`` is itself a spec string over the ``hierarchy`` registry;
its keyword arguments (here ``flush_on_squash``) are any keywords not
consumed by the policy knobs below, validated against the hierarchy
class's constructor up front.
"""

from __future__ import annotations

from repro.defenses.base import Defense
from repro.registry import check_kwargs, parse_spec

#: keywords consumed by the Defense itself; everything else goes to the
#: hierarchy constructor.
_POLICY_KNOBS = ("taint", "validation", "strict_fu_order",
                 "train_predictor_at_commit", "early_commit",
                 "full_strictness", "name")


def custom(hierarchy: str = "base", taint: str = "none",
           validation: str = "none", strict_fu_order: bool = False,
           train_predictor_at_commit: bool = False,
           early_commit: bool = False, full_strictness: bool = False,
           name: str = "Custom", **hierarchy_kwargs) -> Defense:
    """Compose a defense from a registered hierarchy + policy knobs."""
    from repro.defenses import HIERARCHIES
    hierarchy_name, spec_kwargs = parse_spec(hierarchy)
    cls = HIERARCHIES.entry(hierarchy_name).factory
    merged = dict(spec_kwargs)
    merged.update(hierarchy_kwargs)
    check_kwargs(cls, merged, "hierarchy %r" % hierarchy_name)
    return Defense(
        name=name,
        hierarchy_cls=cls,
        hierarchy_kwargs=merged,
        taint_mode=taint,
        validation_mode=validation,
        strict_fu_order=strict_fu_order,
        train_predictor_at_commit=train_predictor_at_commit,
        early_commit=early_commit,
        epoch_timestamps=full_strictness,
    )
