"""The unprotected out-of-order baseline all figures normalise against."""

from repro.defenses.base import Defense


def unsafe() -> Defense:
    """Plain speculative machine: leaks via every channel in section 2."""
    return Defense(name="Unsafe")
