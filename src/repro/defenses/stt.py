"""Speculative Taint Tracking baseline (Yu et al., MICRO 2019) — §6.1.

STT is a speculation-*restricting* scheme: data returned by a speculative
("access") load is tainted, taint propagates through the dataflow, and a
*transmit* instruction — a load or store whose **address** depends on
tainted data — may not execute until the taint clears:

* **STT-Spectre**: taint clears when every branch older than the source
  load has resolved;
* **STT-Future**: taint clears only when the source load commits (all
  operations unsafe until commit time, matching the paper's framing).

The memory hierarchy is completely stock (loads fill caches normally —
they simply cannot *issue* while their address is tainted), so the
defense is expressed purely through ``Defense.taint_mode``; the taint
machinery lives in the core (:mod:`repro.pipeline.core`).
"""

from repro.defenses.base import Defense


def stt(future: bool = True) -> Defense:
    """STT-Future (default) or STT-Spectre."""
    return Defense(
        name="STT-Future" if future else "STT-Spectre",
        taint_mode="future" if future else "spectre",
    )
