"""Spectre defenses evaluated in the paper (figs. 6-9).

Each defense is a :class:`repro.defenses.base.Defense`: a hierarchy
factory plus the core-side policy flags (taint tracking, load validation,
FU issue order, predictor training point).  ``registry`` maps the names
used in the figures to constructors.
"""

from repro.defenses.base import Defense
from repro.defenses.unsafe import unsafe
from repro.defenses.ghostminion import (
    ghostminion,
    ghostminion_breakdown,
    GhostMinionHierarchy,
)
from repro.defenses.muontrap import muontrap, MuonTrapHierarchy
from repro.defenses.invisispec import invisispec, InvisiSpecHierarchy
from repro.defenses.stt import stt

#: name -> zero-argument defense constructor, one per figure bar.
registry = {
    "Unsafe": unsafe,
    "GhostMinion": ghostminion,
    "MuonTrap": lambda: muontrap(flush=False),
    "MuonTrap-Flush": lambda: muontrap(flush=True),
    "InvisiSpec-Spectre": lambda: invisispec(future=False),
    "InvisiSpec-Future": lambda: invisispec(future=True),
    "STT-Spectre": lambda: stt(future=False),
    "STT-Future": lambda: stt(future=True),
}

#: The bar order of figs. 6-8 (Unsafe is the normalisation baseline).
FIGURE_ORDER = [
    "GhostMinion",
    "MuonTrap",
    "MuonTrap-Flush",
    "InvisiSpec-Spectre",
    "InvisiSpec-Future",
    "STT-Spectre",
    "STT-Future",
]

__all__ = [
    "Defense",
    "unsafe",
    "ghostminion",
    "ghostminion_breakdown",
    "muontrap",
    "invisispec",
    "stt",
    "registry",
    "FIGURE_ORDER",
    "GhostMinionHierarchy",
    "MuonTrapHierarchy",
    "InvisiSpecHierarchy",
]
