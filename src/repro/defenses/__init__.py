"""Spectre defenses evaluated in the paper (figs. 6-9).

Each defense is a :class:`repro.defenses.base.Defense`: a hierarchy
factory plus the core-side policy flags (taint tracking, load
validation, FU issue order, predictor training point).

Defenses live in the ``defense`` component registry
(:data:`DEFENSES`): every figure bar is a registered name, factories
accept keyword parameters through spec strings
(``"MuonTrap(flush=True)"``, ``"GhostMinion(early_commit=True)"``),
and ``Custom`` composes a scheme from any registered hierarchy plus
policy knobs — see ``docs/components.md``.  Hierarchy classes register
separately under the ``hierarchy`` kind (:data:`HIERARCHIES`).

``registry`` is the historical dict-style view (``registry[name]()``),
kept as a thin adapter over :data:`DEFENSES`.
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, Iterator, Mapping

from repro.defenses.base import Defense
from repro.defenses.unsafe import unsafe
from repro.defenses.ghostminion import (
    ghostminion,
    ghostminion_breakdown,
    GhostMinionHierarchy,
)
from repro.defenses.muontrap import muontrap, MuonTrapHierarchy
from repro.defenses.invisispec import invisispec, InvisiSpecHierarchy
from repro.defenses.custom import custom
from repro.defenses.stt import stt
from repro.memory.hierarchy import BaseHierarchy
from repro.registry import Registry


def _finalize_defense(defense: Defense, entry_name: str, spec: str,
                      kwargs: Dict[str, object]) -> Defense:
    """Stamp parameterized constructions with their normalized spec.

    The spec string becomes part of the cache digest (two spellings of
    the same parameterization must share results) and — when the
    factory did not pick a more canonical name itself (e.g.
    ``muontrap(flush=True)`` -> ``MuonTrap-Flush``) — the display name,
    so distinct parameterizations never collide in sweep keys.
    Plain-name constructions pass through untouched, keeping their
    digests byte-identical to the pre-registry engine.
    """
    if kwargs:
        defense.spec = spec
        if defense.name == entry_name:
            defense.name = spec
    return defense


#: The ``defense`` component registry: every figure bar by name.
DEFENSES: Registry[Defense] = Registry("defense",
                                       finalize=_finalize_defense)

#: The ``hierarchy`` component registry: per-core hierarchy classes,
#: referenced by ``Custom(hierarchy=...)`` spec strings and plugins.
HIERARCHIES: Registry[BaseHierarchy] = Registry("hierarchy")

HIERARCHIES.add("base", BaseHierarchy, tags=("builtin",),
                summary="Stock L1/L2/DRAM hierarchy (no protection).")
HIERARCHIES.add("ghostminion", GhostMinionHierarchy, tags=("builtin",),
                summary="D/I Minions + TimeGuarded MSHRs (section 4).")
HIERARCHIES.add("muontrap", MuonTrapHierarchy, tags=("builtin",),
                summary="L0 filter caches in front of the L1s "
                        "(MuonTrap, ISCA 2020).")
HIERARCHIES.add("invisispec", InvisiSpecHierarchy, tags=("builtin",),
                summary="Invisible speculative loads + validation "
                        "refetches (InvisiSpec, MICRO 2018).")

# -- figure defenses (figs. 6-8 bars; "figure" tag = canonical set) -----

DEFENSES.add("Unsafe", unsafe, tags=("figure", "baseline"))
DEFENSES.add("GhostMinion", ghostminion, tags=("figure",))
DEFENSES.add("MuonTrap", muontrap, tags=("figure",))
DEFENSES.add("MuonTrap-Flush", functools.partial(muontrap, flush=True),
             tags=("figure",),
             summary="MuonTrap with the L0 flushed on every squash.")
DEFENSES.add("InvisiSpec-Spectre",
             functools.partial(invisispec, future=False),
             tags=("figure",),
             summary="InvisiSpec reaching visibility at branch "
                     "resolution.")
DEFENSES.add("InvisiSpec-Future",
             functools.partial(invisispec, future=True),
             tags=("figure",),
             summary="InvisiSpec reaching visibility only at commit.")
DEFENSES.add("STT-Spectre", functools.partial(stt, future=False),
             tags=("figure",),
             summary="STT: taint clears at branch resolution.")
DEFENSES.add("STT-Future", functools.partial(stt, future=True),
             tags=("figure",),
             summary="STT: taint clears only at source-load commit.")

# -- fig. 9 breakdown bars + data-driven composition --------------------

for _which in ("DMinion-Timeless", "DMinion", "IMinion", "Coherence",
               "Prefetcher", "All"):
    DEFENSES.add("GhostMinion[%s]" % _which,
                 functools.partial(ghostminion_breakdown, which=_which),
                 tags=("breakdown",),
                 summary="Fig. 9 breakdown bar: %s." % _which)
del _which

DEFENSES.add("Custom", custom, tags=("composed",))


class _DefenseRegistryView(Mapping):
    """Dict-style adapter (``registry[name]()``) over :data:`DEFENSES`.

    Kept for the historical call sites and tests; new code should use
    :data:`DEFENSES` / ``repro.exp.spec.resolve_defense`` directly.
    """

    def __getitem__(self, name: str) -> Callable[..., Defense]:
        DEFENSES.entry(name)  # raises UnknownComponentError if missing
        return functools.partial(DEFENSES.create, name)

    def __iter__(self) -> Iterator[str]:
        return iter(DEFENSES)

    def __len__(self) -> int:
        return len(DEFENSES)


#: name -> defense constructor, one per figure bar (compat view).
registry = _DefenseRegistryView()

#: The bar order of figs. 6-8 (Unsafe is the normalisation baseline).
FIGURE_ORDER = [
    "GhostMinion",
    "MuonTrap",
    "MuonTrap-Flush",
    "InvisiSpec-Spectre",
    "InvisiSpec-Future",
    "STT-Spectre",
    "STT-Future",
]

__all__ = [
    "Defense",
    "DEFENSES",
    "HIERARCHIES",
    "unsafe",
    "ghostminion",
    "ghostminion_breakdown",
    "muontrap",
    "invisispec",
    "stt",
    "custom",
    "registry",
    "FIGURE_ORDER",
    "GhostMinionHierarchy",
    "MuonTrapHierarchy",
    "InvisiSpecHierarchy",
]
