"""Miss-status-handling registers with Temporal-Order support.

GhostMinion propagates timestamp metadata into the MSHRs at every cache
level (fig. 2) so that:

* **leapfrogging** (fig. 5): when the file is full and a request with an
  *older* timestamp arrives, it steals the entry of the youngest-timestamp
  occupant, whose attached requests must replay;
* **timeleaping** (section 4.5): when a request finds an in-flight entry
  for the same line at a *younger* timestamp, the entry is restarted at
  each level so its timing matches "as if only the older request ran".

Each entry carries a list of *fill actions* — (cache-like object, line,
timestamp) tuples the hierarchy applies when the entry completes.  On a
squash, pending fills into a GhostMinion with timestamps above the squash
point are dropped, which is observationally identical to the hardware's
wipe-by-timestamp (DESIGN.md note 3).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.analysis.stats import Stats
from repro.memory.request import MemRequest
from repro.snapshot import SnapshotMixin

# Timestamp given to prefetch-allocated entries: any demand request may
# leapfrog a prefetch, and a prefetch never leapfrogs anything.
PREFETCH_TS = float("inf")


class MSHREntry:
    """One in-flight miss.

    ``dependents`` links a lower-level (e.g. L2) entry to the upper-level
    (L1) entries waiting on it, as ``(mshr_file, entry)`` pairs: stealing
    or timeleaping the lower entry cascades to them (the paper's
    "cascading leapfrogs ... in multiple different cache levels").
    """

    __slots__ = ("line", "ts", "ready_cycle", "requests", "fill_actions",
                 "prefetch", "dependents", "core", "squashed")

    def __init__(self, line: int, ts, ready_cycle: int,
                 prefetch: bool = False, core: int = 0) -> None:
        self.line = line
        self.ts = ts
        self.ready_cycle = ready_cycle
        self.requests: List[MemRequest] = []
        # (fill_fn, ts_or_None) pairs applied on completion; None means
        # "use the entry's timestamp at completion time".
        self.fill_actions: List[tuple] = []
        self.prefetch = prefetch
        self.dependents: List[tuple] = []
        # Timestamps are only ordered within a thread (§3): comparisons
        # are restricted to entries allocated by the same core.
        self.core = core
        # A squashed allocator leaves the entry logically *above* the
        # squash point in the timestamp window: stealable by anyone.
        self.squashed = False

    def attach(self, req: MemRequest) -> None:
        self.requests.append(req)
        if not self.prefetch and req.core_id == self.core \
                and req.ts < self.ts:
            self.ts = req.ts

    def stealable_by(self, ts, core: int) -> bool:
        """May a request at (ts, core) leapfrog this entry?"""
        if self.prefetch or self.squashed:
            return True
        return self.core == core and self.ts > ts

    def add_fill(self, fill_fn: Callable[[int, int, float], None],
                 ts=None) -> None:
        """Register a completion fill; ``fill_fn(line, cycle, ts)``."""
        self.fill_actions.append((fill_fn, ts))

    def has_fill(self, fill_fn) -> bool:
        return any(fn is fill_fn for fn, _ts in self.fill_actions)


class MSHRFile(SnapshotMixin):
    """Fixed-size MSHR file for one cache level."""

    #: Snapshot contract: ``entries`` is the state.  Entries reference
    #: requests and fill actions owned elsewhere, so component-level
    #: snapshots are meaningful on a *quiesced* file (no in-flight
    #: misses); whole-machine checkpoints capture in-flight state with
    #: identity intact (see :mod:`repro.sim.checkpoint`).  The
    #: observability hook is wiring, like stats.
    _SNAPSHOT_EXCLUDE = ("stats", "_obs")

    def __init__(self, size: int, name: str, stats: Optional[Stats] = None
                 ) -> None:
        if size < 1:
            raise ValueError("MSHR file needs at least one entry")
        self.size = size
        self.name = name
        self.stats = stats if stats is not None else Stats()
        #: Dormant tracing hook (``Simulator.attach_obs``); every use is
        #: behind an is-not-None guard (the ``obs-guards`` lint contract).
        self._obs = None
        self.entries: List[MSHREntry] = []
        self._h_allocs = self.stats.handle(name + ".allocs")
        self._h_leapfrogs = self.stats.handle(name + ".leapfrogs")
        self._h_victim_replays = self.stats.handle(
            name + ".leapfrog_victim_replays")
        self._h_timeleaps = self.stats.handle(name + ".timeleaps")
        self._h_squash_marked = self.stats.handle(name + ".squash_marked")
        self._h_squash_dropped = self.stats.handle(
            name + ".squash_dropped_fills")

    # -- queries --------------------------------------------------------

    def find(self, line: int) -> Optional[MSHREntry]:
        for entry in self.entries:
            if entry.line == line:
                return entry
        return None

    def full(self) -> bool:
        return len(self.entries) >= self.size

    def occupancy(self) -> int:
        return len(self.entries)

    def earliest_free_cycle(self) -> int:
        """When the next entry frees, for full-file queueing delays."""
        if not self.entries:
            return 0
        return min(entry.ready_cycle for entry in self.entries)

    def next_ready_cycle(self) -> float:
        """Earliest pending completion (``inf`` when the file is idle).

        The event-driven scheduler uses this as a wakeup source: no fill
        from this file can change machine state before that cycle.
        """
        if not self.entries:
            return float("inf")
        return min(entry.ready_cycle for entry in self.entries)

    # -- allocation -----------------------------------------------------

    def allocate(self, line: int, ts, ready_cycle: int,
                 prefetch: bool = False, core: int = 0) -> MSHREntry:
        if self.full():
            raise RuntimeError("%s: allocate on full MSHR file" % self.name)
        entry = MSHREntry(line, ts, ready_cycle, prefetch=prefetch,
                          core=core)
        self.entries.append(entry)
        self.stats.add(self._h_allocs)
        if self._obs is not None:
            # Allocation sites do not pass the current cycle; the event
            # is stamped with the completion-due cycle, which keeps it
            # ordered just before the matching mshr-fill.
            self._obs.emit_mem(self.name, "mshr-alloc", line, ready_cycle)
        return entry

    # -- Temporal-Order mechanisms (GhostMinion) --------------------------

    def leapfrog_victim(self, ts, core: int = 0) -> Optional[MSHREntry]:
        """Youngest-timestamp entry strictly younger than ``ts``.

        Prefetch and squashed-transient entries count as infinitely
        young (always stealable); otherwise only same-core entries are
        comparable (no cross-thread Temporal Order, §4.9).  Returns None
        when every occupant is at-or-before ``ts`` — then waiting is
        safe, because all occupants are visible to the requester.
        """
        candidates = [e for e in self.entries if e.stealable_by(ts, core)]
        if not candidates:
            return None
        return max(candidates,
                   key=lambda e: (PREFETCH_TS
                                  if e.prefetch or e.squashed else e.ts))

    def steal(self, victim: MSHREntry, line: int, ts, ready_cycle: int,
              core: int = 0) -> MSHREntry:
        """Leapfrog: cancel ``victim`` and reuse its slot (fig. 5).

        Cancellation cascades to upper-level entries waiting on the
        victim (their attached loads replay too).
        """
        self._cancel(victim)
        self.entries.remove(victim)
        self.stats.add(self._h_leapfrogs)
        return self.allocate(line, ts, ready_cycle, core=core)

    def _cancel(self, entry: MSHREntry) -> None:
        for req in entry.requests:
            req.mark_replay()
            self.stats.add(self._h_victim_replays)
        for dep_file, dep_entry in entry.dependents:
            if dep_entry in dep_file.entries:
                dep_file.entries.remove(dep_entry)
                dep_file._cancel(dep_entry)

    def timeleap(self, entry: MSHREntry, ts, ready_cycle: int) -> None:
        """Restart ``entry`` for an older-timestamp requester (§4.5).

        The entry's timestamp drops to the older request's and its
        completion is recomputed as if freshly issued; every attached
        (younger) request legitimately observes the new timing, and
        upper-level entries waiting on this one are postponed with it.
        """
        entry.ts = ts
        entry.ready_cycle = ready_cycle
        entry.prefetch = False
        entry.squashed = False
        for req in entry.requests:
            req.postpone(ready_cycle)
        for dep_file, dep_entry in entry.dependents:
            if dep_entry in dep_file.entries:
                if dep_entry.ready_cycle < ready_cycle:
                    dep_entry.ready_cycle = ready_cycle
                for req in dep_entry.requests:
                    req.postpone(ready_cycle)
        self.stats.add(self._h_timeleaps)

    def mark_squashed_above(self, ts, core: int) -> int:
        """Squash support: entries allocated by ``core`` above the squash
        timestamp now belong to squashed instructions.  In the hardware
        window encoding their timestamps sit above every future
        (reissued) timestamp, so they are stealable by any new request;
        mark them accordingly.  Returns the count marked."""
        marked = 0
        for entry in self.entries:
            if (not entry.prefetch and not entry.squashed
                    and entry.core == core and entry.ts > ts):
                entry.squashed = True
                marked += 1
        if marked:
            self.stats.add(self._h_squash_marked, marked)
        return marked

    # -- completion -----------------------------------------------------

    def drain(self, cycle: int) -> List[MSHREntry]:
        """Pop and return all entries whose data has arrived."""
        if not self.entries:
            return self.entries  # hot path: idle file, no list built
        done = [e for e in self.entries if e.ready_cycle <= cycle]
        if done:
            self.entries = [e for e in self.entries
                            if e.ready_cycle > cycle]
            if self._obs is not None:
                for entry in done:
                    self._obs.emit_mem(self.name, "mshr-fill", entry.line,
                                       cycle)
        return done

    def drop_fills_above(self, ts, fill_tag_fns) -> int:
        """Squash support: drop pending fills into wiped structures.

        ``fill_tag_fns`` is the set of fill functions that target a
        GhostMinion being wiped; any pending action with a timestamp above
        ``ts`` into one of them is removed.  Returns the drop count.
        """
        dropped = 0
        for entry in self.entries:
            kept = []
            for fill_fn, fill_ts in entry.fill_actions:
                effective_ts = entry.ts if fill_ts is None else fill_ts
                if fill_fn in fill_tag_fns and effective_ts > ts:
                    dropped += 1
                else:
                    kept.append((fill_fn, fill_ts))
            entry.fill_actions = kept
        if dropped:
            self.stats.add(self._h_squash_dropped, dropped)
        return dropped
