"""Set-associative cache with true-LRU replacement.

Used for the L1I/L1D/L2 and (via composition) the MuonTrap L0 filter
cache.  The GhostMinion compartment has different insertion/lookup rules
and lives in :mod:`repro.core.ghostminion`.

Caches here store only line tags plus metadata; data values live in the
simulator's functional memory.  A per-line ``version`` is bumped by
coherence events so commit-time replay checks (section 4.6) can detect
that a speculatively forwarded line went stale.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.analysis.stats import Stats
from repro.snapshot import SnapshotMixin


class CacheLine:
    """Tag-store entry."""

    __slots__ = ("line", "last_used", "dirty")

    def __init__(self, line: int, cycle: int) -> None:
        self.line = line
        self.last_used = cycle
        self.dirty = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "CacheLine(%#x, lru=%d)" % (self.line, self.last_used)


def _lru_key(entry: CacheLine) -> int:
    """Module-level LRU key: avoids building a fresh closure per fill."""
    return entry.last_used


class SetAssocCache(SnapshotMixin):
    """Classic set-associative tag store with LRU replacement."""

    #: Snapshot contract: the tag store (``_sets``) is the state; the
    #: shared stats registry and the observability hook are wiring
    #: (geometry and interned handles are immutable and harmlessly
    #: captured).
    _SNAPSHOT_EXCLUDE = ("stats", "_obs")

    def __init__(self, num_sets: int, assoc: int, name: str = "cache",
                 stats: Optional[Stats] = None) -> None:
        if num_sets < 1 or assoc < 1:
            raise ValueError("cache must have at least one set and way")
        self.num_sets = num_sets
        self.assoc = assoc
        self.name = name
        self.stats = stats if stats is not None else Stats()
        #: Dormant tracing hook (``Simulator.attach_obs``); every use is
        #: behind an is-not-None guard (the ``obs-guards`` lint contract).
        self._obs = None
        # Hot-path counters resolved to interned slots once (hits/misses
        # fire on every access, fills/evictions on every miss return).
        self._h_hits = self.stats.handle(name + ".hits")
        self._h_misses = self.stats.handle(name + ".misses")
        self._h_fills = self.stats.handle(name + ".fills")
        self._h_evictions = self.stats.handle(name + ".evictions")
        self._h_invalidations = self.stats.handle(name + ".invalidations")
        self._h_flushes = self.stats.handle(name + ".flushes")
        # One dict per set: line -> CacheLine.  Sets are tiny (assoc<=8).
        self._sets: List[Dict[int, CacheLine]] = [
            {} for _ in range(num_sets)]

    # -- geometry -------------------------------------------------------

    def set_index(self, line: int) -> int:
        return line % self.num_sets

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def lines(self) -> Iterator[int]:
        for cache_set in self._sets:
            for line in cache_set:
                yield line

    # -- lookups --------------------------------------------------------

    def contains(self, line: int) -> bool:
        """Presence check with no LRU side effects (a *probe*)."""
        return line in self._sets[self.set_index(line)]

    def lookup(self, line: int, cycle: int) -> bool:
        """Access the cache: on hit, update recency and count a hit."""
        entry = self._sets[self.set_index(line)].get(line)
        if entry is None:
            self.stats.add(self._h_misses)
            if self._obs is not None:
                self._obs.emit_mem(self.name, "cache-miss", line, cycle)
            return False
        entry.last_used = cycle
        self.stats.add(self._h_hits)
        return True

    def get(self, line: int) -> Optional[CacheLine]:
        return self._sets[self.set_index(line)].get(line)

    # -- mutation -------------------------------------------------------

    def fill(self, line: int, cycle: int, dirty: bool = False
             ) -> Optional[int]:
        """Insert ``line``; return the evicted line number, if any."""
        cache_set = self._sets[self.set_index(line)]
        existing = cache_set.get(line)
        if existing is not None:
            existing.last_used = cycle
            existing.dirty = existing.dirty or dirty
            return None
        victim_line = None
        if len(cache_set) >= self.assoc:
            victim_line = min(cache_set.values(), key=_lru_key).line
            del cache_set[victim_line]
            self.stats.add(self._h_evictions)
            if self._obs is not None:
                self._obs.emit_mem(self.name, "cache-evict", victim_line,
                                   cycle)
        entry = CacheLine(line, cycle)
        entry.dirty = dirty
        cache_set[line] = entry
        self.stats.add(self._h_fills)
        return victim_line

    def invalidate(self, line: int) -> bool:
        """Remove ``line``; True if it was present."""
        cache_set = self._sets[self.set_index(line)]
        if line in cache_set:
            del cache_set[line]
            self.stats.add(self._h_invalidations)
            return True
        return False

    def invalidate_all(self) -> int:
        """Flush the whole structure (MuonTrap-Flush); returns line count."""
        count = len(self)
        for cache_set in self._sets:
            cache_set.clear()
        self.stats.add(self._h_flushes)
        return count

    def mark_dirty(self, line: int) -> None:
        entry = self.get(line)
        if entry is not None:
            entry.dirty = True
