"""Simple DRAM timing model with per-bank open-page row buffers.

Section 4.9 of the paper notes that open-page policies act as an implicit
cache visible to speculation, and suggests allowing only non-speculative
accesses to leave pages open.  ``DRAMConfig.nonspec_open_only`` implements
that policy so the ablation bench can measure its cost.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.stats import Stats
from repro.config import DRAMConfig
from repro.snapshot import SnapshotMixin


class DRAM(SnapshotMixin):
    """Fixed-latency DRAM with an optional row-buffer hit fast path."""

    #: Snapshot contract: the open-row state is the state; config and
    #: the shared stats registry are wiring.
    _SNAPSHOT_EXCLUDE = ("cfg", "stats")

    def __init__(self, cfg: DRAMConfig, stats: Optional[Stats] = None
                 ) -> None:
        self.cfg = cfg
        self.stats = stats if stats is not None else Stats()
        self._h_accesses = self.stats.handle("dram.accesses")
        self._h_row_hits = self.stats.handle("dram.row_hits")
        self._h_spec_no_open = self.stats.handle("dram.spec_no_open")
        # lines per row: a row covers 2**row_bits bytes of 64-byte lines.
        self.lines_per_row = max(1, (1 << cfg.row_bits) // 64)
        self._open_rows: Dict[int, int] = {}

    def row_of(self, line: int) -> int:
        return line // self.lines_per_row

    def bank_of(self, line: int) -> int:
        return self.row_of(line) % self.cfg.banks

    def access(self, line: int, speculative: bool = False) -> int:
        """Access latency for ``line``; updates row-buffer state."""
        self.stats.add(self._h_accesses)
        row = self.row_of(line)
        bank = self.bank_of(line)
        if self.cfg.open_page and self._open_rows.get(bank) == row:
            self.stats.add(self._h_row_hits)
            latency = self.cfg.row_hit_latency
        else:
            latency = self.cfg.base_latency
        may_open = self.cfg.open_page and (
            not self.cfg.nonspec_open_only or not speculative)
        if may_open:
            self._open_rows[bank] = row
        elif self.cfg.nonspec_open_only and speculative:
            # A speculative access that closes the page it used leaves no
            # trace; model by not updating (previous row stays open).
            self.stats.add(self._h_spec_no_open)
        return latency

    def open_row(self, bank: int) -> Optional[int]:
        return self._open_rows.get(bank)

    def reset(self) -> None:
        self._open_rows.clear()
