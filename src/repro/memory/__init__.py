"""Memory-system substrate: caches, MSHRs, DRAM, prefetcher, coherence.

The hierarchy is cycle-driven but call-based: a load computes its
completion cycle at access time and registers MSHR occupancy; GhostMinion's
leapfrogging/timeleaping later *mutate* in-flight requests, which is why
requests are shared mutable handles (:class:`repro.memory.request.MemRequest`).
"""

from repro.memory.cache import SetAssocCache, CacheLine
from repro.memory.coherence import Directory
from repro.memory.dram import DRAM
from repro.memory.mshr import MSHRFile, MSHREntry
from repro.memory.prefetcher import StridePrefetcher
from repro.memory.request import MemRequest, ReqState
from repro.memory.tlb import TLBHierarchy, TranslationResult

__all__ = [
    "SetAssocCache",
    "CacheLine",
    "Directory",
    "DRAM",
    "MSHRFile",
    "MSHREntry",
    "StridePrefetcher",
    "MemRequest",
    "ReqState",
    "TLBHierarchy",
    "TranslationResult",
]
