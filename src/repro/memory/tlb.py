"""Address translation: two-level TLB with a TLB GhostMinion (§4.9).

The paper's "Address translation" paragraph: *"GhostMinions should also
be attached to TLBs and page table walker caches.  Behaviour is similar
to those developed here, without coherence protection."*

Model: a set-associative L1 TLB backed by a larger L2 TLB backed by a
fixed-latency page-table walk.  Speculative walks fill a TimeGuarded
TLB-Minion (reusing :class:`repro.core.ghostminion.Minion` keyed by
virtual page number); committed translations move into the real TLBs,
and the TLB-Minion is wiped on squash — so transient page-table walks
leave no trace an attacker could time.

Translation is off by default (``SystemConfig.model_tlb``) so the
headline figures match the paper's (which does not model TLB effects
either); the TLB ablation bench turns it on.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.stats import Stats
from repro.config import TLBConfig
from repro.core.ghostminion import Minion
from repro.memory.cache import SetAssocCache
from repro.snapshot import SnapshotMixin


class TranslationResult:
    """Outcome of one translation: extra latency plus provenance."""

    __slots__ = ("latency", "level", "filled_minion")

    def __init__(self, latency: int, level: str,
                 filled_minion: bool = False) -> None:
        self.latency = latency
        self.level = level          # 'minion' | 'l1' | 'l2' | 'walk'
        self.filled_minion = filled_minion


class TLBHierarchy(SnapshotMixin):
    """L1 TLB + L2 TLB + walker, with an optional TLB-Minion."""

    #: Snapshot contract: the L1/L2 TLBs and the TLB-Minion restore in
    #: place as nested components; config and stats are wiring, and
    #: ``page_shift`` is a wiring-derived constant rebuilt by
    #: ``__init__``.
    _SNAPSHOT_EXCLUDE = ("cfg", "stats", "page_shift")

    def __init__(self, cfg: TLBConfig, stats: Optional[Stats] = None,
                 minion: bool = True, name: str = "dtlb") -> None:
        self.cfg = cfg
        self.name = name
        self.stats = stats if stats is not None else Stats()
        self.page_shift = cfg.page_bits
        l1_sets = max(1, cfg.l1_entries // cfg.l1_assoc)
        l2_sets = max(1, cfg.l2_entries // cfg.l2_assoc)
        self.l1 = SetAssocCache(l1_sets, cfg.l1_assoc,
                                name + ".l1", self.stats)
        self.l2 = SetAssocCache(l2_sets, cfg.l2_assoc,
                                name + ".l2", self.stats)
        minion_sets = max(1, cfg.minion_entries // cfg.minion_assoc)
        self.minion = (Minion(minion_sets, cfg.minion_assoc,
                              name + ".minion", self.stats)
                       if minion else None)
        self._h_translations = self.stats.handle(name + ".translations")
        self._h_walks = self.stats.handle(name + ".walks")

    def vpn_of(self, addr: int) -> int:
        return addr >> self.page_shift

    # ------------------------------------------------------------------

    def translate(self, addr: int, ts: int, cycle: int,
                  speculative: bool = True) -> TranslationResult:
        """Translate ``addr``; returns the added latency.

        Speculative misses fill only the TLB-Minion; non-speculative
        misses fill the real TLBs directly.
        """
        vpn = self.vpn_of(addr)
        self.stats.add(self._h_translations)
        if self.minion is not None and speculative:
            if self.minion.read(vpn, ts) == "hit":
                return TranslationResult(0, "minion")
        if self.l1.lookup(vpn, cycle):
            return TranslationResult(0, "l1")
        if self.l2.lookup(vpn, cycle):
            latency = self.cfg.l2_latency
            self._fill(vpn, ts, cycle, speculative, "l2")
            return TranslationResult(latency, "l2")
        latency = self.cfg.l2_latency + self.cfg.walk_latency
        self.stats.add(self._h_walks)
        filled = self._fill(vpn, ts, cycle, speculative, "walk")
        return TranslationResult(latency, "walk", filled_minion=filled)

    def _fill(self, vpn: int, ts: int, cycle: int, speculative: bool,
              source: str) -> bool:
        if speculative and self.minion is not None:
            outcome = self.minion.fill(vpn, ts)
            return outcome.filled
        self._fill_real(vpn, cycle, source)
        return False

    def _fill_real(self, vpn: int, cycle: int, source: str) -> None:
        self.l1.fill(vpn, cycle)
        if source == "walk":
            self.l2.fill(vpn, cycle)

    # ------------------------------------------------------------------

    def commit_translation(self, addr: int, ts: int, cycle: int) -> None:
        """Commit move: promote the Minion's translation to the TLBs."""
        if self.minion is None:
            return
        vpn = self.vpn_of(addr)
        entry = self.minion.take_for_commit(vpn, ts)
        if entry is not None:
            self._fill_real(vpn, cycle, "walk")

    def squash(self, ts: int) -> None:
        """Wipe transient translations above the squash point."""
        if self.minion is not None:
            self.minion.wipe_above(ts)
