"""Mutable in-flight memory request handles.

The out-of-order core polls a :class:`MemRequest` every cycle rather than
being called back: GhostMinion's leapfrogging can *cancel* a request that
has already been given a completion time (the victim must replay), and
timeleaping can *postpone* one, so completion times are mutable state
shared between the core and the MSHR files.
"""

from __future__ import annotations

import enum
from typing import Optional


class ReqState(enum.Enum):
    PENDING = "pending"  # waiting on an MSHR completion
    READY = "ready"      # ready_cycle is final
    REPLAY = "replay"    # leapfrogged away; the core must reissue


class MemRequest:
    """One in-flight load/ifetch with a mutable completion time."""

    __slots__ = (
        "kind", "addr", "line", "ts", "core_id", "speculative",
        "issue_cycle", "ready_cycle", "state", "hit_level",
        "filled_minion", "minion_version", "uncached", "invisible",
        "needs_validation", "validation_req", "pc",
    )

    def __init__(self, kind: str, addr: int, ts: int, core_id: int,
                 issue_cycle: int, speculative: bool, pc: int = 0) -> None:
        self.kind = kind            # 'load' | 'ifetch' | 'reload'
        self.addr = addr
        self.line = addr >> 6
        self.ts = ts
        self.core_id = core_id
        self.speculative = speculative
        self.issue_cycle = issue_cycle
        self.ready_cycle = issue_cycle
        self.state = ReqState.PENDING
        self.hit_level = 3          # 0=minion, 1=L1, 2=L2, 3=DRAM
        self.filled_minion = False
        self.minion_version = -1
        self.uncached = False       # minion fill failed; data not retained
        self.invisible = False      # InvisiSpec: no fills were performed
        self.needs_validation = False
        self.validation_req: Optional["MemRequest"] = None
        self.pc = pc

    def done(self, cycle: int) -> bool:
        """True once data is available to the core at ``cycle``."""
        return self.state is ReqState.READY and cycle >= self.ready_cycle

    def mark_ready(self, ready_cycle: int) -> None:
        self.state = ReqState.READY
        self.ready_cycle = ready_cycle

    def mark_replay(self) -> None:
        self.state = ReqState.REPLAY

    def postpone(self, ready_cycle: int) -> None:
        """Timeleap: restart this request's timing at each cache level."""
        self.ready_cycle = max(self.ready_cycle, ready_cycle)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return ("MemRequest(%s addr=%#x ts=%d %s ready=%d)" %
                (self.kind, self.addr, self.ts, self.state.value,
                 self.ready_cycle))
