"""Stride prefetcher with a reference prediction table (Table 1: 64-entry
RPT at the L2).

Each confident entry maintains a *prefetch front* that runs ahead of the
training stream up to ``max_distance`` lines, advancing ``degree`` lines
per training event — the classic lookahead scheme that lets the front
overtake the demand stream (essential when training happens at commit,
which lags execution by up to a ROB's worth of instructions).

The GhostMinion prefetcher extension (section 4.7) trains this only on
*committed* accesses, delivered as commit-time notifications tagged with
the level the data was originally brought in from; the unsafe baseline
trains it on every (speculative) demand access.  Both call :meth:`train`;
the hierarchy decides when.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.analysis.stats import Stats
from repro.snapshot import SnapshotMixin


class _RPTEntry:
    __slots__ = ("last_line", "stride", "confidence", "front")

    def __init__(self, last_line: int) -> None:
        self.last_line = last_line
        self.stride = 0
        self.confidence = 0
        self.front = last_line


class StridePrefetcher(SnapshotMixin):
    """Per-PC stride detection with 2-bit confidence and lookahead."""

    #: Snapshot contract: the RPT is the state; stats are wiring.
    _SNAPSHOT_EXCLUDE = ("stats",)

    def __init__(self, entries: int = 64, degree: int = 2,
                 max_distance: int = 24,
                 stats: Optional[Stats] = None) -> None:
        if entries < 1:
            raise ValueError("RPT needs at least one entry")
        self.capacity = entries
        self.degree = degree
        self.max_distance = max_distance
        self.stats = stats if stats is not None else Stats()
        self._table: "OrderedDict[int, _RPTEntry]" = OrderedDict()
        # train() runs on the demand-access path: interned slots only.
        self._h_trains = self.stats.handle("pf.trains")
        self._h_predictions = self.stats.handle("pf.predictions")

    def train(self, pc: int, line: int) -> List[int]:
        """Observe an access; return lines to prefetch (possibly empty)."""
        self.stats.add(self._h_trains)
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.capacity:
                self._table.popitem(last=False)
            self._table[pc] = _RPTEntry(line)
            return []
        self._table.move_to_end(pc)
        stride = line - entry.last_line
        if stride == entry.stride and stride != 0:
            entry.confidence = min(3, entry.confidence + 1)
        else:
            entry.confidence = max(0, entry.confidence - 1)
            if entry.confidence == 0:
                entry.stride = stride
                entry.front = line
        entry.last_line = line
        if entry.confidence < 2 or entry.stride == 0:
            return []
        self.stats.add(self._h_predictions)
        # Advance the prefetch front: at least one line past the trigger,
        # at most max_distance strides ahead of it.
        stride = entry.stride
        if stride > 0:
            start = max(line + stride, entry.front + stride)
            limit = line + stride * self.max_distance
            lines = [start + stride * i for i in range(self.degree)
                     if start + stride * i <= limit]
        else:
            start = min(line + stride, entry.front + stride)
            limit = line + stride * self.max_distance
            lines = [start + stride * i for i in range(self.degree)
                     if start + stride * i >= limit]
        if lines:
            entry.front = lines[-1]
        return [pf for pf in lines if pf >= 0]

    def peek(self, pc: int) -> Optional[_RPTEntry]:
        """Side-effect-free RPT entry lookup (no LRU move, no stats).

        Used by the event-driven scheduler's stall analysis to reason
        about what a window of repeated :meth:`train` calls would do
        without perturbing the table.
        """
        return self._table.get(pc)

    def snapshot(self) -> List[Tuple[int, int, int]]:
        """(pc, stride, confidence) rows, for tests and debugging."""
        return [(pc, e.stride, e.confidence)
                for pc, e in self._table.items()]
