"""Per-core memory hierarchy and the shared L2/DRAM system.

:class:`BaseHierarchy` implements the **unsafe baseline**: speculative
loads fill the L1 and L2 directly, the prefetcher trains on speculative
accesses, and nothing is cleaned on a squash.  Defenses subclass it and
override the hook methods (``_probe``, ``_fill_targets``,
``_leapfrog_victim``, ``commit_load``, ``squash`` ...); see
``repro.defenses``.

Timing model: a request computes its completion cycle at access time and
registers MSHR occupancy at each level it misses in.  Completion times are
*mutable* (see :mod:`repro.memory.request`) so GhostMinion's leapfrogging
and timeleaping can cancel or postpone in-flight requests.  Fills are
applied when MSHR entries drain at their completion cycle; every public
entry point drains first, so the visible cache state is always up to date.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.analysis.stats import Stats
from repro.config import SystemConfig
from repro.memory.cache import SetAssocCache
from repro.memory.coherence import Directory
from repro.memory.dram import DRAM
from repro.memory.mshr import MSHREntry, MSHRFile
from repro.memory.prefetcher import StridePrefetcher
from repro.memory.request import MemRequest
from repro.memory.tlb import TLBHierarchy
from repro.snapshot import SnapshotMixin

FillFn = Callable[[int, int, int], None]


class LoadBlockProof:
    """Proof that a load/ifetch would hit MSHR backpressure this cycle
    — and every cycle until the next memory-system event.

    Produced by the side-effect-free dry-runs
    :meth:`BaseHierarchy.load_block_proof` /
    :meth:`BaseHierarchy.ifetch_block_proof` for the event-driven
    scheduler.  ``bumps`` is the list of interned stat slot *handles*
    (see :meth:`repro.analysis.stats.Stats.handle`) the retrying
    access would bump once per cycle; ``replays`` is a tuple of
    ``fn(cycle, k)`` callables that reproduce the non-counter
    side effects of ``k`` back-to-back retries (today: prefetcher
    training) and are invoked once when a skip window is committed.
    ``wake`` caps the skip window: the first cycle at which the retry
    might stop blocking.  For L2-side backpressure this is *earlier*
    than the next L2 completion, because the dense retry path drains
    the L2 MSHRs at its access cycle ``cycle + L1 latency`` — a slot
    frees (and the load allocates) that many cycles before the entry's
    ready cycle.
    """

    __slots__ = ("bumps", "replays", "wake")

    def __init__(self, bumps: List[int], replays: Tuple = (),
                 wake: float = float("inf")) -> None:
        self.bumps = bumps
        self.replays = replays
        self.wake = wake


class SharedMemory(SnapshotMixin):
    """The shared part of the machine: L2, its MSHRs, DRAM, directory,
    and the L2 stride prefetcher."""

    #: Snapshot contract: the L2/MSHRs/DRAM/directory/prefetcher restore
    #: in place as nested components; the registered per-core
    #: hierarchies are wiring owned by their cores.
    _SNAPSHOT_EXCLUDE = ("cfg", "stats", "hierarchies")

    def __init__(self, cfg: SystemConfig, stats: Stats) -> None:
        self.cfg = cfg
        self.stats = stats
        self.l2 = SetAssocCache(cfg.l2.num_sets, cfg.l2.assoc, "l2", stats)
        self.l2_mshrs = MSHRFile(cfg.l2.mshrs, "l2.mshr", stats)
        self.dram = DRAM(cfg.dram, stats)
        self.directory = Directory(cfg.cores, stats)
        self.prefetcher = (StridePrefetcher(cfg.prefetcher_rpt_entries,
                                            stats=stats)
                           if cfg.l2_prefetcher else None)
        self.hierarchies: List["BaseHierarchy"] = []
        # §4.9 cross-thread contention: macro-level per-core quota on the
        # shared MSHRs (the simplest "predict utilisation per thread"
        # allocation the paper suggests).
        self._mshr_quota = (max(1, cfg.l2.mshrs // max(1, cfg.cores))
                            if cfg.l2_mshr_partitioning and cfg.cores > 1
                            else None)
        self._last_drain = -1
        # Hot-path counters interned once; see repro.analysis.stats.
        self._h_l2_misses = stats.handle("l2.misses")
        self._h_demand_promotions = stats.handle("pf.demand_promotions")
        self._h_quota_retry = stats.handle("l2.mshr.quota_retry")
        self._h_retry_full = stats.handle("l2.mshr.retry_full")
        self._h_pf_trains = stats.handle("pf.trains")
        self._h_pf_commit_notifies = stats.handle("pf.commit_notifies")
        self._h_pf_dropped_full = stats.handle("pf.dropped_full")
        self._h_pf_issued = stats.handle("pf.issued")

    def _over_quota(self, core: int) -> bool:
        if self._mshr_quota is None:
            return False
        held = sum(1 for e in self.l2_mshrs.entries
                   if e.core == core and not e.prefetch)
        return held >= self._mshr_quota

    def register(self, hierarchy: "BaseHierarchy") -> None:
        self.hierarchies.append(hierarchy)

    # -- completion -----------------------------------------------------

    def next_event_cycle(self) -> float:
        """Earliest cycle at which shared state can change on its own:
        the next L2 MSHR completion (``inf`` when nothing is in flight).
        DRAM, the directory and the prefetcher hold no cycle-based state,
        so in-flight misses are the only autonomous wakeup source."""
        return self.l2_mshrs.next_ready_cycle()

    def drain(self, cycle: int) -> None:
        if self._last_drain >= cycle:
            return
        self._last_drain = cycle
        for entry in self.l2_mshrs.drain(cycle):
            self._apply_fills(entry, cycle)

    def _apply_fills(self, entry: MSHREntry, cycle: int) -> None:
        for fill_fn, fill_ts in entry.fill_actions:
            ts = entry.ts if fill_ts is None else fill_ts
            fill_fn(entry.line, cycle, ts)

    def _fill_l2(self, line: int, cycle: int, _ts: int) -> None:
        self.l2.fill(line, cycle)

    # -- access paths ----------------------------------------------------

    def access(self, line: int, start: int, ts: int, speculative: bool,
               pc: int, temporal_order: bool, train: bool,
               fill_l2: bool = True, core: int = 0
               ) -> Optional[Tuple[int, int, Optional[MSHREntry]]]:
        """Access the L2 for a line needed at an L1 at cycle ``start``.

        Returns ``(cycle data reaches the L1, hit level, l2 entry)`` or
        ``None`` when the L2 MSHRs exert backpressure (the L1 must
        retry).  ``fill_l2=False`` keeps the access invisible to the
        non-speculative hierarchy (GhostMinion/MuonTrap/InvisiSpec
        speculative misses bypass the L2 on their way to the L1-side
        structure).
        """
        self.drain(start)
        lat = self.cfg.l2.latency
        if train and self.prefetcher is not None:
            self._train_prefetcher(pc, line, start, speculative)
        if self.l2.lookup(line, start):
            return start + lat, 2, None
        entry = self.l2_mshrs.find(line)
        if entry is not None:
            if fill_l2 and not entry.has_fill(self._fill_l2):
                entry.fill_actions.append((self._fill_l2, None))
            if entry.prefetch:
                # Prefetches are non-speculative actions (trained on
                # committed or architecturally harmless streams), so a
                # demand may freely observe their progress: promote the
                # entry without restarting it.
                entry.prefetch = False
                entry.ts = ts
                entry.core = core
                self.stats.add(self._h_demand_promotions)
            elif temporal_order and (entry.squashed or (
                    entry.core == core and entry.ts > ts)):
                # Timeleap: restart the in-flight request as if issued
                # by the older load (§4.5).  Squashed-transient entries
                # sit above the window and always restart.
                dram_lat = self.dram.access(line, speculative)
                self.l2_mshrs.timeleap(entry, ts, start + lat + dram_lat)
                entry.core = core
                return entry.ready_cycle, 3, entry
            return max(entry.ready_cycle, start + lat), 3, entry
        if self._over_quota(core):
            self.stats.add(self._h_quota_retry)
            return None
        victim = None
        if self.l2_mshrs.full():
            if temporal_order:
                victim = self.l2_mshrs.leapfrog_victim(ts, core)
            if victim is None:
                self.stats.add(self._h_retry_full)
                return None
        dram_lat = self.dram.access(line, speculative)
        ready = start + lat + dram_lat
        if victim is not None:
            entry = self.l2_mshrs.steal(victim, line, ts, ready, core=core)
        else:
            entry = self.l2_mshrs.allocate(line, ts, ready, core=core)
        if fill_l2:
            entry.fill_actions.append((self._fill_l2, None))
        return ready, 3, entry

    def access_block_proof(self, line: int, ts: int, pc: int, cycle: int,
                           lookahead: int, speculative: bool,
                           temporal_order: bool, train: bool, core: int):
        """Side-effect-free dry-run of :meth:`access` for the scheduler.

        Returns ``(bump_handles, replays, wake)`` when an access to
        ``line`` would *provably* hit L2-MSHR backpressure (quota or
        full file) this cycle and on every subsequent cycle before
        ``wake`` — or ``None`` when the access might succeed (or the
        block is not provable), in which case the scheduler must step
        densely.

        ``lookahead`` is how far ahead of the core's cycle the dense
        retry path accesses the L2 (the L1 latency, plus the L0 cycle
        under MuonTrap): :meth:`access` drains completions up to its
        ``start`` cycle, so a pending L2 entry frees its slot
        ``lookahead`` cycles *before* its ready cycle.  ``wake`` is
        therefore ``next_ready_cycle() - lookahead``; a proof is only
        issued when that lies strictly in the future.

        The proof's stability rests on the skip-window invariant: no
        fill drains, no commit/squash runs and no other core acts
        before the window's wake cycle, so cache contents, MSHR
        occupancy and the per-core quota are all frozen.  The one
        mutable participant is the stride prefetcher, which the dense
        loop would train once per retry cycle; that is handled by a
        replay callable (see :meth:`_replay_trains`), and cases where
        repeated training could *issue* a prefetch (new MSHR state
        mid-window) return ``None`` instead.
        """
        if self.l2.contains(line):
            return None  # L2 hit: the access would complete
        if self.l2_mshrs.find(line) is not None:
            return None  # would attach / promote / timeleap: progress
        wake = self.l2_mshrs.next_ready_cycle() - lookahead
        if wake <= cycle:
            return None  # dense's drain-ahead would free a slot now
        if self._over_quota(core):
            retry_bump = self._h_quota_retry
        elif self.l2_mshrs.full():
            if temporal_order and \
                    self.l2_mshrs.leapfrog_victim(ts, core) is not None:
                return None  # would steal a slot: progress
            retry_bump = self._h_retry_full
        else:
            return None  # a free slot: the access would allocate
        bumps = [self._h_l2_misses, retry_bump]
        replays: Tuple = ()
        if train and self.prefetcher is not None:
            entry = self.prefetcher.peek(pc)
            if entry is None or entry.last_line != line:
                return None  # first-touch training: step densely once
            # Repeated same-line training decays confidence, so a
            # prediction can only fire on the window's first train
            # (confidence 3 -> 2).  With a full MSHR file every fired
            # prefetch is provably dropped (deterministic counter
            # bumps); otherwise it could allocate -> not skippable.
            if entry.confidence >= 3 and entry.stride != 0 \
                    and not self.l2_mshrs.full():
                return None
            replays = (lambda start, k: self._replay_trains(
                pc, line, speculative, start, k),)
        return bumps, replays, wake

    def _replay_trains(self, pc: int, line: int, speculative: bool,
                       cycle: int, k: int) -> None:
        """Reproduce ``k`` back-to-back retry-cycle prefetcher trains.

        Real :meth:`StridePrefetcher.train` calls are made until the
        RPT entry reaches its same-line fixed point (stride 0,
        confidence 0 — at most four calls), then the remaining
        ``k - steps`` trains collapse to a bulk ``pf.trains`` bump.
        Any predictions fired by the real calls go through
        :meth:`_issue_prefetch` exactly as in the dense loop;
        :meth:`access_block_proof` only emits this replay when every
        such prefetch is provably dropped or skipped.
        """
        steps = 0
        while steps < k:
            entry = self.prefetcher.peek(pc)
            if entry is not None and entry.last_line == line \
                    and entry.stride == 0 and entry.confidence == 0:
                break
            for pf_line in self.prefetcher.train(pc, line):
                self._issue_prefetch(pf_line, cycle, speculative)
            steps += 1
        if steps < k:
            self.stats.add(self._h_pf_trains, k - steps)

    def timeleap_restart(self, line: int, start: int, ts: int,
                         speculative: bool, core: int = 0) -> int:
        """Restart an in-flight line for an older requester (§4.5).

        Returns the new cycle at which data reaches the L1.
        """
        self.drain(start)
        lat = self.cfg.l2.latency
        if self.l2.contains(line):
            return start + lat
        entry = self.l2_mshrs.find(line)
        if entry is not None:
            dram_lat = self.dram.access(line, speculative)
            self.l2_mshrs.timeleap(entry, ts, start + lat + dram_lat)
            entry.core = core
            return entry.ready_cycle
        # The L2 portion already completed (and was perhaps evicted);
        # model a fresh L2-side access without new allocation.
        dram_lat = self.dram.access(line, speculative)
        return start + lat + dram_lat

    def refetch(self, line: int, start: int, core_id: int) -> Tuple[int, int]:
        """Non-speculative eager refetch (validation, async reload,
        coherence replay).  Fills the L2 immediately and returns
        ``(cycle data reaches the L1, hit level)``.

        Modelled without MSHR occupancy: these events are rare and the
        eager fill avoids backpressure deadlocks (DESIGN.md).
        """
        self.drain(start)
        lat = self.cfg.l2.latency
        if self.prefetcher is not None:
            self._train_prefetcher(0, line, start, False)
        if self.l2.lookup(line, start):
            return start + lat, 2
        dram_lat = self.dram.access(line, False)
        self.l2.fill(line, start)
        return start + lat + dram_lat, 3

    # -- prefetching ------------------------------------------------------

    def _train_prefetcher(self, pc: int, line: int, cycle: int,
                          speculative: bool) -> None:
        predictions = self.prefetcher.train(pc, line)
        for pf_line in predictions:
            self._issue_prefetch(pf_line, cycle, speculative)

    def train_commit(self, pc: int, line: int, cycle: int) -> None:
        """GhostMinion prefetcher extension (§4.7): commit-time
        notification of a committed memory access."""
        if self.prefetcher is None:
            return
        self.drain(cycle)
        self.stats.add(self._h_pf_commit_notifies)
        self._train_prefetcher(pc, line, cycle, False)

    def _issue_prefetch(self, line: int, cycle: int,
                        speculative: bool) -> None:
        if line < 0:
            return
        if self.l2.contains(line) or self.l2_mshrs.find(line) is not None:
            return
        if self.l2_mshrs.full():
            self.stats.add(self._h_pf_dropped_full)
            return
        dram_lat = self.dram.access(line, speculative)
        ready = cycle + self.cfg.l2.latency + dram_lat
        entry = self.l2_mshrs.allocate(line, 0, ready, prefetch=True)
        entry.fill_actions.append((self._fill_l2, None))
        self.stats.add(self._h_pf_issued)

    # -- coherence --------------------------------------------------------

    def store_commit(self, core_id: int, line: int, cycle: int) -> None:
        """A store commits on ``core_id``: upgrade + remote invalidations."""
        victims = self.directory.on_store_commit(core_id, line)
        for hierarchy in self.hierarchies:
            if hierarchy.core_id in victims:
                hierarchy.invalidate_line(line)
        # Write-allocate into the L2 so later reads hit.
        self.l2.fill(line, cycle, dirty=True)


class L1Port(SnapshotMixin):
    """One L1 cache plus its MSHR file (instruction or data side)."""

    def __init__(self, cache: SetAssocCache, mshrs: MSHRFile,
                 latency: int, name: str, stats: Stats) -> None:
        self.cache = cache
        self.mshrs = mshrs
        self.latency = latency
        self.name = name
        # Public: the block-proof dry-runs and defense overrides emit
        # these handles instead of re-interning names per cycle.
        self.h_misses = stats.handle(cache.name + ".misses")
        self.h_mshr_retry_full = stats.handle(
            cache.name + ".mshr_retry_full")


class BaseHierarchy(SnapshotMixin):
    """Unsafe-baseline per-core hierarchy; defenses subclass this."""

    #: Snapshot contract: the L1 ports (and optional D-TLB) restore in
    #: place as nested components; config, the shared memory system and
    #: stats are wiring.  Subclasses with extra wiring extend this.
    _SNAPSHOT_EXCLUDE = ("cfg", "shared", "stats")

    #: Enable Temporal-Order MSHR mechanisms (leapfrog/timeleap).
    temporal_order = False
    #: Train the L2 prefetcher on speculative demand accesses.
    speculative_prefetcher_training = True

    def __init__(self, core_id: int, cfg: SystemConfig,
                 shared: SharedMemory, stats: Stats) -> None:
        self.core_id = core_id
        self.cfg = cfg
        self.shared = shared
        self.stats = stats
        self.dport = L1Port(
            SetAssocCache(cfg.l1d.num_sets, cfg.l1d.assoc, "l1d", stats),
            MSHRFile(cfg.l1d.mshrs, "l1d.mshr", stats),
            cfg.l1d.latency, "d", stats)
        self.iport = L1Port(
            SetAssocCache(cfg.l1i.num_sets, cfg.l1i.assoc, "l1i", stats),
            MSHRFile(cfg.l1i.mshrs, "l1i.mshr", stats),
            cfg.l1i.latency, "i", stats)
        # Optional address translation (§4.9); the unsafe baseline fills
        # the real TLBs speculatively (no Minion).
        self.dtlb = (TLBHierarchy(cfg.tlb, stats,
                                  minion=self._tlb_minion_enabled())
                     if cfg.model_tlb else None)
        self._h_loads_issued = stats.handle("mem.loads_issued")
        self._h_ifetches_issued = stats.handle("mem.ifetches_issued")
        self._h_stores_committed = stats.handle("mem.stores_committed")
        self._h_refetches = stats.handle("mem.refetches")
        self._h_timeleap_loads = stats.handle("gm.timeleap_loads")
        self._h_leapfrog_loads = stats.handle("gm.leapfrog_loads")
        shared.register(self)

    def _tlb_minion_enabled(self) -> bool:
        """Hook: whether speculative translations are Minion-buffered."""
        return False

    # ------------------------------------------------------------------
    # public API used by the core
    # ------------------------------------------------------------------

    def drain(self, cycle: int) -> None:
        self.shared.drain(cycle)
        for port in (self.dport, self.iport):
            for entry in port.mshrs.drain(cycle):
                self.shared._apply_fills(entry, cycle)

    def next_event_cycle(self) -> float:
        """Earliest cycle at which this hierarchy can change state on its
        own (``inf`` when idle): the next L1-side MSHR completion.

        The event-driven scheduler takes the minimum over every core's
        hierarchy plus :meth:`SharedMemory.next_event_cycle`; subclasses
        that add their own cycle-based timing state must override and
        fold their wakeups into the minimum.  (Minions, L0 filter caches
        and TLB-Minions are timestamp-ordered, not cycle-timed, so the
        defenses shipped here need no extra sources.)
        """
        return min(self.dport.mshrs.next_ready_cycle(),
                   self.iport.mshrs.next_ready_cycle())

    def load(self, addr: int, ts: int, cycle: int, speculative: bool = True,
             pc: int = 0) -> Optional[MemRequest]:
        """Issue a data load.  Returns a request handle, or ``None`` when
        MSHR backpressure means the core must retry next cycle."""
        self.stats.add(self._h_loads_issued)
        return self._access(self.dport, "load", addr, ts, cycle,
                            speculative, pc)

    def ifetch(self, addr: int, ts: int, cycle: int
               ) -> Optional[MemRequest]:
        """Issue an instruction-line fetch (always speculative)."""
        self.stats.add(self._h_ifetches_issued)
        return self._access(self.iport, "ifetch", addr, ts, cycle,
                            True, addr)

    def ifetch_probe(self, addr: int, ts: int, cycle: int) -> bool:
        """Presence check for the fetch stage (no side effects besides
        draining due fills)."""
        self.drain(cycle)
        return self._probe_present(self.iport, addr >> 6, ts)

    def ifetch_would_hit(self, addr: int, ts: int) -> bool:
        """Pure form of :meth:`ifetch_probe`: no drain, no counters.

        Used by the event-driven scheduler's stall analysis, which runs
        only when every due fill has already drained.
        """
        return self._probe_present(self.iport, addr >> 6, ts)

    # ------------------------------------------------------------------
    # MSHR-backpressure dry-runs (event-driven scheduler)
    # ------------------------------------------------------------------

    def load_block_proof(self, addr: int, ts: int, pc: int, cycle: int
                         ) -> Optional[LoadBlockProof]:
        """Side-effect-free dry-run of :meth:`load` for the scheduler.

        Returns a :class:`LoadBlockProof` when issuing this load now
        would *provably* return ``None`` (MSHR backpressure) — and
        keep doing so, with an identical per-cycle side-effect set,
        until the next MSHR completion anywhere in the hierarchy.
        Returns ``None`` whenever the load might succeed or the block
        is not provable; the scheduler then steps densely, which is
        always safe.

        Must be kept in lockstep with :meth:`load`/:meth:`_access`;
        subclasses that add impure probe or leapfrog behaviour must
        override :meth:`_probe_stall_bumps` (or this method) so the
        dry-run stays side-effect-free.
        """
        if self.dtlb is not None:
            # Translation has per-cycle state of its own (TLB fills,
            # recency); retries under a modelled TLB step densely.
            return None
        port = self.dport
        line = addr >> 6
        probe_bumps = self._probe_stall_bumps(port, line, ts)
        if probe_bumps is None:
            return None  # the L1-side probe would hit: load completes
        if port.mshrs.find(line) is not None:
            return None  # would attach (or timeleap): progress
        bumps = [self._h_loads_issued] + probe_bumps
        if port.mshrs.full():
            req = MemRequest("load", addr, ts, self.core_id, 0, True, pc)
            if self._leapfrog_victim(port, req) is not None:
                return None  # would steal a slot: progress
            bumps.append(port.h_mshr_retry_full)
            return LoadBlockProof(bumps)
        shared = self.shared.access_block_proof(
            line, ts, pc, cycle, self._l2_access_lookahead(port), True,
            self.temporal_order, self.speculative_prefetcher_training,
            self.core_id)
        if shared is None:
            return None
        shared_bumps, replays, wake = shared
        return LoadBlockProof(bumps + shared_bumps, replays, wake)

    def ifetch_block_proof(self, addr: int, ts: int, cycle: int
                           ) -> Optional[LoadBlockProof]:
        """Side-effect-free dry-run of :meth:`ifetch`, as
        :meth:`load_block_proof` (instruction fetches never translate
        through the data TLB and never train the L2 prefetcher)."""
        port = self.iport
        line = addr >> 6
        probe_bumps = self._probe_stall_bumps(port, line, ts)
        if probe_bumps is None:
            return None
        if port.mshrs.find(line) is not None:
            return None
        bumps = [self._h_ifetches_issued] + probe_bumps
        if port.mshrs.full():
            req = MemRequest("ifetch", addr, ts, self.core_id, 0, True)
            if self._leapfrog_victim(port, req) is not None:
                return None
            bumps.append(port.h_mshr_retry_full)
            return LoadBlockProof(bumps)
        shared = self.shared.access_block_proof(
            line, ts, addr, cycle, self._l2_access_lookahead(port), True,
            self.temporal_order, False, self.core_id)
        if shared is None:
            return None
        shared_bumps, replays, wake = shared
        return LoadBlockProof(bumps + shared_bumps, replays, wake)

    def _l2_access_lookahead(self, port: L1Port) -> int:
        """How far ahead of the core's cycle a retrying access reaches
        the L2 (``start - cycle`` in :meth:`_access`): the dense path
        drains L2 completions up to that cycle, so the block proofs
        must wake that many cycles early.  Kept in lockstep with
        :meth:`_l2_access` overrides (MuonTrap adds its L0 cycle)."""
        return port.latency

    def _probe_stall_bumps(self, port: L1Port, line: int, ts: int
                           ) -> Optional[List[int]]:
        """Pure companion to :meth:`_probe` for the stall dry-runs.

        ``None`` when :meth:`_probe` would hit (the access would
        complete without MSHR pressure); otherwise the stat slot
        handles the probe's miss path bumps once per retry cycle.
        Defense hierarchies with extra probe structures override this
        alongside :meth:`_probe`.
        """
        if port.cache.contains(line):
            return None
        return [port.h_misses]

    def store_commit(self, addr: int, ts: int, cycle: int) -> None:
        """A store retires: functional memory is updated by the core; here
        we update caches and coherence.  Stores are off the critical path
        (paper footnote 7) so this never stalls commit."""
        self.drain(cycle)
        line = addr >> 6
        self.stats.add(self._h_stores_committed)
        self._on_own_store(line, ts, cycle)
        self.shared.store_commit(self.core_id, line, cycle)
        victim = self.dport.cache.fill(line, cycle, dirty=True)
        self._handle_l1_victim(victim, cycle)
        self.shared.directory.on_fill(self.core_id, line)

    def commit_load(self, req: Optional[MemRequest], ts: int, cycle: int
                    ) -> int:
        """A load retires; returns extra commit-stall cycles (0 here)."""
        return 0

    def commit_ifetch(self, addr: int, ts: int, cycle: int) -> None:
        """An instruction retires (I-Minion commit move hook)."""

    def squash(self, ts: int, cycle: int) -> None:
        """Misspeculation detected at timestamp ``ts``: the unsafe
        baseline cleans nothing."""

    def invalidate_line(self, line: int) -> None:
        """Inbound coherence invalidation."""
        self.dport.cache.invalidate(line)
        self.shared.directory.on_evict(self.core_id, line)

    # ------------------------------------------------------------------
    # the shared miss path
    # ------------------------------------------------------------------

    def _access(self, port: L1Port, kind: str, addr: int, ts: int,
                cycle: int, speculative: bool, pc: int
                ) -> Optional[MemRequest]:
        self.drain(cycle)
        req = MemRequest(kind, addr, ts, self.core_id, cycle, speculative,
                         pc)
        xlat_extra = 0
        if self.dtlb is not None and port is self.dport:
            xlat_extra = self.dtlb.translate(
                addr, ts, cycle, speculative).latency
        ready = self._probe(port, req, cycle)
        if ready is not None:
            req.mark_ready(ready + xlat_extra)
            return req
        line = req.line
        entry = port.mshrs.find(line)
        if entry is not None:
            if self.temporal_order and not entry.prefetch \
                    and (entry.squashed or entry.ts > ts):
                new_ready = self.shared.timeleap_restart(
                    line, cycle + port.latency, ts, speculative,
                    core=self.core_id)
                port.mshrs.timeleap(entry, ts, new_ready)
                self.stats.add(self._h_timeleap_loads)
            entry.attach(req)
            req.mark_ready(entry.ready_cycle)
            req.hit_level = 3
            return req
        victim = None
        if port.mshrs.full():
            victim = self._leapfrog_victim(port, req)
            if victim is None:
                self.stats.add(port.h_mshr_retry_full)
                return None
        train = (self.speculative_prefetcher_training and port is self.dport)
        result = self._l2_access(req, cycle + port.latency + xlat_extra,
                                 train)
        if result is None:
            return None
        ready, level, l2_entry = result
        if victim is not None and victim not in port.mshrs.entries:
            # The L2 access just leapfrogged/timelept an entry whose
            # dependent cascade cancelled our chosen victim: its slot
            # is already free, so a plain allocation suffices.
            victim = None
        if victim is not None:
            entry = port.mshrs.steal(victim, line, ts, ready,
                                     core=self.core_id)
            self.stats.add(self._h_leapfrog_loads)
        else:
            entry = port.mshrs.allocate(line, ts, ready,
                                        core=self.core_id)
        if l2_entry is not None:
            l2_entry.dependents.append((port.mshrs, entry))
        entry.attach(req)
        for fill_fn, fill_ts in self._fill_targets(port, req):
            entry.fill_actions.append((fill_fn, fill_ts))
        req.mark_ready(ready)
        req.hit_level = level
        return req

    def _l2_access(self, req: MemRequest, start: int, train: bool
                   ) -> Optional[Tuple[int, int, Optional[MSHREntry]]]:
        return self.shared.access(req.line, start, req.ts, req.speculative,
                                  req.pc, self.temporal_order, train,
                                  fill_l2=self._fills_l2(req),
                                  core=self.core_id)

    def _fills_l2(self, req: MemRequest) -> bool:
        """Whether this request's data may be installed in the L2.

        The unsafe baseline installs everything; speculation-hiding
        defenses keep speculative data out of the non-speculative
        hierarchy entirely.
        """
        return True

    def refetch(self, addr: int, ts: int, cycle: int) -> int:
        """Non-speculative eager refetch into the L1 (validation, async
        reload, coherence replay).  Returns the completion cycle."""
        self.drain(cycle)
        line = addr >> 6
        self.stats.add(self._h_refetches)
        if self.dport.cache.lookup(line, cycle):
            return cycle + self.dport.latency
        ready, _level = self.shared.refetch(line, cycle + self.dport.latency,
                                            self.core_id)
        victim = self.dport.cache.fill(line, cycle)
        self._handle_l1_victim(victim, cycle)
        self.shared.directory.on_fill(self.core_id, line)
        return ready

    def _handle_l1_victim(self, victim: Optional[int], cycle: int) -> None:
        if victim is None:
            return
        self.shared.l2.fill(victim, cycle)
        self.shared.directory.on_evict(self.core_id, victim)

    # ------------------------------------------------------------------
    # defense hooks (unsafe defaults)
    # ------------------------------------------------------------------

    def _probe(self, port: L1Port, req: MemRequest, cycle: int
               ) -> Optional[int]:
        """L1-side lookup; returns the hit-ready cycle or None on miss."""
        if port.cache.lookup(req.line, cycle):
            req.hit_level = 1
            return cycle + port.latency
        return None

    def _probe_present(self, port: L1Port, line: int, ts: int) -> bool:
        return port.cache.contains(line)

    def _leapfrog_victim(self, port: L1Port, req: MemRequest
                         ) -> Optional[MSHREntry]:
        """Unsafe baseline never leapfrogs: full MSHRs mean retry."""
        return None

    def _fill_targets(self, port: L1Port, req: MemRequest
                      ) -> List[Tuple[FillFn, Optional[int]]]:
        """Unsafe baseline: every load fills the L1 (speculatively)."""
        if port is self.dport:
            return [(self._fill_l1d, None)]
        return [(self._fill_l1i, None)]

    def _fill_l1d(self, line: int, cycle: int, _ts: int) -> None:
        victim = self.dport.cache.fill(line, cycle)
        self._handle_l1_victim(victim, cycle)
        self.shared.directory.on_fill(self.core_id, line)

    def _fill_l1i(self, line: int, cycle: int, _ts: int) -> None:
        self.iport.cache.fill(line, cycle)

    def _on_own_store(self, line: int, ts: int, cycle: int) -> None:
        """Hook: a store by this core commits to ``line``."""
