"""Directory coherence with the GhostMinion Shared/Invalid rule (§4.6).

The directory tracks, per line, which cores hold a copy in their private
hierarchy (L1 + Minion/L0) and which single core, if any, holds it
modified.  Committed stores invalidate remote copies; per-line version
numbers let the commit path detect that a speculatively forwarded
(non-coherent) copy went stale and must be replayed (§4.6).

Minion fills are only allowed in Shared state: if another core holds the
line modified, :meth:`minion_fill_allowed` is False and the load must wait
until non-speculative to gain a coherent copy — modelled as the data
passing through uncached plus a commit-time refetch.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set

from repro.analysis.stats import Stats
from repro.snapshot import SnapshotMixin


class Directory(SnapshotMixin):
    """Sharers/owner tracking plus line versions for replay checks."""

    #: Snapshot contract: sharers/owner/version maps are the state.
    _SNAPSHOT_EXCLUDE = ("stats",)

    def __init__(self, num_cores: int, stats: Optional[Stats] = None
                 ) -> None:
        self.num_cores = num_cores
        self.stats = stats if stats is not None else Stats()
        self._sharers: Dict[int, Set[int]] = defaultdict(set)
        self._owner: Dict[int, int] = {}          # line -> modifying core
        self._version: Dict[int, int] = {}
        self._h_invalidations = self.stats.handle("coh.invalidations")

    # -- queries --------------------------------------------------------

    def sharers(self, line: int) -> Set[int]:
        return set(self._sharers.get(line, ()))

    def owner(self, line: int) -> Optional[int]:
        return self._owner.get(line)

    def version(self, line: int) -> int:
        return self._version.get(line, 0)

    def minion_fill_allowed(self, core_id: int, line: int) -> bool:
        """Shared/Invalid rule: no Minion copy while a *remote* core holds
        the line exclusive/modified."""
        owner = self._owner.get(line)
        return owner is None or owner == core_id

    # -- events ---------------------------------------------------------

    def on_fill(self, core_id: int, line: int) -> None:
        """A core gained a (shared) private copy."""
        self._sharers[line].add(core_id)

    def on_evict(self, core_id: int, line: int) -> None:
        sharers = self._sharers.get(line)
        if sharers is not None:
            sharers.discard(core_id)
        if self._owner.get(line) == core_id:
            del self._owner[line]

    def on_store_commit(self, core_id: int, line: int) -> List[int]:
        """A committed store upgrades ``core_id`` to modified owner.

        Returns the remote cores whose private copies must be invalidated
        (the hierarchy performs the actual invalidations).  Bumps the line
        version so in-flight speculative users detect staleness.
        """
        self._version[line] = self._version.get(line, 0) + 1
        victims = [c for c in self._sharers.get(line, ()) if c != core_id]
        prev_owner = self._owner.get(line)
        if prev_owner is not None and prev_owner != core_id:
            if prev_owner not in victims:
                victims.append(prev_owner)
        self._sharers[line] = {core_id}
        self._owner[line] = core_id
        if victims:
            self.stats.add(self._h_invalidations, len(victims))
        return victims

    def downgrade(self, line: int) -> None:
        """Owner loses exclusivity (e.g. remote read of a modified line)."""
        self._owner.pop(line, None)
