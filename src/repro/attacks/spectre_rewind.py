"""SpectreRewind: backwards-in-time divider contention (section 2.2).

A transient gadget, gated on a secret bit, occupies the (non-pipelined)
integer dividers.  A divide that is *older in program order* -- the
attacker's measured instruction -- has operands that arrive slightly
later, so it executes concurrently with the transient gadget and
contends for the same units.  Its committed completion time reveals the
secret bit, even though nothing the transient code touched survives the
squash.

The program runs the sequence twice.  The first iteration executes the
gadget *architecturally* (its guard condition really falls through):
this warms the instruction lines and trains the guard branch not-taken,
exactly like a real attacker's warm-up pass.  In the second iteration
the guard is actually taken but predicted not-taken, so the gadget runs
transiently while the older measured divide is still in flight.

Program order within an iteration (older first)::

    warm  = load sibling(secret)       # caches the secret's line
    t0    = rdcyc(warm)
    d     = warm + ... (delay chain)
    d     = DIV d, k                   # <- measured, committed divide
    t1    = rdcyc(d); delta = t1 - t0
    cond  = load cond[iter]            # fresh line: resolves late
    bnez cond, done                    # iter 2: WRONG path follows
      s = load secret                  # transient (hits warm line)
      q = s & 1;  beqz q, skip
      DIV / DIV                        # occupy both units iff q == 1
    done: store delta

Strictness-ordered FU issue (section 4.9, ``Defense.strict_fu_order``)
blocks the younger transient divides from issuing before the older
measured divide has issued, closing the channel.
"""

from __future__ import annotations

from typing import Union

from repro.attacks.common import (
    AttackResult,
    attack_config,
    distinguishable,
)
from repro.exp.spec import resolve_defense
from repro.defenses.base import Defense
from repro.pipeline.isa import Op
from repro.pipeline.program import Program, ProgramBuilder
from repro.sim.simulator import Simulator

SECRET_ADDR = 0x10_0008     # same line as a legitimately accessed word
COND_BASE = 0x20_0000       # one fresh line per iteration
RESULT_BASE = 0x80_0000
DRAIN_BASE = 0x70_0000     # serial drain chain between iterations
DELAY_CHAIN = 8             # ALU hops before the measured divide is ready
ITERATIONS = 2


def build_program(secret_bit: int) -> Program:
    if secret_bit not in (0, 1):
        raise ValueError("secret_bit must be 0 or 1")
    b = ProgramBuilder("spectre_rewind")
    b.data(SECRET_ADDR - 8, 1)          # legitimate word on the line
    b.data(SECRET_ADDR, secret_bit)
    for iteration in range(ITERATIONS):
        chain = DRAIN_BASE + iteration * 4096
        b.data(chain, chain + 64)
        b.data(chain + 64, chain + 128)
        b.data(chain + 128, 0)
    b.data(COND_BASE + 0 * 64, 0)       # iter 0: really falls through
    b.data(COND_BASE + 1 * 64, 1)       # iter 1: taken -> mispredicted

    t0, t1, d_att, k = 1, 2, 3, 4
    warm, cond, s, q = 5, 6, 7, 8
    g1, g2, tmp = 9, 10, 11
    it, c2 = 20, 21

    b.li(k, 7)
    b.li(it, 0)
    b.label("iter")
    # Drain: three serial cold loads separate the iterations so no
    # iteration-0 memory traffic (architectural gadget execution) is
    # still in flight during the measured pass.
    dr = 22
    b.alu(Op.SHL, dr, it, imm=12)
    b.alu(Op.ADD, dr, dr, imm=DRAIN_BASE)
    b.load(dr, dr)
    b.load(dr, dr)
    b.load(dr, dr)
    b.alu(Op.AND, tmp, dr, imm=0)
    b.alu(Op.ADD, tmp, tmp, imm=SECRET_ADDR - 8)
    b.load(warm, tmp)
    b.emit(Op.RDCYC, rd=t0, rs1=warm)
    # Measured divide: operands ready a few cycles after the warm load,
    # i.e. while the transient gadget below is executing.
    b.mov(d_att, warm)
    for _ in range(DELAY_CHAIN):
        b.alu(Op.ADD, d_att, d_att, imm=3)
    b.alu(Op.DIV, d_att, d_att, k)       # <-- the contended divide
    b.emit(Op.RDCYC, rd=t1, rs1=d_att)
    b.alu(Op.SUB, tmp, t1, t0)
    # Guard: a fresh cold line each iteration, serialised behind the
    # warm load so the window opens after the secret line is present.
    b.alu(Op.AND, cond, warm, imm=0)
    b.alu(Op.SHL, g1, it, imm=6)
    b.alu(Op.ADD, cond, cond, g1)
    b.alu(Op.ADD, cond, cond, imm=COND_BASE)
    b.load(cond, cond)
    b.bnez(cond, "done")
    # ---- gadget: architectural in iter 0, transient in iter 1 ---------
    # The secret read is serialised behind the warm load so the gadget
    # executes concurrently with the measured divide, not before it.
    b.alu(Op.AND, q, warm, imm=0)
    b.alu(Op.ADD, q, q, imm=SECRET_ADDR)
    b.load(s, q)                        # hits the warmed line
    b.alu(Op.AND, q, s, imm=1)
    b.beqz(q, "no_contend")
    # One extra dependency hop: when q == 0 the (mispredicted) inner
    # branch resolves one cycle *before* the divides become ready, so
    # they are squashed pre-issue; when q == 1 they issue and occupy
    # both non-pipelined units.
    b.alu(Op.OR, q, q, q)
    b.alu(Op.ADD, g2, s, q)
    b.alu(Op.DIV, g1, g2, k)            # two independent divides occupy
    b.alu(Op.DIV, g2, k, g2)            # both non-pipelined units
    b.label("no_contend")
    b.nop()
    b.label("done")
    b.alu(Op.SHL, g1, it, imm=3)
    b.alu(Op.ADD, g1, g1, imm=RESULT_BASE)
    b.store(g1, tmp)
    b.alu(Op.ADD, it, it, imm=1)
    b.alu(Op.CMPLT, c2, it, None, imm=ITERATIONS)
    b.bnez(c2, "iter")
    b.halt()
    return b.build()


def run(defense: Union[str, Defense], secret_bit: int) -> AttackResult:
    defense = resolve_defense(defense)
    program = build_program(secret_bit)
    sim = Simulator(program, defense, cfg=attack_config())
    result = sim.run(max_cycles=1_000_000)
    if not result.finished:
        raise RuntimeError("attack program did not halt")
    # The attacker's observation is the warmed, second iteration.
    delta = sim.memory[RESULT_BASE + (ITERATIONS - 1) * 8]
    return AttackResult(defense=defense.name, secret=secret_bit,
                        timings={0: delta}, recovered=-1)


def leaks(defense: Union[str, Defense]) -> bool:
    """True iff the measured divide's committed timing depends on the
    secret."""
    results = [run(defense, bit) for bit in (0, 1)]
    return distinguishable([r.timings for r in results])
