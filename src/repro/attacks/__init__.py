"""Transient-execution attacks run on the simulator.

Because the out-of-order core genuinely fetches and executes wrong-path
code, these are *real* attacks, not simulations of attacks: the Spectre
gadget really reads out-of-bounds memory transiently, and the attacker
really recovers the secret from committed-instruction timing under the
unsafe baseline.

* ``spectre`` — Spectre v1 bounds-check bypass + cache-timing recovery;
* ``spectre_rewind`` — backwards-in-time divider contention (§2.2);
* ``interference`` — Speculative-Interference-style MSHR exhaustion
  delaying a logically earlier load (§2.2, fig. 5's motivation).

Each module exposes ``run(defense, secret, ...) -> AttackResult`` and
``leaks(defense) -> bool`` (distinguishability over multiple secrets).
"""

from repro.attacks.common import AttackResult, attack_config
from repro.attacks import spectre, spectre_rewind, interference

__all__ = [
    "AttackResult",
    "attack_config",
    "spectre",
    "spectre_rewind",
    "interference",
]
