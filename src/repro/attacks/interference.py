"""Speculative-Interference-style MSHR exhaustion (section 2.2, fig. 5).

A transient gadget issues loads whose addresses depend on a transiently
read secret: if the secret bit is set they target six distinct cold
lines (exhausting the four L1D MSHRs); if clear they all alias one line
(a single MSHR).  A load that is *older in program order* -- the
attacker's measured load -- has an address that arrives slightly later,
so on an unprotected machine it finds the MSHRs full and its committed
timing reveals the secret.

As in :mod:`repro.attacks.spectre_rewind`, the sequence runs twice: the
first iteration executes the gadget architecturally (warming its
instruction lines and training the guard branch); the second is the
measured transient pass, with fresh data lines per iteration so every
measured access is a real miss.

GhostMinion's leapfrogging (section 4.5) lets the older load steal the
youngest-timestamp MSHR (the victim transient load replays), making the
measured load's timing independent of the transient activity.  STT also
blocks this instance: the gadget loads' addresses are tainted.
"""

from __future__ import annotations

from typing import Union

from repro.attacks.common import (
    AttackResult,
    attack_config,
    distinguishable,
)
from repro.exp.spec import resolve_defense
from repro.defenses.base import Defense
from repro.pipeline.isa import Op
from repro.pipeline.program import Program, ProgramBuilder
from repro.sim.simulator import Simulator

SECRET_ADDR = 0x10_0008
COND_BASE = 0x20_0000       # one fresh guard line per iteration
TARGET_BASE = 0x30_0000     # measured load: fresh line per iteration
GADGET_BASE = 0x50_0000     # transient loads: fresh region per iteration
RESULT_BASE = 0x80_0000
DRAIN_BASE = 0x70_0000     # serial drain chain between iterations
ITER_STRIDE = 1 << 12       # per-iteration offset for cold data
NUM_GADGET_LOADS = 6        # > 4 L1D MSHRs
DELAY_CHAIN = 14            # measured address arrives after the gadget
ITERATIONS = 2


def build_program(secret_bit: int) -> Program:
    if secret_bit not in (0, 1):
        raise ValueError("secret_bit must be 0 or 1")
    b = ProgramBuilder("speculative_interference")
    b.data(SECRET_ADDR - 8, 1)
    b.data(SECRET_ADDR, secret_bit)
    for iteration in range(ITERATIONS):
        chain = DRAIN_BASE + iteration * 4096
        b.data(chain, chain + 64)
        b.data(chain + 64, chain + 128)
        b.data(chain + 128, 0)
    b.data(COND_BASE + 0 * 64, 0)       # iter 0: gadget runs for real
    b.data(COND_BASE + 1 * 64, 1)       # iter 1: taken -> mispredicted

    t0, t1, addr, val = 1, 2, 3, 4
    warm, cond, s, q, tmp = 5, 6, 7, 8, 9
    it, c2, off, delta = 20, 21, 22, 23

    b.li(it, 0)
    b.label("iter")
    b.alu(Op.SHL, off, it, imm=12)             # per-iteration data offset
    # Drain: three serial cold loads separate the iterations so no
    # iteration-0 memory traffic (architectural gadget execution) is
    # still in flight during the measured pass.
    dr = 24
    b.alu(Op.ADD, dr, off, imm=DRAIN_BASE)
    b.load(dr, dr)
    b.load(dr, dr)
    b.load(dr, dr)
    b.alu(Op.AND, tmp, dr, imm=0)
    b.alu(Op.ADD, tmp, tmp, imm=SECRET_ADDR - 8)
    b.load(warm, tmp)                          # warm the secret line
    b.emit(Op.RDCYC, rd=t0, rs1=warm)
    # measured load, older than the gadget; address ready a few cycles
    # after the warm line arrives
    b.mov(addr, warm)
    for _ in range(DELAY_CHAIN):
        b.alu(Op.ADD, addr, addr, imm=1)
    b.alu(Op.SUB, addr, addr, imm=DELAY_CHAIN + 1)
    b.alu(Op.ADD, addr, addr, imm=TARGET_BASE)
    b.alu(Op.ADD, addr, addr, off)
    b.load(val, addr)                          # <-- the measured load
    b.emit(Op.RDCYC, rd=t1, rs1=val)
    b.alu(Op.SUB, delta, t1, t0)
    # guard: fresh cold line per iteration, serialised behind warm
    b.alu(Op.AND, cond, warm, imm=0)
    b.alu(Op.SHL, tmp, it, imm=6)
    b.alu(Op.ADD, cond, cond, tmp)
    b.alu(Op.ADD, cond, cond, imm=COND_BASE)
    b.load(cond, cond)
    b.bnez(cond, "done")
    # ---- gadget (architectural in iter 0, transient in iter 1):
    # stride = (s & 1) * 64: bit set -> six distinct lines; bit clear ->
    # six loads of one line (one MSHR).
    # serialise the secret read behind the warm load so the gadget
    # executes concurrently with the measured load, not before it
    b.alu(Op.AND, q, warm, imm=0)
    b.alu(Op.ADD, q, q, imm=SECRET_ADDR)
    b.load(s, q)                               # hits the warmed line
    b.alu(Op.AND, q, s, imm=1)
    b.alu(Op.SHL, q, q, imm=6)                 # q = 0 or 64
    b.li(tmp, GADGET_BASE)
    b.alu(Op.ADD, tmp, tmp, off)
    for i in range(10, 10 + NUM_GADGET_LOADS):
        b.load(i, tmp)
        b.alu(Op.ADD, tmp, tmp, q)
    b.label("done")
    b.alu(Op.SHL, tmp, it, imm=3)
    b.alu(Op.ADD, tmp, tmp, imm=RESULT_BASE)
    b.store(tmp, delta)
    b.alu(Op.ADD, it, it, imm=1)
    b.alu(Op.CMPLT, c2, it, None, imm=ITERATIONS)
    b.bnez(c2, "iter")
    b.halt()
    return b.build()


def run(defense: Union[str, Defense], secret_bit: int) -> AttackResult:
    defense = resolve_defense(defense)
    program = build_program(secret_bit)
    sim = Simulator(program, defense, cfg=attack_config())
    result = sim.run(max_cycles=1_000_000)
    if not result.finished:
        raise RuntimeError("attack program did not halt")
    # The attacker's observation is the warmed, second iteration.
    delta = sim.memory[RESULT_BASE + (ITERATIONS - 1) * 8]
    return AttackResult(defense=defense.name, secret=secret_bit,
                        timings={0: delta}, recovered=-1)


def leaks(defense: Union[str, Defense]) -> bool:
    """True iff the measured load's committed timing depends on the
    transient gadget (and hence the secret)."""
    results = [run(defense, bit) for bit in (0, 1)]
    return distinguishable([r.timings for r in results])
