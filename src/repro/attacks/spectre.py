"""Spectre v1: bounds-check bypass + flush-and-time recovery (§2.1).

Victim gadget (all in one sandboxed address space)::

    if x < array1_size:          # attacker controls x
        y = array1[x]            # transient out-of-bounds read
        z = probe[y * STRIDE]    # secret-indexed transmission

The attacker trains the bounds check in-bounds, then calls with a
malicious ``x`` that makes ``array1[x]`` alias the secret.  The bounds
load is made slow (a fresh uncached line per call) so the transient
window is wide.  Recovery times a committed load of each probe line with
RDCYC: under the unsafe baseline the secret's line is a hit, under
GhostMinion the Minion was wiped before any committed instruction could
observe it.
"""

from __future__ import annotations

from typing import Union

from repro.attacks.common import (
    AttackResult,
    attack_config,
    distinguishable,
)
from repro.exp.spec import resolve_defense
from repro.defenses.base import Defense
from repro.pipeline.isa import Op
from repro.pipeline.program import Program, ProgramBuilder
from repro.sim.simulator import Simulator

ARRAY1_BASE = 0x10_0000
SIZE_BASE = 0x20_0000       # one fresh line per victim call
PROBE_BASE = 0x40_0000
RESULT_BASE = 0x80_0000
PROBE_STRIDE = 4 * 64       # 4 lines apart: defeats spatial locality
NUM_CANDIDATES = 8          # secret is a 3-bit value in [1, 8)
ARRAY1_SIZE = 4             # bound; the secret shares array1's line
TRAIN_CALLS = 12


def build_program(secret: int) -> Program:
    """The full attacker+victim program for one secret value."""
    if not 1 <= secret < NUM_CANDIDATES:
        raise ValueError("secret must be in [1, %d)" % NUM_CANDIDATES)
    b = ProgramBuilder("spectre_v1")
    # victim data: in-bounds entries all index probe slot 0 (a decoy).
    for i in range(ARRAY1_SIZE):
        b.data(ARRAY1_BASE + i * 8, 0)
    # The secret lives just past the array bound, on the *same* cache
    # line as the in-bounds data (as in the original PoC), so the
    # transient out-of-bounds read is an L1 hit inside the window.
    secret_offset = ARRAY1_SIZE
    b.data(ARRAY1_BASE + secret_offset * 8, secret)
    # a fresh bounds-size line per call keeps the check slow.
    for call in range(TRAIN_CALLS + 1):
        b.data(SIZE_BASE + call * 64, ARRAY1_SIZE)

    x, size_addr, size, cond = 1, 2, 3, 4
    y, z, tmp = 5, 6, 7
    call_idx, train_ctr = 8, 9
    t0, t1, probe_ptr, res_ptr, cand = 10, 11, 12, 13, 14

    b.li(call_idx, 0)

    # --- victim: gadget(x) --------------------------------------------
    b.jmp("main")
    b.label("gadget")
    b.alu(Op.SHL, size_addr, call_idx, imm=6)
    b.alu(Op.ADD, size_addr, size_addr, imm=SIZE_BASE)
    b.load(size, size_addr)              # slow: always a fresh line
    b.alu(Op.CMPLT, cond, x, size)
    b.beqz(cond, "gadget_out")           # out-of-bounds: skip
    b.alu(Op.SHL, tmp, x, imm=3)
    b.alu(Op.ADD, tmp, tmp, imm=ARRAY1_BASE)
    b.load(y, tmp)                       # y = array1[x]
    b.li(tmp, PROBE_STRIDE)
    b.alu(Op.MUL, tmp, y, tmp)
    b.alu(Op.ADD, tmp, tmp, imm=PROBE_BASE)
    b.load(z, tmp)                       # probe[y]: the transmission
    b.label("gadget_out")
    b.alu(Op.ADD, call_idx, call_idx, imm=1)
    b.ret()

    # --- attacker main --------------------------------------------------
    b.label("main")
    # train the bounds check in-bounds
    b.li(x, 0)
    b.li(train_ctr, TRAIN_CALLS)
    b.label("train")
    b.call("gadget")
    b.alu(Op.AND, x, x, imm=3)           # x cycles 0..3 (all in bounds)
    b.alu(Op.ADD, x, x, imm=1)
    b.alu(Op.SUB, train_ctr, train_ctr, imm=1)
    b.bnez(train_ctr, "train")
    # malicious call: x aliases the secret
    b.li(x, secret_offset)
    b.call("gadget")
    # recovery: time a committed load of each candidate probe line.
    # Each measurement is serialised on the previous one (the classic
    # dependency-chain idiom) so the out-of-order core cannot overlap
    # probe loads and smear the timings.
    ser = 15
    b.li(cand, 1)
    b.li(res_ptr, RESULT_BASE)
    b.li(ser, 0)
    b.label("measure")
    b.li(tmp, PROBE_STRIDE)
    b.alu(Op.MUL, probe_ptr, cand, tmp)
    b.alu(Op.ADD, probe_ptr, probe_ptr, imm=PROBE_BASE)
    b.alu(Op.ADD, probe_ptr, probe_ptr, ser)  # ser == 0, orders the load
    b.emit(Op.RDCYC, rd=t0, rs1=ser)
    b.load(z, probe_ptr)
    b.emit(Op.RDCYC, rd=t1, rs1=z)       # ordered after the load
    b.alu(Op.SUB, tmp, t1, t0)
    b.store(res_ptr, tmp)
    b.alu(Op.AND, ser, tmp, imm=0)       # ser = 0, depends on the timing
    b.alu(Op.ADD, res_ptr, res_ptr, imm=8)
    b.alu(Op.ADD, cand, cand, imm=1)
    b.alu(Op.CMPLT, cond, cand, None, imm=NUM_CANDIDATES)
    b.bnez(cond, "measure")
    b.halt()
    return b.build()


def run(defense: Union[str, Defense], secret: int) -> AttackResult:
    """Run the attack once; the attacker guesses the fastest candidate."""
    defense = resolve_defense(defense)
    program = build_program(secret)
    sim = Simulator(program, defense, cfg=attack_config())
    result = sim.run(max_cycles=2_000_000)
    if not result.finished:
        raise RuntimeError("attack program did not halt")
    timings = {}
    for cand in range(1, NUM_CANDIDATES):
        timings[cand] = sim.memory[RESULT_BASE + (cand - 1) * 8]
    recovered = min(timings, key=lambda c: (timings[c], c))
    return AttackResult(defense=defense.name, secret=secret,
                        timings=timings, recovered=recovered)


def leaks(defense: Union[str, Defense], secrets=(2, 5, 7)) -> bool:
    """Does the channel leak?  True iff the attacker recovers every
    secret correctly AND the timings distinguish secrets."""
    results = [run(defense, s) for s in secrets]
    return (all(r.correct for r in results)
            and distinguishable([r.timings for r in results]))
