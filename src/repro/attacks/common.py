"""Shared attack scaffolding."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.config import SystemConfig, default_config


@dataclass
class AttackResult:
    """Outcome of one attack run."""

    defense: str
    secret: int
    #: per-candidate timing measurements (the attacker's observations)
    timings: Dict[int, int] = field(default_factory=dict)
    #: what the attacker infers from the timings
    recovered: int = -1

    @property
    def correct(self) -> bool:
        return self.recovered == self.secret

    def spread(self) -> int:
        if not self.timings:
            return 0
        values = list(self.timings.values())
        return max(values) - min(values)


def attack_config() -> SystemConfig:
    """A quiet machine for attacks: no prefetcher, closed-page DRAM.

    Both features only add noise to the timing channel (a real attacker
    would average over repetitions instead); disabling them keeps the
    attack runs single-shot and deterministic.
    """
    cfg = default_config()
    cfg.l2_prefetcher = False
    cfg.dram.open_page = False
    return cfg


def distinguishable(timings_by_secret: List[Dict[int, int]]) -> bool:
    """Did different secrets produce different observations?

    The attacker's criterion: if the timing vector varies with the
    secret, the channel leaks.
    """
    reference = None
    for timings in timings_by_secret:
        vector = tuple(sorted(timings.items()))
        if reference is None:
            reference = vector
        elif vector != reference:
            return True
    return False
