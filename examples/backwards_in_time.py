#!/usr/bin/env python
"""Backwards-in-time attacks: SpectreRewind and Speculative Interference.

These attacks never rely on state surviving the squash — they change the
timing of a *committed, logically earlier* instruction while the
transient gadget runs concurrently.  Flush-style defences (MuonTrap-
Flush) and invisible-load defences (InvisiSpec) cannot stop them;
GhostMinion's Strictness-Order mechanisms (leapfrogging for MSHRs,
strictness-ordered issue for dividers) do.

Run:  python examples/backwards_in_time.py
"""

from repro.attacks import interference, spectre_rewind
from repro.analysis import format_table
from repro.defenses.ghostminion import ghostminion


def main() -> None:
    gm_strict = ghostminion(strict_fu_order=True)
    gm_strict.name = "GhostMinion+strictFU"
    lineup = ["Unsafe", "MuonTrap-Flush", "InvisiSpec-Future",
              "STT-Future", "GhostMinion", gm_strict]

    print("SpectreRewind (divider contention, §2.2)")
    rows = []
    for defense in lineup:
        name = defense if isinstance(defense, str) else defense.name
        t0 = spectre_rewind.run(defense, 0).timings[0]
        t1 = spectre_rewind.run(defense, 1).timings[0]
        rows.append((name, t0, t1,
                     "LEAKS" if spectre_rewind.leaks(defense) else "safe"))
    print(format_table(
        ["defense", "t(bit=0)", "t(bit=1)", "verdict"], rows))

    print("\nSpeculative Interference (MSHR exhaustion, fig. 5)")
    rows = []
    for defense in lineup:
        name = defense if isinstance(defense, str) else defense.name
        t0 = interference.run(defense, 0).timings[0]
        t1 = interference.run(defense, 1).timings[0]
        rows.append((name, t0, t1,
                     "LEAKS" if interference.leaks(defense) else "safe"))
    print(format_table(
        ["defense", "t(bit=0)", "t(bit=1)", "verdict"], rows))


if __name__ == "__main__":
    main()
