"""Registering a custom defense and sweeping it — no repo edits.

This file doubles as a *plugin*: run it directly (``python
examples/custom_defense_plugin.py [scale]``), or point the registry at
it and use the new defense from the stock CLI::

    REPRO_PLUGINS=examples/custom_defense_plugin.py \\
        python -m repro run hmmer --defense "FlushL1(also_l1i=True)"

The toy scheme ("FlushL1") invalidates the whole L1 D-cache on every
squash — a brutal over-approximation of transient-fill scrubbing that
trades massive refill traffic for zero persistent D-cache state from
wrong paths.  It exists to show the seams, not to be a good idea:

* a hierarchy subclass hooks ``squash``;
* ``@DEFENSES.register`` makes it constructible from spec strings,
  parameters included;
* the experiment engine, cache and CLI pick it up with no other
  wiring (`repro list defenses` shows it once the plugin loads).
"""

import sys

from repro.defenses.base import Defense
from repro.memory.hierarchy import BaseHierarchy
from repro.registry import component_registry

DEFENSES = component_registry("defense")


class FlushL1Hierarchy(BaseHierarchy):
    """Stock hierarchy that nukes the L1(s) on every squash."""

    def __init__(self, core_id, cfg, shared, stats, also_l1i=False):
        super().__init__(core_id, cfg, shared, stats)
        self.also_l1i = also_l1i

    def squash(self, ts, cycle):
        self.dport.cache.invalidate_all()
        self.stats.bump("flushl1.wipes")
        if self.also_l1i:
            self.iport.cache.invalidate_all()


@DEFENSES.register("FlushL1", tags=("plugin", "example"))
def flush_l1(also_l1i: bool = False) -> Defense:
    """Flush the L1 data (and optionally instruction) cache on every
    squash."""
    return Defense(name="FlushL1",
                   hierarchy_cls=FlushL1Hierarchy,
                   hierarchy_kwargs=dict(also_l1i=also_l1i))


def main(scale: float = 0.05) -> None:
    # Imported lazily so merely *loading* this file as a plugin stays
    # cheap (the registry only needs the registration above).
    from repro.exp import Sweep, run_sweep

    sweep = Sweep(name="plugin-demo", workloads=["hmmer", "gamess"],
                  defenses=["Unsafe", "FlushL1",
                            "FlushL1(also_l1i=True)"],
                  scale=scale)
    report = run_sweep(sweep)
    table = report.results.as_run_results()
    print("FlushL1 plugin demo (scale %.2f)" % scale)
    for workload, row in table.items():
        base = row["Unsafe"].cycles
        for name, result in row.items():
            if name == "Unsafe":
                continue
            print("  %-24s %-10s %6d cycles  (%.2fx Unsafe)"
                  % (workload, name, result.cycles,
                     result.cycles / base))
    wipes = table["hmmer"]["FlushL1"].stats.get("flushl1.wipes")
    print("hmmer FlushL1 wipes: %d" % wipes)


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.05)
