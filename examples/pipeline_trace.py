#!/usr/bin/env python
"""Visualise transient execution: trace the pipeline through a Spectre
attack and watch the wrong-path instructions appear and get squashed.

Run:  python examples/pipeline_trace.py
"""

from repro.analysis.trace import PipelineTracer
from repro.attacks import spectre
from repro.attacks.common import attack_config
from repro.defenses import registry
from repro.sim.simulator import Simulator


def main() -> None:
    program = spectre.build_program(secret=5)
    sim = Simulator(program, registry["Unsafe"](), cfg=attack_config())
    tracer = PipelineTracer(sim.cores[0], limit=400)
    result = sim.run(max_cycles=2_000_000)
    print("finished:", result.finished, " cycles:", result.cycles)

    summary = tracer.summary()
    print("\npipeline summary:")
    for key, value in summary.items():
        print("  %-22s %s" % (key, value))

    transient = tracer.transient()
    print("\n%d transient (squashed) instructions were really executed,"
          % len(transient))
    print("including the out-of-bounds gadget loads:")
    for record in transient[:8]:
        print("  seq %4d  pc %3d  %-6s  fetched@%d" % (
            record.seq, record.pc, record.op, record.fetch_cycle))

    print("\ntimeline around the first squash:")
    if tracer.squashes:
        first_squash = tracer.squashes[0]
        # find records near that cycle
        near = [r for r in tracer.records.values()
                if abs(r.fetch_cycle - first_squash) < 60]
        if near:
            start = min(r.seq for r in near)
            idx = sorted(tracer.records).index(start)
            print(tracer.render(width=64, start=idx, count=24))


if __name__ == "__main__":
    main()
