#!/usr/bin/env python
"""Run a real Spectre v1 attack on the simulated machine and watch
GhostMinion stop it.

The attack program trains a bounds check, transiently reads a secret
past the array bound, transmits it through a probe array, and recovers
it by timing committed loads with RDCYC.  Under the unsafe baseline the
recovery works every time; under GhostMinion the probe timings carry no
information.

Run:  python examples/spectre_demo.py
"""

from repro.attacks import spectre
from repro.analysis import format_table


def main() -> None:
    secrets = (2, 5, 7)
    for defense in ("Unsafe", "GhostMinion", "MuonTrap", "MuonTrap-Flush",
                    "InvisiSpec-Future", "STT-Future"):
        print("=== %s ===" % defense)
        rows = []
        for secret in secrets:
            result = spectre.run(defense, secret)
            rows.append((secret, result.recovered,
                         "yes" if result.correct else "no",
                         " ".join("%d:%d" % kv
                                  for kv in sorted(result.timings.items()))))
        print(format_table(
            ["secret", "recovered", "correct", "probe timings (cand:cycles)"],
            rows))
        verdict = spectre.leaks(defense)
        print("verdict: %s\n"
              % ("LEAKS — attacker recovers the secret" if verdict
                 else "SAFE — timings carry no secret information"))


if __name__ == "__main__":
    main()
