#!/usr/bin/env python
"""A miniature figure-6 sweep: a handful of SPEC2006 workloads across
every defense, printed as a table and ASCII bars.

Run:  python examples/figure_mini.py [scale]
"""

import sys

from repro import compare_defenses, normalised_times, FIGURE_ORDER
from repro.analysis import format_table, normalised_series, render_bars


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.15
    workloads = ["mcf", "libquantum", "xalancbmk", "gamess", "lbm"]
    print("Running %d workloads x %d defenses (scale %.2f)..."
          % (len(workloads), len(FIGURE_ORDER) + 1, scale))
    results = compare_defenses(workloads, ["Unsafe"] + FIGURE_ORDER,
                               scale=scale)
    table = normalised_times(results)
    rows = normalised_series(table, FIGURE_ORDER)
    print(format_table(["workload"] + FIGURE_ORDER, rows))
    print("\nmcf, normalised execution time:")
    print(render_bars(table["mcf"]))


if __name__ == "__main__":
    main()
