#!/usr/bin/env python
"""Walk through the paper's figure-1 ordering example with the
executable Strictness/Temporal Order model.

Run:  python examples/strictness_order.py
"""

from repro.core.strictness import (
    InstDesc,
    strictly_observes,
    temporally_succeeds,
)


def arrow(allowed: bool) -> str:
    return "may influence" if allowed else "MUST NOT influence"


def main() -> None:
    # The fig. 1 cast: a committed measurement instruction ("white"),
    # older in-flight instructions before an unresolved branch ("blue"),
    # and younger speculative instructions after it ("red").
    white = InstDesc(thread=0, seq=10, commits=True)
    blue = InstDesc(thread=0, seq=5, commits=True)
    red = InstDesc(thread=0, seq=15, commits=False)
    red_deep = InstDesc(thread=0, seq=20, commits=False)

    print("Strictness Order (definition 1): x S=> y iff "
          "commit(y) -> commit(x)\n")
    cases = [
        ("blue (older, will commit)", blue, white),
        ("red (younger, transient)", red, white),
        ("white (committed)", white, red),
        ("red -> deeper red", red, red_deep),
        ("deeper red -> red", red_deep, red),
    ]
    for label, x, y in cases:
        print("  %-28s %s the white instruction's timing"
              % (label, arrow(strictly_observes(x, y)))
              if y is white else
              "  %-28s %s its successor" % (label, arrow(
                  strictly_observes(x, y))))

    print("\nTemporal Order (definition 2) is the overapproximation "
          "GhostMinion builds:\n")
    print("  Strictness Order allows a younger transient instruction to"
          " transmit to an\n  older transient one (their fates are tied:"
          " both squash together):")
    print("    deeper red S=> red: %s"
          % strictly_observes(red_deep, red))
    print("  Temporal Order rejects that same flow (each instruction is"
          " treated as more\n  speculative than the last):")
    print("    deeper red T=> red: %s"
          % temporally_succeeds(red_deep, red))
    print("\n(The rejected flow is the performance GhostMinion leaves on"
          " the table\n for simplicity — section 4.10's 'Full Strictness"
          " Order' optimisation.)")


if __name__ == "__main__":
    main()
