#!/usr/bin/env python
"""Quickstart: simulate one workload under GhostMinion vs the unsafe
baseline and print the headline numbers.

Run:  python examples/quickstart.py [workload] [scale]
"""

import sys

from repro import run_workload
from repro.analysis import format_table


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.3

    print("Simulating %r (scale %.2f) ..." % (workload, scale))
    rows = []
    baseline_cycles = None
    for defense in ("Unsafe", "GhostMinion"):
        result = run_workload(workload, defense, scale=scale)
        if baseline_cycles is None:
            baseline_cycles = result.cycles
        rows.append((
            defense,
            result.cycles,
            result.insts,
            "%.2f" % result.ipc,
            "%.3fx" % (result.cycles / baseline_cycles),
        ))
    print(format_table(
        ["defense", "cycles", "insts", "IPC", "normalised time"], rows))

    gm = run_workload(workload, "GhostMinion", scale=scale)
    stats = gm.stats
    print("\nGhostMinion activity:")
    for name in ("dminion.fills", "dminion.read_hits",
                 "dminion.commit_moves", "dminion.wipes",
                 "dminion.timeguard_blocks", "gm.timeleap_loads",
                 "gm.leapfrog_loads"):
        print("  %-28s %d" % (name, stats.get(name)))


if __name__ == "__main__":
    main()
