"""Multi-core GhostMinion: coherence extension behaviour (§4.6)."""

from repro.analysis.stats import Stats
from repro.config import default_config
from repro.defenses.ghostminion import ghostminion
from repro.memory.hierarchy import SharedMemory
from repro.pipeline.isa import Op
from repro.pipeline.program import ProgramBuilder
from repro.sim.simulator import Simulator


def build_pair():
    cfg = default_config(cores=2)
    stats = Stats()
    shared = SharedMemory(cfg, stats)
    defense = ghostminion()
    h0 = defense.build_hierarchy(0, cfg, shared, stats)
    h1 = defense.build_hierarchy(1, cfg, shared, stats)
    return h0, h1, shared, stats


def test_remote_store_invalidates_minion_copy():
    h0, h1, shared, _stats = build_pair()
    req = h1.load(0x9000, ts=1, cycle=0)
    h1.drain(req.ready_cycle + 1)
    assert h1.dminion.get(0x9000 >> 6) is not None
    h0.store_commit(0x9000, ts=5, cycle=req.ready_cycle + 2)
    assert h1.dminion.get(0x9000 >> 6) is None


def test_minion_fill_denied_when_remote_modified():
    """§4.6: a Minion may only gain Shared copies — a line modified by
    another core passes through uncached."""
    h0, h1, shared, stats = build_pair()
    h0.store_commit(0x9000, ts=1, cycle=0)       # core 0 owns modified
    req = h1.load(0x9000, ts=2, cycle=10)
    h1.drain(req.ready_cycle + 1)
    assert req.uncached
    assert h1.dminion.get(0x9000 >> 6) is None
    assert stats.get("coh.minion_fill_denied") == 1


def test_denied_fill_refetches_coherently_at_commit():
    h0, h1, shared, stats = build_pair()
    h0.store_commit(0x9000, ts=1, cycle=0)
    req = h1.load(0x9000, ts=2, cycle=10)
    h1.drain(req.ready_cycle + 1)
    extra = h1.commit_load(req, ts=2, cycle=req.ready_cycle + 1)
    assert extra > 0
    assert stats.get("coh.commit_refetches") == 1
    assert h1.dport.cache.contains(0x9000 >> 6)


def test_stale_minion_copy_replays_at_commit():
    """A remote store between fill and commit bumps the line version;
    the committing load must replay (§4.6)."""
    h0, h1, shared, stats = build_pair()
    req = h1.load(0x9000, ts=1, cycle=0)
    h1.drain(req.ready_cycle + 1)
    # Hack alert avoided: re-fill the Minion line after the invalidation
    # by loading again, then invalidate only the directory version.
    shared.directory.on_store_commit(0, 0x9000 >> 6)
    # the Minion copy survived only if invalidation missed it; force the
    # situation by filling afresh with the old version number
    h1.dminion.fill(0x9000 >> 6, ts=1, version=0)
    extra = h1.commit_load(req, ts=1, cycle=req.ready_cycle + 5)
    assert extra > 0
    assert stats.get("coh.commit_replays") == 1


def test_own_store_invalidates_own_minion_copy():
    h0, _h1, _shared, _stats = build_pair()
    req = h0.load(0x9000, ts=1, cycle=0)
    h0.drain(req.ready_cycle + 1)
    assert h0.dminion.get(0x9000 >> 6) is not None
    h0.store_commit(0x9000, ts=2, cycle=req.ready_cycle + 2)
    assert h0.dminion.get(0x9000 >> 6) is None


def test_cross_core_producer_consumer_program():
    """End-to-end: a flag-based handoff between two cores under
    GhostMinion commits the right values."""
    writer = ProgramBuilder("writer")
    writer.li(1, 0x2000)
    writer.li(2, 1234)
    writer.store(1, 2)               # data
    writer.li(3, 1)
    writer.store(1, 3, imm=64)       # flag (different line)
    writer.halt()

    reader = ProgramBuilder("reader")
    reader.li(1, 0x2000)
    reader.label("wait")
    reader.load(3, 1, imm=64)
    reader.beqz(3, "wait")
    reader.load(4, 1)                # data must be visible
    reader.halt()

    sim = Simulator([writer.build(), reader.build()], ghostminion())
    result = sim.run(max_cycles=100_000)
    assert result.finished
    assert result.cores[1].regs[4] == 1234
