"""Optional extensions: I-Minion prefetch (§4.7), L2 MSHR partitioning
(§4.9), Full Strictness Order epochs (§4.10)."""

from repro.analysis.stats import Stats
from repro.config import default_config
from repro.defenses.ghostminion import ghostminion
from repro.memory.hierarchy import SharedMemory
from repro.pipeline.interpreter import run_program as interp
from repro.sim.simulator import Simulator
from repro.workloads.spec import get_workload


# -- fetch-directed I-prefetch into the I-Minion (§4.7) ------------------------

def test_iprefetch_fills_iminion():
    cfg = default_config()
    cfg.iprefetch_into_minion = True
    spec = get_workload("gamess")
    program = spec.build(0.05)[0]
    sim = Simulator(program, ghostminion(), cfg=cfg)
    result = sim.run(max_cycles=200_000)
    assert result.finished
    assert result.stats.get("gm.iprefetches") >= 1


def test_iprefetch_is_timestamped():
    """The prefetched line carries the trigger's timestamp: an older
    instruction must not observe it (§4.7)."""
    cfg = default_config()
    cfg.iprefetch_into_minion = True
    stats = Stats()
    shared = SharedMemory(cfg, stats)
    hier = ghostminion().build_hierarchy(0, cfg, shared, stats)
    req = hier.ifetch(0x1000, ts=50, cycle=0)
    hier.drain(req.ready_cycle + 200)
    next_line = (0x1000 + 64) >> 6
    entry = hier.iminion.get(next_line)
    assert entry is not None
    assert entry.ts == 50
    assert hier.iminion.read(next_line, ts=10) == "timeguard"


def test_iprefetch_preserves_architecture():
    cfg = default_config()
    cfg.iprefetch_into_minion = True
    spec = get_workload("soplex")
    program = spec.build(0.05)[0]
    ref = interp(program, max_steps=500_000)
    sim = Simulator(program, ghostminion(), cfg=cfg)
    result = sim.run(max_cycles=300_000)
    assert result.finished
    assert result.arch_regs() == ref.regs


# -- L2 MSHR partitioning (§4.9) -------------------------------------------------

def test_partitioning_caps_per_core_mshr_usage():
    cfg = default_config(cores=2)
    cfg.l2_mshr_partitioning = True
    stats = Stats()
    shared = SharedMemory(cfg, stats)
    h0 = ghostminion().build_hierarchy(0, cfg, shared, stats)
    quota = cfg.l2.mshrs // 2
    granted = 0
    for i in range(cfg.l2.mshrs):
        # exhaust the L1 MSHRs quickly: use refetch-free distinct lines
        req = h0.load(0x100000 + i * 64, ts=i, cycle=0)
        if req is None:
            break
        granted += 1
    held = sum(1 for e in shared.l2_mshrs.entries
               if e.core == 0 and not e.prefetch)
    assert held <= quota


def test_partitioning_disabled_by_default():
    cfg = default_config(cores=2)
    assert not cfg.l2_mshr_partitioning
    stats = Stats()
    shared = SharedMemory(cfg, stats)
    assert shared._mshr_quota is None


# -- Full Strictness Order (§4.10) --------------------------------------------------

def test_epoch_timestamps_shared_within_epoch():
    spec = get_workload("hmmer")
    program = spec.build(0.05)[0]
    sim = Simulator(program, ghostminion(full_strictness=True))
    result = sim.run(max_cycles=300_000)
    assert result.finished
    core = sim.cores[0]
    assert core.epoch_timestamps
    # instructions exist that share a timestamp despite distinct seqs
    assert core.seq_counter > core.epoch


def test_full_strictness_preserves_architecture():
    spec = get_workload("soplex")
    program = spec.build(0.08)[0]
    ref = interp(program, max_steps=500_000)
    sim = Simulator(program, ghostminion(full_strictness=True))
    result = sim.run(max_cycles=500_000)
    assert result.finished
    assert result.arch_regs() == ref.regs


def test_full_strictness_reduces_backwards_blocking():
    """Epoch timestamps permit same-epoch flows that per-instruction
    Temporal Order rejects: TimeGuard/timeleap events cannot increase."""
    spec = get_workload("soplex")
    program = spec.build(0.15)[0]
    base_sim = Simulator(program, ghostminion())
    base = base_sim.run(max_cycles=1_000_000)
    fs_sim = Simulator(spec.build(0.15)[0],
                       ghostminion(full_strictness=True))
    fs = fs_sim.run(max_cycles=1_000_000)
    base_events = (base.stats.get("gm.timeguard_loads")
                   + base.stats.get("gm.timeleap_loads"))
    fs_events = (fs.stats.get("gm.timeguard_loads")
                 + fs.stats.get("gm.timeleap_loads"))
    assert fs_events <= base_events


def test_full_strictness_still_blocks_spectre():
    from repro.attacks import spectre
    assert not spectre.leaks(ghostminion(full_strictness=True))


def test_full_strictness_defense_name():
    assert ghostminion(full_strictness=True).name == "GhostMinion-FS"
