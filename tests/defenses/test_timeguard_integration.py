"""End-to-end TimeGuarding: an *older* load whose address resolves late
must not observe Minion lines filled by *younger* loads (fig. 4a), in a
real pipeline run (not just the structure-level unit tests).

The program engineers the inversion fig. 10 measures: the old load's
address comes off a slow two-deep pointer chain while younger
constant-address loads race ahead and fill the Minion lines the old load
will probe ~200 cycles later.
"""

from repro.config import default_config
from repro.defenses.ghostminion import ghostminion
from repro.defenses.unsafe import unsafe
from repro.pipeline.isa import Op
from repro.pipeline.program import ProgramBuilder
from repro.sim.simulator import Simulator

CHAIN = 0x10_0000
REGION = 0x20_0000          # 8 lines the younger loads cover
REGION_LINES = 8


def build_program():
    b = ProgramBuilder("timeguard_inversion")
    b.data(CHAIN, CHAIN + 64)
    b.data(CHAIN + 64, 3)           # final chain value: an index
    x, addr, v, tmp = 1, 2, 3, 4
    b.li(x, CHAIN)
    b.load(x, x)                    # slow hop 1 (~100 cycles)
    b.load(x, x)                    # slow hop 2 (~200 cycles)
    # the OLD load: address known only after the chain resolves
    b.alu(Op.AND, addr, x, imm=REGION_LINES - 1)
    b.alu(Op.SHL, addr, addr, imm=6)
    b.alu(Op.ADD, addr, addr, imm=REGION)
    b.load(v, addr)                 # <-- probes a younger Minion line
    # YOUNGER loads: constant addresses, issue immediately, fill the
    # Minion lines of the whole region long before the old load's
    # address is ready
    for i in range(REGION_LINES):
        b.load(5 + i % 8, None, imm=REGION + i * 64)
    # keep the pipeline alive until everything completes
    b.li(tmp, 260)
    b.label("spin")
    b.alu(Op.SUB, tmp, tmp, imm=1)
    b.bnez(tmp, "spin")
    b.halt()
    return b.build()


def run(defense):
    cfg = default_config()
    cfg.l2_prefetcher = False
    sim = Simulator(build_program(), defense, cfg=cfg)
    result = sim.run(max_cycles=100_000)
    assert result.finished
    return result


def test_timeguard_fires_end_to_end():
    result = run(ghostminion())
    assert result.stats.get("gm.timeguard_loads") >= 1
    assert result.stats.get("dminion.timeguard_blocks") >= 1


def test_timeguarded_load_still_architecturally_correct():
    from repro.pipeline.interpreter import run_program as interp
    ref = interp(build_program(), max_steps=100_000)
    result = run(ghostminion())
    assert result.arch_regs() == ref.regs


def test_unsafe_baseline_serves_the_younger_line():
    """Contrast: without TimeGuarding the old load hits the younger
    line (the backwards-in-time flow GhostMinion forbids)."""
    result = run(unsafe())
    assert result.stats.get("gm.timeguard_loads", 0) == 0


def test_timeguard_causes_refetch_not_corruption():
    """The blocked load refetches (misses) rather than reading through:
    its latency exceeds a Minion/L1 hit."""
    result = run(ghostminion())
    # the old load paid a miss: at least one additional DRAM/L2 access
    # happened after the region was already Minion-resident
    assert result.stats.get("dminion.misses") >= 1
