"""MuonTrap, InvisiSpec and STT baseline semantics (§6.1)."""

from repro.analysis.stats import Stats
from repro.config import default_config
from repro.defenses import registry
from repro.defenses.invisispec import invisispec
from repro.defenses.muontrap import muontrap
from repro.defenses.stt import stt
from repro.memory.hierarchy import SharedMemory
from repro.pipeline.isa import Op
from repro.pipeline.program import ProgramBuilder
from repro.sim.simulator import Simulator


def build_hier(defense, cfg=None):
    cfg = cfg if cfg is not None else default_config()
    stats = Stats()
    shared = SharedMemory(cfg, stats)
    return defense.build_hierarchy(0, cfg, shared, stats), shared, stats


def run_sim(program, defense):
    sim = Simulator(program, defense)
    result = sim.run(max_cycles=200_000)
    assert result.finished
    return sim, result


def spin(b, reg, count):
    label = "spin_%d" % b.here()
    b.li(reg, count)
    b.label(label)
    b.alu(Op.SUB, reg, reg, imm=1)
    b.bnez(reg, label)


# -- MuonTrap -----------------------------------------------------------------

def test_muontrap_speculative_fill_goes_to_l0_only():
    hier, shared, _stats = build_hier(muontrap())
    req = hier.load(0x9000, ts=5, cycle=0)
    hier.drain(req.ready_cycle + 1)
    line = 0x9000 >> 6
    assert hier.l0d.contains(line)
    assert not hier.dport.cache.contains(line)
    assert not shared.l2.contains(line)


def test_muontrap_commit_promotes_to_l1():
    hier, _shared, _stats = build_hier(muontrap())
    req = hier.load(0x9000, ts=5, cycle=0)
    hier.drain(req.ready_cycle + 1)
    hier.commit_load(req, ts=5, cycle=req.ready_cycle + 1)
    line = 0x9000 >> 6
    assert hier.dport.cache.contains(line)
    assert not hier.l0d.contains(line)


def test_muontrap_serial_l0_probe_adds_latency():
    """L0 in front of the L1 makes every L1 hit one cycle slower than
    the unsafe baseline — GhostMinion's motivation for parallel access."""
    unsafe_hier, _s, _t = build_hier(registry["Unsafe"]())
    mt_hier, _s2, _t2 = build_hier(muontrap())
    for hier in (unsafe_hier, mt_hier):
        req = hier.load(0x9000, ts=1, cycle=0, speculative=False)
        hier.drain(req.ready_cycle + 1)
    unsafe_hit = unsafe_hier.load(0x9000, ts=2, cycle=500,
                                  speculative=False)
    mt_hit = mt_hier.load(0x9000, ts=2, cycle=500, speculative=False)
    assert (mt_hit.ready_cycle - 500) == (unsafe_hit.ready_cycle - 500) + 1


def test_muontrap_flush_clears_l0_on_squash():
    base_hier, _s, _t = build_hier(muontrap(flush=False))
    flush_hier, _s2, _t2 = build_hier(muontrap(flush=True))
    for hier in (base_hier, flush_hier):
        req = hier.load(0x9000, ts=5, cycle=0)
        hier.drain(req.ready_cycle + 1)
        hier.squash(0, cycle=req.ready_cycle + 2)
    assert base_hier.l0d.contains(0x9000 >> 6)       # base keeps it
    assert not flush_hier.l0d.contains(0x9000 >> 6)  # flush clears


def test_muontrap_flush_drops_inflight_l0_fills():
    hier, _s, _t = build_hier(muontrap(flush=True))
    req = hier.load(0x9000, ts=5, cycle=0)
    hier.squash(0, cycle=1)                  # fill still in flight
    hier.drain(req.ready_cycle + 1)
    assert not hier.l0d.contains(0x9000 >> 6)


# -- InvisiSpec ----------------------------------------------------------------

def test_invisispec_loads_are_invisible():
    hier, shared, _stats = build_hier(invisispec())
    req = hier.load(0x9000, ts=5, cycle=0)
    hier.drain(req.ready_cycle + 1)
    line = 0x9000 >> 6
    assert req.invisible and req.needs_validation
    assert not hier.dport.cache.contains(line)
    assert not shared.l2.contains(line)


def test_invisispec_l1_hits_expose_without_validation():
    hier, _shared, stats = build_hier(invisispec())
    warm = hier.load(0x9000, ts=1, cycle=0, speculative=False)
    hier.drain(warm.ready_cycle + 1)
    hit = hier.load(0x9000, ts=2, cycle=warm.ready_cycle + 1)
    assert hit.invisible and not hit.needs_validation
    assert stats.get("ivs.exposures") == 1


def test_invisispec_validation_fills_caches():
    hier, _shared, stats = build_hier(invisispec())
    req = hier.load(0x9000, ts=5, cycle=0)
    hier.drain(req.ready_cycle + 1)
    done = hier.validate(req, ts=5, cycle=req.ready_cycle + 1)
    assert done > req.ready_cycle
    assert hier.dport.cache.contains(0x9000 >> 6)
    assert stats.get("ivs.validations") == 1


def test_invisispec_future_stalls_commit_on_validation():
    b = ProgramBuilder()
    b.load(1, None, imm=0x9000)
    spin(b, 5, 10)
    b.halt()
    _sim, result = run_sim(b.build(), invisispec(future=True))
    assert result.stats.get("ivs.validations") >= 1
    assert result.stats.get("ivs.validation_stall_cycles") >= 1


def test_invisispec_spectre_validates_at_branch_resolution():
    defense = invisispec(future=False)
    assert defense.validation_mode == "spectre"
    b = ProgramBuilder()
    b.load(1, None, imm=0x9000)
    spin(b, 5, 10)
    b.halt()
    _sim, result = run_sim(b.build(), defense)
    assert result.stats.get("ivs.validations") >= 1


# -- STT -------------------------------------------------------------------------

def _tainted_gather_program():
    """The 'access' load completes quickly but cannot commit — an older
    serial pointer chain blocks the ROB head for ~300 cycles — so the
    tainted-address 'transmit' load is demonstrably delayed by STT
    rather than by plain dataflow."""
    b = ProgramBuilder()
    b.data(0x200, 64)
    b.data(0x300, 0x340)
    b.data(0x340, 0x380)
    b.data(0x380, 0)
    b.load(9, None, imm=0x200)      # brings the access load's line in
    b.li(8, 0x300)
    b.load(8, 8)                    # serial cold chain: holds commit
    b.load(8, 8)
    b.load(1, 8)
    b.load(2, None, imm=0x200)      # fast 'access' load: taints r2
    b.alu(Op.SHL, 3, 2, imm=6)
    b.alu(Op.ADD, 3, 3, imm=0x8000)
    b.load(4, 3)                    # tainted-address 'transmit' load
    spin(b, 7, 10)
    b.halt()
    return b.build()


def test_stt_delays_tainted_address_loads():
    _sim, result = run_sim(_tainted_gather_program(), stt(future=True))
    assert result.stats.get("stt.load_blocked_cycles") >= 1


def test_stt_spectre_unblocks_at_branch_resolution():
    _sim_s, res_s = run_sim(_tainted_gather_program(), stt(future=False))
    _sim_f, res_f = run_sim(_tainted_gather_program(), stt(future=True))
    # Future (commit-point untaint) delays at least as long as Spectre.
    assert res_f.stats.get("stt.load_blocked_cycles") >= \
        res_s.stats.get("stt.load_blocked_cycles")


def test_stt_does_not_delay_untainted_loads():
    b = ProgramBuilder()
    b.li(1, 0x8000)
    b.load(2, 1)                    # ALU-computed address: untainted
    spin(b, 5, 5)
    b.halt()
    _sim, result = run_sim(b.build(), stt(future=True))
    assert result.stats.get("stt.load_blocked_cycles", 0) == 0


def test_stt_hierarchy_is_stock():
    hier, shared, _stats = build_hier(stt())
    req = hier.load(0x9000, ts=5, cycle=0)
    hier.drain(req.ready_cycle + 1)
    assert hier.dport.cache.contains(0x9000 >> 6)
    assert shared.l2.contains(0x9000 >> 6)
