"""§4.10 Early Commit: promote loads at branch resolution."""

from repro.defenses.ghostminion import ghostminion
from repro.pipeline.interpreter import run_program as interp
from repro.pipeline.isa import Op
from repro.pipeline.program import ProgramBuilder
from repro.sim.simulator import Simulator
from repro.workloads.spec import get_workload


def run(program, defense):
    sim = Simulator(program, defense)
    result = sim.run(max_cycles=500_000)
    assert result.finished
    return sim, result


def straightline_loads():
    b = ProgramBuilder()
    for i in range(6):
        b.load(1 + i % 4, None, imm=0x9000 + i * 64)
    b.li(7, 30)
    b.label("spin")
    b.alu(Op.SUB, 7, 7, imm=1)
    b.bnez(7, "spin")
    b.halt()
    return b.build()


def test_early_commit_promotes_loads():
    _sim, result = run(straightline_loads(), ghostminion(early_commit=True))
    assert result.stats.get("gm.early_commits") >= 1


def test_early_commit_preserves_architecture():
    spec = get_workload("soplex")
    program = spec.build(0.1)[0]
    ref = interp(program, max_steps=1_000_000)
    _sim, result = run(program, ghostminion(early_commit=True))
    assert result.arch_regs() == ref.regs


def test_early_commit_never_slower_check_is_shape_only():
    """EC removes commit-path work; it should not be dramatically slower
    on a branchy workload (exact orderings are workload-dependent)."""
    spec = get_workload("xalancbmk")
    program = spec.build(0.1)[0]
    _s1, base = run(program, ghostminion(early_commit=False))
    _s2, ec = run(program, ghostminion(early_commit=True))
    assert ec.cycles <= base.cycles * 1.1


def test_early_commit_defense_name():
    assert ghostminion(early_commit=True).name == "GhostMinion-EC"
    assert ghostminion().name == "GhostMinion"


def test_early_commit_still_blocks_spectre():
    """Promotion happens only after *all* older branches resolve, so a
    transient gadget's lines are never promoted: Spectre stays blocked."""
    from repro.attacks import spectre
    assert not spectre.leaks(ghostminion(early_commit=True))
