"""Defense descriptor validation and construction."""

import pytest

from repro.analysis.stats import Stats
from repro.config import default_config
from repro.defenses.base import Defense
from repro.defenses.ghostminion import GhostMinionHierarchy, ghostminion
from repro.memory.hierarchy import BaseHierarchy, SharedMemory


def test_defaults_are_unsafe_like():
    defense = Defense(name="x")
    assert defense.hierarchy_cls is BaseHierarchy
    assert defense.taint_mode == "none"
    assert defense.validation_mode == "none"
    assert not defense.strict_fu_order
    assert not defense.early_commit
    assert not defense.epoch_timestamps


@pytest.mark.parametrize("field,value", [
    ("taint_mode", "bogus"),
    ("validation_mode", "bogus"),
])
def test_mode_validation(field, value):
    with pytest.raises(ValueError):
        Defense(name="x", **{field: value})


def test_build_hierarchy_passes_kwargs():
    cfg = default_config()
    stats = Stats()
    shared = SharedMemory(cfg, stats)
    defense = Defense(name="x", hierarchy_cls=GhostMinionHierarchy,
                      hierarchy_kwargs=dict(dminion=False, iminion=True))
    hierarchy = defense.build_hierarchy(0, cfg, shared, stats)
    assert hierarchy.dminion is None
    assert hierarchy.iminion is not None


def test_ghostminion_flag_combinations():
    defense = ghostminion(strict_fu_order=True, early_commit=True,
                          full_strictness=True)
    assert defense.strict_fu_order
    assert defense.early_commit
    assert defense.epoch_timestamps
    # name reflects the most specific variant
    assert defense.name == "GhostMinion-FS"


def test_every_registry_defense_builds_a_hierarchy():
    from repro.defenses import registry
    cfg = default_config()
    for name, factory in registry.items():
        stats = Stats()
        shared = SharedMemory(cfg, stats)
        hierarchy = factory().build_hierarchy(0, cfg, shared, stats)
        assert isinstance(hierarchy, BaseHierarchy), name
