"""GhostMinion hierarchy semantics (section 4)."""

import pytest

from repro.config import default_config
from repro.defenses.ghostminion import ghostminion, ghostminion_breakdown
from repro.pipeline.isa import Op
from repro.pipeline.program import ProgramBuilder
from repro.sim.simulator import Simulator


def run_sim(program, defense=None, cfg=None):
    defense = defense if defense is not None else ghostminion()
    sim = Simulator(program, defense, cfg=cfg)
    result = sim.run(max_cycles=200_000)
    assert result.finished
    return sim, result


def spin(b, reg, count):
    label = "spin_%d" % b.here()
    b.li(reg, count)
    b.label(label)
    b.alu(Op.SUB, reg, reg, imm=1)
    b.bnez(reg, label)


def test_speculative_miss_bypasses_l1_and_l2():
    """§4.2: the non-speculative hierarchy never sees speculative fills;
    the data lands in the Minion and moves to the L1 at commit."""
    b = ProgramBuilder()
    b.load(1, None, imm=0x9000)
    spin(b, 5, 10)
    b.halt()
    sim, _ = run_sim(b.build())
    hierarchy = sim.cores[0].hierarchy
    line = 0x9000 >> 6
    # the commit move put it in the L1...
    assert hierarchy.dport.cache.contains(line)
    # ...but the L2 never saw it
    assert not sim.shared.l2.contains(line)
    assert sim.stats.get("dminion.commit_moves") >= 1


def test_squash_wipes_transient_minion_lines():
    b = ProgramBuilder()
    b.data(0x100, 1)
    b.load(1, None, imm=0x100)      # slow condition
    b.bnez(1, "taken")              # mispredicted (default NT)
    b.load(2, None, imm=0x9000)     # transient load
    b.label("taken")
    spin(b, 5, 150)                 # outlive the in-flight miss
    b.halt()
    sim, result = run_sim(b.build())
    hierarchy = sim.cores[0].hierarchy
    line = 0x9000 >> 6
    assert result.stats.get("squash.events") >= 1
    # neither the Minion nor the L1/L2 retain the transient line
    assert hierarchy.dminion.get(line) is None
    assert not hierarchy.dport.cache.contains(line)
    assert not sim.shared.l2.contains(line)


def test_unsafe_keeps_transient_line_for_contrast():
    from repro.defenses.unsafe import unsafe
    b = ProgramBuilder()
    b.data(0x100, 1)
    b.load(1, None, imm=0x100)
    b.bnez(1, "taken")
    b.load(2, None, imm=0x9000)
    b.label("taken")
    spin(b, 5, 150)
    b.halt()
    sim, _ = run_sim(b.build(), defense=unsafe())
    assert sim.cores[0].hierarchy.dport.cache.contains(0x9000 >> 6)


def test_commit_move_frees_minion_slot():
    b = ProgramBuilder()
    b.load(1, None, imm=0x9000)
    spin(b, 5, 10)
    b.halt()
    sim, _ = run_sim(b.build())
    hierarchy = sim.cores[0].hierarchy
    assert hierarchy.dminion.get(0x9000 >> 6) is None  # moved out


def test_iminion_serves_instruction_fetch():
    b = ProgramBuilder()
    spin(b, 5, 40)
    b.halt()
    sim, result = run_sim(b.build())
    assert result.stats.get("iminion.fills", 0) >= 1


def test_breakdown_configs():
    for name in ("DMinion-Timeless", "DMinion", "IMinion", "Coherence",
                 "Prefetcher", "All"):
        defense = ghostminion_breakdown(name)
        assert name in defense.name
    with pytest.raises(KeyError):
        ghostminion_breakdown("nope")


def test_breakdown_timeless_has_no_temporal_order():
    cfg = default_config()
    from repro.analysis.stats import Stats
    from repro.memory.hierarchy import SharedMemory
    stats = Stats()
    shared = SharedMemory(cfg, stats)
    hier = ghostminion_breakdown("DMinion-Timeless").build_hierarchy(
        0, cfg, shared, stats)
    assert not hier.temporal_order
    assert hier.dminion.timeless


def test_timeguard_blocks_backwards_read():
    """A younger load's Minion line is invisible to an older load."""
    cfg = default_config()
    from repro.analysis.stats import Stats
    from repro.memory.hierarchy import SharedMemory
    stats = Stats()
    shared = SharedMemory(cfg, stats)
    hier = ghostminion().build_hierarchy(0, cfg, shared, stats)
    young = hier.load(0x9000, ts=50, cycle=0)
    assert young is not None
    hier.drain(young.ready_cycle + 1)
    # the line is now in the Minion at ts=50; an older load must miss
    old = hier.load(0x9000, ts=10, cycle=young.ready_cycle + 1)
    assert old.hit_level != 0
    assert stats.get("gm.timeguard_loads") >= 1


def test_leapfrog_on_full_mshrs():
    cfg = default_config()
    from repro.analysis.stats import Stats
    from repro.memory.hierarchy import SharedMemory
    stats = Stats()
    shared = SharedMemory(cfg, stats)
    hier = ghostminion().build_hierarchy(0, cfg, shared, stats)
    reqs = [hier.load(0x9000 + i * 64, ts=10 + i, cycle=0)
            for i in range(cfg.l1d.mshrs)]
    assert all(reqs)
    older = hier.load(0xA000, ts=5, cycle=1)
    assert older is not None
    assert stats.get("gm.leapfrog_loads") == 1
    from repro.memory.request import ReqState
    assert reqs[-1].state is ReqState.REPLAY


def test_timeleap_on_younger_inflight_line():
    cfg = default_config()
    from repro.analysis.stats import Stats
    from repro.memory.hierarchy import SharedMemory
    stats = Stats()
    shared = SharedMemory(cfg, stats)
    hier = ghostminion().build_hierarchy(0, cfg, shared, stats)
    young = hier.load(0x9000, ts=50, cycle=0)
    old = hier.load(0x9000, ts=10, cycle=2)
    assert stats.get("gm.timeleap_loads") == 1
    # the younger request was postponed to the restarted completion
    assert young.ready_cycle >= old.ready_cycle


def test_async_reload_recovers_lost_lines():
    """§6.4: with tiny Minions lines are lost before commit; the async
    reload brings them into the L1 without stalling commit."""
    from repro.config import MinionConfig
    cfg = default_config()
    cfg.minion_d = MinionConfig(size_bytes=128, assoc=2)
    cfg.minion_i = MinionConfig(size_bytes=128, assoc=2)
    b = ProgramBuilder()
    for i in range(8):
        b.load(1 + i % 4, None, imm=0x9000 + i * 64)
    spin(b, 7, 30)
    b.halt()
    defense = ghostminion(async_reload=True)
    sim, result = run_sim(b.build(), defense=defense, cfg=cfg)
    assert result.stats.get("dminion.async_reloads", 0) >= 1
