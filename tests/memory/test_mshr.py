"""MSHR file: leapfrogging (fig. 5), timeleaping, squash semantics."""

import pytest

from repro.memory.mshr import MSHRFile
from repro.memory.request import MemRequest, ReqState


def req(addr=0x100, ts=5, core=0, cycle=0):
    return MemRequest("load", addr, ts, core, cycle, True)


def test_allocate_find_drain():
    mshrs = MSHRFile(2, "m")
    entry = mshrs.allocate(0x1, ts=5, ready_cycle=10)
    assert mshrs.find(0x1) is entry
    assert mshrs.find(0x2) is None
    assert mshrs.drain(9) == []
    assert mshrs.drain(10) == [entry]
    assert mshrs.find(0x1) is None


def test_allocate_full_raises():
    mshrs = MSHRFile(1, "m")
    mshrs.allocate(0x1, ts=5, ready_cycle=10)
    with pytest.raises(RuntimeError):
        mshrs.allocate(0x2, ts=6, ready_cycle=10)


def test_attach_lowers_timestamp_same_core_only():
    mshrs = MSHRFile(2, "m")
    entry = mshrs.allocate(0x1, ts=9, ready_cycle=10, core=0)
    entry.attach(req(ts=4, core=0))
    assert entry.ts == 4
    entry.attach(req(ts=2, core=1))   # cross-core: no ordering
    assert entry.ts == 4


def test_fig5_leapfrog_scenario():
    """Fig. 5: entries at ts 22, 23, 28; a request at ts 25 steals the
    ts-28 entry, whose load must replay."""
    mshrs = MSHRFile(3, "m")
    mshrs.allocate(0xa, ts=22, ready_cycle=100)
    mshrs.allocate(0xb, ts=23, ready_cycle=100)
    victim_entry = mshrs.allocate(0xc, ts=28, ready_cycle=100)
    victim_req = req(addr=0xc0, ts=28)
    victim_entry.attach(victim_req)
    assert mshrs.full()
    victim = mshrs.leapfrog_victim(25, core=0)
    assert victim is victim_entry
    new_entry = mshrs.steal(victim, 0xd, ts=25, ready_cycle=120, core=0)
    assert victim_req.state is ReqState.REPLAY
    assert mshrs.find(0xd) is new_entry
    assert mshrs.find(0xc) is None


def test_no_leapfrog_when_all_older():
    """Waiting is safe when every occupant is at-or-before the
    requester's timestamp (all visible under Temporal Order)."""
    mshrs = MSHRFile(2, "m")
    mshrs.allocate(0xa, ts=3, ready_cycle=100)
    mshrs.allocate(0xb, ts=4, ready_cycle=100)
    assert mshrs.leapfrog_victim(9, core=0) is None


def test_prefetch_always_stealable():
    mshrs = MSHRFile(1, "m")
    mshrs.allocate(0xa, ts=0, ready_cycle=100, prefetch=True)
    victim = mshrs.leapfrog_victim(5, core=0)
    assert victim is not None and victim.prefetch


def test_cross_core_entries_not_comparable():
    """Section 4.9: no Temporal Order across threads — a core may not
    leapfrog another core's demand entries."""
    mshrs = MSHRFile(1, "m")
    mshrs.allocate(0xa, ts=50, ready_cycle=100, core=1)
    assert mshrs.leapfrog_victim(5, core=0) is None


def test_squash_marked_entries_stealable_by_anyone():
    mshrs = MSHRFile(1, "m")
    mshrs.allocate(0xa, ts=50, ready_cycle=100, core=0)
    assert mshrs.mark_squashed_above(40, core=0) == 1
    # even a younger request (ts 60) may steal a squashed entry
    assert mshrs.leapfrog_victim(60, core=0) is not None
    # and so may another core
    assert mshrs.leapfrog_victim(60, core=1) is not None


def test_mark_squashed_respects_boundary_and_core():
    mshrs = MSHRFile(4, "m")
    old = mshrs.allocate(0xa, ts=10, ready_cycle=100, core=0)
    young = mshrs.allocate(0xb, ts=50, ready_cycle=100, core=0)
    other = mshrs.allocate(0xc, ts=50, ready_cycle=100, core=1)
    assert mshrs.mark_squashed_above(40, core=0) == 1
    assert young.squashed and not old.squashed and not other.squashed


def test_timeleap_postpones_attached_requests():
    mshrs = MSHRFile(2, "m")
    entry = mshrs.allocate(0x1, ts=9, ready_cycle=50)
    attached = req(ts=12)
    attached.mark_ready(50)
    entry.attach(attached)
    mshrs.timeleap(entry, ts=4, ready_cycle=80)
    assert entry.ts == 4
    assert entry.ready_cycle == 80
    assert attached.ready_cycle == 80
    assert not entry.squashed


def test_timeleap_never_advances_requests():
    mshrs = MSHRFile(2, "m")
    entry = mshrs.allocate(0x1, ts=9, ready_cycle=50)
    attached = req(ts=12)
    attached.mark_ready(90)   # already later than the restart
    entry.attach(attached)
    mshrs.timeleap(entry, ts=4, ready_cycle=80)
    assert attached.ready_cycle == 90


def test_dependent_cascade_on_steal():
    """L2-level steal cancels waiting L1 entries (cascading leapfrogs)."""
    l2 = MSHRFile(1, "l2")
    l1 = MSHRFile(2, "l1")
    l2_entry = l2.allocate(0x1, ts=9, ready_cycle=100)
    l1_entry = l1.allocate(0x1, ts=9, ready_cycle=100)
    waiting = req(ts=9)
    waiting.mark_ready(100)
    l1_entry.attach(waiting)
    l2_entry.dependents.append((l1, l1_entry))
    l2.steal(l2_entry, 0x2, ts=3, ready_cycle=120)
    assert l1.find(0x1) is None
    assert waiting.state is ReqState.REPLAY


def test_dependent_cascade_on_timeleap():
    l2 = MSHRFile(1, "l2")
    l1 = MSHRFile(1, "l1")
    l2_entry = l2.allocate(0x1, ts=9, ready_cycle=100)
    l1_entry = l1.allocate(0x1, ts=9, ready_cycle=100)
    waiting = req(ts=9)
    waiting.mark_ready(100)
    l1_entry.attach(waiting)
    l2_entry.dependents.append((l1, l1_entry))
    l2.timeleap(l2_entry, ts=3, ready_cycle=150)
    assert l1_entry.ready_cycle == 150
    assert waiting.ready_cycle == 150


def test_drop_fills_above():
    mshrs = MSHRFile(2, "m")
    sink = []

    def fill(line, cycle, ts):
        sink.append((line, ts))

    entry = mshrs.allocate(0x1, ts=9, ready_cycle=10)
    entry.add_fill(fill)            # ts=None: uses entry.ts
    entry.add_fill(fill, ts=3)
    dropped = mshrs.drop_fills_above(5, {fill})
    assert dropped == 1             # the entry.ts=9 fill went; ts=3 stays
    assert len(entry.fill_actions) == 1


def test_earliest_free_cycle():
    mshrs = MSHRFile(2, "m")
    assert mshrs.earliest_free_cycle() == 0
    mshrs.allocate(0x1, ts=1, ready_cycle=30)
    mshrs.allocate(0x2, ts=2, ready_cycle=20)
    assert mshrs.earliest_free_cycle() == 20


def test_rejects_empty_file():
    with pytest.raises(ValueError):
        MSHRFile(0, "m")
