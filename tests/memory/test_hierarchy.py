"""Base (unsafe) hierarchy: timing composition, MSHR behaviour,
prefetcher integration, coherence plumbing."""

from repro.analysis.stats import Stats
from repro.config import default_config
from repro.defenses.unsafe import unsafe
from repro.memory.hierarchy import SharedMemory
from repro.memory.request import ReqState


def build(cfg=None, cores=1):
    cfg = cfg if cfg is not None else default_config(cores=cores)
    stats = Stats()
    shared = SharedMemory(cfg, stats)
    hierarchies = [unsafe().build_hierarchy(i, cfg, shared, stats)
                   for i in range(cores)]
    return hierarchies, shared, stats, cfg


def test_l1_hit_latency():
    (hier,), _shared, _stats, cfg = build()
    warm = hier.load(0x9000, ts=1, cycle=0)
    hier.drain(warm.ready_cycle + 1)
    hit = hier.load(0x9000, ts=2, cycle=100)
    assert hit.ready_cycle == 100 + cfg.l1d.latency
    assert hit.hit_level == 1


def test_miss_latency_composes_l1_l2_dram():
    (hier,), shared, _stats, cfg = build()
    req = hier.load(0x9000, ts=1, cycle=0)
    expected = (cfg.l1d.latency + cfg.l2.latency
                + shared.dram.cfg.base_latency)
    assert req.ready_cycle == expected
    assert req.hit_level == 3


def test_l2_hit_after_eviction_path():
    (hier,), shared, _stats, cfg = build()
    req = hier.load(0x9000, ts=1, cycle=0)
    hier.drain(req.ready_cycle + 1)
    # evict from L1 only; the unsafe baseline also filled the L2
    hier.dport.cache.invalidate(0x9000 >> 6)
    l2_hit = hier.load(0x9000, ts=2, cycle=1000)
    assert l2_hit.ready_cycle == 1000 + cfg.l1d.latency + cfg.l2.latency
    assert l2_hit.hit_level == 2


def test_same_line_requests_share_one_mshr():
    (hier,), _shared, _stats, _cfg = build()
    first = hier.load(0x9000, ts=1, cycle=0)
    second = hier.load(0x9008, ts=2, cycle=1)   # same line
    assert hier.dport.mshrs.occupancy() == 1
    assert second.ready_cycle >= first.ready_cycle


def test_mshr_backpressure_returns_none():
    (hier,), _shared, _stats, cfg = build()
    for i in range(cfg.l1d.mshrs):
        assert hier.load(0x9000 + i * 64, ts=i, cycle=0) is not None
    assert hier.load(0xF000, ts=99, cycle=0) is None


def test_fills_apply_on_drain():
    (hier,), _shared, _stats, _cfg = build()
    req = hier.load(0x9000, ts=1, cycle=0)
    assert not hier.dport.cache.contains(0x9000 >> 6)
    hier.drain(req.ready_cycle)
    assert hier.dport.cache.contains(0x9000 >> 6)


def test_store_commit_fills_and_invalidates_remotes():
    hierarchies, shared, _stats, _cfg = build(cores=2)
    h0, h1 = hierarchies
    req = h1.load(0x9000, ts=1, cycle=0)
    h1.drain(req.ready_cycle + 1)
    assert h1.dport.cache.contains(0x9000 >> 6)
    h0.store_commit(0x9000, ts=5, cycle=req.ready_cycle + 2)
    assert not h1.dport.cache.contains(0x9000 >> 6)
    assert h0.dport.cache.contains(0x9000 >> 6)
    assert shared.directory.owner(0x9000 >> 6) == 0


def test_refetch_is_eager_and_nonspeculative():
    (hier,), shared, stats, _cfg = build()
    done = hier.refetch(0x9000, ts=1, cycle=0)
    assert done > 0
    assert hier.dport.cache.contains(0x9000 >> 6)
    assert shared.l2.contains(0x9000 >> 6)
    assert stats.get("mem.refetches") == 1


def test_ifetch_probe_and_fill():
    (hier,), _shared, _stats, _cfg = build()
    assert not hier.ifetch_probe(0x40, ts=1, cycle=0)
    req = hier.ifetch(0x40, ts=1, cycle=0)
    assert req is not None
    assert hier.ifetch_probe(0x40, ts=2, cycle=req.ready_cycle)


def test_prefetcher_trains_on_stride_and_fills_l2():
    (hier,), shared, stats, _cfg = build()
    cycle = 0
    for i in range(8):
        req = hier.load(0x40000 + i * 64, ts=i, cycle=cycle)
        if req is not None:
            cycle = req.ready_cycle + 1
        hier.drain(cycle)
    assert stats.get("pf.issued") >= 1
    hier.drain(cycle + 500)
    # some line ahead of the stream is already in the L2
    ahead = [(0x40000 >> 6) + k for k in range(8, 16)]
    assert any(shared.l2.contains(line) for line in ahead)


def test_demand_promotion_of_prefetch_entry():
    (hier,), shared, stats, _cfg = build()
    cycle = 0
    for i in range(8):
        req = hier.load(0x40000 + i * 64, ts=i, cycle=cycle)
        if req is not None:
            cycle = req.ready_cycle + 1
        hier.drain(cycle)
    # a demand hit on an in-flight prefetch attaches without restart
    in_flight = [e.line for e in shared.l2_mshrs.entries if e.prefetch]
    if in_flight:
        line = in_flight[0]
        req = hier.load(line * 64, ts=100, cycle=cycle)
        assert req is not None
        assert stats.get("pf.demand_promotions") >= 1


def test_unsafe_never_replays():
    (hier,), _shared, _stats, cfg = build()
    reqs = [hier.load(0x9000 + i * 64, ts=i, cycle=0)
            for i in range(cfg.l1d.mshrs)]
    late_old = hier.load(0xF000, ts=0, cycle=1)
    assert late_old is None                      # retry, not leapfrog
    assert all(r.state is not ReqState.REPLAY for r in reqs)
