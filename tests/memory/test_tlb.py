"""TLB hierarchy with a TLB GhostMinion (§4.9 address translation)."""

from repro.config import TLBConfig, default_config
from repro.defenses.ghostminion import ghostminion
from repro.memory.tlb import TLBHierarchy
from repro.pipeline.isa import Op
from repro.pipeline.program import ProgramBuilder
from repro.sim.simulator import Simulator


def make(minion=True, **kwargs):
    return TLBHierarchy(TLBConfig(**kwargs), minion=minion)


PAGE = 1 << 12


def test_cold_translation_walks():
    tlb = make()
    result = tlb.translate(0x5000, ts=1, cycle=0)
    assert result.level == "walk"
    assert result.latency == tlb.cfg.l2_latency + tlb.cfg.walk_latency


def test_speculative_walk_fills_minion_not_tlb():
    tlb = make()
    tlb.translate(0x5000, ts=1, cycle=0, speculative=True)
    vpn = 0x5000 >> 12
    assert tlb.minion.get(vpn) is not None
    assert not tlb.l1.contains(vpn)


def test_minion_hit_is_free_and_timeguarded():
    tlb = make()
    tlb.translate(0x5000, ts=5, cycle=0)
    hit = tlb.translate(0x5008, ts=6, cycle=1)       # same page
    assert hit.level == "minion" and hit.latency == 0
    # an older instruction must not see the younger translation
    older = tlb.translate(0x5008, ts=2, cycle=2)
    assert older.level != "minion"


def test_commit_promotes_translation():
    tlb = make()
    tlb.translate(0x5000, ts=1, cycle=0)
    tlb.commit_translation(0x5000, ts=1, cycle=5)
    vpn = 0x5000 >> 12
    assert tlb.minion.get(vpn) is None
    assert tlb.l1.contains(vpn)
    assert tlb.translate(0x5010, ts=2, cycle=6).level == "l1"


def test_squash_wipes_transient_translations():
    tlb = make()
    tlb.translate(0x5000, ts=10, cycle=0)
    tlb.translate(0x9000, ts=3, cycle=1)
    tlb.squash(5)
    assert tlb.minion.get(0x5000 >> 12) is None
    assert tlb.minion.get(0x9000 >> 12) is not None


def test_nonspeculative_translation_fills_real_tlbs():
    tlb = make()
    tlb.translate(0x5000, ts=1, cycle=0, speculative=False)
    vpn = 0x5000 >> 12
    assert tlb.l1.contains(vpn)
    assert tlb.l2.contains(vpn)
    assert tlb.minion.get(vpn) is None


def test_unsafe_mode_has_no_minion():
    tlb = make(minion=False)
    tlb.translate(0x5000, ts=1, cycle=0, speculative=True)
    assert tlb.l1.contains(0x5000 >> 12)   # speculative fill goes live


def test_l2_tlb_hit_cost():
    tlb = make(minion=False)
    tlb.translate(0x5000, ts=1, cycle=0, speculative=False)
    tlb.l1.invalidate(0x5000 >> 12)
    result = tlb.translate(0x5000, ts=2, cycle=10)
    assert result.level == "l2"
    assert result.latency == tlb.cfg.l2_latency


def test_end_to_end_with_tlb_modelled():
    cfg = default_config()
    cfg.model_tlb = True
    b = ProgramBuilder()
    b.li(1, 20)
    b.li(2, 0x40000)
    b.label("loop")
    b.load(3, 2)
    b.alu(Op.ADD, 2, 2, imm=4096)   # one page per iteration: TLB misses
    b.alu(Op.SUB, 1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    sim = Simulator(b.build(), ghostminion(), cfg=cfg)
    result = sim.run(max_cycles=200_000)
    assert result.finished
    assert result.stats.get("dtlb.walks") >= 10
    # TLB walks slow the run down relative to an untranslated machine
    sim_plain = Simulator(b.build(), ghostminion())
    plain = sim_plain.run(max_cycles=200_000)
    assert result.cycles > plain.cycles
