"""Stride prefetcher: RPT detection, confidence, lookahead front."""

import pytest

from repro.memory.prefetcher import StridePrefetcher


def train_stream(pf, pc, start, stride, count):
    out = []
    for i in range(count):
        out.append(pf.train(pc, start + i * stride))
    return out


def test_needs_confidence_before_predicting():
    pf = StridePrefetcher()
    results = train_stream(pf, pc=4, start=100, stride=1, count=4)
    assert results[0] == [] and results[1] == [] and results[2] == []
    # fourth access: stride confirmed twice -> confidence threshold
    assert results[3] != []


def test_predicts_ahead_of_trigger():
    pf = StridePrefetcher(degree=2)
    results = train_stream(pf, pc=4, start=100, stride=1, count=4)
    for lines in results:
        for line in lines:
            assert line > 100


def test_front_advances_past_demand_stream():
    """The lookahead front must overtake a steady stream (essential for
    commit-time training, §4.7)."""
    pf = StridePrefetcher(degree=2, max_distance=24)
    last_trigger = 0
    frontmost = 0
    for i in range(30):
        line = 100 + i
        for pf_line in pf.train(4, line):
            frontmost = max(frontmost, pf_line)
        last_trigger = line
    assert frontmost > last_trigger + 10


def test_front_respects_max_distance():
    pf = StridePrefetcher(degree=4, max_distance=6)
    farthest = 0
    trigger = 0
    for i in range(40):
        trigger = 100 + i
        for line in pf.train(4, trigger):
            farthest = max(farthest, line)
        assert farthest <= trigger + 6


def test_negative_stride():
    pf = StridePrefetcher(degree=1)
    predictions = train_stream(pf, pc=4, start=1000, stride=-2, count=4)
    flat = [line for lines in predictions for line in lines]
    assert flat and all(line < 1000 for line in flat)
    assert all(line >= 0 for line in flat)


def test_stride_change_resets_confidence():
    pf = StridePrefetcher()
    train_stream(pf, pc=4, start=100, stride=1, count=4)
    assert pf.train(4, 500) == []     # broken stride: no prediction


def test_per_pc_isolation():
    pf = StridePrefetcher()
    train_stream(pf, pc=4, start=100, stride=1, count=4)
    assert pf.train(8, 999) == []     # different pc: untrained


def test_capacity_eviction():
    pf = StridePrefetcher(entries=2)
    train_stream(pf, pc=1, start=100, stride=1, count=3)
    pf.train(2, 0)
    pf.train(3, 0)                    # evicts pc=1 (LRU)
    pcs = [pc for pc, _stride, _conf in pf.snapshot()]
    assert 1 not in pcs


def test_zero_stride_never_predicts():
    pf = StridePrefetcher()
    results = train_stream(pf, pc=4, start=100, stride=0, count=6)
    assert all(not lines for lines in results)


def test_rejects_empty_table():
    with pytest.raises(ValueError):
        StridePrefetcher(entries=0)
