"""DRAM row-buffer model and the §4.9 speculative open-page policy."""

from repro.config import DRAMConfig
from repro.memory.dram import DRAM


def make(**kwargs):
    return DRAM(DRAMConfig(**kwargs))


def test_first_access_pays_full_latency():
    dram = make()
    assert dram.access(0) == dram.cfg.base_latency


def test_row_hit_fast_path():
    dram = make()
    dram.access(0)
    assert dram.access(1) == dram.cfg.row_hit_latency  # same row


def test_row_conflict_pays_full_latency():
    dram = make()
    lines_per_row = dram.lines_per_row
    dram.access(0)
    # a line in a different row of the same bank
    other = lines_per_row * dram.cfg.banks
    assert dram.bank_of(other) == dram.bank_of(0)
    assert dram.access(other) == dram.cfg.base_latency


def test_banks_hold_independent_rows():
    dram = make()
    row0_line = 0
    row1_line = dram.lines_per_row      # next row -> next bank
    dram.access(row0_line)
    dram.access(row1_line)
    assert dram.access(row0_line + 1) == dram.cfg.row_hit_latency
    assert dram.access(row1_line + 1) == dram.cfg.row_hit_latency


def test_closed_page_never_hits():
    dram = make(open_page=False)
    dram.access(0)
    assert dram.access(1) == dram.cfg.base_latency


def test_nonspec_open_only_policy():
    """§4.9: speculative accesses may not leave pages open."""
    dram = make(nonspec_open_only=True)
    dram.access(0, speculative=True)
    # the speculative access left no trace: still a row miss
    assert dram.access(1, speculative=False) == dram.cfg.base_latency
    # but non-speculative accesses open pages normally
    assert dram.access(2, speculative=False) == dram.cfg.row_hit_latency


def test_nonspec_open_only_preserves_previous_row():
    """A speculative access must not close an open row either (that
    would also be observable)."""
    dram = make(nonspec_open_only=True)
    dram.access(0, speculative=False)           # opens row 0
    other_row = dram.lines_per_row * dram.cfg.banks
    dram.access(other_row, speculative=True)    # same bank, no update
    assert dram.access(1, speculative=False) == dram.cfg.row_hit_latency


def test_stats_counted():
    dram = make()
    dram.access(0)
    dram.access(1)
    assert dram.stats.get("dram.accesses") == 2
    assert dram.stats.get("dram.row_hits") == 1


def test_reset():
    dram = make()
    dram.access(0)
    dram.reset()
    assert dram.access(1) == dram.cfg.base_latency
