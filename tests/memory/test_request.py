"""MemRequest handle semantics."""

from repro.memory.request import MemRequest, ReqState


def make(**kwargs):
    defaults = dict(kind="load", addr=0x1234, ts=5, core_id=0,
                    issue_cycle=10, speculative=True)
    defaults.update(kwargs)
    return MemRequest(**defaults)


def test_line_derivation():
    assert make(addr=0x1234).line == 0x1234 >> 6


def test_done_requires_ready_state_and_cycle():
    req = make()
    assert not req.done(100)
    req.mark_ready(50)
    assert not req.done(49)
    assert req.done(50)


def test_replay_overrides_ready():
    req = make()
    req.mark_ready(50)
    req.mark_replay()
    assert req.state is ReqState.REPLAY
    assert not req.done(100)


def test_postpone_never_advances():
    req = make()
    req.mark_ready(50)
    req.postpone(80)
    assert req.ready_cycle == 80
    req.postpone(60)
    assert req.ready_cycle == 80


def test_defaults():
    req = make()
    assert req.hit_level == 3
    assert not req.invisible and not req.needs_validation
    assert not req.filled_minion and not req.uncached
