"""Directory coherence and the Minion Shared/Invalid rule (§4.6)."""

from repro.memory.coherence import Directory


def test_fill_registers_sharer():
    directory = Directory(4)
    directory.on_fill(0, 0x10)
    assert directory.sharers(0x10) == {0}


def test_store_invalidates_remote_sharers():
    directory = Directory(4)
    directory.on_fill(0, 0x10)
    directory.on_fill(1, 0x10)
    directory.on_fill(2, 0x10)
    victims = directory.on_store_commit(1, 0x10)
    assert sorted(victims) == [0, 2]
    assert directory.sharers(0x10) == {1}
    assert directory.owner(0x10) == 1


def test_store_invalidates_previous_owner():
    directory = Directory(4)
    directory.on_store_commit(0, 0x10)
    victims = directory.on_store_commit(1, 0x10)
    assert 0 in victims
    assert directory.owner(0x10) == 1


def test_version_bumps_on_store():
    directory = Directory(2)
    assert directory.version(0x10) == 0
    directory.on_store_commit(0, 0x10)
    directory.on_store_commit(0, 0x10)
    assert directory.version(0x10) == 2


def test_minion_fill_rule():
    """A Minion may only hold Shared copies: denied while a *remote*
    core owns the line modified (§4.6)."""
    directory = Directory(2)
    assert directory.minion_fill_allowed(0, 0x10)
    directory.on_store_commit(1, 0x10)
    assert not directory.minion_fill_allowed(0, 0x10)
    assert directory.minion_fill_allowed(1, 0x10)  # own line is fine


def test_downgrade_restores_minion_fill():
    directory = Directory(2)
    directory.on_store_commit(1, 0x10)
    directory.downgrade(0x10)
    assert directory.minion_fill_allowed(0, 0x10)


def test_evict_clears_sharer_and_owner():
    directory = Directory(2)
    directory.on_store_commit(0, 0x10)
    directory.on_evict(0, 0x10)
    assert directory.sharers(0x10) == set()
    assert directory.owner(0x10) is None


def test_invalidation_stats():
    directory = Directory(3)
    directory.on_fill(0, 0x10)
    directory.on_fill(1, 0x10)
    directory.on_store_commit(2, 0x10)
    assert directory.stats.get("coh.invalidations") == 2
