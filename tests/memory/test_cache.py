"""Set-associative cache with LRU."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.cache import SetAssocCache


def test_miss_then_fill_then_hit():
    cache = SetAssocCache(4, 2)
    assert not cache.lookup(0x10, cycle=0)
    cache.fill(0x10, cycle=1)
    assert cache.lookup(0x10, cycle=2)
    assert cache.stats.get("cache.hits") == 1
    assert cache.stats.get("cache.misses") == 1


def test_lru_eviction():
    cache = SetAssocCache(1, 2)
    cache.fill(1, cycle=1)
    cache.fill(2, cycle=2)
    cache.lookup(1, cycle=3)        # 1 is now most recent
    victim = cache.fill(3, cycle=4)
    assert victim == 2


def test_fill_existing_updates_recency():
    cache = SetAssocCache(1, 2)
    cache.fill(1, cycle=1)
    cache.fill(2, cycle=2)
    assert cache.fill(1, cycle=3) is None   # refresh, no eviction
    victim = cache.fill(3, cycle=4)
    assert victim == 2


def test_set_mapping_isolates_sets():
    cache = SetAssocCache(2, 1)
    cache.fill(0, cycle=1)   # set 0
    cache.fill(1, cycle=2)   # set 1
    assert cache.contains(0) and cache.contains(1)
    victim = cache.fill(2, cycle=3)   # set 0 again
    assert victim == 0
    assert cache.contains(1)


def test_invalidate():
    cache = SetAssocCache(2, 2)
    cache.fill(5, cycle=1)
    assert cache.invalidate(5)
    assert not cache.invalidate(5)
    assert not cache.contains(5)


def test_invalidate_all():
    cache = SetAssocCache(2, 2)
    for line in range(4):
        cache.fill(line, cycle=line)
    assert cache.invalidate_all() == 4
    assert len(cache) == 0


def test_probe_has_no_lru_side_effect():
    cache = SetAssocCache(1, 2)
    cache.fill(1, cycle=1)
    cache.fill(2, cycle=2)
    cache.contains(1)                 # probe: must not refresh 1
    victim = cache.fill(3, cycle=3)
    assert victim == 1


def test_dirty_tracking():
    cache = SetAssocCache(2, 2)
    cache.fill(5, cycle=1, dirty=True)
    assert cache.get(5).dirty
    cache.mark_dirty(5)
    assert cache.get(5).dirty


def test_rejects_bad_geometry():
    with pytest.raises(ValueError):
        SetAssocCache(0, 2)
    with pytest.raises(ValueError):
        SetAssocCache(2, 0)


@settings(max_examples=150, deadline=None)
@given(st.lists(st.integers(0, 30), max_size=80),
       st.integers(1, 4), st.integers(1, 4))
def test_capacity_and_membership_invariants(lines, num_sets, assoc):
    """No set ever exceeds its associativity, and the most recently
    filled line of a set is always resident."""
    cache = SetAssocCache(num_sets, assoc)
    for cycle, line in enumerate(lines):
        cache.fill(line, cycle=cycle)
        assert cache.contains(line)
        per_set = {}
        for resident in cache.lines():
            per_set.setdefault(cache.set_index(resident), []).append(
                resident)
        assert all(len(v) <= assoc for v in per_set.values())
