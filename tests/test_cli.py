"""Command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Point the CLI's default result cache at a throwaway directory."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path / "cache"


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "GhostMinion" in out
    assert "mcf" in out and "blackscholes" in out


def test_run(capsys):
    assert main(["run", "hmmer", "--defense", "GhostMinion",
                 "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "IPC" in out and "cycles" in out
    assert "dminion.fills" in out


def test_run_unknown_workload(capsys):
    # Unknown component names are usage errors (exit 2), not
    # tracebacks; the message carries the unknown name.
    assert main(["run", "doom", "--scale", "0.05"]) == 2
    assert "doom" in capsys.readouterr().err


def test_run_spec_strings_through_engine(capsys):
    assert main(["run",
                 "--workload", "pointer_chase(stride=128, "
                               "footprint_kb=64)",
                 "--defense", "MuonTrap(flush=True)",
                 "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "pointer_chase(stride=128" in out
    assert "cycles" in out and "IPC" in out


def test_run_requires_exactly_one_workload(capsys):
    assert main(["run"]) == 2
    assert "no workload" in capsys.readouterr().err
    assert main(["run", "hmmer", "--workload", "mcf"]) == 2
    assert "both" in capsys.readouterr().err


def test_list_kind_json(capsys):
    assert main(["list", "defenses", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    names = [info["name"] for info in payload["defense"]]
    assert {"Unsafe", "GhostMinion", "MuonTrap-Flush",
            "Custom"} <= set(names)
    assert main(["list", "workloads", "--tag", "synthetic",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    names = [info["name"] for info in payload["workload"]]
    assert "pointer_chase" in names and "mcf" not in names
    assert main(["list", "predictors", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert {"tournament", "bimodal"} <= {
        info["name"] for info in payload["predictor"]}


def test_describe_spec_string(capsys):
    assert main(["describe", "MuonTrap(flush=True)"]) == 0
    out = capsys.readouterr().out
    assert "MuonTrap-Flush" in out         # resolved display name
    assert "flush_on_squash" in out
    assert main(["describe", "pointer_chase(stride=128)",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == "workload"
    assert payload["resolved"]["params"]["stride"] == 128


def test_describe_unknown_suggests(capsys):
    assert main(["describe", "GhostMinon"]) == 2
    assert "GhostMinion" in capsys.readouterr().err


def test_describe_bad_spec_is_clean_error(capsys):
    assert main(["describe", "MuonTrap(flush=__import__('os'))"]) == 2
    assert "literal" in capsys.readouterr().err


def test_compare(capsys):
    assert main(["compare", "hmmer", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "GhostMinion" in out and "geomean" in out


def test_figure_table1(capsys):
    assert main(["figure", "table1"]) == 0
    out = capsys.readouterr().out
    assert "L1 DCache" in out


def test_figure_six_small(capsys):
    assert main(["figure", "sec49", "--scale", "0.03"]) == 0
    out = capsys.readouterr().out
    assert "strict FU" in out


def test_run_json(capsys, isolated_cache):
    assert main(["run", "hmmer", "--scale", "0.05", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["workload"] == "hmmer"
    assert payload["defense"] == "GhostMinion"
    result = payload["result"]
    assert result["cycles"] > 0 and result["finished"] is True
    assert "dminion.fills" in result["stats"]


def test_run_cache_hit_on_second_invocation(capsys, isolated_cache):
    argv = ["run", "hmmer", "--scale", "0.05", "--json"]
    assert main(argv) == 0
    first = json.loads(capsys.readouterr().out)
    assert first["cache_hits"] == 0
    assert main(argv) == 0
    second = json.loads(capsys.readouterr().out)
    assert second["cache_hits"] == 1
    assert second["result"] == first["result"]


def test_compare_json_parallel_matches_serial(capsys, isolated_cache):
    argv = ["compare", "hmmer", "gamess", "--scale", "0.05", "--json"]
    assert main(argv + ["--jobs", "2", "--no-cache"]) == 0
    parallel = json.loads(capsys.readouterr().out)
    assert main(argv + ["--jobs", "1", "--no-cache"]) == 0
    serial = json.loads(capsys.readouterr().out)
    assert parallel["points"] == serial["points"]
    assert set(parallel["normalised"]["hmmer"]) == {
        "GhostMinion", "MuonTrap", "MuonTrap-Flush",
        "InvisiSpec-Spectre", "InvisiSpec-Future", "STT-Spectre",
        "STT-Future"}


def test_figure_json(capsys, isolated_cache):
    assert main(["figure", "table1", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["name"].startswith("Table 1")
    assert payload["data"]["rows"]
    assert "L1 DCache" in payload["text"]


def test_figure_json_with_engine(capsys, isolated_cache):
    assert main(["figure", "sec49", "--scale", "0.03", "--json",
                 "--jobs", "2"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "ratios" in payload["data"]
    assert payload["meta"]["points"] > 0


def test_sweep_command(capsys, isolated_cache):
    assert main(["sweep", "hmmer", "--defense", "GhostMinion",
                 "--axis", "minion_d.size_bytes=2048,128",
                 "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "hmmer::GhostMinion::minion_d.size_bytes=2048" in out
    assert "hmmer::GhostMinion::minion_d.size_bytes=128" in out


def test_sweep_malformed_axis_is_clean_error(capsys):
    assert main(["sweep", "hmmer", "--axis",
                 "minion_d.size_bytes"]) == 2
    err = capsys.readouterr().err
    assert "--axis wants PATH=V1,V2" in err


def test_sweep_malformed_set_is_clean_error(capsys):
    assert main(["sweep", "hmmer", "--set", "dram.open_page"]) == 2
    err = capsys.readouterr().err
    assert "--set wants PATH=VALUE" in err


def test_sweep_unknown_config_path_is_clean_error(capsys):
    assert main(["sweep", "hmmer", "--set",
                 "minion_d.size_bytez=128"]) == 2
    err = capsys.readouterr().err
    assert "unknown config field" in err


def test_composed_points_duplicate_keys_fail_fast():
    from repro.exp import Sweep, run_points
    points = Sweep(workloads=["hmmer"], defenses=["Unsafe"],
                   scale=0.05).points()
    with pytest.raises(ValueError, match="duplicate sweep point"):
        run_points(points + points)


def test_sweep_command_json_and_set(capsys, isolated_cache):
    assert main(["sweep", "hmmer", "--defense", "Unsafe",
                 "--set", "dram.open_page=false",
                 "--scale", "0.05", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["points"]) == 1
    assert payload["points"][0]["workload"] == "hmmer"


def test_cache_stats_and_prune_commands(capsys, isolated_cache):
    assert main(["run", "hmmer", "--scale", "0.05"]) == 0
    capsys.readouterr()
    assert main(["cache", "stats", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["entries"] == 1 and payload["bytes"] > 0
    # nothing is a week old yet
    assert main(["cache", "prune", "--older-than", "7d"]) == 0
    assert "pruned 0 entries" in capsys.readouterr().out
    assert main(["cache", "prune", "--all"]) == 0
    assert "pruned 1 entry" in capsys.readouterr().out
    assert main(["cache", "stats", "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["entries"] == 0


def test_cache_prune_wants_age_or_all(capsys):
    assert main(["cache", "prune"]) == 2
    assert "--older-than" in capsys.readouterr().err
    assert main(["cache", "prune", "--older-than", "1d", "--all"]) == 2
    assert "not both" in capsys.readouterr().err
    assert main(["cache", "prune", "--older-than", "soon"]) == 2
    assert "AGE" in capsys.readouterr().err
    # NaN would defeat the age filter and prune everything
    assert main(["cache", "prune", "--older-than", "nan"]) == 2
    assert "finite" in capsys.readouterr().err


def test_sweep_malformed_shard_is_clean_error(capsys):
    assert main(["sweep", "hmmer", "--shard", "1of2"]) == 2
    assert "--shard wants I/N" in capsys.readouterr().err
    assert main(["sweep", "hmmer", "--shard", "2/2"]) == 2
    assert "shard index" in capsys.readouterr().err


def test_sharded_sweep_merge_report_byte_identical(
        capsys, isolated_cache, tmp_path):
    """The acceptance workflow: 2 shards -> merge -> report, diffed
    against the direct single-process compare table."""
    db = str(tmp_path / "results.sqlite")
    base = ["sweep", "hmmer", "--scale", "0.05"]
    for name in ["Unsafe", "GhostMinion", "MuonTrap", "MuonTrap-Flush",
                 "InvisiSpec-Spectre", "InvisiSpec-Future",
                 "STT-Spectre", "STT-Future"]:
        base += ["--defense", name]
    shard0 = str(tmp_path / "shard0.json")
    shard1 = str(tmp_path / "shard1.json")
    assert main(base + ["--shard", "0/2", "--export", shard0,
                        "--json"]) == 0
    captured = capsys.readouterr()
    assert "shard 0/2: 4 of 8 points" in captured.err
    # a sharded run still emits its slice's canonical results
    assert len(json.loads(captured.out)["points"]) == 4
    assert main(base + ["--shard", "1/2", "--export", shard1]) == 0
    assert "shard 1/2: 4 of 8 points" in capsys.readouterr().err
    assert main(["merge", shard0, shard1, "--db", db, "--json"]) == 0
    merged = json.loads(capsys.readouterr().out)
    assert merged["inserted"] == 8 and merged["duplicates"] == 0
    assert merged["store"]["points"] == 8
    # report regenerates the compare table from the store alone...
    assert main(["report", "compare", "hmmer", "--scale", "0.05",
                 "--db", db]) == 0
    from_store = capsys.readouterr().out
    # ... byte-identical to the direct engine run (all cache hits here,
    # which exercises the same normalisation/formatting path).
    assert main(["compare", "hmmer", "--scale", "0.05"]) == 0
    direct = capsys.readouterr().out
    assert from_store == direct
    assert "geomean" in from_store


def test_compare_sharded_json_emits_slice(capsys, isolated_cache):
    assert main(["compare", "hmmer", "--scale", "0.05",
                 "--shard", "0/2", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["points"]) == 4  # half of Unsafe + 7 defenses
    # no shard -> the usual normalised table shape
    assert main(["compare", "hmmer", "--scale", "0.05", "--json"]) == 0
    assert "normalised" in json.loads(capsys.readouterr().out)


def test_report_compare_missing_points_fails_cleanly(
        capsys, tmp_path):
    db = str(tmp_path / "empty.sqlite")
    assert main(["report", "compare", "hmmer", "--scale", "0.05",
                 "--db", db]) == 1
    assert "holds no record" in capsys.readouterr().err
    assert main(["report", "compare", "--db", db]) == 2
    assert "at least one workload" in capsys.readouterr().err
    assert main(["report", "sec49", "hmmer", "--db", db]) == 2
    assert "no workload arguments" in capsys.readouterr().err


def test_report_allow_sim_records_into_store(capsys, tmp_path):
    db = str(tmp_path / "results.sqlite")
    assert main(["report", "compare", "hmmer", "--scale", "0.05",
                 "--db", db, "--allow-sim"]) == 0
    capsys.readouterr()
    # the store now holds every point: strict replay succeeds
    assert main(["report", "compare", "hmmer", "--scale", "0.05",
                 "--db", db]) == 0
    assert "geomean" in capsys.readouterr().out


def test_run_db_write_through_and_store_stats(capsys, tmp_path):
    db = str(tmp_path / "results.sqlite")
    argv = ["run", "hmmer", "--scale", "0.05", "--db", db, "--json"]
    assert main(argv) == 0
    first = json.loads(capsys.readouterr().out)
    assert first["cache_hits"] == 0
    assert main(argv) == 0
    second = json.loads(capsys.readouterr().out)
    assert second["cache_hits"] == 1
    assert second["result"] == first["result"]
    assert main(["store", "stats", "--db", db, "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["points"] == 1 and stats["schema_version"] == 1


def test_store_backfill_command(capsys, isolated_cache, tmp_path):
    db = str(tmp_path / "results.sqlite")
    assert main(["run", "hmmer", "--scale", "0.05"]) == 0
    capsys.readouterr()
    assert main(["store", "backfill", "--db", db, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["scanned"] == 1 and payload["inserted"] == 1
    assert payload["store"]["points"] == 1


def test_merge_conflict_is_hard_error(capsys, tmp_path):
    db = str(tmp_path / "results.sqlite")
    shard = str(tmp_path / "shard.json")
    assert main(["sweep", "hmmer", "--defense", "Unsafe", "--scale",
                 "0.05", "--export", shard, "--no-cache"]) == 0
    capsys.readouterr()
    assert main(["merge", shard, "--db", db]) == 0
    capsys.readouterr()
    with open(shard) as handle:
        payload = json.load(handle)
    payload["points"][0]["cycles"] += 1
    with open(shard, "w") as handle:
        json.dump(payload, handle)
    assert main(["merge", shard, "--db", db]) == 1
    assert "conflicting results" in capsys.readouterr().err


def test_attack_spectre_on_unsafe(capsys):
    assert main(["attack", "spectre", "--defense", "Unsafe",
                 "--secret", "3"]) == 0
    out = capsys.readouterr().out
    assert "recovered: 3 (correct)" in out
    assert "LEAKS" in out


def test_attack_spectre_on_ghostminion(capsys):
    assert main(["attack", "spectre", "--defense", "GhostMinion"]) == 0
    out = capsys.readouterr().out
    assert "safe under GhostMinion" in out


def test_attack_interference(capsys):
    exit_code = main(["attack", "interference",
                      "--defense", "GhostMinion"])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "secret bit 0" in out and "secret bit 1" in out


# -- error paths: malformed specs, unknown names, bad flag combos ---------

def test_run_malformed_spec_is_clean_error(capsys):
    assert main(["run", "--workload", "pointer_chase(stride=)",
                 "--scale", "0.05"]) == 2
    assert "error:" in capsys.readouterr().err


def test_run_unknown_workload_suggests(capsys):
    assert main(["run", "mfc", "--scale", "0.05"]) == 2
    assert "mcf" in capsys.readouterr().err


def test_run_unknown_defense_suggests(capsys):
    assert main(["run", "hmmer", "--defense", "GhostMinon",
                 "--scale", "0.05"]) == 2
    assert "GhostMinion" in capsys.readouterr().err


def test_run_unknown_trace_sink_suggests(capsys):
    assert main(["run", "hmmer", "--scale", "0.05", "--trace",
                 "--trace-sink", "perfeto", "--no-cache"]) == 2
    assert "perfetto" in capsys.readouterr().err


def test_trace_unknown_sink_suggests(capsys):
    assert main(["trace", "hmmer", "--scale", "0.05",
                 "--sink", "perfeto"]) == 2
    assert "perfetto" in capsys.readouterr().err


def test_compare_unknown_workload_suggests(capsys):
    assert main(["compare", "mfc", "--scale", "0.05"]) == 2
    assert "mcf" in capsys.readouterr().err


def test_sweep_unknown_defense_suggests(capsys):
    assert main(["sweep", "hmmer", "--defense", "GhostMinon",
                 "--scale", "0.05"]) == 2
    assert "GhostMinion" in capsys.readouterr().err


def test_compare_malformed_shard_is_clean_error(capsys):
    assert main(["compare", "hmmer", "--shard", "2of4"]) == 2
    assert "--shard wants I/N" in capsys.readouterr().err
    assert main(["compare", "hmmer", "--shard", "4/4"]) == 2
    assert "shard index" in capsys.readouterr().err


# -- bench: sections missing from either payload must not raise -----------

def _bench_payload(speedup=2.0, extra=None):
    payload = {"bench": "perf_smoke", "speedup": speedup,
               "scale": 0.25, "cycles": 1000}
    payload.update(extra or {})
    return payload


def test_bench_missing_section_reports_new_section(
        capsys, tmp_path):
    """A baseline that predates a section (e.g. pre-accel) must diff
    as 'new section', not raise (regression test)."""
    baseline = tmp_path / "baseline.json"
    current = tmp_path / "current.json"
    baseline.write_text(json.dumps(_bench_payload()))
    current.write_text(json.dumps(_bench_payload(
        extra={"accel_smoke": {"speedup": 3.0, "scale": 0.25}})))
    assert main(["bench", "--baseline", str(baseline),
                 "--current", str(current)]) == 0
    out = capsys.readouterr().out
    assert "new section" in out


def test_bench_null_speedup_section_reports_missing(capsys, tmp_path):
    """Sections recording `"speedup": null` (placeholder payloads)
    diff as absent instead of crashing the formatter."""
    baseline = tmp_path / "baseline.json"
    current = tmp_path / "current.json"
    baseline.write_text(json.dumps(_bench_payload(
        extra={"accel_smoke": {"speedup": None, "scale": 0.25}})))
    current.write_text(json.dumps(_bench_payload(speedup=None)))
    assert main(["bench", "--baseline", str(baseline),
                 "--current", str(current),
                 "--max-regress", "60"]) == 0
    out = capsys.readouterr().out
    assert "new section" in out or "missing from current" in out


def test_bench_regression_gate_still_fires(capsys, tmp_path):
    baseline = tmp_path / "baseline.json"
    current = tmp_path / "current.json"
    baseline.write_text(json.dumps(_bench_payload(speedup=10.0)))
    current.write_text(json.dumps(_bench_payload(speedup=1.0)))
    assert main(["bench", "--baseline", str(baseline),
                 "--current", str(current),
                 "--max-regress", "60"]) == 1
    assert "regressed" in capsys.readouterr().err
