"""Command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Point the CLI's default result cache at a throwaway directory."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path / "cache"


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "GhostMinion" in out
    assert "mcf" in out and "blackscholes" in out


def test_run(capsys):
    assert main(["run", "hmmer", "--defense", "GhostMinion",
                 "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "IPC" in out and "cycles" in out
    assert "dminion.fills" in out


def test_run_unknown_workload():
    with pytest.raises(KeyError):
        main(["run", "doom", "--scale", "0.05"])


def test_run_spec_strings_through_engine(capsys):
    assert main(["run",
                 "--workload", "pointer_chase(stride=128, "
                               "footprint_kb=64)",
                 "--defense", "MuonTrap(flush=True)",
                 "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "pointer_chase(stride=128" in out
    assert "cycles" in out and "IPC" in out


def test_run_requires_exactly_one_workload(capsys):
    assert main(["run"]) == 2
    assert "no workload" in capsys.readouterr().err
    assert main(["run", "hmmer", "--workload", "mcf"]) == 2
    assert "both" in capsys.readouterr().err


def test_list_kind_json(capsys):
    assert main(["list", "defenses", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    names = [info["name"] for info in payload["defense"]]
    assert {"Unsafe", "GhostMinion", "MuonTrap-Flush",
            "Custom"} <= set(names)
    assert main(["list", "workloads", "--tag", "synthetic",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    names = [info["name"] for info in payload["workload"]]
    assert "pointer_chase" in names and "mcf" not in names
    assert main(["list", "predictors", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert {"tournament", "bimodal"} <= {
        info["name"] for info in payload["predictor"]}


def test_describe_spec_string(capsys):
    assert main(["describe", "MuonTrap(flush=True)"]) == 0
    out = capsys.readouterr().out
    assert "MuonTrap-Flush" in out         # resolved display name
    assert "flush_on_squash" in out
    assert main(["describe", "pointer_chase(stride=128)",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == "workload"
    assert payload["resolved"]["params"]["stride"] == 128


def test_describe_unknown_suggests(capsys):
    assert main(["describe", "GhostMinon"]) == 2
    assert "GhostMinion" in capsys.readouterr().err


def test_describe_bad_spec_is_clean_error(capsys):
    assert main(["describe", "MuonTrap(flush=__import__('os'))"]) == 2
    assert "literal" in capsys.readouterr().err


def test_compare(capsys):
    assert main(["compare", "hmmer", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "GhostMinion" in out and "geomean" in out


def test_figure_table1(capsys):
    assert main(["figure", "table1"]) == 0
    out = capsys.readouterr().out
    assert "L1 DCache" in out


def test_figure_six_small(capsys):
    assert main(["figure", "sec49", "--scale", "0.03"]) == 0
    out = capsys.readouterr().out
    assert "strict FU" in out


def test_run_json(capsys, isolated_cache):
    assert main(["run", "hmmer", "--scale", "0.05", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["workload"] == "hmmer"
    assert payload["defense"] == "GhostMinion"
    result = payload["result"]
    assert result["cycles"] > 0 and result["finished"] is True
    assert "dminion.fills" in result["stats"]


def test_run_cache_hit_on_second_invocation(capsys, isolated_cache):
    argv = ["run", "hmmer", "--scale", "0.05", "--json"]
    assert main(argv) == 0
    first = json.loads(capsys.readouterr().out)
    assert first["cache_hits"] == 0
    assert main(argv) == 0
    second = json.loads(capsys.readouterr().out)
    assert second["cache_hits"] == 1
    assert second["result"] == first["result"]


def test_compare_json_parallel_matches_serial(capsys, isolated_cache):
    argv = ["compare", "hmmer", "gamess", "--scale", "0.05", "--json"]
    assert main(argv + ["--jobs", "2", "--no-cache"]) == 0
    parallel = json.loads(capsys.readouterr().out)
    assert main(argv + ["--jobs", "1", "--no-cache"]) == 0
    serial = json.loads(capsys.readouterr().out)
    assert parallel["points"] == serial["points"]
    assert set(parallel["normalised"]["hmmer"]) == {
        "GhostMinion", "MuonTrap", "MuonTrap-Flush",
        "InvisiSpec-Spectre", "InvisiSpec-Future", "STT-Spectre",
        "STT-Future"}


def test_figure_json(capsys, isolated_cache):
    assert main(["figure", "table1", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["name"].startswith("Table 1")
    assert payload["data"]["rows"]
    assert "L1 DCache" in payload["text"]


def test_figure_json_with_engine(capsys, isolated_cache):
    assert main(["figure", "sec49", "--scale", "0.03", "--json",
                 "--jobs", "2"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "ratios" in payload["data"]
    assert payload["meta"]["points"] > 0


def test_sweep_command(capsys, isolated_cache):
    assert main(["sweep", "hmmer", "--defense", "GhostMinion",
                 "--axis", "minion_d.size_bytes=2048,128",
                 "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "hmmer::GhostMinion::minion_d.size_bytes=2048" in out
    assert "hmmer::GhostMinion::minion_d.size_bytes=128" in out


def test_sweep_malformed_axis_is_clean_error(capsys):
    assert main(["sweep", "hmmer", "--axis",
                 "minion_d.size_bytes"]) == 2
    err = capsys.readouterr().err
    assert "--axis wants PATH=V1,V2" in err


def test_sweep_malformed_set_is_clean_error(capsys):
    assert main(["sweep", "hmmer", "--set", "dram.open_page"]) == 2
    err = capsys.readouterr().err
    assert "--set wants PATH=VALUE" in err


def test_sweep_unknown_config_path_is_clean_error(capsys):
    assert main(["sweep", "hmmer", "--set",
                 "minion_d.size_bytez=128"]) == 2
    err = capsys.readouterr().err
    assert "unknown config field" in err


def test_composed_points_duplicate_keys_fail_fast():
    from repro.exp import Sweep, run_points
    points = Sweep(workloads=["hmmer"], defenses=["Unsafe"],
                   scale=0.05).points()
    with pytest.raises(ValueError, match="duplicate sweep point"):
        run_points(points + points)


def test_sweep_command_json_and_set(capsys, isolated_cache):
    assert main(["sweep", "hmmer", "--defense", "Unsafe",
                 "--set", "dram.open_page=false",
                 "--scale", "0.05", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["points"]) == 1
    assert payload["points"][0]["workload"] == "hmmer"


def test_attack_spectre_on_unsafe(capsys):
    assert main(["attack", "spectre", "--defense", "Unsafe",
                 "--secret", "3"]) == 0
    out = capsys.readouterr().out
    assert "recovered: 3 (correct)" in out
    assert "LEAKS" in out


def test_attack_spectre_on_ghostminion(capsys):
    assert main(["attack", "spectre", "--defense", "GhostMinion"]) == 0
    out = capsys.readouterr().out
    assert "safe under GhostMinion" in out


def test_attack_interference(capsys):
    exit_code = main(["attack", "interference",
                      "--defense", "GhostMinion"])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "secret bit 0" in out and "secret bit 1" in out
