"""Command-line interface."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "GhostMinion" in out
    assert "mcf" in out and "blackscholes" in out


def test_run(capsys):
    assert main(["run", "hmmer", "--defense", "GhostMinion",
                 "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "IPC" in out and "cycles" in out
    assert "dminion.fills" in out


def test_run_unknown_workload():
    with pytest.raises(KeyError):
        main(["run", "doom", "--scale", "0.05"])


def test_compare(capsys):
    assert main(["compare", "hmmer", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "GhostMinion" in out and "geomean" in out


def test_figure_table1(capsys):
    assert main(["figure", "table1"]) == 0
    out = capsys.readouterr().out
    assert "L1 DCache" in out


def test_figure_six_small(capsys):
    assert main(["figure", "sec49", "--scale", "0.03"]) == 0
    out = capsys.readouterr().out
    assert "strict FU" in out


def test_attack_spectre_on_unsafe(capsys):
    assert main(["attack", "spectre", "--defense", "Unsafe",
                 "--secret", "3"]) == 0
    out = capsys.readouterr().out
    assert "recovered: 3 (correct)" in out
    assert "LEAKS" in out


def test_attack_spectre_on_ghostminion(capsys):
    assert main(["attack", "spectre", "--defense", "GhostMinion"]) == 0
    out = capsys.readouterr().out
    assert "safe under GhostMinion" in out


def test_attack_interference(capsys):
    exit_code = main(["attack", "interference",
                      "--defense", "GhostMinion"])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "secret bit 0" in out and "secret bit 1" in out
